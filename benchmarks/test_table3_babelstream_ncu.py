"""Benchmark regenerating Table 3 (BabelStream ncu profiling metrics)."""

from repro.experiments.table3_babelstream_ncu import run

from .conftest import run_experiment_once


def test_table3_babelstream_ncu(benchmark):
    run_experiment_once(benchmark, run, quick=True)
