"""Benchmark regenerating Table 2 (stencil ncu profiling metrics)."""

from repro.experiments.table2_stencil_ncu import run

from .conftest import run_experiment_once


def test_table2_stencil_ncu(benchmark):
    run_experiment_once(benchmark, run, quick=True)
