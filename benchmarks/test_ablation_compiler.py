"""Ablation benchmarks for the compiler-level design choices (DESIGN.md §6).

Each ablation toggles one mechanism of the backend lowering model and reports
how the headline paper result changes, so the contribution of each modelled
effect is visible:

* constant-memory promotion (drives the Figure 5 / BabelStream streaming gap),
* fast-math legalisation (drives the Figure 6/7 spread),
* atomic lowering mode (drives Table 4's MI300A column).
"""

from dataclasses import replace

import pytest

from repro.backends import get_backend
from repro.core.compiler import compile_kernel
from repro.core.kernel import LaunchConfig
from repro.gpu.timing import KernelTimingModel
from repro.gpu.specs import get_gpu
from repro.kernels.babelstream import babelstream_kernel_model
from repro.kernels.hartreefock import hartree_fock_kernel_model
from repro.kernels.minibude import fasten_kernel_model, minibude_launch_config


def _time_with_profile(model, profile, gpu, launch, fast_math=False):
    compiled = compile_kernel(model, profile, launch=launch, fast_math=fast_math)
    return KernelTimingModel(get_gpu(gpu)).predict(compiled, launch)


def test_ablation_constant_promotion(benchmark):
    """Disabling Mojo's constant promotion removes its streaming-kernel edge."""
    model = babelstream_kernel_model("triad", n=2 ** 25, precision="float64")
    launch = LaunchConfig.for_elements(2 ** 25, 1024)
    mojo = get_backend("mojo")
    profile = mojo.compiler_profile("h100")

    def ablate():
        baseline = compile_kernel(model, profile, launch=launch)
        no_promo = compile_kernel(model, replace(profile, constant_promotion=False),
                                  launch=launch)
        return baseline, no_promo

    baseline, no_promo = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert baseline.instruction_mix["LDC"] < no_promo.instruction_mix["LDC"]
    print(f"\nconstant promotion: LDC {baseline.instruction_mix['LDC']:.1f} -> "
          f"{no_promo.instruction_mix['LDC']:.1f} without promotion")


def test_ablation_fast_math(benchmark):
    """Fast-math on/off reproduces the Figure 6 CUDA curve separation."""
    model = fasten_kernel_model(ppwi=4, natlig=26, natpro=938, wgsize=64)
    launch = minibude_launch_config(65536, 4, 64)
    profile = get_backend("cuda").compiler_profile("h100")

    def ablate():
        fast = _time_with_profile(model, profile, "h100", launch, fast_math=True)
        slow = _time_with_profile(model, profile, "h100", launch, fast_math=False)
        return fast, slow

    fast, slow = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert fast.kernel_time_ms < slow.kernel_time_ms
    print(f"\nfast-math speedup on miniBUDE (PPWI=4): "
          f"{slow.kernel_time_ms / fast.kernel_time_ms:.2f}x")


def test_ablation_atomic_lowering(benchmark):
    """CAS-lowered atomics reproduce the MI300A Hartree-Fock collapse."""
    model = hartree_fock_kernel_model(natoms=128, ngauss=3, surviving_fraction=0.15)
    launch = LaunchConfig.for_elements(128 * 129 // 2 * (128 * 129 // 2 + 1) // 2, 256)
    mojo_amd = get_backend("mojo").compiler_profile("mi300a")

    def ablate():
        cas = _time_with_profile(model, mojo_amd, "mi300a", launch)
        native = _time_with_profile(model, replace(mojo_amd, atomic_mode="native"),
                                    "mi300a", launch)
        return cas, native

    cas, native = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert cas.kernel_time_ms > 20 * native.kernel_time_ms
    print(f"\natomic lowering: CAS {cas.kernel_time_ms:,.0f} ms vs native "
          f"{native.kernel_time_ms:,.0f} ms")
