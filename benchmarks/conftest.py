"""Shared helpers for the benchmark suite.

Every paper artifact (Figures 2-7, Tables 2-5) has a benchmark that
regenerates it through the experiment harness; ``run_experiment_once`` wires
an experiment runner into pytest-benchmark (one round — the experiments are
deterministic model evaluations) and emits the regenerated rows with ``-s``.
"""

from __future__ import annotations

import json
import os

import pytest


def pytest_sessionfinish(session, exitstatus):
    """Export the substrate cache counters for ``repro bench-compare``.

    The CLI runs this benchmark suite in a subprocess, so its own
    compile/result cache counters never move; when it sets
    ``REPRO_CACHE_STATS_PATH`` we dump this process's counters there for the
    parent to report.
    """
    path = os.environ.get("REPRO_CACHE_STATS_PATH")
    if not path:
        return
    from repro.core.compiler import compile_cache_info
    from repro.workloads.cache import result_cache_info

    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"compile": compile_cache_info(),
                       "result": result_cache_info()}, fh)
    except OSError:  # pragma: no cover - best-effort reporting
        pass


def run_experiment_once(benchmark, runner, **options):
    """Benchmark one experiment execution and assert its paper checks pass."""
    result = benchmark.pedantic(lambda: runner(**options), rounds=1, iterations=1)
    assert result.all_passed, "\n" + "\n".join(
        c.to_text() for c in result.comparisons if not c.passed)
    print()
    print(result.to_text())
    return result
