"""Shared helpers for the benchmark suite.

Every paper artifact (Figures 2-7, Tables 2-5) has a benchmark that
regenerates it through the experiment harness; ``run_experiment_once`` wires
an experiment runner into pytest-benchmark (one round — the experiments are
deterministic model evaluations) and emits the regenerated rows with ``-s``.
"""

from __future__ import annotations

import pytest


def run_experiment_once(benchmark, runner, **options):
    """Benchmark one experiment execution and assert its paper checks pass."""
    result = benchmark.pedantic(lambda: runner(**options), rounds=1, iterations=1)
    assert result.all_passed, "\n" + "\n".join(
        c.to_text() for c in result.comparisons if not c.passed)
    print()
    print(result.to_text())
    return result
