"""Benchmark regenerating Figure 7 (miniBUDE GFLOP/s on MI300A)."""

from repro.experiments.fig7_minibude_mi300a import run

from .conftest import run_experiment_once


def test_fig7_minibude_mi300a(benchmark):
    run_experiment_once(benchmark, run, quick=False)
