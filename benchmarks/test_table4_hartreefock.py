"""Benchmark regenerating Table 4 (Hartree-Fock wall-clock times).

The quick mode covers the 64/128/256-atom rows; pass ``--run-slow-hf`` (see
``test_table4_full``) to include the 1024-atom / 6-Gaussian row, whose Schwarz
screening over ~1.4e11 quadruples takes a few extra seconds of host time.
"""

import pytest

from repro.experiments.table4_hartreefock import run

from .conftest import run_experiment_once


def test_table4_hartreefock(benchmark):
    run_experiment_once(benchmark, run, quick=True)


@pytest.mark.slow
def test_table4_hartreefock_full(benchmark):
    run_experiment_once(benchmark, run, quick=False)
