"""Benchmark regenerating Figure 5 (Triad instruction-mix comparison)."""

from repro.experiments.fig5_sass import run

from .conftest import run_experiment_once


def test_fig5_triad_sass_comparison(benchmark):
    run_experiment_once(benchmark, run, quick=True)
