"""Benchmark regenerating Table 5 (performance-portability metric Φ)."""

from repro.experiments.table5_portability import run

from .conftest import run_experiment_once


def test_table5_portability(benchmark):
    run_experiment_once(benchmark, run, quick=True)
