"""Benchmark regenerating Figure 4 (BabelStream bandwidth, Mojo vs CUDA/HIP)."""

from repro.experiments.fig4_babelstream import run

from .conftest import run_experiment_once


def test_fig4_babelstream_bandwidth(benchmark):
    run_experiment_once(benchmark, run, quick=True)
