"""Benchmark regenerating Figure 6 (miniBUDE GFLOP/s on H100)."""

from repro.experiments.fig6_minibude_h100 import run

from .conftest import run_experiment_once


def test_fig6_minibude_h100(benchmark):
    run_experiment_once(benchmark, run, quick=False)
