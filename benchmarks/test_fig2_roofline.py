"""Benchmark regenerating Figure 2 (roofline placement on H100)."""

from repro.experiments.fig2_roofline import run

from .conftest import run_experiment_once


def test_fig2_roofline(benchmark):
    run_experiment_once(benchmark, run, quick=True)
