"""Benchmark regenerating Figure 3 (stencil bandwidth, Mojo vs CUDA/HIP)."""

from repro.experiments.fig3_stencil import run

from .conftest import run_experiment_once


def test_fig3_stencil_bandwidth(benchmark):
    run_experiment_once(benchmark, run, quick=False, iterations=10)
