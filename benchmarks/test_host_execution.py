"""Host-side microbenchmarks of the real execution paths.

Unlike the figure/table benches (which evaluate the analytic device model),
these measure genuine wall-clock of the repository's executable components:
the vectorized workload references and the functional thread-level simulator.
They guard against performance regressions in the substrate itself.

``benchmarks/baseline.json`` stores the reference timings; ``python -m repro
bench-compare`` fails when any benchmark here regresses more than 2x against
that baseline.
"""

import numpy as np
import pytest

from repro.core import DType
from repro.core.kernel import LaunchConfig
from repro.gpu.executor import KernelExecutor
from repro.harness.runner import MeasurementProtocol
from repro.kernels.babelstream import BabelStreamArrays
from repro.kernels.hartreefock import compute_schwarz, make_helium_system, surviving_quadruple_fraction
from repro.kernels.hartreefock.reference import fock_quadruple_reference
from repro.kernels.minibude import make_deck, reference_energies
from repro.kernels.stencil import StencilProblem, laplacian_reference
from repro.kernels.stencil.kernel import laplacian_kernel
from repro.kernels.stencil.runner import stencil_launch_config


def test_bench_stencil_reference_l128(benchmark):
    problem = StencilProblem(128, "float64")
    u = problem.initial_field()
    args = problem.inverse_spacing_squared
    result = benchmark(laplacian_reference, u, *args)
    assert result.shape == u.shape


def test_bench_babelstream_reference_iteration(benchmark):
    arrays = BabelStreamArrays(2 ** 22, "float64")
    dot = benchmark(arrays.run_iteration)
    assert np.isfinite(dot)


def test_bench_minibude_reference_energies(benchmark):
    deck = make_deck(natlig=26, natpro=256, ntypes=32, nposes=512, seed=9)
    energies = benchmark(reference_energies, deck)
    assert energies.shape == (512,)


def test_bench_hartreefock_schwarz_screening(benchmark):
    system = make_helium_system(96, 3)

    def run():
        schwarz = compute_schwarz(system)
        return surviving_quadruple_fraction(schwarz)

    fraction = benchmark(run)
    assert 0 < fraction < 1


def test_bench_hartreefock_fock_quadruple_16(benchmark):
    """Batched-ERI unique-quadruple Fock build on the 16-atom helium system."""
    system = make_helium_system(16, 3)
    fock = benchmark(fock_quadruple_reference, system)
    assert fock.shape == (16, 16)
    assert np.all(np.isfinite(fock))


def test_bench_workload_dispatch(benchmark):
    """Unified Workload API dispatch: registry lookup, request validation and
    a timing-model-only stencil run (no functional verification).

    Guards the overhead the workload abstraction adds on top of the memoised
    compile/timing pipeline — the layer every CLI ``bench`` call and sweep
    configuration now goes through.
    """
    from repro.workloads import get_workload

    protocol = MeasurementProtocol(warmup=0, repeats=3)

    def run():
        workload = get_workload("stencil")
        request = workload.make_request(
            gpu="h100", backend="mojo", precision="float32",
            params={"L": 64}, protocol=protocol, verify=False)
        return workload.run(request)

    result = benchmark(run)
    assert result.metrics["bandwidth_gbs"] > 0
    assert not result.verification.ran


def _stencil_executor_fixture(L):
    """Shared setup for the executor-throughput benchmarks."""
    from repro.core.layout import Layout, LayoutTensor

    problem = StencilProblem(L, "float64")
    u_host = problem.initial_field()
    args = problem.inverse_spacing_squared
    layout = Layout.row_major(L, L, L)
    u = LayoutTensor(DType.float64, layout, u_host.reshape(-1).copy(),
                     mut=False, bounds_check=False)
    f_store = np.zeros(L ** 3)
    f = LayoutTensor(DType.float64, layout, f_store, bounds_check=False)
    launch = stencil_launch_config(L, (4, 4, 4))
    return f_store, (f, u, L, L, L, *args), launch


def test_bench_functional_executor_stencil(benchmark):
    """Scalar (sequential) simulator throughput on a small stencil grid.

    The mode is pinned so this baseline keeps guarding the one-Python-call-
    per-thread path; the lockstep engine has its own benchmark below.
    """
    executor = KernelExecutor()
    f_store, args, launch = _stencil_executor_fixture(12)

    def run():
        f_store[:] = 0.0
        executor.launch(laplacian_kernel, args, launch, mode="sequential")
        return f_store

    result = benchmark(run)
    assert np.any(result != 0.0)


def test_bench_vectorized_executor_stencil(benchmark):
    """Lockstep (vectorized) simulator throughput on the same stencil grid.

    Same launch as ``test_bench_functional_executor_stencil``; the
    baseline.json pair records the sequential→vectorized speedup the
    ISSUE-3 acceptance demands (≥10x at tier-1 grid sizes).
    """
    executor = KernelExecutor()
    f_store, args, launch = _stencil_executor_fixture(12)

    def run():
        f_store[:] = 0.0
        executor.launch(laplacian_kernel, args, launch, mode="vectorized")
        return f_store

    result = benchmark(run)
    assert np.any(result != 0.0)


def _stencil_sweep_point(L=6):
    """Inputs for one stencil sweep point driven through DeviceContext."""
    from repro.kernels.stencil.kernel import stencil_kernel_model

    problem = StencilProblem(L, "float64")
    u_host = problem.initial_field().reshape(-1)
    args = problem.inverse_spacing_squared
    launch = stencil_launch_config(L, (L, L, L))
    model = stencil_kernel_model(L=L, precision="float64")
    return problem, u_host, args, launch, model


def test_bench_graph_reenqueue_stencil_point(benchmark):
    """One stencil sweep point rebuilt from scratch every repeat.

    This is the pre-graph launch path: a fresh DeviceContext, buffer
    allocation, tensor wrapping, H2D, a kernel enqueue (with its per-launch
    modelled-time prediction) and D2H per iteration.  Paired with
    ``test_bench_graph_replay_stencil_point``: the committed baselines must
    show replay at least 2x faster (guarded in test_benchcheck.py).
    """
    from repro.core.device import DeviceContext
    from repro.core.layout import Layout
    from repro.kernels.stencil.kernel import laplacian_kernel as kern

    L = 6
    problem, u_host, sargs, launch, model = _stencil_sweep_point(L)
    layout = Layout.row_major(L, L, L)

    def run():
        ctx = DeviceContext("h100")
        u_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="u")
        f_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="f")
        u_buf.copy_from_host(u_host)
        u = u_buf.tensor(layout, mut=False, bounds_check=False)
        f = f_buf.tensor(layout, bounds_check=False)
        ctx.enqueue_function(kern, f, u, L, L, L, *sargs,
                             grid_dim=launch.grid_dim,
                             block_dim=launch.block_dim,
                             mode="vectorized", model=model)
        ctx.synchronize()
        return f_buf.copy_to_host()

    result = benchmark(run)
    assert np.any(result != 0.0)


def test_bench_graph_replay_stencil_point(benchmark):
    """The same sweep point as a captured DeviceGraph, replayed per repeat.

    Capture happens once in setup; each iteration only rebinds the input
    and re-executes the recorded H2D -> kernel -> D2H sequence, which is the
    launch-overhead amortisation the graph API exists for.
    """
    from repro.core.device import DeviceContext
    from repro.core.layout import Layout
    from repro.kernels.stencil.kernel import laplacian_kernel as kern

    L = 6
    problem, u_host, sargs, launch, model = _stencil_sweep_point(L)
    layout = Layout.row_major(L, L, L)
    ctx = DeviceContext("h100")
    u_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="u")
    f_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="f")
    u = u_buf.tensor(layout, mut=False, bounds_check=False)
    f = f_buf.tensor(layout, bounds_check=False)
    with ctx.capture("stencil-point") as graph:
        u_buf.copy_from_host(u_host)
        ctx.enqueue_function(kern, f, u, L, L, L, *sargs,
                             grid_dim=launch.grid_dim,
                             block_dim=launch.block_dim,
                             mode="vectorized", model=model)
        f_buf.copy_to_host()

    def run():
        return graph.replay(u=u_host)["f"]

    result = benchmark(run)
    assert np.any(result != 0.0)


def _stencil_launch_fixture(L, block_shape):
    """Executor inputs for an L^3 stencil at an arbitrary block shape."""
    from repro.core.layout import Layout, LayoutTensor

    problem = StencilProblem(L, "float64")
    u_host = problem.initial_field()
    args = problem.inverse_spacing_squared
    layout = Layout.row_major(L, L, L)
    u = LayoutTensor(DType.float64, layout, u_host.reshape(-1).copy(),
                     mut=False, bounds_check=False)
    f_store = np.zeros(L ** 3)
    f = LayoutTensor(DType.float64, layout, f_store, bounds_check=False)
    launch = stencil_launch_config(L, block_shape)
    return f_store, (f, u, L, L, L, *args), launch


#: the ISSUE-5 guard scenario: a 64^3 grid, where the workload's untuned
#: default (512, 1, 1) slab launch covers each x-row with a 8x oversized
#: block — 2.1M simulated lanes against the tuned geometry's 262k
_TUNED_GUARD_L = 64


def _tuned_stencil_block():
    """The block shape `repro tune stencil --param L=64` discovers.

    Found by a seeded (hence deterministic) search against an in-memory
    database, exactly as the CLI would; memoised for the benchmark pair.
    """
    global _TUNED_BLOCK
    if _TUNED_BLOCK is None:
        from repro.tuning import Tuner, TuningDB
        from repro.workloads import get_workload

        wl = get_workload("stencil")
        request = wl.make_request(params={"L": _TUNED_GUARD_L}, verify=False)
        outcome = Tuner(wl, request, db=TuningDB(disk_dir=None),
                        budget=16).search()
        _TUNED_BLOCK = outcome.best.config.params["block_shape"]
    return _TUNED_BLOCK


_TUNED_BLOCK = None


def test_bench_untuned_stencil_launch(benchmark):
    """Functional execution of the guard grid at the untuned default launch.

    Paired with ``test_bench_tuned_stencil_launch``: the committed
    baselines must show the tuned geometry at least 1.2x faster (guarded
    in test_benchcheck.py) — the wall-clock counterpart of the modelled
    speedup ``bench stencil --tuned`` reports.
    """
    executor = KernelExecutor()
    f_store, args, launch = _stencil_launch_fixture(_TUNED_GUARD_L,
                                                    (512, 1, 1))

    def run():
        f_store[:] = 0.0
        executor.launch(laplacian_kernel, args, launch, mode="vectorized")
        return f_store

    result = benchmark(run)
    assert np.any(result != 0.0)


def test_bench_tuned_stencil_launch(benchmark):
    """The same grid at the geometry the tuner discovers for it."""
    executor = KernelExecutor()
    f_store, args, launch = _stencil_launch_fixture(_TUNED_GUARD_L,
                                                    _tuned_stencil_block())

    def run():
        f_store[:] = 0.0
        executor.launch(laplacian_kernel, args, launch, mode="vectorized")
        return f_store

    result = benchmark(run)
    assert np.any(result != 0.0)


def test_bench_vectorized_babelstream_dot(benchmark):
    """Lockstep per-block execution of the barrier/shared-memory Dot kernel."""
    from repro.core.layout import Layout, LayoutTensor
    from repro.kernels.babelstream.kernels import dot_kernel

    n, tb, blocks = 1 << 14, 256, 8
    rng = np.random.default_rng(11)
    a_store = rng.normal(size=n)
    b_store = rng.normal(size=n)
    a = LayoutTensor(DType.float64, Layout.row_major(n), a_store,
                     mut=False, bounds_check=False)
    b = LayoutTensor(DType.float64, Layout.row_major(n), b_store,
                     mut=False, bounds_check=False)
    sums = np.zeros(blocks)
    launch = LaunchConfig.make(blocks, tb)
    executor = KernelExecutor()

    def run():
        sums[:] = 0.0
        executor.launch(dot_kernel, (a, b, sums, n, tb), launch,
                        mode="vectorized")
        return sums

    result = benchmark(run)
    np.testing.assert_allclose(result.sum(), a_store @ b_store, rtol=1e-10)


def test_bench_lint_vector_safe_hot_path(benchmark):
    """Launch-path vector-safety resolution must stay attribute-read cheap.

    Every vectorized dispatch consults ``kernel_vector_safe``; the static
    analyser must only ever run behind the opt-in surfaces (``strict=``,
    ``capture(check=True)``, ``repro lint``), so a declared kernel's hot
    path is a couple of attribute reads.  A thousand resolutions per
    round keeps the timing above clock noise; a regression here means
    analysis leaked into the launch path.
    """
    from repro.gpu.vector_executor import kernel_vector_safe

    def run():
        ok = True
        for _ in range(1000):
            ok &= kernel_vector_safe(laplacian_kernel, infer=True)
        return ok

    assert benchmark(run) is True


def test_bench_region_analysis_memoised(benchmark):
    """Memoised region concretization must stay dict-lookup cheap.

    The race detector, the bounds checker and the fusion cover test all
    call ``concretize_launch`` per kernel op; after the first analysis of
    a ``(kernel, launch, shapes)`` triple every repeat is two dict
    lookups.  A thousand concretizations per round keeps the timing above
    clock noise; a regression here means the abstract interpreter leaked
    past its memo.
    """
    from repro.analysis.regions import TensorSpec, concretize_launch

    L = 64
    spec = TensorSpec((L, L, L))
    args = (spec, spec, L, L, L, 1.0, 1.0, 1.0, 1.0 / 6.0)
    launch = stencil_launch_config(L, (64, 1, 1))
    concretize_launch(laplacian_kernel, args, launch)   # prime the memo

    def run():
        lr = None
        for _ in range(1000):
            lr = concretize_launch(laplacian_kernel, args, launch)
        return lr

    assert benchmark(run) is not None


def _stencil_graph_capture(L, mode):
    """An H2D -> laplacian -> D2H capture at *L*^3 in one executor *mode*."""
    from repro.core.device import DeviceContext
    from repro.core.layout import Layout
    from repro.kernels.stencil.kernel import stencil_kernel_model

    problem = StencilProblem(L, "float64")
    u_host = problem.initial_field().reshape(-1)
    sargs = problem.inverse_spacing_squared
    launch = stencil_launch_config(L, (64, 4, 1))
    layout = Layout.row_major(L, L, L)
    ctx = DeviceContext("h100")
    u_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="u")
    f_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3, label="f")
    u = u_buf.tensor(layout, mut=False, bounds_check=False)
    f = f_buf.tensor(layout, bounds_check=False)
    with ctx.capture(f"stencil-{mode}") as graph:
        u_buf.copy_from_host(u_host)
        ctx.enqueue_function(laplacian_kernel, f, u, L, L, L, *sargs,
                             grid_dim=launch.grid_dim,
                             block_dim=launch.block_dim, mode=mode,
                             model=stencil_kernel_model(L=L,
                                                        precision="float64"))
        f_buf.copy_to_host()
    return graph


def test_bench_vectorized_stencil_graph_replay(benchmark):
    """Stencil graph replay with the kernel pinned to the lockstep engine.

    Paired with ``test_bench_lowered_stencil_graph_replay``: the committed
    baselines must show the NumPy-codegen lowering at least 2x faster on
    the same capture (guarded in test_benchcheck.py).
    """
    graph = _stencil_graph_capture(32, "vectorized")
    result = benchmark(graph.replay)
    assert np.any(result["f"] != 0.0)


def test_bench_lowered_stencil_graph_replay(benchmark):
    """The same stencil capture dispatched through the lowering tier.

    ``mode="lowered"`` compiles the kernel body to whole-array NumPy
    slicing once (memoised on the kernel) and replays execute the
    generated entry — the graph compiler's backend path.
    """
    graph = _stencil_graph_capture(32, "lowered")
    result = benchmark(graph.replay)
    assert np.any(result["f"] != 0.0)


def test_bench_unfused_babelstream_graph_replay(benchmark):
    """The BabelStream Copy/Mul/Add/Triad capture replayed as recorded.

    Uses the workload's shipped lint/tuning capture (n=4096, one stream),
    i.e. exactly the graph ``RunRequest.optimize`` feeds the pass
    pipeline.  Paired with the fused variant below: the committed
    baselines must show the fused replay no slower (guarded in
    test_benchcheck.py).
    """
    from repro.workloads import get_workload

    graph = get_workload("babelstream").lint_graph()
    result = benchmark(graph.replay)
    assert np.all(np.isfinite(result["a"]))


def test_bench_fused_babelstream_graph_replay(benchmark):
    """The same capture after the fusion pass: one fused kernel launch.

    The fused body dispatches through the lowering tier (with automatic
    fallback to the vector executor), so this baseline records the full
    graph-compiler win on the four-kernel STREAM sweep.
    """
    from repro.graphopt import optimize_graph
    from repro.workloads import get_workload

    graph = get_workload("babelstream").lint_graph()
    fused, report = optimize_graph(graph, "fuse")
    assert report.fused and fused.num_kernels == 1
    result = benchmark(fused.replay)
    assert np.all(np.isfinite(result["a"]))


def test_bench_trace_disabled_workload_dispatch(benchmark):
    """Workload.run with the tracing instrumentation present but disabled.

    Identical work to ``test_bench_workload_dispatch``; the committed
    baselines must stay within 2x of each other (guarded in
    test_benchcheck.py) — the observability layer's disabled path is one
    module-attribute read per hook site plus one histogram sample per run.
    """
    from repro.obs.trace import active_collector
    from repro.workloads import get_workload

    assert active_collector() is None
    protocol = MeasurementProtocol(warmup=0, repeats=3)

    def run():
        workload = get_workload("stencil")
        request = workload.make_request(
            gpu="h100", backend="mojo", precision="float32",
            params={"L": 64}, protocol=protocol, verify=False)
        return workload.run(request)

    result = benchmark(run)
    assert result.metrics["bandwidth_gbs"] > 0
    assert not result.verification.ran


def test_bench_traced_stencil_run(benchmark):
    """A span-enabled stencil run: collector install, nested spans and
    context registration on top of the dispatch path.

    Tracing is a debugging surface, not a hot path; this baseline records
    what ``repro trace`` / ``bench --trace`` cost and only guards against
    pathological slowdowns.
    """
    from repro.obs import TraceCollector, install_trace_collector
    from repro.workloads import get_workload

    protocol = MeasurementProtocol(warmup=0, repeats=3)

    def run():
        workload = get_workload("stencil")
        request = workload.make_request(
            gpu="h100", backend="mojo", precision="float32",
            params={"L": 64}, protocol=protocol, verify=False)
        collector = TraceCollector()
        with install_trace_collector(collector):
            workload.run(request)
        return collector

    collector = benchmark(run)
    assert any(s.name == "workload.run" for s in collector.spans)
