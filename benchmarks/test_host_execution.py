"""Host-side microbenchmarks of the real execution paths.

Unlike the figure/table benches (which evaluate the analytic device model),
these measure genuine wall-clock of the repository's executable components:
the vectorized workload references and the functional thread-level simulator.
They guard against performance regressions in the substrate itself.

``benchmarks/baseline.json`` stores the reference timings; ``python -m repro
bench-compare`` fails when any benchmark here regresses more than 2x against
that baseline.
"""

import numpy as np
import pytest

from repro.core import DType
from repro.core.kernel import LaunchConfig
from repro.gpu.executor import KernelExecutor
from repro.harness.runner import MeasurementProtocol
from repro.kernels.babelstream import BabelStreamArrays
from repro.kernels.hartreefock import compute_schwarz, make_helium_system, surviving_quadruple_fraction
from repro.kernels.hartreefock.reference import fock_quadruple_reference
from repro.kernels.minibude import make_deck, reference_energies
from repro.kernels.stencil import StencilProblem, laplacian_reference
from repro.kernels.stencil.kernel import laplacian_kernel
from repro.kernels.stencil.runner import stencil_launch_config


def test_bench_stencil_reference_l128(benchmark):
    problem = StencilProblem(128, "float64")
    u = problem.initial_field()
    args = problem.inverse_spacing_squared
    result = benchmark(laplacian_reference, u, *args)
    assert result.shape == u.shape


def test_bench_babelstream_reference_iteration(benchmark):
    arrays = BabelStreamArrays(2 ** 22, "float64")
    dot = benchmark(arrays.run_iteration)
    assert np.isfinite(dot)


def test_bench_minibude_reference_energies(benchmark):
    deck = make_deck(natlig=26, natpro=256, ntypes=32, nposes=512, seed=9)
    energies = benchmark(reference_energies, deck)
    assert energies.shape == (512,)


def test_bench_hartreefock_schwarz_screening(benchmark):
    system = make_helium_system(96, 3)

    def run():
        schwarz = compute_schwarz(system)
        return surviving_quadruple_fraction(schwarz)

    fraction = benchmark(run)
    assert 0 < fraction < 1


def test_bench_hartreefock_fock_quadruple_16(benchmark):
    """Batched-ERI unique-quadruple Fock build on the 16-atom helium system."""
    system = make_helium_system(16, 3)
    fock = benchmark(fock_quadruple_reference, system)
    assert fock.shape == (16, 16)
    assert np.all(np.isfinite(fock))


def test_bench_workload_dispatch(benchmark):
    """Unified Workload API dispatch: registry lookup, request validation and
    a timing-model-only stencil run (no functional verification).

    Guards the overhead the workload abstraction adds on top of the memoised
    compile/timing pipeline — the layer every CLI ``bench`` call and sweep
    configuration now goes through.
    """
    from repro.workloads import get_workload

    protocol = MeasurementProtocol(warmup=0, repeats=3)

    def run():
        workload = get_workload("stencil")
        request = workload.make_request(
            gpu="h100", backend="mojo", precision="float32",
            params={"L": 64}, protocol=protocol, verify=False)
        return workload.run(request)

    result = benchmark(run)
    assert result.metrics["bandwidth_gbs"] > 0
    assert not result.verification.ran


def test_bench_functional_executor_stencil(benchmark):
    """Thread-level simulator throughput on a small stencil grid."""
    problem = StencilProblem(12, "float64")
    u_host = problem.initial_field()
    invhx2, invhy2, invhz2, invhxyz2 = problem.inverse_spacing_squared
    executor = KernelExecutor()

    from repro.core.layout import Layout, LayoutTensor
    layout = Layout.row_major(12, 12, 12)
    u = LayoutTensor(DType.float64, layout, u_host.reshape(-1).copy(), mut=False,
                     bounds_check=False)
    f_store = np.zeros(12 ** 3)
    f = LayoutTensor(DType.float64, layout, f_store, bounds_check=False)
    launch = stencil_launch_config(12, (4, 4, 4))

    def run():
        f_store[:] = 0.0
        executor.launch(laplacian_kernel,
                        (f, u, 12, 12, 12, invhx2, invhy2, invhz2, invhxyz2),
                        launch)
        return f_store

    result = benchmark(run)
    assert np.any(result != 0.0)
