"""Ablation benchmarks for the timing-model design choices (DESIGN.md §6).

* occupancy-aware derating vs a naive peak-fraction model (stencil),
* SIMT lane-utilisation accounting (the wg=8 vs wg=64 miniBUDE split),
* Schwarz screening's effect on the Hartree-Fock cost model.
"""

import pytest

from repro.backends import get_backend
from repro.core.kernel import LaunchConfig
from repro.kernels.hartreefock import (
    compute_schwarz,
    hartree_fock_kernel_model,
    make_helium_system,
    surviving_quadruple_fraction,
)
from repro.kernels.minibude import fasten_kernel_model, minibude_launch_config
from repro.kernels.stencil import stencil_kernel_model, stencil_launch_config


def test_ablation_occupancy_derating(benchmark):
    """Small blocks cannot hide memory latency: occupancy-aware timing shows it."""
    model = stencil_kernel_model(L=512, precision="float64")
    cuda = get_backend("cuda")

    def ablate():
        wide = cuda.time(model, "h100", stencil_launch_config(512, (512, 1, 1)))
        narrow = cuda.time(model, "h100", stencil_launch_config(512, (64, 1, 1)))
        return wide, narrow

    wide, narrow = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert wide.timing.occupancy.occupancy >= narrow.timing.occupancy.occupancy
    print(f"\nstencil 512-wide blocks: {wide.achieved_bandwidth_gbs:.0f} GB/s, "
          f"64-wide blocks: {narrow.achieved_bandwidth_gbs:.0f} GB/s")


def test_ablation_lane_utilisation(benchmark):
    """wg=8 wastes 3/4 of a warp (7/8 of a wavefront) — the Figure 6/7 split."""
    model = fasten_kernel_model(ppwi=2, natlig=26, natpro=938)
    cuda = get_backend("cuda")
    hip = get_backend("hip")

    def ablate():
        return (
            cuda.time(model, "h100", minibude_launch_config(65536, 2, 8), fast_math=True),
            cuda.time(model, "h100", minibude_launch_config(65536, 2, 64), fast_math=True),
            hip.time(model, "mi300a", minibude_launch_config(65536, 2, 8), fast_math=True),
            hip.time(model, "mi300a", minibude_launch_config(65536, 2, 64), fast_math=True),
        )

    h_wg8, h_wg64, a_wg8, a_wg64 = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert h_wg64.kernel_time_ms < h_wg8.kernel_time_ms
    assert a_wg64.kernel_time_ms < a_wg8.kernel_time_ms
    # the 64-wide wavefront makes the penalty worse on AMD
    assert (a_wg8.kernel_time_ms / a_wg64.kernel_time_ms
            > h_wg8.kernel_time_ms / h_wg64.kernel_time_ms)
    print(f"\nwg8/wg64 slowdown - H100: "
          f"{h_wg8.kernel_time_ms / h_wg64.kernel_time_ms:.2f}x, MI300A: "
          f"{a_wg8.kernel_time_ms / a_wg64.kernel_time_ms:.2f}x")


def test_ablation_schwarz_screening(benchmark):
    """Screening prunes most quadruples; without it the cost model explodes."""
    cuda = get_backend("cuda")
    system = make_helium_system(128, 3)
    launch = LaunchConfig.for_elements(system.nquads, 256)

    def ablate():
        fraction = surviving_quadruple_fraction(compute_schwarz(system))
        screened = cuda.time(hartree_fock_kernel_model(
            natoms=128, ngauss=3, surviving_fraction=fraction), "h100", launch)
        unscreened = cuda.time(hartree_fock_kernel_model(
            natoms=128, ngauss=3, surviving_fraction=1.0), "h100", launch)
        return fraction, screened, unscreened

    fraction, screened, unscreened = benchmark.pedantic(ablate, rounds=1, iterations=1)
    assert unscreened.kernel_time_ms > 2 * screened.kernel_time_ms
    print(f"\nSchwarz screening keeps {fraction:.1%} of quadruples: "
          f"{screened.kernel_time_ms:,.0f} ms vs {unscreened.kernel_time_ms:,.0f} ms unscreened")
