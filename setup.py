"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that fully offline environments (no access to PyPI for the
``wheel``/``setuptools`` build isolation requirements) can still perform an
editable install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
