#!/usr/bin/env python
"""BabelStream-style memory bandwidth survey across GPUs and backends.

Runs the five BabelStream kernels functionally on a reduced vector (to check
numerics on the simulated device) and then surveys the modelled bandwidth of
the paper's 2^25-element configuration on H100 and MI300A for every backend
that targets each GPU — the Figure 4 view, plus the performance-portability
summary of Table 5's BabelStream block.

Run with:  python examples/memory_bandwidth_survey.py
"""

from repro.backends import get_backend, list_backends
from repro.harness.plotting import Series, line_chart
from repro.kernels.babelstream import (
    BABELSTREAM_OPS,
    BabelStreamBenchmark,
    run_babelstream_functional,
)
from repro.metrics.portability import arithmetic_mean_phi, efficiency


def main() -> None:
    print("Functional verification of the five device kernels (reduced size):")
    errors = run_babelstream_functional(n=1024, tb_size=32, dot_blocks=4)
    for name, err in errors.items():
        print(f"  {name}: max relative error {err:.2e}")

    print("\nModelled bandwidth at 2^25 elements (GB/s):")
    results = {}
    for gpu in ("h100", "mi300a"):
        for backend in list_backends():
            if not get_backend(backend).supports(gpu):
                continue
            bench = BabelStreamBenchmark(backend=backend, gpu=gpu, num_times=3)
            results[(gpu, backend)] = bench.run(verify=False).bandwidths_gbs

    series = []
    for (gpu, backend), bandwidths in sorted(results.items()):
        s = Series(f"{gpu}/{backend}")
        for op in BABELSTREAM_OPS:
            s.add(op, bandwidths[op])
        series.append(s)
    print(line_chart(series, title="BabelStream bandwidth (Eq. 2)", unit=""))

    print("\nMojo efficiency vs the vendor baseline (Table 5, BabelStream block):")
    efficiencies = []
    for gpu, baseline in (("h100", "cuda"), ("mi300a", "hip")):
        for op in BABELSTREAM_OPS:
            e = efficiency(results[(gpu, "mojo")][op], results[(gpu, baseline)][op])
            efficiencies.append(e)
            print(f"  {gpu:8s} {op:6s} {e:.2f}")
    print(f"  Φ(BabelStream) = {arithmetic_mean_phi(efficiencies):.2f} "
          f"(paper: 0.96)")


if __name__ == "__main__":
    main()
