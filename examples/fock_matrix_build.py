#!/usr/bin/env python
"""Hartree-Fock two-electron Fock build on a helium cluster.

Part 1 builds the two-electron Fock matrix of a small helium cluster with the
portable device kernel (atomic updates through the simulator), checks it
against both host formulations (the quadruple accumulation and the textbook
J - K/2 expression), and reports simple electronic-structure quantities.

Part 2 reproduces the Table 4 view: kernel wall-clock for the paper's helium
systems on H100 (Mojo vs CUDA) and MI300A (Mojo vs HIP), including the Schwarz
screening statistics that drive the cost.

Run with:  python examples/fock_matrix_build.py
"""

import numpy as np

from repro.harness.results import ResultTable
from repro.kernels.hartreefock import (
    compute_schwarz,
    fock_direct_reference,
    make_helium_system,
    run_hartreefock,
    run_hartreefock_functional,
    surviving_quadruple_fraction,
    symmetrize,
)


def build_small_fock(natoms=6, ngauss=3):
    print(f"building the two-electron Fock matrix for He{natoms} (ngauss={ngauss}):")
    fock_device, err = run_hartreefock_functional(natoms, ngauss, spacing=2.5)
    print(f"  device kernel vs host quadruple accumulation: max error {err:.2e}")

    system = make_helium_system(natoms, ngauss, spacing=2.5)
    fock = symmetrize(fock_device)
    direct = fock_direct_reference(system)
    print(f"  symmetrised device Fock vs J - K/2: max abs diff "
          f"{np.max(np.abs(fock - direct)):.2e}")

    two_electron_energy = 0.5 * np.sum(system.dens * fock)
    print(f"  two-electron energy  : {two_electron_energy:10.4f} hartree")
    print(f"  largest Coulomb term : {np.max(np.diag(fock)):10.4f}")
    print(f"  Fock symmetry error  : {np.max(np.abs(fock - fock.T)):.2e}")


def table4_view():
    print("\nKernel wall-clock times (Table 4 view), synthetic helium lattices:")
    table = ResultTable(columns=["natoms", "survivors", "h100 mojo (ms)",
                                 "h100 cuda (ms)", "mi300a mojo (ms)",
                                 "mi300a hip (ms)"])
    for natoms in (64, 128, 256):
        system = make_helium_system(natoms, 3)
        survivors = surviving_quadruple_fraction(compute_schwarz(system))
        row = {"natoms": natoms, "survivors": round(survivors, 4)}
        for gpu, backend, col in (("h100", "mojo", "h100 mojo (ms)"),
                                  ("h100", "cuda", "h100 cuda (ms)"),
                                  ("mi300a", "mojo", "mi300a mojo (ms)"),
                                  ("mi300a", "hip", "mi300a hip (ms)")):
            res = run_hartreefock(natoms=natoms, ngauss=3, backend=backend,
                                  gpu=gpu, verify=False)
            row[col] = round(res.kernel_time_ms, 1)
        table.add_row(**row)
    print(table.to_text())
    print("\n(paper, a=256: Mojo 187 / CUDA 472 on H100; Mojo 25,266 / HIP 178 on MI300A)")


def main() -> None:
    build_small_fock()
    table4_view()


if __name__ == "__main__":
    main()
