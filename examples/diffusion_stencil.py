#!/usr/bin/env python
"""Heat diffusion with the seven-point stencil (the paper's first workload).

Part 1 runs an explicit diffusion time-stepper on a small 3-D grid using the
portable device kernel through the functional simulator and checks it against
a NumPy reference step by step.

Part 2 reproduces the Figure-3 view: effective bandwidth (Eq. 1) of the
production-size stencil on H100 (Mojo vs CUDA) and MI300A (Mojo vs HIP).

Run with:  python examples/diffusion_stencil.py
"""

import numpy as np

from repro.core import DeviceContext, Layout
from repro.harness.plotting import bar_chart
from repro.kernels.stencil import (
    StencilProblem,
    laplacian_kernel,
    laplacian_reference,
    run_stencil,
    stencil_launch_config,
)


def diffusion_step_reference(u, alpha_dt, inv):
    """One explicit Euler step of du/dt = alpha * Laplacian(u)."""
    return u + alpha_dt * laplacian_reference(u, *inv)


def simulate_on_device(L=16, steps=5, alpha_dt=1e-5):
    """Run the explicit stepper with the device kernel and verify every step."""
    problem = StencilProblem(L, "float64")
    inv = problem.inverse_spacing_squared
    u_host = problem.initial_field()

    ctx = DeviceContext("h100")
    layout = Layout.row_major(L, L, L)
    d_u = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="u")
    d_f = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="f")
    d_u.copy_from_host(u_host)
    launch = stencil_launch_config(L, (8, 4, 4))

    reference = u_host.copy()
    for step in range(steps):
        u = d_u.tensor(layout, mut=False, bounds_check=False)
        f = d_f.tensor(layout, bounds_check=False)
        d_f.fill(0.0)
        ctx.enqueue_function(laplacian_kernel, f, u, L, L, L, *inv,
                             grid_dim=launch.grid_dim, block_dim=launch.block_dim)
        ctx.synchronize()
        lap = d_f.copy_to_host().reshape(problem.shape)
        updated = d_u.copy_to_host().reshape(problem.shape) + alpha_dt * lap
        d_u.copy_from_host(updated)

        reference = diffusion_step_reference(reference, alpha_dt, inv)
        err = np.max(np.abs(updated - reference))
        print(f"  step {step + 1}: max |device - reference| = {err:.3e}")
        assert err < 1e-12
    return reference


def figure3_view():
    """Effective bandwidth of the production-size stencil (Figure 3)."""
    print("\nEffective stencil bandwidth, Eq. 1 (L=512, FP64):")
    results = {}
    for gpu, backends in (("h100", ("mojo", "cuda")), ("mi300a", ("mojo", "hip"))):
        for backend in backends:
            res = run_stencil(L=512, precision="float64", backend=backend,
                              gpu=gpu, iterations=5, verify=False)
            results[f"{gpu}/{backend}"] = res.bandwidth_gbs
    print(bar_chart(results, unit=" GB/s"))


def main() -> None:
    print("Explicit diffusion on a 16^3 grid (device kernel vs reference):")
    simulate_on_device()
    figure3_view()


if __name__ == "__main__":
    main()
