#!/usr/bin/env python
"""In-silico molecular docking with the miniBUDE fasten kernel.

Part 1 docks a small synthetic ligand against a reduced protein: every pose's
energy is computed by the portable device kernel through the functional
simulator, verified against the vectorized reference, and the best-scoring
poses are reported — the actual task the Bristol docking engine performs.

Part 2 reproduces the Figure 6/7 view on the bm1-sized deck: GFLOP/s (Eq. 3)
versus poses-per-work-item for Mojo and the vendor baselines, with and without
fast-math.

Run with:  python examples/molecular_docking.py
"""

import numpy as np

from repro.harness.plotting import Series, line_chart
from repro.kernels.minibude import (
    make_deck,
    reference_energies,
    run_fasten_functional,
    run_minibude,
)


def dock_small_complex():
    """Dock 128 poses of an 8-atom ligand against a 64-atom pocket."""
    deck = make_deck(natlig=8, natpro=64, ntypes=16, nposes=128, seed=42,
                     name="demo-complex")
    print(f"docking {deck}")
    energies, err = run_fasten_functional(deck, ppwi=2, wgsize=8)
    print(f"  device kernel vs reference: max relative error {err:.2e}")

    best = np.argsort(energies)[:5]
    print("  five best-scoring poses (lower energy is better):")
    for rank, pose in enumerate(best, 1):
        angles = deck.poses[:3, pose]
        print(f"    #{rank}: pose {pose:4d}  energy {energies[pose]:10.3f}  "
              f"rotation ({angles[0]:.2f}, {angles[1]:.2f}, {angles[2]:.2f}) rad")
    return energies


def ppwi_sweep():
    """GFLOP/s vs PPWI on both GPUs (Figures 6 and 7)."""
    ppwis = (1, 2, 4, 8, 16, 32)
    configs = [
        ("h100/mojo", "mojo", "h100", False),
        ("h100/cuda+fm", "cuda", "h100", True),
        ("h100/cuda", "cuda", "h100", False),
        ("mi300a/mojo", "mojo", "mi300a", False),
        ("mi300a/hip+fm", "hip", "mi300a", True),
    ]
    series = []
    for label, backend, gpu, fast_math in configs:
        s = Series(label)
        for ppwi in ppwis:
            res = run_minibude(ppwi=ppwi, wgsize=64, backend=backend, gpu=gpu,
                               fast_math=fast_math, verify=False)
            s.add(ppwi, res.gflops)
        series.append(s)
    print(line_chart(series, title="miniBUDE bm1 GFLOP/s vs PPWI (wg=64)", unit=""))


def main() -> None:
    dock_small_complex()
    print()
    ppwi_sweep()


if __name__ == "__main__":
    main()
