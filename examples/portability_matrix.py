#!/usr/bin/env python
"""Portability matrix: every workload x GPU x backend through one API.

The paper's Table 5 argument — the same Mojo kernels reach vendor-baseline
performance on both NVIDIA and AMD silicon — is a statement about *uniform
dispatch*: nothing kernel-specific should be needed to run any workload on
any platform.  This example is that statement as a program.  It enumerates
the workload registry, builds one reduced-size ``RunRequest`` per (workload,
GPU, backend) cell, and prints the primary-metric matrix plus the Mojo
efficiency against each GPU's vendor baseline.

Run with:  python examples/portability_matrix.py
"""

from repro.backends import vendor_baseline_for
from repro.gpu import list_gpus
from repro.harness.results import ResultTable
from repro.harness.runner import MeasurementProtocol
from repro.workloads import get_workload, list_workloads

#: reduced problem sizes so the whole matrix runs in seconds
QUICK_PARAMS = {
    "stencil": {"L": 256},
    "babelstream": {"n": 2 ** 22},
    "minibude": {"ppwi": 2, "wgsize": 64, "nposes": 8192},
    "hartreefock": {"natoms": 64},
}


def main() -> None:
    protocol = MeasurementProtocol(warmup=1, repeats=3)
    gpus = list_gpus()

    for name in list_workloads():
        workload = get_workload(name)
        lower_is_better = workload.primary_metric.endswith("_ms")
        table = ResultTable(
            columns=["gpu", "backend", workload.primary_metric, "efficiency"],
            title=f"{name} [{workload.primary_metric}, "
                  f"{workload.primary_unit}]",
        )
        for gpu in gpus:
            baseline_backend = vendor_baseline_for(gpu).name
            request = workload.make_request(
                gpu=gpu, backend=baseline_backend,
                params=QUICK_PARAMS.get(name, {}),
                protocol=protocol, verify=False)
            baseline = workload.run(request)
            mojo = workload.run(request.replace(backend="mojo"))
            for result in (mojo, baseline):
                eff = result.primary_value / baseline.primary_value
                if lower_is_better and eff:
                    eff = 1.0 / eff
                table.add_row(gpu=gpu, backend=result.request.backend,
                              efficiency=eff,
                              **{workload.primary_metric:
                                 result.primary_value})
        print(table.to_text())
        print()


if __name__ == "__main__":
    main()
