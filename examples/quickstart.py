#!/usr/bin/env python
"""Quickstart: the paper's Listing 1 workflow on the simulated device.

Allocates a device buffer, launches a Mojo-style per-thread kernel written
against `repro`'s portable programming model, verifies the result on the
host, overlaps transfers and compute on multiple device streams with event
ordering, captures the whole step into a replayable device graph, asks the
backend models what the same kernel would cost on the two GPUs of the paper
(NVIDIA H100 and AMD MI300A), and finally drives a full science workload
through the unified Workload API registry.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DeviceContext,
    DType,
    KernelModel,
    LaunchConfig,
    Layout,
    block_dim,
    block_idx,
    ceildiv,
    kernel,
    thread_idx,
)
from repro.backends import get_backend, vendor_baseline_for
from repro.workloads import get_workload, list_workloads

# --- compile-time style constants, as in the paper's Listing 1 --------------
NX = 1 << 20
BLOCK_SIZE = 256
NUM_BLOCKS = ceildiv(NX, BLOCK_SIZE)


@kernel
def axpy_kernel(y, x, alpha, n):
    """y[i] = alpha * x[i] + y[i] — one element per thread."""
    tid = block_idx.x * block_dim.x + thread_idx.x
    if tid < n:
        y[tid] = alpha * x[tid] + y[tid]


def main() -> None:
    # 1. Functional execution on the simulated device (reduced size so the
    #    thread-level simulator stays fast).
    n_small = 4096
    ctx = DeviceContext("h100")
    d_x = ctx.enqueue_create_buffer(DType.float32, n_small, label="x")
    d_y = ctx.enqueue_create_buffer(DType.float32, n_small, label="y")
    x_host = np.linspace(0.0, 1.0, n_small, dtype=np.float32)
    y_host = np.full(n_small, 2.0, dtype=np.float32)
    d_x.copy_from_host(x_host)
    d_y.copy_from_host(y_host)

    x = d_x.tensor(Layout.row_major(n_small), mut=False, bounds_check=False)
    y = d_y.tensor(Layout.row_major(n_small), bounds_check=False)
    ctx.enqueue_function(axpy_kernel, y, x, 3.0, n_small,
                         grid_dim=ceildiv(n_small, BLOCK_SIZE),
                         block_dim=BLOCK_SIZE)
    ctx.synchronize()

    result = d_y.copy_to_host()
    expected = 3.0 * x_host + y_host
    max_err = float(np.max(np.abs(result - expected)))
    print(f"functional check on {ctx.spec.full_name}: max error = {max_err:.2e}")
    assert max_err < 1e-6

    # 1b. Streams and events: put the upload and an independent kernel on
    #     separate streams — the modelled timeline overlaps the lanes, so
    #     the makespan is less than the serial sum of the operations.
    model = KernelModel(
        name="axpy", dtype=DType.float32,
        loads_global=2, stores_global=1, flops=2,
        scalar_args=2, working_values=10,
    )
    pipe = DeviceContext("h100")
    h2d, compute = pipe.stream("h2d"), pipe.stream("compute")
    p_x = pipe.enqueue_create_buffer(DType.float32, n_small, label="px")
    p_y = pipe.enqueue_create_buffer(DType.float32, n_small, label="py")
    p_x.copy_from_host(x_host, stream=h2d)
    p_y.copy_from_host(y_host, stream=h2d)
    compute.wait(pipe.event("uploads-done").record(h2d))
    # the kernel only depends on px/py, so the next batch's staging upload
    # streams in on the h2d lane while the compute lane runs the kernel
    staging = pipe.enqueue_create_buffer(DType.float32, 1 << 20, label="staging")
    staging.copy_from_host(np.zeros(1 << 20, dtype=np.float32), stream=h2d)
    pipe.enqueue_function(axpy_kernel, p_y.tensor(), p_x.tensor(mut=False),
                          3.0, n_small, grid_dim=ceildiv(n_small, BLOCK_SIZE),
                          block_dim=BLOCK_SIZE, model=model, stream=compute)
    pipe.synchronize()
    breakdown = pipe.pipeline_breakdown()
    print(f"two-stream pipeline: makespan {breakdown.elapsed_ms * 1e3:.1f} us "
          f"vs serial {breakdown.serial_ms * 1e3:.1f} us "
          f"(overlap saved {breakdown.overlap_saved_ms * 1e3:.1f} us)")

    # 1c. Captured device graphs: record H2D -> kernel -> D2H once, then
    #     replay it with new buffer contents — the Python-side launch
    #     overhead is paid at capture, not per repeat.  Both inputs are
    #     uploaded inside the capture, so every replay starts from the same
    #     state (axpy accumulates into y) and replays are reproducible.
    with ctx.capture("axpy-step") as graph:
        d_x.copy_from_host(x_host)
        d_y.copy_from_host(y_host)
        ctx.enqueue_function(axpy_kernel, y, x, 3.0, n_small,
                             grid_dim=ceildiv(n_small, BLOCK_SIZE),
                             block_dim=BLOCK_SIZE, model=model)
        d_y.copy_to_host()
    outputs = graph.replay(x=2.0 * x_host)       # rebind the "x" input
    repeat = graph.replay(x=2.0 * x_host)        # identical state -> identical result
    assert np.array_equal(outputs["y"], repeat["y"])
    print(f"graph replay: {graph.num_operations} ops, "
          f"makespan {graph.makespan_ms * 1e3:.1f} us, "
          f"output mean {float(outputs['y'].mean()):.3f}")

    # 2. Performance-portability view: what would this kernel cost at the full
    #    problem size on each GPU, per programming model?
    launch = LaunchConfig.for_elements(NX, BLOCK_SIZE)
    print(f"\nmodelled AXPY on {NX} elements ({NUM_BLOCKS} blocks of {BLOCK_SIZE}):")
    for gpu in ("h100", "mi300a"):
        portable = get_backend("mojo").time(model, gpu, launch)
        baseline = vendor_baseline_for(gpu).time(model, gpu, launch)
        print(f"  {gpu:8s}  mojo {portable.kernel_time_ms * 1e3:7.1f} us "
              f"({portable.achieved_bandwidth_gbs:6.0f} GB/s)   "
              f"{baseline.backend_name} {baseline.kernel_time_ms * 1e3:7.1f} us "
              f"({baseline.achieved_bandwidth_gbs:6.0f} GB/s)")

    # 3. The unified Workload API: every science kernel of the paper is one
    #    registry entry away, behind the same request/result schema.
    print(f"\nregistered workloads: {', '.join(list_workloads())}")
    stencil = get_workload("stencil")
    request = stencil.make_request(gpu="h100", backend="mojo",
                                   params={"L": 256}, verify=True)
    result = stencil.run(request)
    err = result.verification.max_rel_error
    print(f"bench {result.workload} L=256 on {request.gpu}/{request.backend}: "
          f"{result.primary_value:,.0f} {stencil.primary_unit} "
          f"(verified={result.verification.passed}, max rel error "
          f"{'n/a' if err is None else format(err, '.1e')})")

    # 4. Autotuning: search the launch space once (candidates pruned by the
    #    occupancy/roofline models, the rest measured under a budget), then
    #    let tune="search"/"cached" requests start from the stored winner.
    #    An in-memory database keeps the example from writing .repro_tune/;
    #    the CLI equivalent (`python -m repro tune stencil --param L=64`)
    #    persists winners across processes.
    from repro.tuning import Tuner, TuningDB

    tune_request = stencil.make_request(gpu="h100", backend="mojo",
                                        params={"L": 64}, verify=False)
    outcome = Tuner(stencil, tune_request, db=TuningDB(disk_dir=None),
                    budget=16).search()
    best = outcome.best
    print(f"\ntuned stencil L=64: {best.config.label()} — "
          f"{best.measured_ms:.4f} ms vs untuned "
          f"{outcome.baseline.measured_ms:.4f} ms "
          f"({outcome.speedup:.2f}x, {len(outcome.prune.pruned)} of "
          f"{outcome.prune.space_size} candidates pruned unmeasured)")


if __name__ == "__main__":
    main()
