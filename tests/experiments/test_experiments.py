"""Integration tests: every paper table/figure experiment runs and passes
its shape checks against the paper's reported results."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, list_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(list_experiments()) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "table2", "table3", "table4", "table5",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_modules_expose_metadata(self):
        for key, module in EXPERIMENTS.items():
            assert module.EXPERIMENT_ID == key
            assert isinstance(module.DESCRIPTION, str) and module.DESCRIPTION


class TestFigureExperiments:
    def test_fig2_roofline(self):
        result = run_experiment("fig2")
        assert result.all_passed
        assert len(result.tables[0]) == 4

    def test_fig3_stencil(self):
        result = run_experiment("fig3")
        assert result.all_passed
        effs = result.tables[0].column("efficiency")
        assert all(0.5 < e <= 1.2 for e in effs)

    def test_fig4_babelstream(self):
        result = run_experiment("fig4")
        assert result.all_passed
        assert len(result.tables[0]) == 10   # 5 ops x 2 platforms

    def test_fig5_sass(self):
        result = run_experiment("fig5")
        assert result.all_passed
        assert result.extra_text              # the side-by-side listing

    def test_fig6_minibude_h100(self):
        result = run_experiment("fig6")
        assert result.all_passed
        assert len(result.tables) == 2        # wg=8 and wg=64 panels

    def test_fig7_minibude_mi300a(self):
        result = run_experiment("fig7")
        assert result.all_passed
        assert result.experiment_id == "fig7"


class TestTableExperiments:
    def test_table2(self):
        result = run_experiment("table2")
        assert result.all_passed

    def test_table3(self):
        result = run_experiment("table3")
        assert result.all_passed

    def test_table4(self):
        result = run_experiment("table4")
        assert result.all_passed
        rows = result.tables[0].rows
        assert {row["natoms"] for row in rows} == {64, 128, 256}

    def test_table5(self):
        result = run_experiment("table5")
        assert result.all_passed
        phi_rows = [r for r in result.tables[0].rows if r["configuration"] == "Φ"]
        assert len(phi_rows) == 4


class TestRendering:
    def test_results_render_to_text_and_markdown(self):
        result = run_experiment("fig5")
        assert "fig5" in result.to_text()
        assert result.to_markdown().startswith("## fig5")
        assert result.to_json()
