"""Tests for the miniBUDE workload."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.kernels.minibude import (
    BM1_NATLIG,
    BM1_NATPRO,
    BM1_NPOSES,
    Deck,
    fasten_kernel_model,
    gflops,
    make_bm1,
    make_deck,
    minibude_launch_config,
    ops_per_workitem,
    reference_energies,
    run_fasten_functional,
    run_minibude,
    total_ops,
    verify_energies,
)


class TestDeck:
    def test_bm1_dimensions(self):
        deck = make_bm1(nposes=1024)
        assert deck.natlig == BM1_NATLIG == 26
        assert deck.natpro == BM1_NATPRO == 938
        assert deck.nposes == 1024

    def test_default_bm1_pose_count(self):
        assert BM1_NPOSES == 65536

    def test_deck_reproducible(self):
        a = make_deck(natlig=4, natpro=8, ntypes=4, nposes=16, seed=3)
        b = make_deck(natlig=4, natpro=8, ntypes=4, nposes=16, seed=3)
        np.testing.assert_array_equal(a.protein, b.protein)
        np.testing.assert_array_equal(a.poses, b.poses)

    def test_deck_seed_changes_data(self):
        a = make_deck(natlig=4, natpro=8, ntypes=4, nposes=16, seed=1)
        b = make_deck(natlig=4, natpro=8, ntypes=4, nposes=16, seed=2)
        assert not np.array_equal(a.poses, b.poses)

    def test_atom_types_within_range(self):
        deck = make_deck(natlig=8, natpro=16, ntypes=5, nposes=4)
        assert deck.ligand[:, 3].max() < 5
        assert deck.protein[:, 3].min() >= 0

    def test_flattened_layouts(self):
        deck = make_deck(natlig=3, natpro=5, ntypes=4, nposes=8)
        assert deck.protein_flat().shape == (20,)
        assert deck.ligand_flat().shape == (12,)
        assert deck.forcefield_flat().shape == (16,)
        assert len(deck.transforms()) == 6
        assert deck.transforms()[0].shape == (8,)

    def test_subset(self):
        deck = make_deck(natlig=3, natpro=5, ntypes=4, nposes=32)
        sub = deck.subset(8)
        assert sub.nposes == 8
        np.testing.assert_array_equal(sub.poses, deck.poses[:, :8])

    def test_subset_invalid(self):
        deck = make_deck(natlig=3, natpro=5, ntypes=4, nposes=8)
        with pytest.raises(ConfigurationError):
            deck.subset(100)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            Deck(protein=np.zeros((4, 3)), ligand=np.zeros((4, 4)),
                 forcefield=np.zeros((2, 4)), poses=np.zeros((6, 4)))
        with pytest.raises(ConfigurationError):
            make_deck(natlig=0, natpro=8, ntypes=4, nposes=4)


class TestEnergyMetric:
    def test_eq3_ops_per_workitem(self):
        # direct transcription of Eq. 3
        ppwi, natlig, natpro = 4, 26, 938
        expected = 28 * ppwi + natlig * (2 + 18 * ppwi + natpro * (10 + 30 * ppwi))
        assert ops_per_workitem(ppwi, natlig, natpro) == expected

    def test_total_ops_scales_with_poses(self):
        assert total_ops(2, 26, 938, 1024) == pytest.approx(
            ops_per_workitem(2, 26, 938) * 512)

    def test_gflops(self):
        ops = total_ops(1, 26, 938, 65536)
        assert gflops(1, 26, 938, 65536, 1.0) == pytest.approx(ops * 1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ops_per_workitem(0, 26, 938)
        with pytest.raises(ConfigurationError):
            gflops(1, 26, 938, 65536, 0.0)


class TestDeviceKernelVsReference:
    def test_small_deck_matches_reference(self):
        deck = make_deck(natlig=6, natpro=20, ntypes=8, nposes=32, seed=11)
        energies, err = run_fasten_functional(deck, ppwi=2, wgsize=8)
        assert err < 2e-3
        assert energies.shape == (32,)
        assert np.any(energies != 0.0)

    def test_ppwi_does_not_change_energies(self):
        deck = make_deck(natlig=4, natpro=12, ntypes=6, nposes=16, seed=5)
        e1, _ = run_fasten_functional(deck, ppwi=1, wgsize=4)
        e2, _ = run_fasten_functional(deck, ppwi=4, wgsize=4)
        np.testing.assert_allclose(e1, e2, rtol=1e-5)

    def test_reference_energies_deterministic(self):
        deck = make_deck(natlig=4, natpro=12, ntypes=6, nposes=16, seed=5)
        np.testing.assert_array_equal(reference_energies(deck),
                                      reference_energies(deck))

    def test_verify_energies_detects_corruption(self):
        deck = make_deck(natlig=4, natpro=12, ntypes=6, nposes=16, seed=5)
        energies = reference_energies(deck).copy()
        energies[3] += 100.0
        with pytest.raises(Exception):
            verify_energies(energies, deck)

    def test_reference_chunking_invariance(self):
        deck = make_deck(natlig=4, natpro=12, ntypes=6, nposes=64, seed=5)
        np.testing.assert_allclose(reference_energies(deck, pose_chunk=7),
                                   reference_energies(deck, pose_chunk=64),
                                   rtol=1e-12)


class TestLaunchAndModel:
    def test_launch_config(self):
        launch = minibude_launch_config(65536, 4, 64)
        assert launch.total_threads == 65536 // 4
        assert launch.threads_per_block == 64

    def test_launch_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            minibude_launch_config(100, 3, 8)

    def test_model_scales_with_ppwi(self):
        m1 = fasten_kernel_model(ppwi=1, natlig=26, natpro=938)
        m8 = fasten_kernel_model(ppwi=8, natlig=26, natpro=938)
        assert m8.flops > 5 * m1.flops
        assert m8.working_values > m1.working_values
        assert m8.ilp == 8

    def test_model_is_compute_heavy(self):
        m = fasten_kernel_model(ppwi=2, natlig=26, natpro=938)
        assert m.arithmetic_intensity() > 100


class TestRunner:
    def test_run_minibude_basic(self):
        res = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                           fast_math=True, verify=False)
        assert res.gflops > 0
        assert res.fast_math is True
        assert res.nposes == 65536

    def test_fast_math_improves_cuda(self):
        fm = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                          fast_math=True, verify=False)
        nofm = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                            fast_math=False, verify=False)
        assert fm.gflops > nofm.gflops

    def test_mojo_between_cuda_variants_on_h100(self):
        mojo = run_minibude(ppwi=2, wgsize=64, backend="mojo", gpu="h100", verify=False)
        fm = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                          fast_math=True, verify=False)
        nofm = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                            fast_math=False, verify=False)
        assert nofm.gflops <= mojo.gflops <= fm.gflops

    def test_mojo_below_hip_on_mi300a(self):
        mojo = run_minibude(ppwi=2, wgsize=64, backend="mojo", gpu="mi300a", verify=False)
        hip = run_minibude(ppwi=2, wgsize=64, backend="hip", gpu="mi300a",
                           fast_math=False, verify=False)
        assert mojo.gflops < hip.gflops

    def test_wg64_beats_wg8(self):
        wg8 = run_minibude(ppwi=2, wgsize=8, backend="cuda", gpu="h100",
                           fast_math=True, verify=False)
        wg64 = run_minibude(ppwi=2, wgsize=64, backend="cuda", gpu="h100",
                            fast_math=True, verify=False)
        assert wg64.gflops > wg8.gflops

    def test_throughput_rises_then_falls_with_ppwi(self):
        values = [run_minibude(ppwi=p, wgsize=64, backend="cuda", gpu="h100",
                               fast_math=True, verify=False).gflops
                  for p in (1, 8, 128)]
        assert values[1] > values[0]          # ILP gain
        assert values[2] < values[1]          # register-pressure loss

    def test_run_with_functional_verification(self):
        res = run_minibude(ppwi=2, wgsize=8, backend="mojo", gpu="h100",
                           verify=True, verify_poses=16)
        assert res.verified and res.max_rel_error < 2e-3
