"""Tests for the seven-point stencil workload."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, VerificationError
from repro.kernels.stencil import (
    StencilProblem,
    effective_bandwidth_gbs,
    effective_fetch_bytes,
    effective_write_bytes,
    laplacian_reference,
    run_stencil,
    stencil_kernel_model,
    stencil_launch_config,
    verify_laplacian,
    verify_stencil_kernel,
)


class TestStencilProblem:
    def test_shape_and_sizes(self):
        p = StencilProblem(16)
        assert p.shape == (16, 16, 16)
        assert p.num_cells == 4096
        assert p.num_interior == 14 ** 3

    def test_spacing(self):
        p = StencilProblem(11, extent=1.0)
        assert p.spacing[0] == pytest.approx(0.1)

    def test_inverse_spacing(self):
        p = StencilProblem(11, extent=1.0)
        invhx2, invhy2, invhz2, invhxyz2 = p.inverse_spacing_squared
        assert invhx2 == pytest.approx(100.0)
        assert invhxyz2 == pytest.approx(-600.0)

    def test_initial_field_quadratic(self):
        p = StencilProblem(8)
        u = p.initial_field()
        h = p.spacing[0]
        assert u[0, 0, 0] == 0.0
        assert u[1, 2, 3] == pytest.approx((1 * h) ** 2 + (2 * h) ** 2 + (3 * h) ** 2,
                                           rel=1e-6)

    def test_precision_dtype(self):
        assert StencilProblem(8, "float32").dtype.name == "float32"

    def test_memory_footprint(self):
        p = StencilProblem(16, "float64")
        assert p.memory_footprint_bytes() == 2 * 4096 * 8

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            StencilProblem(2)

    def test_integer_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            StencilProblem(8, "int32")


class TestReference:
    def test_quadratic_field_gives_constant_laplacian(self):
        p = StencilProblem(12)
        u = p.initial_field()
        f = laplacian_reference(u, *p.inverse_spacing_squared)
        interior = f[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(interior, 6.0, rtol=1e-7)

    def test_boundaries_untouched(self):
        p = StencilProblem(8)
        f = laplacian_reference(p.initial_field(), *p.inverse_spacing_squared)
        assert np.all(f[0, :, :] == 0.0) and np.all(f[:, :, -1] == 0.0)

    def test_verify_passes_on_reference(self):
        p = StencilProblem(8)
        u = p.initial_field()
        f = laplacian_reference(u, *p.inverse_spacing_squared)
        assert verify_laplacian(f, u, *p.inverse_spacing_squared) == 0.0

    def test_verify_detects_corruption(self):
        p = StencilProblem(8)
        u = p.initial_field()
        f = laplacian_reference(u, *p.inverse_spacing_squared)
        f[4, 4, 4] += 1.0
        with pytest.raises(VerificationError):
            verify_laplacian(f, u, *p.inverse_spacing_squared)

    def test_rank_check(self):
        with pytest.raises(VerificationError):
            laplacian_reference(np.zeros((4, 4)), 1, 1, 1, -6)


class TestDeviceKernel:
    def test_matches_reference_float64(self):
        err = verify_stencil_kernel(L=10, precision="float64")
        assert err < 1e-12

    def test_matches_reference_float32(self):
        err = verify_stencil_kernel(L=10, precision="float32")
        assert err < 1e-5

    def test_non_cubic_block_shape(self):
        err = verify_stencil_kernel(L=12, block_shape=(4, 2, 2))
        assert err < 1e-12


class TestMetrics:
    def test_eq1_fetch_bytes(self):
        # (L^3 - 8 - 12(L-2)) * sizeof
        assert effective_fetch_bytes(512, "float64") == (512 ** 3 - 8 - 12 * 510) * 8

    def test_eq1_write_bytes(self):
        assert effective_write_bytes(512, "float32") == 510 ** 3 * 4

    def test_bandwidth_from_time(self):
        total = effective_fetch_bytes(128, "float64") + effective_write_bytes(128, "float64")
        # bytes / 1 ms, expressed in GB/s
        assert effective_bandwidth_gbs(128, "float64", 1e-3) == pytest.approx(total / 1e6)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            effective_fetch_bytes(2, "float64")
        with pytest.raises(ConfigurationError):
            effective_bandwidth_gbs(128, "float64", 0.0)

    def test_kernel_model_characteristics(self):
        model = stencil_kernel_model(L=512, precision="float64")
        assert model.loads_global == 7
        assert model.stores_global == 1
        assert model.memory_pattern == "stencil3d"
        assert 0 < model.active_fraction <= 1

    def test_launch_config_covers_domain(self):
        launch = stencil_launch_config(512, (512, 1, 1))
        assert launch.grid_dim.as_tuple() == (1, 512, 512)
        assert launch.total_threads >= 512 ** 3


class TestRunner:
    def test_run_produces_sensible_bandwidth(self):
        res = run_stencil(L=512, backend="cuda", gpu="h100", iterations=5,
                          verify=False)
        assert 500 < res.bandwidth_gbs < 3900
        assert res.kernel_time_ms > 0
        assert len(res.samples_gbs) == 4

    def test_run_with_verification(self):
        res = run_stencil(L=512, backend="mojo", gpu="h100", iterations=3,
                          verify=True)
        assert res.verified and res.max_rel_error < 1e-10

    def test_mojo_slower_than_cuda_on_h100(self):
        mojo = run_stencil(L=512, backend="mojo", gpu="h100", verify=False, iterations=3)
        cuda = run_stencil(L=512, backend="cuda", gpu="h100", verify=False, iterations=3)
        ratio = mojo.bandwidth_gbs / cuda.bandwidth_gbs
        assert 0.80 < ratio < 0.95           # paper: ~87%

    def test_mojo_matches_hip_on_mi300a(self):
        mojo = run_stencil(L=512, backend="mojo", gpu="mi300a", verify=False, iterations=3)
        hip = run_stencil(L=512, backend="hip", gpu="mi300a", verify=False, iterations=3)
        assert mojo.bandwidth_gbs == pytest.approx(hip.bandwidth_gbs, rel=0.05)

    def test_samples_are_reproducible(self):
        a = run_stencil(L=512, backend="mojo", gpu="h100", verify=False,
                        iterations=5, seed=1)
        b = run_stencil(L=512, backend="mojo", gpu="h100", verify=False,
                        iterations=5, seed=1)
        assert a.samples_gbs == b.samples_gbs

    def test_fp32_has_higher_bandwidth_than_fp64_time(self):
        fp32 = run_stencil(L=512, precision="float32", backend="cuda", gpu="h100",
                           verify=False, iterations=3)
        fp64 = run_stencil(L=512, precision="float64", backend="cuda", gpu="h100",
                           verify=False, iterations=3)
        # Same cell count, half the bytes: FP32 must be faster in time.
        assert fp32.kernel_time_ms < fp64.kernel_time_ms
