"""Tests for the BabelStream workload."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, VerificationError
from repro.kernels.babelstream import (
    BABELSTREAM_OPS,
    SCALAR,
    START_A,
    START_B,
    START_C,
    BabelStreamArrays,
    BabelStreamBenchmark,
    arrays_moved,
    babelstream_kernel_model,
    expected_values,
    operation_bandwidth_gbs,
    operation_bytes,
    run_babelstream,
    run_babelstream_functional,
    verify_arrays,
    verify_dot,
)


class TestHostReference:
    def test_initial_values(self):
        arrays = BabelStreamArrays(100)
        assert np.all(arrays.a == START_A)
        assert np.all(arrays.b == START_B)
        assert np.all(arrays.c == START_C)

    def test_operations_semantics(self):
        arrays = BabelStreamArrays(10)
        arrays.copy()
        assert np.all(arrays.c == START_A)
        arrays.mul()
        assert np.allclose(arrays.b, SCALAR * START_A)
        arrays.add()
        assert np.allclose(arrays.c, arrays.a + arrays.b)
        arrays.triad()
        assert np.allclose(arrays.a, arrays.b + SCALAR * arrays.c)

    def test_dot(self):
        arrays = BabelStreamArrays(10)
        assert arrays.dot() == pytest.approx(10 * START_A * START_B)

    def test_scalar_replay_matches_arrays(self):
        arrays = BabelStreamArrays(32)
        for _ in range(3):
            arrays.run_iteration()
        errors = verify_arrays(arrays, 3)
        assert max(errors.values()) < 1e-12

    def test_verify_detects_mismatch(self):
        arrays = BabelStreamArrays(32)
        arrays.run_iteration()
        arrays.a[5] += 1.0
        with pytest.raises(VerificationError):
            verify_arrays(arrays, 1)

    def test_verify_dot_detects_mismatch(self):
        arrays = BabelStreamArrays(16)
        with pytest.raises(VerificationError):
            verify_dot(arrays.dot() * 2.0, arrays)

    def test_expected_values_iteration_growth(self):
        a1, _, _ = expected_values(1)
        a5, _, _ = expected_values(5)
        assert a1 != a5


class TestDeviceKernels:
    def test_functional_run_verifies(self):
        errors = run_babelstream_functional(n=256, tb_size=16, dot_blocks=2,
                                            num_iterations=2)
        assert max(errors.values()) < 1e-10

    def test_functional_run_float32(self):
        errors = run_babelstream_functional(n=128, precision="float32",
                                            tb_size=16, dot_blocks=2)
        assert max(errors.values()) < 1e-5

    def test_functional_run_on_amd(self):
        errors = run_babelstream_functional(n=128, tb_size=16, dot_blocks=2,
                                            gpu="mi300a")
        assert max(errors.values()) < 1e-10


class TestMetrics:
    def test_arrays_moved_per_eq2(self):
        assert arrays_moved("copy") == 2
        assert arrays_moved("mul") == 2
        assert arrays_moved("add") == 3
        assert arrays_moved("triad") == 3
        assert arrays_moved("dot") == 2

    def test_operation_bytes(self):
        assert operation_bytes("triad", 1000, "float64") == 3 * 1000 * 8

    def test_bandwidth(self):
        assert operation_bandwidth_gbs("copy", 10 ** 9, "float32", 1.0) == pytest.approx(8.0)

    def test_unknown_operation(self):
        with pytest.raises(ConfigurationError):
            arrays_moved("fma")

    def test_invalid_time(self):
        with pytest.raises(ConfigurationError):
            operation_bandwidth_gbs("copy", 100, "float64", 0.0)

    def test_kernel_models(self):
        copy = babelstream_kernel_model("copy", n=1024)
        add = babelstream_kernel_model("add", n=1024)
        dot = babelstream_kernel_model("dot", n=1024, elements_per_thread=8,
                                       tb_size=256)
        assert copy.loads_global == 1 and copy.stores_global == 1
        assert add.loads_global == 2
        assert dot.uses_shared and dot.barriers > 0
        assert dot.shared_bytes_per_block == 256 * 8

    def test_unknown_model_op(self):
        with pytest.raises(ValueError):
            babelstream_kernel_model("saxpy", n=10)


class TestBenchmark:
    def test_run_reports_all_operations(self):
        res = run_babelstream(backend="cuda", gpu="h100", num_times=3, verify=False)
        assert set(res.bandwidths_gbs) == set(BABELSTREAM_OPS)
        assert all(v > 0 for v in res.bandwidths_gbs.values())

    def test_bandwidths_below_peak(self):
        res = run_babelstream(backend="cuda", gpu="h100", num_times=3, verify=False)
        assert all(v <= 3900 for v in res.bandwidths_gbs.values())

    def test_mojo_beats_cuda_on_streaming_ops(self):
        mojo = run_babelstream(backend="mojo", gpu="h100", num_times=3, verify=False)
        cuda = run_babelstream(backend="cuda", gpu="h100", num_times=3, verify=False)
        for op in ("copy", "mul", "add", "triad"):
            assert mojo.bandwidths_gbs[op] >= cuda.bandwidths_gbs[op]

    def test_mojo_loses_dot_on_h100(self):
        mojo = run_babelstream(backend="mojo", gpu="h100", num_times=3, verify=False)
        cuda = run_babelstream(backend="cuda", gpu="h100", num_times=3, verify=False)
        ratio = mojo.bandwidths_gbs["dot"] / cuda.bandwidths_gbs["dot"]
        assert 0.70 < ratio < 0.88           # paper: 0.78

    def test_mojo_matches_hip_on_mi300a(self):
        mojo = run_babelstream(backend="mojo", gpu="mi300a", num_times=3, verify=False)
        hip = run_babelstream(backend="hip", gpu="mi300a", num_times=3, verify=False)
        for op in BABELSTREAM_OPS:
            assert mojo.bandwidths_gbs[op] == pytest.approx(hip.bandwidths_gbs[op],
                                                            rel=0.06)

    def test_add_and_triad_move_more_bytes_than_copy(self):
        res = run_babelstream(backend="cuda", gpu="h100", num_times=3, verify=False)
        # add/triad move 3 arrays so their kernel time is longer than copy's
        assert res.kernel_times_ms["add"] > res.kernel_times_ms["copy"]
        assert res.kernel_times_ms["triad"] > res.kernel_times_ms["copy"]

    def test_with_verification(self):
        res = run_babelstream(backend="mojo", gpu="h100", num_times=3, verify=True)
        assert res.verified
        assert max(res.verification_errors.values()) < 1e-10

    def test_benchmark_launch_configs(self):
        bench = BabelStreamBenchmark(backend="cuda", gpu="h100")
        copy_launch = bench.launch_for("copy")
        dot_launch = bench.launch_for("dot")
        assert copy_launch.total_threads >= bench.n
        assert dot_launch.num_blocks == 4 * 132
