"""Tests for the conjugate-gradient composition of BabelStream primitives."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, VerificationError
from repro.kernels.babelstream.conjugate_gradient import (
    CGResult,
    conjugate_gradient,
    estimate_cg_iteration_time,
    poisson_operator,
)


class TestPoissonOperator:
    def test_symmetry(self, rng):
        L = 6
        apply = poisson_operator(L)
        u = rng.normal(size=L ** 3)
        v = rng.normal(size=L ** 3)
        assert np.dot(v, apply(u)) == pytest.approx(np.dot(u, apply(v)), rel=1e-10)

    def test_positive_definite_on_interior(self, rng):
        L = 6
        apply = poisson_operator(L)
        u = np.zeros((L, L, L))
        u[1:-1, 1:-1, 1:-1] = rng.normal(size=(L - 2, L - 2, L - 2))
        u = u.reshape(-1)
        assert np.dot(u, apply(u)) > 0

    def test_constant_interior_field(self):
        L = 5
        apply = poisson_operator(L)
        u = np.zeros((L, L, L))
        u[1:-1, 1:-1, 1:-1] = 1.0
        out = apply(u.reshape(-1)).reshape(L, L, L)
        # the very centre sees six identical neighbours -> zero
        assert out[2, 2, 2] == pytest.approx(0.0)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_operator(2)


class TestConjugateGradient:
    def _solve(self, L=8, tol=1e-9):
        apply = poisson_operator(L)
        rng = np.random.default_rng(3)
        x_true = np.zeros((L, L, L))
        x_true[1:-1, 1:-1, 1:-1] = rng.normal(size=(L - 2, L - 2, L - 2))
        x_true = x_true.reshape(-1)
        rhs = apply(x_true)
        result = conjugate_gradient(apply, rhs, tolerance=tol, max_iterations=2000)
        return result, x_true

    def test_converges_to_true_solution(self):
        result, x_true = self._solve()
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_residual_history_decreases_overall(self):
        result, _ = self._solve()
        assert result.residual_history[-1] < result.residual_history[0]
        assert result.residual_norm <= 1e-9

    def test_operation_counts_recorded(self):
        result, _ = self._solve()
        counts = result.operation_counts
        assert counts["operator"] == result.iterations + 1
        assert counts["dot"] == 2 * result.iterations + 1
        assert counts["triad"] >= 3 * result.iterations

    def test_max_iterations_respected(self):
        apply = poisson_operator(8)
        rng = np.random.default_rng(7)
        interior = np.zeros((8, 8, 8))
        interior[1:-1, 1:-1, 1:-1] = rng.normal(size=(6, 6, 6))
        rhs = apply(interior.reshape(-1))
        result = conjugate_gradient(apply, rhs, tolerance=1e-16, max_iterations=3)
        assert result.iterations == 3 and not result.converged

    def test_zero_rhs_converges_immediately(self):
        apply = poisson_operator(6)
        result = conjugate_gradient(apply, np.zeros(6 ** 3))
        assert result.converged and result.iterations == 0

    def test_indefinite_operator_rejected(self):
        result = lambda: conjugate_gradient(lambda v: -v, np.ones(16))
        with pytest.raises(VerificationError):
            result()

    def test_shape_mismatch_rejected(self):
        apply = poisson_operator(6)
        with pytest.raises(ConfigurationError):
            conjugate_gradient(apply, np.ones(6 ** 3), x0=np.ones(10))


class TestIterationCostModel:
    def test_breakdown_components(self):
        breakdown = estimate_cg_iteration_time(256, backend="cuda", gpu="h100")
        assert set(breakdown) == {"stencil_ms", "triad_ms", "dot_ms", "total_ms"}
        assert breakdown["total_ms"] == pytest.approx(
            breakdown["stencil_ms"] + breakdown["triad_ms"] + breakdown["dot_ms"])
        assert breakdown["total_ms"] > 0

    def test_portability_shape_matches_memory_bound_story(self):
        """CG is memory-bound, so Mojo ~ parity on MI300A and ~0.9x on H100."""
        mojo_h = estimate_cg_iteration_time(256, backend="mojo", gpu="h100")["total_ms"]
        cuda_h = estimate_cg_iteration_time(256, backend="cuda", gpu="h100")["total_ms"]
        mojo_a = estimate_cg_iteration_time(256, backend="mojo", gpu="mi300a")["total_ms"]
        hip_a = estimate_cg_iteration_time(256, backend="hip", gpu="mi300a")["total_ms"]
        assert 1.0 <= mojo_h / cuda_h < 1.35
        assert mojo_a == pytest.approx(hip_a, rel=0.1)
