"""Tests for the Hartree-Fock workload."""

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, VerificationError
from repro.kernels.hartreefock import (
    SCHWARZ_TOLERANCE,
    boys_f0,
    boys_f0_array,
    compute_schwarz,
    contracted_eri,
    contracted_eri_batch,
    decode_pair,
    decode_pair_array,
    eri_tensor,
    fock_direct_reference,
    fock_quadruple_reference,
    hartree_fock_kernel_model,
    make_helium_system,
    pair_schwarz,
    run_hartreefock,
    run_hartreefock_functional,
    surviving_quadruple_fraction,
    symmetrize,
    triangular_pairs,
    verify_fock,
)
from repro.kernels.hartreefock.eri import schwarz_identical_basis


class TestBasis:
    def test_system_shapes(self):
        s = make_helium_system(8, 3)
        assert s.geometry.shape == (8, 3)
        assert s.xpnt.shape == (3,)
        assert s.dens.shape == (8, 8)

    def test_ngauss6(self):
        assert make_helium_system(4, 6).ngauss == 6

    def test_invalid_ngauss(self):
        with pytest.raises(ConfigurationError):
            make_helium_system(4, 5)

    def test_invalid_natoms(self):
        with pytest.raises(ConfigurationError):
            make_helium_system(0, 3)

    def test_density_symmetric_with_occupied_diagonal(self):
        s = make_helium_system(6, 3)
        np.testing.assert_allclose(s.dens, s.dens.T)
        np.testing.assert_allclose(np.diag(s.dens), 2.0)

    def test_pair_and_quad_counts(self):
        s = make_helium_system(8, 3)
        assert s.npairs == 36
        assert s.nquads == 36 * 37 // 2

    def test_geometry_reproducible(self):
        a = make_helium_system(8, 3, seed=1)
        b = make_helium_system(8, 3, seed=1)
        np.testing.assert_array_equal(a.geometry, b.geometry)

    def test_spacing_controls_extent(self):
        near = make_helium_system(8, 3, spacing=2.0)
        far = make_helium_system(8, 3, spacing=6.0)
        assert far.pair_distances_sq().max() > near.pair_distances_sq().max()


class TestTriangularIndexing:
    def test_decode_roundtrip(self):
        idx = 0
        for row in range(25):
            for col in range(row + 1):
                assert decode_pair(idx) == (row, col)
                idx += 1

    def test_triangular_pairs_ordering_matches_decode(self):
        i_idx, j_idx = triangular_pairs(10)
        for ij in range(len(i_idx)):
            assert decode_pair(ij) == (i_idx[ij], j_idx[ij])

    def test_large_indices(self):
        # triangle boundaries are where naive float decoding goes wrong
        for row in (1000, 4095, 65535):
            base = row * (row + 1) // 2
            assert decode_pair(base) == (row, 0)
            assert decode_pair(base + row) == (row, row)


class TestBoysFunction:
    def test_at_zero(self):
        assert boys_f0(0.0) == pytest.approx(1.0)

    def test_small_argument_expansion(self):
        assert boys_f0(1e-14) == pytest.approx(1.0, abs=1e-10)

    def test_large_argument_decay(self):
        assert boys_f0(100.0) == pytest.approx(0.5 * math.sqrt(math.pi / 100.0),
                                               rel=1e-10)

    def test_monotonically_decreasing(self):
        values = [boys_f0(t) for t in (0.0, 0.1, 1.0, 10.0, 100.0)]
        assert values == sorted(values, reverse=True)

    def test_array_matches_scalar(self):
        ts = np.array([0.0, 1e-13, 0.5, 3.0, 50.0])
        np.testing.assert_allclose(boys_f0_array(ts),
                                   [boys_f0(t) for t in ts], rtol=1e-6)


class TestERI:
    def _system(self, natoms=2):
        return make_helium_system(natoms, 3, spacing=2.0)

    def test_same_centre_positive(self):
        s = self._system()
        val = contracted_eri(s.geometry[0], s.geometry[0], s.geometry[0],
                             s.geometry[0], s.xpnt, s.coef)
        assert val > 0

    def test_decay_with_distance(self):
        s = make_helium_system(4, 3, spacing=4.0)
        near = contracted_eri(s.geometry[0], s.geometry[0], s.geometry[0],
                              s.geometry[0], s.xpnt, s.coef)
        far = contracted_eri(s.geometry[0], s.geometry[3], s.geometry[0],
                             s.geometry[3], s.xpnt, s.coef)
        assert far < near

    def test_permutation_symmetries(self):
        s = make_helium_system(4, 3, spacing=2.0)
        g = s.geometry
        base = contracted_eri(g[0], g[1], g[2], g[3], s.xpnt, s.coef)
        assert contracted_eri(g[1], g[0], g[2], g[3], s.xpnt, s.coef) == pytest.approx(base, rel=1e-12)
        assert contracted_eri(g[0], g[1], g[3], g[2], s.xpnt, s.coef) == pytest.approx(base, rel=1e-12)
        assert contracted_eri(g[2], g[3], g[0], g[1], s.xpnt, s.coef) == pytest.approx(base, rel=1e-12)

    def test_schwarz_inequality(self):
        """|(ij|kl)| <= sqrt((ij|ij)) * sqrt((kl|kl)) for sampled quadruples."""
        s = make_helium_system(5, 3, spacing=2.5)
        g = s.geometry
        for (i, j, k, l) in ((0, 1, 2, 3), (0, 0, 1, 2), (1, 3, 2, 4)):
            lhs = abs(contracted_eri(g[i], g[j], g[k], g[l], s.xpnt, s.coef))
            sij = math.sqrt(contracted_eri(g[i], g[j], g[i], g[j], s.xpnt, s.coef))
            skl = math.sqrt(contracted_eri(g[k], g[l], g[k], g[l], s.xpnt, s.coef))
            assert lhs <= sij * skl * (1 + 1e-10)

    def test_pair_schwarz_matches_direct(self):
        s = make_helium_system(4, 3, spacing=2.5)
        pair_i, pair_j = triangular_pairs(4)
        bounds = pair_schwarz(s.geometry, pair_i, pair_j, s.xpnt, s.coef)
        for ij in range(len(pair_i)):
            i, j = pair_i[ij], pair_j[ij]
            direct = math.sqrt(contracted_eri(s.geometry[i], s.geometry[j],
                                              s.geometry[i], s.geometry[j],
                                              s.xpnt, s.coef))
            assert bounds[ij] == pytest.approx(direct, rel=1e-6)

    def test_interpolated_schwarz_matches_exact(self):
        s = make_helium_system(6, 3, spacing=2.5)
        exact = compute_schwarz(s, approximate=False)
        interp = schwarz_identical_basis(s.pair_distances_sq(), s.xpnt, s.coef)
        np.testing.assert_allclose(interp, exact, rtol=5e-3, atol=1e-12)


class TestFockBuild:
    def test_quadruple_vs_direct_formulation(self):
        s = make_helium_system(4, 3, spacing=2.5)
        quad = symmetrize(fock_quadruple_reference(s))
        direct = fock_direct_reference(s)
        assert verify_fock(quad, direct, rtol=1e-10) < 1e-10

    def test_fock_symmetric(self):
        s = make_helium_system(3, 3, spacing=2.5)
        fock = symmetrize(fock_quadruple_reference(s))
        np.testing.assert_allclose(fock, fock.T)

    def test_eri_tensor_symmetry(self):
        s = make_helium_system(3, 3, spacing=2.5)
        eri = eri_tensor(s)
        np.testing.assert_allclose(eri, eri.transpose(1, 0, 2, 3), rtol=1e-12)
        np.testing.assert_allclose(eri, eri.transpose(2, 3, 0, 1), rtol=1e-12)

    def test_screening_changes_little_for_tight_tolerance(self):
        s = make_helium_system(4, 3, spacing=2.5)
        schwarz = compute_schwarz(s)
        unscreened = fock_quadruple_reference(s)
        screened = fock_quadruple_reference(s, schwarz=schwarz,
                                            schwarz_tol=SCHWARZ_TOLERANCE)
        assert np.max(np.abs(unscreened - screened)) < 1e-6

    def test_verify_fock_detects_mismatch(self):
        s = make_helium_system(3, 3, spacing=2.5)
        fock = fock_quadruple_reference(s)
        with pytest.raises(VerificationError):
            verify_fock(fock + 0.5, fock)


class TestDeviceKernel:
    def test_device_kernel_matches_host_reference(self):
        fock, err = run_hartreefock_functional(4, 3)
        assert err < 1e-10
        assert fock.shape == (4, 4)

    def test_device_kernel_ngauss6(self):
        fock, err = run_hartreefock_functional(3, 6)
        assert err < 1e-10

    def test_device_kernel_with_screening(self):
        fock, err = run_hartreefock_functional(4, 3, schwarz_tol=SCHWARZ_TOLERANCE)
        assert err < 1e-10


class TestScreeningStatistics:
    def test_fraction_bounds(self):
        s = make_helium_system(32, 3)
        frac = surviving_quadruple_fraction(compute_schwarz(s))
        assert 0.0 < frac <= 1.0

    def test_zero_tolerance_keeps_everything(self):
        s = make_helium_system(16, 3)
        assert surviving_quadruple_fraction(compute_schwarz(s), tol=0.0) == 1.0

    def test_fraction_decreases_with_system_size(self):
        f32 = surviving_quadruple_fraction(compute_schwarz(make_helium_system(32, 3)))
        f64 = surviving_quadruple_fraction(compute_schwarz(make_helium_system(64, 3)))
        assert f64 < f32

    def test_fraction_decreases_with_tolerance(self):
        schwarz = compute_schwarz(make_helium_system(32, 3))
        loose = surviving_quadruple_fraction(schwarz, tol=1e-12)
        tight = surviving_quadruple_fraction(schwarz, tol=1e-6)
        assert tight < loose

    def test_brute_force_agreement_small_system(self):
        s = make_helium_system(6, 3)
        schwarz = compute_schwarz(s)
        frac = surviving_quadruple_fraction(schwarz, tol=1e-9)
        count = 0
        for ijkl in range(s.nquads):
            ij, kl = decode_pair(ijkl)
            if schwarz[ij] * schwarz[kl] >= 1e-9:
                count += 1
        assert frac == pytest.approx(count / s.nquads)


class TestRunner:
    def test_model_scales_with_ngauss(self):
        m3 = hartree_fock_kernel_model(natoms=64, ngauss=3, surviving_fraction=0.5)
        m6 = hartree_fock_kernel_model(natoms=64, ngauss=6, surviving_fraction=0.5)
        assert m6.flops > 10 * m3.flops
        assert m6.atomics == m3.atomics == 3.0

    def test_table4_shape_h100(self):
        mojo = run_hartreefock(natoms=64, ngauss=3, backend="mojo", gpu="h100",
                               verify=False)
        cuda = run_hartreefock(natoms=64, ngauss=3, backend="cuda", gpu="h100",
                               verify=False)
        speedup = cuda.kernel_time_ms / mojo.kernel_time_ms
        assert 1.5 < speedup < 3.5            # paper: ~2.5x

    def test_table4_shape_mi300a(self):
        mojo = run_hartreefock(natoms=64, ngauss=3, backend="mojo", gpu="mi300a",
                               verify=False)
        hip = run_hartreefock(natoms=64, ngauss=3, backend="hip", gpu="mi300a",
                              verify=False)
        assert mojo.kernel_time_ms > 20 * hip.kernel_time_ms

    def test_time_grows_with_system_size(self):
        t64 = run_hartreefock(natoms=64, ngauss=3, backend="cuda", gpu="h100",
                              verify=False).kernel_time_ms
        t128 = run_hartreefock(natoms=128, ngauss=3, backend="cuda", gpu="h100",
                               verify=False).kernel_time_ms
        assert t128 > 3 * t64

    def test_runner_with_verification(self):
        res = run_hartreefock(natoms=64, ngauss=3, backend="cuda", gpu="h100",
                              verify=True, verify_natoms=3)
        assert res.verified and res.max_rel_error < 1e-10


class TestBatchedERI:
    """The vectorised ERI engine against its scalar bit-level oracle."""

    @pytest.mark.parametrize("ngauss", [3, 6])
    def test_batch_matches_scalar_on_random_geometries(self, ngauss):
        s = make_helium_system(2, ngauss)
        rng = np.random.default_rng(20260729 + ngauss)
        n = 48
        pos = [rng.normal(scale=2.5, size=(n, 3)) for _ in range(4)]
        batch = contracted_eri_batch(*pos, s.xpnt, s.coef)
        assert batch.shape == (n,)
        for q in range(n):
            scalar = contracted_eri(pos[0][q], pos[1][q], pos[2][q], pos[3][q],
                                    s.xpnt, s.coef)
            assert batch[q] == pytest.approx(scalar, rel=1e-12, abs=1e-18)

    def test_single_quadruple_broadcast(self):
        s = make_helium_system(4, 3, spacing=2.0)
        g = s.geometry
        batch = contracted_eri_batch(g[0], g[1], g[2], g[3], s.xpnt, s.coef)
        scalar = contracted_eri(g[0], g[1], g[2], g[3], s.xpnt, s.coef)
        assert batch.shape == (1,)
        assert batch[0] == pytest.approx(scalar, rel=1e-12)

    def test_decode_pair_array_matches_scalar(self):
        idx = np.concatenate([
            np.arange(0, 400),
            # triangle boundaries at large rows (naive float decode territory)
            np.array([r * (r + 1) // 2 + off
                      for r in (1000, 4095, 65535) for off in (0, 1, r - 1, r)]),
        ])
        rows, cols = decode_pair_array(idx)
        for pos, ij in enumerate(idx):
            assert (rows[pos], cols[pos]) == decode_pair(int(ij))

    def test_fock_reference_independent_of_chunk(self):
        s = make_helium_system(5, 3, spacing=2.5)
        full = fock_quadruple_reference(s)
        tiny_chunks = fock_quadruple_reference(s, chunk=17)
        np.testing.assert_allclose(tiny_chunks, full, rtol=1e-13, atol=0)

    def test_fock_screening_with_chunks_matches_unchunked(self):
        s = make_helium_system(5, 3, spacing=2.5)
        schwarz = compute_schwarz(s)
        a = fock_quadruple_reference(s, schwarz=schwarz,
                                     schwarz_tol=SCHWARZ_TOLERANCE, chunk=23)
        b = fock_quadruple_reference(s, schwarz=schwarz,
                                     schwarz_tol=SCHWARZ_TOLERANCE)
        np.testing.assert_allclose(a, b, rtol=1e-13, atol=0)

    def test_eri_tensor_entries_match_scalar(self):
        s = make_helium_system(3, 3, spacing=2.5)
        tensor = eri_tensor(s, chunk=11)
        g = s.geometry
        for (i, j, k, l) in ((0, 0, 0, 0), (0, 1, 2, 0), (2, 1, 0, 2)):
            scalar = contracted_eri(g[i], g[j], g[k], g[l], s.xpnt, s.coef)
            assert tensor[i, j, k, l] == pytest.approx(scalar, rel=1e-12)
