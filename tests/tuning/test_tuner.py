"""Tests for the tuner: search strategies, guards, and request integration.

Holds the ISSUE-5 acceptance guards: the tuned stencil configuration beats
the untuned default launch by at least 1.2x in the guard scenario, pruning
skips at least 25% of the candidate space without changing the winner's
score, and a second tuning invocation is a database hit that runs no search.
"""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.sweep import Sweep, sweep
from repro.tuning import Tuner, TuningDB, resolve_tuning
from repro.workloads import get_workload

#: the guarded scenario: a mid-size grid where the hardcoded (512, 1, 1)
#: launch oversubscribes the domain and wastes most of its threads
GUARD_PARAMS = {"L": 64}


def _request(**overrides):
    wl = get_workload("stencil")
    base = dict(gpu="h100", backend="mojo", params=GUARD_PARAMS, verify=False)
    base.update(overrides)
    return wl, wl.make_request(**base)


def _search(budget=16, **kwargs):
    wl, request = _request()
    kwargs.setdefault("db", TuningDB(disk_dir=None))
    return Tuner(wl, request, budget=budget, **kwargs).search()


class TestSearch:
    def test_guard_tuned_beats_untuned_default_by_1_2x(self):
        """ISSUE-5 acceptance: >= 1.2x over the untuned default launch."""
        outcome = _search()
        assert outcome.best is not None
        assert outcome.speedup >= 1.2
        assert outcome.baseline.measured_ms >= 1.2 * outcome.best.measured_ms

    def test_guard_pruning_skips_quarter_without_changing_winner(self):
        """ISSUE-5 acceptance: the model-guided pruner skips >= 25% of the
        space and the exhaustive winner's score is unchanged by it."""
        pruned = _search(budget=64, strategy="exhaustive")
        full = _search(budget=64, strategy="exhaustive", prune=False)
        assert pruned.prune.pruned_fraction >= 0.25
        assert pruned.best.measured_ms == pytest.approx(
            full.best.measured_ms, rel=1e-12)

    def test_budget_bounds_measurements(self):
        outcome = _search(budget=5)
        assert len(outcome.evaluations) <= 5

    def test_baseline_always_measured_first(self):
        outcome = _search(budget=4)
        assert outcome.evaluations[0].source == "baseline"
        assert outcome.baseline is outcome.evaluations[0]

    def test_winner_never_worse_than_baseline(self):
        outcome = _search(budget=4)
        assert outcome.best.measured_ms <= outcome.baseline.measured_ms

    def test_random_strategy_is_deterministic(self):
        a = _search(strategy="random", seed=7)
        b = _search(strategy="random", seed=7)
        assert [e.config for e in a.evaluations] == \
            [e.config for e in b.evaluations]
        assert a.best.config == b.best.config

    def test_auto_picks_exhaustive_for_small_spaces(self):
        outcome = _search(budget=64)
        assert outcome.strategy == "exhaustive"

    def test_auto_picks_random_for_large_spaces(self):
        outcome = _search(budget=8)
        assert outcome.strategy == "random"

    def test_modelled_and_measured_rankings_agree_on_direction(self):
        # The pruner's estimate is not the timing model, but on the guard
        # scenario both must agree that the default slab launch is the
        # wrong choice.
        outcome = _search(budget=64, strategy="exhaustive")
        baseline = outcome.baseline
        best = outcome.best
        assert best.modelled_ms < baseline.modelled_ms
        assert best.measured_ms < baseline.measured_ms

    def test_probe_runs_capture_replay_per_candidate(self):
        outcome = _search(budget=4)
        probed = [e for e in outcome.evaluations if e.probe is not None]
        assert probed, "stencil declares a probe; candidates must be probed"
        for e in probed:
            assert e.probe.ok
            assert e.probe.replays == 2  # capture once, replay per repeat
            assert e.probe.kernels == 1

    def test_record_persisted_and_hit_on_second_search(self):
        wl, request = _request()
        db = TuningDB(disk_dir=None)
        outcome = Tuner(wl, request, db=db, budget=8).search()
        assert outcome.record is not None
        before = db.info()["hits"]
        assert db.get(request, wl.tuning_space(request)) is not None
        assert db.info()["hits"] == before + 1

    def test_invalid_strategy_and_budget_rejected(self):
        wl, request = _request()
        with pytest.raises(ConfigurationError):
            Tuner(wl, request, strategy="annealing")
        with pytest.raises(ConfigurationError):
            Tuner(wl, request, budget=1)


class TestResolveTuning:
    def test_cached_mode_miss_runs_untuned(self):
        wl, request = _request(tune="cached")
        db = TuningDB(disk_dir=None)
        resolved, info = resolve_tuning(wl, request, db=db)
        assert info["applied"] is False and info["reason"] == "db-miss"
        assert resolved.params["block_shape"] == (512, 1, 1)

    def test_search_mode_searches_once_then_hits(self):
        wl, request = _request(tune="search")
        db = TuningDB(disk_dir=None)
        resolved, info = resolve_tuning(wl, request, db=db)
        assert info["applied"] is True and info.get("searched")
        assert resolved.params["block_shape"] != (512, 1, 1)
        # second resolution: DB hit, no search
        resolved2, info2 = resolve_tuning(wl, request, db=db)
        assert info2["applied"] is True and "searched" not in info2
        assert resolved2.params["block_shape"] == \
            resolved.params["block_shape"]

    def test_workload_without_space_opts_out(self):
        from repro.workloads.base import Workload

        class Bare(Workload):
            name = "bare"

        wl, request = _request(tune="cached")
        bare_request = request.replace(workload="bare")
        resolved, info = resolve_tuning(Bare(), bare_request)
        assert resolved is bare_request
        assert info["reason"] == "no-tuning-space"


class TestRunIntegration:
    def test_run_with_tune_search_applies_winner_and_stamps_provenance(self):
        from repro.tuning import configure_tuning_db

        configure_tuning_db(disk=False)
        try:
            wl, request = _request(tune="search")
            result = wl.run(request)
            tuning = result.provenance["tuning"]
            assert tuning["applied"] is True
            assert result.request.params["block_shape"] != (512, 1, 1)
            untuned = wl.run(request.replace(tune="off"))
            assert result.metrics["kernel_time_ms"] <= \
                untuned.metrics["kernel_time_ms"] / 1.2
        finally:
            configure_tuning_db(disk=False)  # drop records for other tests

    def test_sweep_can_sweep_tune_modes(self):
        from repro.tuning import configure_tuning_db

        configure_tuning_db(disk=False)
        try:
            s = sweep(tune=["off", "search"], L=[64])
            assert "tune" in Sweep.REQUEST_FIELDS
            results = s.run_workload("stencil", cache=False, verify=False)
            assert [r.request.tune for r in results] == ["off", "search"]
            off, tuned = results
            assert tuned.metrics["kernel_time_ms"] < \
                off.metrics["kernel_time_ms"]
            assert "tuning" in tuned.provenance
            assert "tuning" not in off.provenance
        finally:
            configure_tuning_db(disk=False)

    def test_tuned_requests_bypass_result_cache(self):
        from repro.tuning import configure_tuning_db
        from repro.workloads.cache import ResultCache, run_cached

        configure_tuning_db(disk=False)
        try:
            wl, request = _request(tune="search")
            cache = ResultCache()
            run_cached(request, cache=cache)
            run_cached(request, cache=cache)
            info = cache.info()
            assert info["hits"] == 0 and info["misses"] == 0
            assert info["size"] == 0
        finally:
            configure_tuning_db(disk=False)
