"""Functional probe behaviour, including the per-candidate deadline."""

import time

import pytest

from repro.harness.runner import MeasurementProtocol
from repro.tuning.probe import DEFAULT_PROBE_TIMEOUT_MS, run_probe
from repro.tuning.tuner import Tuner
from repro.workloads import get_workload

FAST = MeasurementProtocol(warmup=0, repeats=1)


def _request(wl, **overrides):
    fields = dict(params={"L": 20}, verify=False, protocol=FAST)
    fields.update(overrides)
    return wl.make_request(**fields)


class TestRunProbe:
    def test_probe_succeeds_within_budget(self):
        wl = get_workload("stencil")
        probe = run_probe(wl, _request(wl), repeats=2)
        assert probe is not None and probe.ok
        assert probe.replays == 2

    def test_workload_without_probe_returns_none(self):
        wl = get_workload("hartreefock")
        request = wl.make_request(verify=False, protocol=FAST)
        if wl.tuning_probe(request) is not None:
            pytest.skip("workload grew a probe; pick another")
        assert run_probe(wl, request) is None

    def test_hung_probe_is_a_failed_candidate_not_a_stall(self, monkeypatch):
        wl = get_workload("stencil")

        def hang(self, request):
            time.sleep(5.0)

        # patch the class: an instance patch would leave a shadowing bound
        # method behind on teardown (the registry workload is a singleton)
        monkeypatch.setattr(type(wl), "tuning_probe", hang)
        start = time.monotonic()
        probe = run_probe(wl, _request(wl), timeout_ms=50.0)
        elapsed = time.monotonic() - start
        assert elapsed < 2.0  # did not wait for the hung probe
        assert probe is not None and not probe.ok
        assert "deadline" in probe.error
        assert probe.makespan_ms == float("inf")

    def test_timeout_none_runs_inline(self):
        wl = get_workload("stencil")
        probe = run_probe(wl, _request(wl), timeout_ms=None)
        assert probe is not None and probe.ok


class TestTunerTimeoutWiring:
    def test_default_budget_is_threaded_through(self):
        wl = get_workload("stencil")
        tuner = Tuner(wl, _request(wl), budget=3)
        assert tuner.probe_timeout_ms == DEFAULT_PROBE_TIMEOUT_MS

    def test_timed_out_candidate_recorded_as_failed(self, monkeypatch):
        wl = get_workload("stencil")
        request = _request(wl)
        from repro.tuning.db import TuningDB

        monkeypatch.setattr(type(wl), "tuning_probe",
                            lambda self, req: time.sleep(5.0))
        tuner = Tuner(wl, request, db=TuningDB(disk_dir=None), budget=2,
                      probe_timeout_ms=50.0)
        outcome = tuner.search(persist=False)
        assert outcome.evaluations  # the search still completed
        assert all(not e.ok for e in outcome.evaluations)
        assert outcome.best is None
