"""Tests for the tuning database: keys, persistence, versioning, budgets."""

import json
import os

import pytest

import repro
from repro.harness.runner import MeasurementProtocol
from repro.tuning.db import (
    TuningDB,
    TuningRecord,
    configure_tuning_db,
    default_tuning_db,
    tuning_key,
)
from repro.tuning.space import TuningConfig
from repro.workloads import get_workload


def _request(**overrides):
    wl = get_workload("stencil")
    base = dict(gpu="h100", backend="mojo", params={"L": 64}, verify=False)
    base.update(overrides)
    return wl.make_request(**base)


def _record(**overrides):
    base = dict(
        workload="stencil", gpu="h100", backend="mojo", precision="float64",
        key_params={"L": 64},
        config=TuningConfig.make({"block_shape": (4, 4, 4)},
                                 {"fast_math": True}),
        score_ms=0.007, baseline_ms=0.020, modelled_ms=0.011,
        strategy="exhaustive", budget=16, space_size=36, pruned=12,
        measured=10,
    )
    base.update(overrides)
    return TuningRecord(**base)


class TestKey:
    def test_key_ignores_tuned_and_protocol_fields(self):
        wl = get_workload("stencil")
        space = wl.tuning_space(_request())
        base = TuningDB.key_for(_request(), space)
        # tuned knobs, protocol, verification, streams and the tune mode
        # itself do not change the problem identity
        assert TuningDB.key_for(
            _request(params={"L": 64, "block_shape": (4, 4, 4)}),
            space) == base
        assert TuningDB.key_for(_request(fast_math=True), space) == base
        assert TuningDB.key_for(
            _request(protocol=MeasurementProtocol(warmup=0, repeats=2)),
            space) == base
        assert TuningDB.key_for(_request(verify=True), space) == base
        assert TuningDB.key_for(_request(streams=4), space) == base
        assert TuningDB.key_for(_request(tune="cached"), space) == base

    def test_key_tracks_problem_fields(self):
        wl = get_workload("stencil")
        space = wl.tuning_space(_request())
        base = TuningDB.key_for(_request(), space)
        assert TuningDB.key_for(_request(gpu="mi300a", backend="hip"),
                                space) != base
        assert TuningDB.key_for(_request(backend="cuda"), space) != base
        assert TuningDB.key_for(_request(precision="float32"),
                                space) != base
        assert TuningDB.key_for(_request(params={"L": 128}), space) != base

    def test_key_folds_package_version(self, monkeypatch):
        key = tuning_key(_request())
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert tuning_key(_request()) != key

    def test_untuned_cost_fields_participate_in_key(self):
        # A space that does NOT tune fast_math measures its winner under
        # the request's fast-math lowering, so requests differing in it
        # must not share a record.  (Spaces that do tune it exclude it —
        # there the stored config overrides the field anyway.)
        assert tuning_key(_request(), tuned_fields=()) != \
            tuning_key(_request(fast_math=True), tuned_fields=())
        assert tuning_key(_request(), tuned_fields=("fast_math",)) == \
            tuning_key(_request(fast_math=True), tuned_fields=("fast_math",))


class TestRoundtrip:
    def test_memory_get_put(self):
        db = TuningDB(disk_dir=None)
        request = _request()
        assert db.get(request) is None
        db.put(request, _record())
        got = db.get(request)
        assert got is not None
        assert got.config.params["block_shape"] == (4, 4, 4)
        assert got.speedup == pytest.approx(0.020 / 0.007)
        info = db.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["disk_enabled"] is False

    def test_disk_survives_new_instance(self, tmp_path):
        db = TuningDB(disk_dir=str(tmp_path))
        request = _request()
        db.put(request, _record())
        fresh = TuningDB(disk_dir=str(tmp_path))
        got = fresh.get(request)
        assert got is not None and got.score_ms == pytest.approx(0.007)
        assert fresh.info()["disk_hits"] == 1

    def test_schema_mismatch_invalidates_disk_record(self, tmp_path):
        db = TuningDB(disk_dir=str(tmp_path))
        request = _request()
        db.put(request, _record())
        records = os.path.join(str(tmp_path), "records")
        [name] = os.listdir(records)
        path = os.path.join(records, name)
        from repro.core.diskstore import read_json_entry, write_json_entry

        payload = read_json_entry(path)
        payload["schema"] = "repro.tuning-record/v0"
        # rewrite through the store so the checksum matches: the *schema*
        # check must reject the record, not the corruption guard
        write_json_entry(path, payload, max_bytes=0)
        fresh = TuningDB(disk_dir=str(tmp_path))
        assert fresh.get(request) is None
        assert os.path.exists(path)  # foreign schema is not quarantined

    def test_record_roundtrips_through_dict(self):
        record = _record()
        again = TuningRecord.from_dict(record.as_dict())
        assert again.config == record.config
        assert again.key_params == record.key_params
        assert again.score_ms == record.score_ms

    def test_lru_eviction_in_memory(self):
        db = TuningDB(maxsize=2, disk_dir=None)
        for L in (32, 48, 64):
            db.put(_request(params={"L": L}), _record(key_params={"L": L}))
        assert db.info()["size"] == 2
        assert db.get(_request(params={"L": 32})) is None


class TestDiskBudget:
    def test_store_stays_within_byte_budget(self, tmp_path):
        # Learn one record's size, then give the store room for ~2.5 of
        # them: after five writes at most three files may remain (the
        # just-written entry is always exempt from eviction, so the store
        # can exceed the budget by at most one record).
        probe = TuningDB(disk_dir=str(tmp_path))
        probe.put(_request(params={"L": 8}), _record(key_params={"L": 8}))
        records = os.path.join(str(tmp_path), "records")
        [name] = os.listdir(records)
        size = os.path.getsize(os.path.join(records, name))

        db = TuningDB(disk_dir=str(tmp_path), max_disk_bytes=int(size * 2.5))
        for L in (16, 24, 32, 40, 48):
            db.put(_request(params={"L": L}), _record(key_params={"L": L}))
        assert len(os.listdir(records)) <= 3

    def test_zero_budget_disables_pruning(self, tmp_path):
        db = TuningDB(disk_dir=str(tmp_path), max_disk_bytes=0)
        for L in (16, 24, 32):
            db.put(_request(params={"L": L}), _record(key_params={"L": L}))
        assert len(os.listdir(os.path.join(str(tmp_path), "records"))) == 3


class TestDefaultDB:
    def test_configure_replaces_default(self, tmp_path):
        original = default_tuning_db()
        try:
            db = configure_tuning_db(disk_dir=str(tmp_path), maxsize=4)
            assert default_tuning_db() is db
            assert db.disk_dir == str(tmp_path) and db.maxsize == 4
            memory_only = configure_tuning_db(disk=False)
            assert memory_only.disk_dir is None
        finally:
            configure_tuning_db(disk=original.disk_dir is not None,
                                disk_dir=original.disk_dir,
                                maxsize=original.maxsize,
                                max_disk_bytes=original.max_disk_bytes)
