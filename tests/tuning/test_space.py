"""Tests for tuning spaces, knobs and configurations."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tuning.space import TuningConfig, TuningKnob, TuningSpace
from repro.workloads import get_workload


def _space():
    return TuningSpace((
        TuningKnob("block", ((64, 1, 1), (128, 1, 1), (256, 1, 1))),
        TuningKnob("fast_math", (False, True), kind="field"),
    ))


class TestKnob:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningKnob("k", (1, 2), kind="global")

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningKnob("k", ())

    def test_list_values_become_hashable_tuples(self):
        knob = TuningKnob("block", ([8, 4, 4], [4, 4, 4]))
        assert knob.values == ((8, 4, 4), (4, 4, 4))


class TestConfig:
    def test_hashable_and_equal_by_value(self):
        a = TuningConfig.make({"block": (64, 1, 1)}, {"fast_math": True})
        b = TuningConfig.make({"block": (64, 1, 1)}, {"fast_math": True})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_apply_merges_params_and_fields(self):
        wl = get_workload("stencil")
        request = wl.make_request(params={"L": 32}, verify=False)
        config = TuningConfig.make({"block_shape": (8, 4, 4)},
                                   {"fast_math": True})
        tuned = config.apply(request)
        assert tuned.params["block_shape"] == (8, 4, 4)
        assert tuned.params["L"] == 32  # untouched
        assert tuned.fast_math is True

    def test_label_is_compact(self):
        config = TuningConfig.make({"wgsize": 64}, {"fast_math": False})
        assert config.label() == "wgsize=64 fast_math=False"


class TestSpace:
    def test_size_is_product(self):
        assert _space().size == 6

    def test_candidates_split_kinds(self):
        configs = list(_space().candidates())
        assert len(configs) == 6
        assert all(set(c.params) == {"block"} for c in configs)
        assert all(set(c.fields) == {"fast_math"} for c in configs)

    def test_constraint_filters(self):
        space = TuningSpace(
            (TuningKnob("ppwi", (1, 2, 3)),),
            constraint=lambda cfg: 6 % cfg["ppwi"] == 0,
        )
        assert space.size == 3
        space = TuningSpace(
            (TuningKnob("ppwi", (1, 2, 4)),),
            constraint=lambda cfg: 6 % cfg["ppwi"] == 0,
        )
        assert [c.params["ppwi"] for c in space.candidates()] == [1, 2]

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningSpace((TuningKnob("k", (1,)), TuningKnob("k", (2,))))

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningSpace(())

    def test_baseline_reads_request_values(self):
        wl = get_workload("stencil")
        request = wl.make_request(params={"L": 32}, fast_math=True,
                                  verify=False)
        baseline = wl.tuning_space(request).baseline(request)
        assert baseline.params["block_shape"] == (512, 1, 1)
        assert baseline.fields["fast_math"] is True

    def test_neighbors_move_one_knob_to_adjacent_values(self):
        space = _space()
        config = TuningConfig.make({"block": (128, 1, 1)},
                                   {"fast_math": False})
        moved = space.neighbors(config)
        labels = {c.label() for c in moved}
        assert "block=(64, 1, 1) fast_math=False" in labels
        assert "block=(256, 1, 1) fast_math=False" in labels
        assert "block=(128, 1, 1) fast_math=True" in labels
        assert len(moved) == 3

    def test_neighbors_of_off_list_baseline_span_the_knob(self):
        space = _space()
        config = TuningConfig.make({"block": (512, 1, 1)},
                                   {"fast_math": False})
        moved = space.neighbors(config)
        blocks = {c.params["block"] for c in moved}
        # every listed block value is reachable from the off-list baseline
        # (the remaining move is the fast_math toggle, block unchanged)
        assert {(64, 1, 1), (128, 1, 1), (256, 1, 1)} <= blocks


class TestWorkloadSpaces:
    """Every adapter declares a coherent space."""

    @pytest.mark.parametrize("name", ["stencil", "babelstream", "minibude",
                                      "hartreefock"])
    def test_space_declared_and_model_buildable(self, name):
        wl = get_workload(name)
        request = wl.make_request(verify=False)
        space = wl.tuning_space(request)
        assert space is not None and space.size > 1
        model, launch = wl.tuning_model(request)
        assert launch.total_threads > 0
        assert model.dtype.name == request.precision

    def test_minibude_constraint_respects_pose_divisibility(self):
        wl = get_workload("minibude")
        request = wl.make_request(params={"nposes": 24}, verify=False)
        space = wl.tuning_space(request)
        ppwis = {c.params["ppwi"] for c in space.candidates()}
        assert ppwis == {1, 2, 4, 8}  # 16 does not divide 24

    def test_probe_declared_for_memory_bound_workloads(self):
        # stencil probes its single Laplacian launch; BabelStream captures
        # the full Copy/Mul/Add/Triad sweep (the fusion pass's target shape)
        for name, kernels in (("stencil", 1), ("babelstream", 4)):
            wl = get_workload(name)
            request = wl.make_request(verify=False)
            graph = wl.tuning_probe(request)
            assert graph is not None and graph.num_kernels == kernels
