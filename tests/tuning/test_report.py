"""Tests for the tuned-vs-untuned portability report."""

import math

import pytest

from repro.tuning.db import TuningDB
from repro.tuning.report import PLATFORMS, tuning_report


@pytest.fixture(scope="module")
def stencil_report():
    return tuning_report(budget=6, workloads=["stencil"],
                         db=TuningDB(disk_dir=None))


class TestTuningReport:
    def test_one_row_per_platform(self, stencil_report):
        assert [r.platform for r in stencil_report.rows] == \
            [gpu for gpu, _ in PLATFORMS]

    def test_efficiencies_positive_and_finite(self, stencil_report):
        for row in stencil_report.rows:
            assert row.untuned_efficiency > 0
            assert row.tuned_efficiency > 0
            assert math.isfinite(row.tuned_efficiency)

    def test_tuning_improves_the_mojo_side(self, stencil_report):
        # The representative stencil configuration (L=64) is exactly the
        # regime where the hardcoded slab launch wastes threads: tuning
        # must find a real improvement on every platform.
        for row in stencil_report.rows:
            assert row.mojo_speedup >= 1.2

    def test_phi_summary_per_workload(self, stencil_report):
        phis = stencil_report.phis()
        untuned, tuned = phis["stencil"]
        assert untuned > 0 and tuned > 0

    def test_markdown_renders_table_and_phi(self, stencil_report):
        text = stencil_report.to_markdown()
        assert "Tuned performance portability" in text
        assert "| stencil |" in text
        assert "Φ (all)" in text

    def test_as_dict_shape(self, stencil_report):
        payload = stencil_report.as_dict()
        assert payload["budget"] == 6
        assert {"untuned", "tuned"} == set(payload["phi"]["stencil"])
