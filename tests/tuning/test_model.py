"""Tests for the occupancy/roofline candidate pruner.

These pin the model behaviours the pruner relies on — infeasible launches
rejected outright, zero-FLOP kernels scored by the memory roof alone, dtype
widths respected — alongside the pruning pass itself.
"""

import math

import pytest

from repro.core.dtypes import DType
from repro.core.kernel import KernelModel, LaunchConfig, MemoryPattern
from repro.tuning.model import (
    DEFAULT_KEEP_RATIO,
    estimate_candidate,
    prune_space,
)
from repro.tuning.space import TuningConfig
from repro.workloads import get_workload


def _model(**overrides):
    base = dict(name="probe", dtype=DType.float64, loads_global=2.0,
                stores_global=1.0, flops=4.0)
    base.update(overrides)
    return KernelModel(**base)


def _cfg():
    return TuningConfig.make({"block": 256})


class TestEstimate:
    def test_feasible_candidate_gets_finite_cost(self):
        est = estimate_candidate("h100", _model(),
                                 LaunchConfig.for_elements(1 << 20, 256),
                                 _cfg())
        assert est.feasible and math.isfinite(est.modelled_ms)
        assert est.modelled_ms > 0
        assert 0 < est.occupancy <= 1.0

    def test_block_beyond_device_limit_is_infeasible(self):
        # 2048-thread blocks exceed every simulated device's 1024 cap; the
        # occupancy model rejects them and the pruner must never measure one.
        from repro.core.intrinsics import Dim3

        est = estimate_candidate("h100", _model(),
                                 LaunchConfig.for_elements(4096, 1024),
                                 _cfg())
        assert est.feasible  # 1024 itself is fine
        oversized = LaunchConfig(Dim3.make(2), Dim3.make((2048, 1, 1)))
        est = estimate_candidate("h100", _model(), oversized, _cfg())
        assert not est.feasible
        assert math.isinf(est.modelled_ms)
        assert "2048" in est.reason

    def test_shared_memory_over_block_budget_is_infeasible(self):
        model = _model(uses_shared=True,
                       shared_bytes_per_block=1 << 20)  # 1 MiB > any budget
        est = estimate_candidate("h100", model,
                                 LaunchConfig.for_elements(4096, 256), _cfg())
        assert not est.feasible and "shared memory" in est.reason

    def test_zero_flop_memory_only_kernel_scores_on_memory_roof(self):
        # BabelStream Copy: no FLOPs at all.  The roofline compute term must
        # drop out instead of dividing by zero, and the candidate must be
        # memory-bound with a finite positive cost.
        model = _model(flops=0.0)
        est = estimate_candidate("h100", model,
                                 LaunchConfig.for_elements(1 << 20, 256),
                                 _cfg())
        assert est.feasible and est.bound == "memory"
        assert math.isfinite(est.modelled_ms) and est.modelled_ms > 0

    def test_dtype_width_doubles_memory_cost(self):
        from repro.gpu.specs import get_gpu

        launch = LaunchConfig.for_elements(1 << 22, 256)
        wide = estimate_candidate("h100", _model(flops=0.0), launch, _cfg())
        narrow = estimate_candidate("h100",
                                    _model(flops=0.0, dtype=DType.float32),
                                    launch, _cfg())
        # fp64 moves exactly twice the bytes; strip the launch overhead
        # (identical in both) to compare the memory terms alone.
        overhead_ms = get_gpu("h100").launch_overhead_us * 1e-3
        assert wide.modelled_ms - overhead_ms == pytest.approx(
            2 * (narrow.modelled_ms - overhead_ms), rel=1e-9)

    def test_atomic_heavy_kernel_is_atomic_bound(self):
        model = _model(flops=1.0, atomics=64.0)
        est = estimate_candidate("h100", model,
                                 LaunchConfig.for_elements(1 << 20, 256),
                                 _cfg())
        assert est.bound == "atomic"

    def test_partial_wave_penalised(self):
        # A grid that fills the device 1.05 waves deep wastes most of its
        # second wave; the same work split into full waves must score better
        # per byte.  Compare equal-traffic launches.
        model = _model(flops=0.0, active_fraction=1.0)
        full = estimate_candidate("h100", model,
                                  LaunchConfig.for_elements(1 << 24, 128),
                                  _cfg())
        assert full.feasible
        assert full.waves > 1


class TestPruneSpace:
    def test_prunes_infeasible_and_hopeless_candidates(self):
        wl = get_workload("stencil")
        request = wl.make_request(params={"L": 64}, verify=False)
        report = prune_space(wl, request, wl.tuning_space(request))
        assert report.space_size == 36
        # the two 2048-thread block shapes (x2 fast-math) are infeasible...
        infeasible = [e for e in report.estimates if not e.feasible]
        assert len(infeasible) == 4
        # ...and the heavily oversubscribed 1-D slabs are model-pruned, so
        # at least a quarter of the space is never measured.
        assert report.pruned_fraction >= 0.25
        assert report.keep_ratio == DEFAULT_KEEP_RATIO

    def test_kept_candidates_sorted_best_first(self):
        wl = get_workload("stencil")
        request = wl.make_request(params={"L": 64}, verify=False)
        report = prune_space(wl, request, wl.tuning_space(request))
        costs = [e.modelled_ms for e in report.kept]
        assert costs == sorted(costs)

    def test_disabled_pruning_keeps_every_feasible_candidate(self):
        wl = get_workload("stencil")
        request = wl.make_request(params={"L": 64}, verify=False)
        report = prune_space(wl, request, wl.tuning_space(request),
                             enabled=False)
        assert len(report.kept) == 32  # 36 minus the 4 infeasible
        assert all(not e.feasible for e in report.pruned)
