"""Device-graph race detector: happens-before over streams and events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Severity, analyze_graph, run_lint
from repro.analysis.lint import lint_graphs
from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.core.errors import AnalysisError, DeviceError


def _rules(diags):
    # analyze_graph returns a diagnostics list; lint_graphs a LintReport
    diags = getattr(diags, "diagnostics", diags)
    return sorted({d.rule for d in diags})


def _errors(diags):
    return [d for d in diags if d.severity == Severity.ERROR]


def _two_stream_graph(*, with_edge: bool):
    """H2D write on one stream, D2H read of the same buffer on another.

    With no event edge the two operations are concurrent — the classic
    cross-stream race.  ``with_edge=True`` adds the ``record``/``wait``
    pair that serialises them.
    """
    ctx = DeviceContext("h100")
    s1 = ctx.stream("producer")
    s2 = ctx.stream("consumer")
    data = np.arange(16, dtype=np.float64)
    with ctx.capture("racecheck") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 16, label="shared")
        buf.copy_from_host(data, stream=s1)
        if with_edge:
            s2.wait(ctx.event("ready").record(s1))
        buf.copy_to_host(stream=s2)
    return graph


def test_cross_stream_overlap_without_edge_is_flagged():
    diags = analyze_graph(_two_stream_graph(with_edge=False))
    assert "GR201" in _rules(diags)
    assert _errors(diags)
    (diag,) = [d for d in diags if d.rule == "GR201"]
    assert "shared" in diag.message


def test_event_edge_serialises_the_same_graph():
    assert _rules(analyze_graph(_two_stream_graph(with_edge=True))) == []


def test_same_stream_order_is_never_a_race():
    ctx = DeviceContext("h100")
    s = ctx.stream("only")
    data = np.ones(8)
    with ctx.capture("serial") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="b")
        buf.copy_from_host(data, stream=s)
        buf.copy_to_host(stream=s)
    assert _rules(analyze_graph(graph)) == []


def test_dead_transfer_is_a_warning_not_an_error():
    ctx = DeviceContext("h100")
    s = ctx.stream("s")
    with ctx.capture("dead") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="unused")
        buf.copy_from_host(np.zeros(8), stream=s)
    diags = analyze_graph(graph)
    assert _rules(diags) == ["GR203"]
    assert not _errors(diags)  # warning: reported, does not fail the gate


def test_use_after_free_carries_enqueue_site():
    # lazy context: the copy stays pending until synchronize(), which is
    # where a freed buffer is discovered — with the recorded enqueue site
    ctx = DeviceContext("h100", eager=False, record_sites=True)
    s = ctx.stream("s")
    buf = ctx.enqueue_create_buffer(DType.float64, 8, label="gone")
    buf.copy_from_host(np.zeros(8), stream=s)
    buf.free()
    with pytest.raises(DeviceError, match=r"enqueued at .*test_racecheck"):
        ctx.synchronize()


def test_capture_check_raises_on_race():
    ctx = DeviceContext("h100")
    s1, s2 = ctx.stream("a"), ctx.stream("b")
    data = np.zeros(4)
    with pytest.raises(AnalysisError, match="GR201"):
        with ctx.capture("checked", check=True):
            buf = ctx.enqueue_create_buffer(DType.float64, 4, label="hot")
            buf.copy_from_host(data, stream=s1)
            buf.copy_to_host(stream=s2)
    # the capture-scoped site recording must not leak past the capture
    assert ctx.record_sites is False


def test_capture_check_passes_clean_graph():
    ctx = DeviceContext("h100")
    s = ctx.stream("s")
    with ctx.capture("clean", check=True) as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="ok")
        buf.copy_from_host(np.zeros(4), stream=s)
        buf.copy_to_host(stream=s)
    assert graph is not None


def test_all_workload_lint_graphs_are_clean():
    report = lint_graphs()
    assert report.ok, report.render()
    assert len(report.graphs) == 4
    assert report.diagnostics == []


def test_run_lint_is_clean_end_to_end():
    report = run_lint()
    assert report.ok, report.render()
    assert len(report.kernels) >= 8
