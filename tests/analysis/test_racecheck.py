"""Device-graph race detector: happens-before over streams and events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Severity, analyze_graph, run_lint
from repro.analysis.lint import lint_graphs
from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.core.errors import AnalysisError, DeviceError


def _rules(diags):
    # analyze_graph returns a diagnostics list; lint_graphs a LintReport
    diags = getattr(diags, "diagnostics", diags)
    return sorted({d.rule for d in diags})


def _errors(diags):
    return [d for d in diags if d.severity == Severity.ERROR]


def _two_stream_graph(*, with_edge: bool):
    """H2D write on one stream, D2H read of the same buffer on another.

    With no event edge the two operations are concurrent — the classic
    cross-stream race.  ``with_edge=True`` adds the ``record``/``wait``
    pair that serialises them.
    """
    ctx = DeviceContext("h100")
    s1 = ctx.stream("producer")
    s2 = ctx.stream("consumer")
    data = np.arange(16, dtype=np.float64)
    with ctx.capture("racecheck") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 16, label="shared")
        buf.copy_from_host(data, stream=s1)
        if with_edge:
            s2.wait(ctx.event("ready").record(s1))
        buf.copy_to_host(stream=s2)
    return graph


def test_cross_stream_overlap_without_edge_is_flagged():
    diags = analyze_graph(_two_stream_graph(with_edge=False))
    assert "GR201" in _rules(diags)
    assert _errors(diags)
    (diag,) = [d for d in diags if d.rule == "GR201"]
    assert "shared" in diag.message


def test_event_edge_serialises_the_same_graph():
    assert _rules(analyze_graph(_two_stream_graph(with_edge=True))) == []


def test_same_stream_order_is_never_a_race():
    ctx = DeviceContext("h100")
    s = ctx.stream("only")
    data = np.ones(8)
    with ctx.capture("serial") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="b")
        buf.copy_from_host(data, stream=s)
        buf.copy_to_host(stream=s)
    assert _rules(analyze_graph(graph)) == []


def test_dead_transfer_is_a_warning_not_an_error():
    ctx = DeviceContext("h100")
    s = ctx.stream("s")
    with ctx.capture("dead") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="unused")
        buf.copy_from_host(np.zeros(8), stream=s)
    diags = analyze_graph(graph)
    assert _rules(diags) == ["GR203"]
    assert not _errors(diags)  # warning: reported, does not fail the gate


def test_use_after_free_carries_enqueue_site():
    # lazy context: the copy stays pending until synchronize(), which is
    # where a freed buffer is discovered — with the recorded enqueue site
    ctx = DeviceContext("h100", eager=False, record_sites=True)
    s = ctx.stream("s")
    buf = ctx.enqueue_create_buffer(DType.float64, 8, label="gone")
    buf.copy_from_host(np.zeros(8), stream=s)
    buf.free()
    with pytest.raises(DeviceError, match=r"enqueued at .*test_racecheck"):
        ctx.synchronize()


def test_capture_check_raises_on_race():
    ctx = DeviceContext("h100")
    s1, s2 = ctx.stream("a"), ctx.stream("b")
    data = np.zeros(4)
    with pytest.raises(AnalysisError, match="GR201"):
        with ctx.capture("checked", check=True):
            buf = ctx.enqueue_create_buffer(DType.float64, 4, label="hot")
            buf.copy_from_host(data, stream=s1)
            buf.copy_to_host(stream=s2)
    # the capture-scoped site recording must not leak past the capture
    assert ctx.record_sites is False


def test_capture_check_passes_clean_graph():
    ctx = DeviceContext("h100")
    s = ctx.stream("s")
    with ctx.capture("clean", check=True) as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="ok")
        buf.copy_from_host(np.zeros(4), stream=s)
        buf.copy_to_host(stream=s)
    assert graph is not None


def test_all_workload_lint_graphs_are_clean():
    report = lint_graphs()
    assert report.ok, report.render()
    # every capture lints twice: as recorded and after the graph-compiler
    # pass pipeline — the optimized rewrite must stay as clean
    assert len(report.graphs) == 8
    assert report.diagnostics == []


def test_run_lint_is_clean_end_to_end():
    report = run_lint()
    assert report.ok, report.render()
    assert len(report.kernels) >= 8


class TestGraphoptProvenance:
    """The race detector reads graph-compiler pass provenance.

    A transfer the optimizer elided must neither be reported itself nor
    re-trigger GR203 on the writer that fed it: the elision was a deliberate
    rewrite, not dead code the author forgot."""

    def _waited_upload_graph(self):
        # the event edge pins the upload of "u": ops carrying waits are
        # never elided (dropping them would erase a happens-before edge)
        ctx = DeviceContext("h100")
        s1, s2 = ctx.stream("s1"), ctx.stream("s2")
        u_buf = ctx.enqueue_create_buffer(DType.float64, 8, label="u")
        w_buf = ctx.enqueue_create_buffer(DType.float64, 8, label="w")
        with ctx.capture("prov") as graph:
            w_buf.copy_from_host(np.ones(8), stream=s2)
            s1.wait(ctx.event("go").record(s2))
            u_buf.copy_from_host(np.zeros(8), stream=s1)
            u_buf.copy_to_host(stream=s1)
            w_buf.copy_to_host(stream=s2)
        return graph

    def test_elided_download_does_not_retrigger_dead_transfer(self):
        from repro.graphopt import optimize_graph

        graph = self._waited_upload_graph()
        assert _rules(analyze_graph(graph)) == []
        optimized, report = optimize_graph(graph, "elide",
                                           drop_outputs=("u",))
        # the dropped D2H leaves the waited upload of "u" with no live
        # reader — but its tombstoned reader still counts, so no GR203
        assert [e["action"] for e in report.elided] == ["dropped-output"]
        assert _rules(analyze_graph(optimized)) == []

    def test_genuinely_dead_upload_still_fires_after_other_passes(self):
        from repro.graphopt import optimize_graph

        ctx = DeviceContext("h100")
        s = ctx.stream("s")
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="unused")
        live = ctx.enqueue_create_buffer(DType.float64, 8, label="live")
        with ctx.capture("dead") as graph:
            buf.copy_from_host(np.zeros(8), stream=s)
            live.copy_from_host(np.ones(8), stream=s)
            live.copy_to_host(stream=s)
        # without the elide pass the dead upload stays live — and flagged
        optimized, _ = optimize_graph(graph, "fuse", check=False)
        assert _rules(analyze_graph(optimized)) == ["GR203"]
        # the elide pass is exactly the fix the warning asks for
        optimized, _ = optimize_graph(graph, "elide")
        assert _rules(analyze_graph(optimized)) == []

    def test_op_elided_predicate(self):
        from repro.analysis.racecheck import op_elided
        from repro.graphopt import optimize_graph

        graph = self._waited_upload_graph()
        optimized, _ = optimize_graph(graph, "elide", drop_outputs=("u",))
        flags = {op_elided(op) for op in optimized.ops}
        assert flags == {True, False}
        for op in optimized.ops:
            if op_elided(op):
                assert op.meta["graphopt"]["pass"] == "elide"
