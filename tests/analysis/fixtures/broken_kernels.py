"""Intentionally broken kernel bodies, one per verifier rule.

Each function below violates exactly one static-analysis rule, so the
tests can assert that the verifier fires *that* rule and nothing else.
They are plain functions (not ``@kernel``-decorated) so importing this
module never pollutes the kernel registry that ``repro lint`` walks —
the tests wrap them in bare :class:`~repro.core.kernel.Kernel` objects,
which do not register.

The verifier reads source via :func:`inspect.getsource`, so these bodies
must live in a real file — defining them inline in a REPL or ``-c``
string would put the verifier on its unanalyzable (KV100-warning) path
instead of exercising the rules.
"""

from repro.core.dtypes import DType
from repro.core.intrinsics import (
    barrier,
    block_dim,
    block_idx,
    shared_array,
    thread_idx,
)


def divergent_barrier(out):
    """KV101: barrier under a lane-dependent guard deadlocks real warps."""
    i = thread_idx.x
    if i < 2:
        barrier()
    out[0] = 1.0


def shared_memory_race(out, n):
    """KV102: reads a neighbour's shared slot with no barrier between."""
    tid = thread_idx.x
    s = shared_array(32, DType.float64, key="s")
    s[tid] = float(tid)
    v = s[tid + 1]
    if tid < n:
        out[tid] = v


def unguarded_oob(a, c, n):
    """KV103: raw global index into a parameter tensor, no bounds guard."""
    i = block_idx.x * block_dim.x + thread_idx.x
    c[i] = a[i] * 2.0


def simt_unsafe_print(a, n):
    """KV104: ``print`` has no per-lane semantics in the SIMT model."""
    i = thread_idx.x
    if i < n:
        print(i)
        a[i] = 1.0


def data_dependent_while(a, n):
    """KV105: lane-dependent ``while`` — per-lane trip counts diverge."""
    i = thread_idx.x
    while i < n:
        a[i] = 1.0
        i += 32


def lying_flag(a, n):
    """KV100 when declared ``vector_safe=True``: the body is lane-guarded.

    The body itself is clean (the guard exempts the index from KV103), but
    a lane-dependent ``if`` around the store means lockstep execution
    would run both sides — the verifier refutes the declared flag.
    """
    i = thread_idx.x
    if i < n:
        a[i] = 1.0


def guarded_clean(a, c, n):
    """Clean control: guard exempts the index, no rule may fire."""
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        c[i] = a[i] * 2.0
