"""Kernel bodies exercising the symbolic region analysis, one per rule.

Like :mod:`broken_kernels`, these are plain functions the tests wrap in
bare :class:`~repro.core.kernel.Kernel` objects (no registry pollution),
living in a real file so :func:`inspect.getsource` works.

* :func:`oob_copy` fires exactly ``KV106`` under any launch whose lane
  count exceeds the buffer extent — the index is unguarded and
  endpoint-exact, so the escape is *proven*, not suspected.
* :func:`guarded_copy` is the canonical tail-guard idiom; regions prove
  it in-bounds under every launch, discharging its ``KV103``.
* :func:`tile_scale` touches exactly ``[lo, hi)`` of its buffer: two
  launches on different streams are provably disjoint (GR201 suppressed)
  or partially overlapping (GR204) purely by their scalar arguments.
"""

from repro.core.intrinsics import any_lane, compress_lanes, global_idx


def oob_copy(a, c, n):
    """KV106: unguarded global index — a tail launch provably escapes."""
    i = global_idx().x
    c[i] = a[i]


def guarded_copy(a, c, n):
    """Clean under regions: the mask clamps every access below ``n``."""
    i = global_idx().x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    c[i] = a[i]


def tile_scale(buf, lo, hi):
    """Scales exactly the ``[lo, hi)`` tile of *buf* in place."""
    i = global_idx().x + lo
    m = i < hi
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    buf[i] = buf[i] * 2.0
