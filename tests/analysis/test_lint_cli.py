"""The ``repro lint`` CLI surface — the command the CI gate runs."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


def test_parser_accepts_ci_gate_invocation():
    args = build_parser().parse_args(["lint", "--all", "--json"])
    assert args.command == "lint"
    assert args.lint_all and args.json and not args.no_graphs


def test_lint_all_json_is_clean(capsys):
    assert main(["lint", "--all", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["kernels"] >= 8
    # each workload graph lints twice: the capture and its graph-compiler
    # optimized rewrite (the optimized variant must stay as clean)
    assert payload["summary"]["graphs"] == 8
    assert any(name.endswith("+opt") for name in payload["graphs"])
    assert payload["diagnostics"] == []
    assert "fasten_kernel" in payload["kernels"]


def test_lint_text_summary(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_single_workload_filters_graphs(capsys):
    assert main(["lint", "stencil", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # graph filter narrows the race check; kernel verification still covers
    # the full registry so a narrowed lint cannot hide a broken kernel
    assert payload["summary"]["graphs"] == 2
    assert payload["summary"]["kernels"] >= 8


def test_lint_no_graphs_skips_race_check(capsys):
    assert main(["lint", "--no-graphs", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["graphs"] == 0


def test_lint_unknown_workload_is_config_error(capsys):
    assert main(["lint", "nosuchworkload"]) == 2
    assert "lint:" in capsys.readouterr().err
