"""The ``repro lint`` CLI surface — the command the CI gate runs."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


def test_parser_accepts_ci_gate_invocation():
    args = build_parser().parse_args(["lint", "--all", "--json"])
    assert args.command == "lint"
    assert args.lint_all and args.json and not args.no_graphs


def test_lint_all_json_is_clean(capsys):
    assert main(["lint", "--all", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["summary"]["kernels"] >= 8
    # each workload graph lints twice: the capture and its graph-compiler
    # optimized rewrite (the optimized variant must stay as clean)
    assert payload["summary"]["graphs"] == 8
    assert any(name.endswith("+opt") for name in payload["graphs"])
    assert payload["diagnostics"] == []
    assert "fasten_kernel" in payload["kernels"]


def test_lint_text_summary(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_single_workload_filters_graphs(capsys):
    assert main(["lint", "stencil", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # graph filter narrows the race check; kernel verification still covers
    # the full registry so a narrowed lint cannot hide a broken kernel
    assert payload["summary"]["graphs"] == 2
    assert payload["summary"]["kernels"] >= 8


def test_lint_no_graphs_skips_race_check(capsys):
    assert main(["lint", "--no-graphs", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["graphs"] == 0


def test_lint_unknown_workload_is_config_error(capsys):
    assert main(["lint", "nosuchworkload"]) == 2
    assert "lint:" in capsys.readouterr().err


def test_lint_json_zero_fills_the_full_rule_catalog(capsys):
    """The CI gate asserts on this: every rule id present, zero firings."""
    assert main(["lint", "--all", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    rules = payload["rules"]
    assert set(rules) >= {"KV100", "KV101", "KV102", "KV103", "KV104",
                          "KV105", "KV106", "GR200", "GR201", "GR202",
                          "GR203", "GR204"}
    assert all(count == 0 for count in rules.values())


def test_lint_explain_prints_rule_doc(capsys):
    assert main(["lint", "--explain", "KV106"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("KV106")
    assert "out-of-bounds" in out

    assert main(["lint", "--explain", "gr204"]) == 0
    assert "partial" in capsys.readouterr().out


def test_lint_explain_unknown_rule_exits_2(capsys):
    assert main(["lint", "--explain", "KV999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_max_warnings_gates_exit_code(capsys):
    # shipped kernels carry zero warnings, so the tightest gate passes
    assert main(["lint", "--all", "--max-warnings", "0"]) == 0
    capsys.readouterr()


def test_lint_max_warnings_fails_when_exceeded(monkeypatch, capsys):
    from repro.analysis import Diagnostic, LintReport, Severity

    report = LintReport()
    report.add(Diagnostic(rule="KV103", severity=Severity.WARNING,
                          subject="k", message="suspicious index"))
    monkeypatch.setattr("repro.analysis.run_lint",
                        lambda *a, **k: report)
    assert main(["lint", "--all", "--max-warnings", "0"]) == 1
    assert "exceed" in capsys.readouterr().err
    # the same report passes once the budget admits one warning
    assert main(["lint", "--all", "--max-warnings", "1"]) == 0
