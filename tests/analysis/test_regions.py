"""Symbolic access-region analysis: intervals, bounds, races, covers."""

from __future__ import annotations

import importlib.util
import pathlib

import numpy as np
import pytest

from repro.analysis import (
    Diagnostic,
    LintReport,
    Severity,
    analyze_graph,
    bounds_diagnostics,
    concretize_launch,
    covers,
    discharge_proven,
    kernel_regions,
    launch_traffic,
    lint_kernel,
    region_conflict,
)
from repro.analysis.symexpr import Interval
from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.core.kernel import Kernel, LaunchConfig

_FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "region_kernels.py"
_spec = importlib.util.spec_from_file_location("region_kernels", _FIXTURE)
fx = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(fx)


def _rules(diags):
    diags = getattr(diags, "diagnostics", diags)
    return sorted(d.rule for d in diags)


def _buffers(n=1024):
    ctx = DeviceContext("h100")
    a = ctx.enqueue_create_buffer(DType.float64, n, label="a")
    c = ctx.enqueue_create_buffer(DType.float64, n, label="c")
    return ctx, a, c


class TestInterval:
    def test_arithmetic(self):
        a, b = Interval(0, 7), Interval(2, 3)
        assert (a + b) == Interval(2, 10)
        assert (a - b) == Interval(-3, 5)
        assert (a * b) == Interval(0, 21)
        assert (-a) == Interval(-7, 0)

    def test_negative_multiplication_hull(self):
        assert Interval(-2, 3) * Interval(-5, 4) == Interval(-15, 12)

    def test_floordiv_by_span_containing_zero_is_unknown(self):
        assert Interval(0, 8).floordiv(Interval(-1, 1)) is None
        assert Interval(0, 8).floordiv(Interval(2, 2)) == Interval(0, 4)

    def test_empty_and_contains(self):
        assert Interval(3, 2).empty
        assert Interval(0, 4).intersect(Interval(5, 9)).empty
        assert Interval(0, 4).contains(Interval(1, 3))
        assert not Interval(0, 4).contains(Interval(1, 5))

    def test_infinite_endpoints_stay_sound(self):
        inf = float("inf")
        assert Interval(0, inf) + Interval(1, 1) == Interval(1, inf)
        # 0 * inf must resolve to 0, not NaN, for guard-free strides
        assert Interval(0, 0) * Interval(0, inf) == Interval(0, 0)


class TestKernelRegions:
    def test_guarded_copy_summary_is_analyzable(self):
        summary = kernel_regions(Kernel(fx.guarded_copy))
        assert summary.analyzable
        kinds = {(a.param, a.kind) for a in summary.accesses}
        assert ("a", "r") in kinds and ("c", "w") in kinds

    def test_summary_is_memoised(self):
        kern = Kernel(fx.guarded_copy)
        assert kernel_regions(kern) is kernel_regions(kern)

    def test_concretization_is_memoised(self):
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers()
        launch = LaunchConfig.for_elements(1024, 128)
        args = (a.tensor(), c.tensor(), 1024)
        assert concretize_launch(kern, args, launch) \
            is concretize_launch(kern, args, launch)

    def test_guard_clamps_the_tail_launch(self):
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers(1000)
        launch = LaunchConfig.for_elements(1000, 128)   # 1024 lanes
        lr = concretize_launch(kern, (a.tensor(), c.tensor(), 1000), launch)
        assert lr is not None and not lr.oob
        for region in lr.regions:
            for box in region.reads + region.writes:
                assert box == ((0, 999),)

    def test_exact_traffic(self):
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers(1000)
        launch = LaunchConfig.for_elements(1000, 128)
        traffic = launch_traffic(
            kern, (a.tensor(), c.tensor(), 1000), launch)
        assert traffic == (1000 * 8.0, 1000 * 8.0)


class TestKV106:
    def test_tail_launch_fires_exactly_kv106(self):
        kern = Kernel(fx.oob_copy)
        ctx, a, c = _buffers(1000)
        launch = LaunchConfig.for_elements(1000, 128)   # 24 lanes escape
        diags = bounds_diagnostics(
            kern, (a.tensor(), c.tensor(), 1000), launch)
        assert diags and {d.rule for d in diags} == {"KV106"}
        assert all(d.severity == Severity.ERROR for d in diags)
        assert any("[0..1023]" in d.message and "extent is 1000" in d.message
                   for d in diags)

    def test_exact_fit_launch_is_clean(self):
        kern = Kernel(fx.oob_copy)
        ctx, a, c = _buffers()
        launch = LaunchConfig.for_elements(1024, 128)
        assert bounds_diagnostics(
            kern, (a.tensor(), c.tensor(), 1024), launch) == []

    def test_guarded_tail_does_not_fire(self):
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers(1000)
        launch = LaunchConfig.for_elements(1000, 128)
        assert bounds_diagnostics(
            kern, (a.tensor(), c.tensor(), 1000), launch) == []

    def test_proven_lines_discharge_kv103(self):
        kern = Kernel(fx.oob_copy)
        report = LintReport()
        report.extend(lint_kernel(kern))
        kv103 = [d for d in report.diagnostics if d.rule == "KV103"]
        assert kv103, "oob_copy must fire KV103 syntactically"
        ctx, a, c = _buffers()
        launch = LaunchConfig.for_elements(1024, 128)   # exact fit
        lr = concretize_launch(kern, (a.tensor(), c.tensor(), 1024), launch)
        assert kv103[0].line in lr.proven_lines
        proven = {"oob_copy": set(lr.proven_lines),
                  "!oob_copy": set(lr.unproven_lines)}
        assert discharge_proven(report, proven) == len(kv103)
        assert not [d for d in report.diagnostics if d.rule == "KV103"]

    def test_unproven_launch_blocks_discharge(self):
        report = LintReport()
        report.add(Diagnostic(rule="KV103", severity=Severity.WARNING,
                              subject="k", message="m", line=7))
        assert discharge_proven(report, {"k": {7}, "!k": {7}}) == 0
        assert len(report.diagnostics) == 1


def _tile_graph(lo1, hi1, lo2, hi2, n=1024):
    """Two ``tile_scale`` launches on different streams, upload serialised."""
    tile = Kernel(fx.tile_scale)
    ctx = DeviceContext("h100", record_sites=True)
    s1, s2 = ctx.stream("s1"), ctx.stream("s2")
    with ctx.capture("tiles") as graph:
        buf = ctx.enqueue_create_buffer(DType.float64, n, label="field")
        buf.copy_from_host(np.ones(n))
        ready = ctx.event("uploaded").record(ctx.stream("default"))
        s1.wait(ready)
        s2.wait(ready)
        t = buf.tensor()
        ctx.enqueue_function(tile, t, lo1, hi1,
                             grid_dim=max(1, (hi1 - lo1) // 64),
                             block_dim=64, stream=s1)
        ctx.enqueue_function(tile, t, lo2, hi2,
                             grid_dim=max(1, (hi2 - lo2) // 64),
                             block_dim=64, stream=s2)
    return graph


class TestRegionRaces:
    def test_disjoint_tiles_lint_clean(self):
        """The flagship GR201 suppression: provably-disjoint tiles."""
        graph = _tile_graph(0, 512, 512, 1024)
        assert _rules(analyze_graph(graph)) == []
        # the whole-buffer detector would have flagged exactly this graph
        assert "GR201" in _rules(analyze_graph(graph, regions=False))

    def test_partial_overlap_fires_gr204_with_exact_interval(self):
        graph = _tile_graph(0, 576, 512, 1024)
        diags = analyze_graph(graph)
        assert _rules(diags) == ["GR204"]
        (diag,) = diags
        assert diag.severity == Severity.ERROR
        assert "[512..575]" in diag.message

    def test_identical_tiles_stay_gr201(self):
        graph = _tile_graph(0, 512, 0, 512)
        assert _rules(analyze_graph(graph)) == ["GR201"]

    def test_gr204_carries_enqueue_site(self):
        graph = _tile_graph(0, 576, 512, 1024)
        (diag,) = analyze_graph(graph)
        assert diag.source and diag.source.endswith(".py")
        assert diag.line is not None

    def test_region_conflict_verdicts(self):
        disjoint = _tile_graph(0, 512, 512, 1024)
        k1, k2 = [op for op in disjoint._ops if op.kind == "kernel"]
        (buf,) = k1.buffers
        assert region_conflict(k1, k2, buf) == "disjoint"
        partial = _tile_graph(0, 576, 512, 1024)
        k1, k2 = [op for op in partial._ops if op.kind == "kernel"]
        (buf,) = k1.buffers
        assert region_conflict(k1, k2, buf) == \
            ("partial", ((512, 575),), (1024,))

    @pytest.mark.parametrize("seed", range(6))
    def test_region_check_never_reports_fewer_on_broken_graphs(self, seed):
        """Property: refinement only ever *suppresses proven-disjoint*
        pairs — on graphs whose tiles genuinely overlap it reports at
        least as many errors as the whole-buffer detector."""
        rng = np.random.default_rng(seed)
        lo1 = int(rng.integers(0, 4)) * 64
        hi1 = lo1 + int(rng.integers(2, 8)) * 64
        # lo2 inside [lo1, hi1) forces a genuine overlap
        lo2 = int(rng.integers(lo1 // 64, hi1 // 64)) * 64
        hi2 = lo2 + int(rng.integers(1, 8)) * 64
        n = max(hi1, hi2)
        graph = _tile_graph(lo1, hi1, lo2, hi2, n=n)
        whole = [d for d in analyze_graph(graph, regions=False)
                 if d.severity == Severity.ERROR]
        refined = [d for d in analyze_graph(graph)
                   if d.severity == Severity.ERROR]
        assert len(refined) >= len(whole)
        assert {d.rule for d in refined} <= {"GR201", "GR204"}


class TestCovers:
    def test_guarded_kernel_covers_larger_leader(self):
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers(512)
        args = (a.tensor(), c.tensor(), 512)
        own = LaunchConfig.make(4, 128)
        leader = LaunchConfig.make(9, 128)
        assert covers(kern, args, own, leader)

    def test_unguarded_kernel_never_covers(self):
        kern = Kernel(fx.oob_copy)
        ctx, a, c = _buffers(512)
        args = (a.tensor(), c.tensor(), 512)
        assert not covers(kern, args,
                          LaunchConfig.make(4, 128), LaunchConfig.make(9, 128))

    def test_smaller_leader_does_not_cover(self):
        """Fewer lanes than the guard admits → regions shrink → no cover."""
        kern = Kernel(fx.guarded_copy)
        ctx, a, c = _buffers(512)
        args = (a.tensor(), c.tensor(), 512)
        assert not covers(kern, args,
                          LaunchConfig.make(4, 128), LaunchConfig.make(2, 128))


class TestDeterministicReports:
    def test_sorted_diagnostics_order(self):
        report = LintReport()
        report.add(Diagnostic(rule="KV103", severity=Severity.WARNING,
                              subject="b", message="w1", line=9))
        report.add(Diagnostic(rule="GR201", severity=Severity.ERROR,
                              subject="z", message="race", line=2))
        report.add(Diagnostic(rule="KV100", severity=Severity.WARNING,
                              subject="a", message="w0", line=1))
        rules = [d.rule for d in report.sorted_diagnostics()]
        assert rules == ["GR201", "KV100", "KV103"]   # severity, then rule

    def test_as_dict_is_stable_under_insertion_order(self):
        d1 = Diagnostic(rule="KV103", severity=Severity.WARNING,
                        subject="s", message="m1", line=3)
        d2 = Diagnostic(rule="GR202", severity=Severity.WARNING,
                        subject="s", message="m2", line=1)
        r1, r2 = LintReport(), LintReport()
        r1.add(d1), r1.add(d2)
        r2.add(d2), r2.add(d1)
        assert r1.as_dict() == r2.as_dict()

    def test_rule_counts_zero_fill_the_catalog(self):
        counts = LintReport().rule_counts()
        assert counts["KV106"] == 0 and counts["GR204"] == 0
        assert set(counts) >= {"KV100", "KV103", "GR201", "GR204", "KV106"}
