"""Kernel verifier: each broken fixture fires exactly its rule.

The fixtures live in ``fixtures/broken_kernels.py`` as plain functions
(see that module's docstring for why); they are wrapped in bare
:class:`Kernel` objects here so the registry ``repro lint`` walks stays
untouched.
"""

from __future__ import annotations

import importlib.util
import pathlib
import warnings

import pytest

from repro.analysis import Severity, lint_kernel, verify_kernel
from repro.analysis.lint import shipped_kernels
from repro.analysis.verifier import infer_vector_safe
from repro.core.errors import AnalysisError
from repro.core.kernel import Kernel

_FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "broken_kernels.py"
_spec = importlib.util.spec_from_file_location("broken_kernels", _FIXTURE)
broken = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(broken)


def _rules(kern):
    return sorted({d.rule for d in lint_kernel(kern)})


@pytest.mark.parametrize("fn_name, rule", [
    ("divergent_barrier", "KV101"),
    ("shared_memory_race", "KV102"),
    ("unguarded_oob", "KV103"),
    ("simt_unsafe_print", "KV104"),
    ("data_dependent_while", "KV105"),
])
def test_fixture_fires_exactly_its_rule(fn_name, rule):
    kern = Kernel(getattr(broken, fn_name))
    assert _rules(kern) == [rule]


def test_lying_flag_fires_kv100_only():
    # the body is clean on its own, but the declared vector_safe=True is
    # refuted by the lane-guarded store — only the flag-mismatch rule fires
    kern = Kernel(broken.lying_flag, vector_safe=True)
    diags = lint_kernel(kern)
    assert _rules(kern) == ["KV100"]
    assert all(d.severity == Severity.ERROR for d in diags)


def test_guarded_clean_has_no_diagnostics():
    kern = Kernel(broken.guarded_clean)
    assert _rules(kern) == []
    # the lane-dependent if still blocks positive vector-safety inference —
    # the executors' scalar fallback for undeclared guarded kernels depends
    # on this staying False
    assert infer_vector_safe(kern) is False


def test_verify_result_is_memoised():
    kern = Kernel(broken.unguarded_oob)
    assert verify_kernel(kern) is verify_kernel(kern)


def test_strict_decoration_raises_on_broken_kernel():
    with pytest.raises(AnalysisError) as exc:
        Kernel(broken.divergent_barrier, strict=True)
    assert "KV101" in str(exc.value)


def test_strict_decoration_accepts_clean_kernel():
    kern = Kernel(broken.guarded_clean, strict=True)
    assert _rules(kern) == []


#: the eight kernels the four science-kernel modules register
SHIPPED = {"laplacian_kernel", "copy_kernel", "mul_kernel", "add_kernel",
           "triad_kernel", "dot_kernel", "fasten_kernel",
           "hartree_fock_kernel"}


def test_shipped_kernels_verify_clean_and_inferred_safe():
    kernels = shipped_kernels()
    assert SHIPPED <= set(kernels)
    # the whole registry — including kernels other test modules registered
    # in this process — must lint clean; that is the `repro lint` contract
    for name, kern in kernels.items():
        assert _rules(kern) == [], f"{name} has diagnostics"
    for name in SHIPPED:
        result = verify_kernel(kernels[name])
        # every shipped kernel declares vector_safe=True and the analyser
        # independently confirms it — the flag is verified, not trusted
        assert result.declared is True, name
        assert result.inferred is True, name


def test_refuted_flag_warns_once_on_dispatch():
    from repro.gpu.vector_executor import kernel_vector_safe

    kern = Kernel(broken.lying_flag, vector_safe=True, name="lying_warn")
    with pytest.warns(RuntimeWarning, match="vector_safe=True"):
        assert kernel_vector_safe(kern) is True  # declaration still wins
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        kernel_vector_safe(kern)  # second resolution is silent
