"""Tests for the compilation pipeline (IR, passes, CompiledKernel)."""

import pytest

from repro.core.compiler import (
    CompilerProfile,
    Opcode,
    build_ir,
    compile_kernel,
    default_pass_pipeline,
)
from repro.core.dtypes import DType
from repro.core.errors import CompilationError
from repro.core.kernel import KernelModel, LaunchConfig


def _model(**kw):
    defaults = dict(name="k", dtype=DType.float64, loads_global=2,
                    stores_global=1, flops=10, scalar_args=2, working_values=16)
    defaults.update(kw)
    return KernelModel(**defaults)


class TestBuildIR:
    def test_memory_ops_counted(self):
        ir = build_ir(_model(loads_global=7, stores_global=1))
        assert ir.count(Opcode.LDG) == 7
        assert ir.count(Opcode.STG) == 1

    def test_flops_split_preserves_total(self):
        ir = build_ir(_model(flops=100))
        total = ir.count(Opcode.FFMA) + ir.count(Opcode.FADD) + ir.count(Opcode.FMUL)
        assert total == pytest.approx(100)

    def test_shared_and_barrier_ops(self):
        ir = build_ir(_model(shared_loads=4, shared_stores=2, barriers=3))
        assert ir.count(Opcode.LDS) == 4
        assert ir.count(Opcode.STS) == 2
        assert ir.count(Opcode.BAR) == 3

    def test_atomics_lowered_initially_as_atom(self):
        ir = build_ir(_model(atomics=6))
        assert ir.count(Opcode.ATOM) == 6

    def test_mix_aggregates(self):
        ir = build_ir(_model())
        mix = ir.mix()
        assert mix[Opcode.LDG] == 2
        assert ir.total_instructions() == pytest.approx(sum(mix.values()))


class TestPasses:
    def test_constant_promotion_reduces_ldc(self):
        model = _model(scalar_args=4)
        promoted = compile_kernel(model, CompilerProfile(constant_promotion=True,
                                                         promoted_loads_per_scalar=0.5))
        plain = compile_kernel(model, CompilerProfile(constant_promotion=False,
                                                      constant_loads_per_scalar=2.0))
        assert promoted.instruction_mix[Opcode.LDC] < plain.instruction_mix[Opcode.LDC]
        assert promoted.uses_constant_memory and not plain.uses_constant_memory

    def test_fast_math_requires_availability(self):
        model = _model(divides=5)
        available = compile_kernel(model, CompilerProfile(fast_math_available=True),
                                   fast_math=True)
        unavailable = compile_kernel(model, CompilerProfile(fast_math_available=False),
                                     fast_math=True)
        assert available.fast_math is True
        assert unavailable.fast_math is False

    def test_fast_math_lowers_effective_flops(self):
        model = _model(divides=20, transcendentals=10)
        profile = CompilerProfile(fast_math_available=True)
        fast = compile_kernel(model, profile, fast_math=True)
        slow = compile_kernel(model, profile, fast_math=False)
        assert fast.effective_flops_per_thread < slow.effective_flops_per_thread
        assert fast.raw_flops_per_thread == slow.raw_flops_per_thread

    def test_register_estimate_scales_with_profile(self):
        model = _model(working_values=18)
        low = compile_kernel(model, CompilerProfile(register_scale=1.0, register_bias=3))
        high = compile_kernel(model, CompilerProfile(register_scale=1.15, register_bias=3))
        assert high.registers_per_thread > low.registers_per_thread

    def test_int_op_inflation(self):
        model = _model(int_ops=20)
        inflated = compile_kernel(model, CompilerProfile(int_op_scale=1.5))
        plain = compile_kernel(model, CompilerProfile(int_op_scale=1.0))
        assert inflated.instruction_mix[Opcode.IADD3] > plain.instruction_mix[Opcode.IADD3]

    def test_atomic_cas_lowering_expands_ops(self):
        model = _model(atomics=6)
        cas = compile_kernel(model, CompilerProfile(atomic_mode="cas",
                                                    cas_expected_retries=4))
        native = compile_kernel(model, CompilerProfile(atomic_mode="native"))
        assert cas.instruction_mix.get(Opcode.ATOM_CAS, 0) > 0
        assert native.instruction_mix.get(Opcode.ATOM_CAS, 0) == 0
        assert cas.atomic_throughput_scale < native.atomic_throughput_scale

    def test_spill_detection(self):
        model = _model(working_values=300)
        spilled = compile_kernel(model, CompilerProfile(spill_threshold_values=200))
        assert spilled.spilled
        assert spilled.instruction_mix.get(Opcode.STL, 0) > 0
        assert spilled.local_memory_bytes_per_thread > 0

    def test_no_spill_below_threshold(self):
        compiled = compile_kernel(_model(working_values=50),
                                  CompilerProfile(spill_threshold_values=200))
        assert not compiled.spilled

    def test_pathology_requires_atomics(self):
        profile = CompilerProfile(pathology_threshold_values=50,
                                  pathology_penalty=100.0)
        no_atomics = compile_kernel(_model(working_values=100, atomics=0), profile)
        with_atomics = compile_kernel(_model(working_values=100, atomics=6), profile)
        assert (with_atomics.effective_flops_per_thread
                > 10 * no_atomics.effective_flops_per_thread)

    def test_invalid_atomic_mode_rejected(self):
        with pytest.raises(CompilationError):
            compile_kernel(_model(), CompilerProfile(atomic_mode="magic"))


class TestCompiledKernel:
    def test_metadata(self):
        launch = LaunchConfig.for_elements(1024, 256)
        compiled = compile_kernel(_model(), CompilerProfile(name="test"),
                                  launch=launch, backend_name="mybackend")
        assert compiled.backend_name == "mybackend"
        assert compiled.launch is launch
        assert compiled.kernel_name == "k"

    def test_dram_bytes_match_model(self):
        compiled = compile_kernel(_model(loads_global=3, stores_global=1),
                                  CompilerProfile())
        assert compiled.dram_bytes_per_thread == pytest.approx(4 * 8)

    def test_sass_listing_text(self):
        compiled = compile_kernel(_model(), CompilerProfile(name="cuda"))
        listing = compiled.sass_listing()
        assert any("LDG" in line for line in listing)
        assert listing[0].startswith("//")

    def test_default_pipeline_order(self):
        names = [p.name for p in default_pass_pipeline()]
        assert names == ["constant-promotion", "fast-math", "register-allocation",
                         "atomic-lowering", "spill-analysis"]


class TestCompileCache:
    """Memoisation of compile_kernel on (model, profile, fast_math, passes)."""

    def setup_method(self):
        from repro.core.compiler import clear_compile_cache
        clear_compile_cache()

    def test_identical_inputs_hit(self):
        from repro.core.compiler import compile_cache_info
        model = _model()
        profile = CompilerProfile()
        first = compile_kernel(model, profile)
        second = compile_kernel(model, profile)
        info = compile_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        assert first.instruction_mix == second.instruction_mix
        assert first.registers_per_thread == second.registers_per_thread
        # Per-call fields are fresh objects: annotating one result must not
        # leak into the cached entry or other callers.
        first.notes.append("local annotation")
        assert "local annotation" not in compile_kernel(model, profile).notes

    def test_mutated_model_is_a_miss_not_stale(self):
        from repro.core.compiler import compile_cache_info
        model = _model(flops=10)
        profile = CompilerProfile()
        base = compile_kernel(model, profile)
        scaled = compile_kernel(model.scaled(flops=1000), profile)
        assert compile_cache_info()["misses"] == 2
        assert scaled.effective_flops_per_thread > base.effective_flops_per_thread

    def test_fast_math_and_profile_are_part_of_the_key(self):
        model = _model(transcendentals=8)
        slow = compile_kernel(model, CompilerProfile())
        fast = compile_kernel(model, CompilerProfile(), fast_math=True)
        other = compile_kernel(model, CompilerProfile(int_op_scale=2.0))
        assert fast.fast_math and not slow.fast_math
        assert fast.effective_flops_per_thread < slow.effective_flops_per_thread
        assert other.instruction_mix[Opcode.IADD3] > slow.instruction_mix[Opcode.IADD3]

    def test_launch_is_annotated_per_call_on_hits(self):
        from repro.core.compiler import compile_cache_info
        model = _model()
        profile = CompilerProfile()
        launch_a = LaunchConfig.make(4, 64)
        launch_b = LaunchConfig.make(8, 128)
        a = compile_kernel(model, profile, launch=launch_a)
        b = compile_kernel(model, profile, launch=launch_b)
        assert compile_cache_info()["hits"] == 1
        assert a.launch == launch_a and b.launch == launch_b

    def test_pass_pipeline_identity_in_key(self):
        from repro.core.compiler import compile_cache_info
        model = _model()
        profile = CompilerProfile()
        pipeline = default_pass_pipeline()
        compile_kernel(model, profile, passes=pipeline)
        compile_kernel(model, profile, passes=pipeline)          # same objects
        assert compile_cache_info()["hits"] == 1
        compile_kernel(model, profile, passes=default_pass_pipeline())
        assert compile_cache_info()["misses"] == 2               # fresh objects
