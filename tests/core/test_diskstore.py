"""Tests for the shared disk-store helpers (budget, checksum, quarantine)."""

import json
import os
import warnings

import pytest

from repro.core.diskstore import (
    QUARANTINE_DIR,
    CorruptEntryWarning,
    dir_size_bytes,
    prune_dir_to_budget,
    read_json_entry,
    write_json_entry,
)


def _write(path, name, nbytes, mtime):
    full = os.path.join(path, name)
    with open(full, "wb") as fh:
        fh.write(b"x" * nbytes)
    os.utime(full, (mtime, mtime))
    return full


class TestPrune:
    def test_evicts_oldest_first(self, tmp_path):
        path = str(tmp_path)
        _write(path, "old.json", 100, 1_000)
        _write(path, "mid.json", 100, 2_000)
        _write(path, "new.json", 100, 3_000)
        removed = prune_dir_to_budget(path, 250)
        assert removed == 1
        assert sorted(os.listdir(path)) == ["mid.json", "new.json"]

    def test_newest_entry_survives_even_over_budget(self, tmp_path):
        path = str(tmp_path)
        _write(path, "old.json", 100, 1_000)
        _write(path, "new.json", 500, 2_000)
        prune_dir_to_budget(path, 50)
        assert os.listdir(path) == ["new.json"]

    def test_under_budget_is_a_no_op(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        assert prune_dir_to_budget(path, 1_000) == 0
        assert len(os.listdir(path)) == 2

    def test_non_positive_budget_disables(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        assert prune_dir_to_budget(path, 0) == 0
        assert prune_dir_to_budget(path, -1) == 0
        assert len(os.listdir(path)) == 2

    def test_only_matching_suffix_touched(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        _write(path, "keep.txt", 10_000, 500)
        prune_dir_to_budget(path, 150)
        names = sorted(os.listdir(path))
        assert "keep.txt" in names and "b.json" in names
        assert "a.json" not in names

    def test_missing_directory_is_harmless(self, tmp_path):
        assert prune_dir_to_budget(str(tmp_path / "absent"), 100) == 0

    def test_dir_size_counts_suffix_files_only(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.txt", 50, 1_000)
        assert dir_size_bytes(path) == 100


class TestChecksumRoundTrip:
    def test_written_entries_read_back_clean(self, tmp_path):
        path = str(tmp_path / "store" / "entry.json")
        payload = {"schema": "x/v1", "result": {"value": 1.5,
                                                "items": [1, 2, 3]}}
        assert write_json_entry(path, payload, max_bytes=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_json_entry(path) == payload

    def test_checksum_is_embedded_on_disk(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_json_entry(path, {"a": 1}, max_bytes=0)
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)
        assert "__checksum__" in raw
        assert "__checksum__" not in read_json_entry(path)

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"a": 1}, fh)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_json_entry(path) == {"a": 1}

    def test_missing_file_is_a_silent_miss(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_json_entry(str(tmp_path / "absent.json")) is None


class TestQuarantine:
    def _quarantined(self, tmp_path, name="entry.json"):
        return tmp_path / QUARANTINE_DIR / name

    def test_truncated_json_is_quarantined(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_json_entry(path, {"a": 1}, max_bytes=0)
        with open(path, "r+", encoding="utf-8") as fh:
            body = fh.read()
            fh.seek(0)
            fh.truncate()
            fh.write(body[: len(body) // 2])  # torn write
        with pytest.warns(CorruptEntryWarning, match="invalid JSON"):
            assert read_json_entry(path) is None
        assert not os.path.exists(path)
        assert self._quarantined(tmp_path).exists()

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        path = str(tmp_path / "entry.json")
        write_json_entry(path, {"a": 1}, max_bytes=0)
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)
        raw["a"] = 2  # bit-rot: valid JSON, wrong content
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(raw, fh)
        with pytest.warns(CorruptEntryWarning, match="checksum mismatch"):
            assert read_json_entry(path) is None
        assert self._quarantined(tmp_path).exists()

    def test_non_object_entry_is_quarantined(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("[1, 2, 3]")
        with pytest.warns(CorruptEntryWarning, match="not a JSON object"):
            assert read_json_entry(path) is None
        assert self._quarantined(tmp_path).exists()

    def test_quarantine_preserves_the_damaged_bytes(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{damaged")
        with pytest.warns(CorruptEntryWarning):
            read_json_entry(path)
        assert self._quarantined(tmp_path).read_text() == "{damaged"

    def test_quarantine_dir_is_invisible_to_prune(self, tmp_path):
        path = str(tmp_path / "entry.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{damaged")
        with pytest.warns(CorruptEntryWarning):
            read_json_entry(path)
        _write(str(tmp_path), "good.json", 100, 1_000)
        assert dir_size_bytes(str(tmp_path)) == 100
        assert prune_dir_to_budget(str(tmp_path), 1_000) == 0
        assert self._quarantined(tmp_path).exists()


class TestStoreSelfHealing:
    """The stores detect corruption, quarantine it, warn and recompute."""

    def _corrupt_all(self, directory):
        count = 0
        for entry in directory.iterdir():
            if entry.suffix == ".json":
                entry.write_text("{torn-write")
                count += 1
        return count

    def test_result_cache_heals_a_corrupt_entry(self, tmp_path):
        from repro.harness.runner import MeasurementProtocol
        from repro.workloads import get_workload
        from repro.workloads.cache import ResultCache, run_cached

        wl = get_workload("stencil")
        request = wl.make_request(
            params={"L": 20}, verify=False,
            protocol=MeasurementProtocol(warmup=0, repeats=1))
        store = tmp_path / "cache"
        first = run_cached(request,
                           cache=ResultCache(disk_dir=str(store)),
                           workload=wl)
        assert self._corrupt_all(store / "results") == 1

        fresh = ResultCache(disk_dir=str(store))
        with pytest.warns(CorruptEntryWarning):
            healed = run_cached(request, cache=fresh, workload=wl)
        assert healed.metrics == first.metrics
        assert fresh.info()["misses"] == 1  # corruption read as a miss
        assert (store / "results" / QUARANTINE_DIR).exists()
        # the store healed: a third cache sees a clean disk hit
        again = ResultCache(disk_dir=str(store))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_cached(request, cache=again, workload=wl)
        assert again.info()["disk_hits"] == 1

    def test_tuning_db_heals_a_corrupt_record(self, tmp_path):
        from repro.harness.runner import MeasurementProtocol
        from repro.tuning.db import TuningDB
        from repro.tuning.tuner import Tuner
        from repro.workloads import get_workload

        wl = get_workload("stencil")
        request = wl.make_request(
            params={"L": 20}, verify=False,
            protocol=MeasurementProtocol(warmup=0, repeats=1))
        store = tmp_path / "tune"
        db = TuningDB(disk_dir=str(store))
        outcome = Tuner(wl, request, db=db, budget=3, probe=False).search()
        assert outcome.record is not None
        assert self._corrupt_all(store / "records") == 1

        space = wl.tuning_space(request)
        fresh = TuningDB(disk_dir=str(store))
        with pytest.warns(CorruptEntryWarning):
            assert fresh.get(request, space) is None  # miss, not a crash
        assert (store / "records" / QUARANTINE_DIR).exists()
        # re-tuning repopulates the store over the quarantined wreckage
        Tuner(wl, request, db=fresh, budget=3, probe=False).search()
        again = TuningDB(disk_dir=str(store))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert again.get(request, space) is not None


class TestResultCacheBudget:
    def test_result_cache_disk_store_respects_budget(self, tmp_path):
        from repro.harness.runner import MeasurementProtocol
        from repro.workloads import get_workload
        from repro.workloads.cache import ResultCache, run_cached

        wl = get_workload("stencil")
        protocol = MeasurementProtocol(warmup=0, repeats=1)

        def request(L):
            return wl.make_request(params={"L": L}, verify=False,
                                   protocol=protocol)

        probe = ResultCache(disk_dir=str(tmp_path / "probe"))
        run_cached(request(32), cache=probe, workload=wl)
        results = tmp_path / "probe" / "results"
        [entry] = list(results.iterdir())
        size = entry.stat().st_size

        cache = ResultCache(disk_dir=str(tmp_path / "store"),
                            max_disk_bytes=int(size * 2.5))
        for L in (16, 24, 32, 48, 64):
            run_cached(request(L), cache=cache, workload=wl)
        stored = list((tmp_path / "store" / "results").iterdir())
        assert len(stored) <= 3
