"""Tests for the shared disk-store byte-budget helper."""

import os

from repro.core.diskstore import dir_size_bytes, prune_dir_to_budget


def _write(path, name, nbytes, mtime):
    full = os.path.join(path, name)
    with open(full, "wb") as fh:
        fh.write(b"x" * nbytes)
    os.utime(full, (mtime, mtime))
    return full


class TestPrune:
    def test_evicts_oldest_first(self, tmp_path):
        path = str(tmp_path)
        _write(path, "old.json", 100, 1_000)
        _write(path, "mid.json", 100, 2_000)
        _write(path, "new.json", 100, 3_000)
        removed = prune_dir_to_budget(path, 250)
        assert removed == 1
        assert sorted(os.listdir(path)) == ["mid.json", "new.json"]

    def test_newest_entry_survives_even_over_budget(self, tmp_path):
        path = str(tmp_path)
        _write(path, "old.json", 100, 1_000)
        _write(path, "new.json", 500, 2_000)
        prune_dir_to_budget(path, 50)
        assert os.listdir(path) == ["new.json"]

    def test_under_budget_is_a_no_op(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        assert prune_dir_to_budget(path, 1_000) == 0
        assert len(os.listdir(path)) == 2

    def test_non_positive_budget_disables(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        assert prune_dir_to_budget(path, 0) == 0
        assert prune_dir_to_budget(path, -1) == 0
        assert len(os.listdir(path)) == 2

    def test_only_matching_suffix_touched(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.json", 100, 2_000)
        _write(path, "keep.txt", 10_000, 500)
        prune_dir_to_budget(path, 150)
        names = sorted(os.listdir(path))
        assert "keep.txt" in names and "b.json" in names
        assert "a.json" not in names

    def test_missing_directory_is_harmless(self, tmp_path):
        assert prune_dir_to_budget(str(tmp_path / "absent"), 100) == 0

    def test_dir_size_counts_suffix_files_only(self, tmp_path):
        path = str(tmp_path)
        _write(path, "a.json", 100, 1_000)
        _write(path, "b.txt", 50, 1_000)
        assert dir_size_bytes(path) == 100


class TestResultCacheBudget:
    def test_result_cache_disk_store_respects_budget(self, tmp_path):
        from repro.harness.runner import MeasurementProtocol
        from repro.workloads import get_workload
        from repro.workloads.cache import ResultCache, run_cached

        wl = get_workload("stencil")
        protocol = MeasurementProtocol(warmup=0, repeats=1)

        def request(L):
            return wl.make_request(params={"L": L}, verify=False,
                                   protocol=protocol)

        probe = ResultCache(disk_dir=str(tmp_path / "probe"))
        run_cached(request(32), cache=probe, workload=wl)
        results = tmp_path / "probe" / "results"
        [entry] = list(results.iterdir())
        size = entry.stat().st_size

        cache = ResultCache(disk_dir=str(tmp_path / "store"),
                            max_disk_bytes=int(size * 2.5))
        for L in (16, 24, 32, 48, 64):
            run_cached(request(L), cache=cache, workload=wl)
        stored = list((tmp_path / "store" / "results").iterdir())
        assert len(stored) <= 3
