"""Tests for thread intrinsics (Dim3, proxies, shared memory, ceildiv)."""

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.core.errors import LaunchError
from repro.core.intrinsics import (
    AddressSpace,
    Dim3,
    ThreadState,
    barrier,
    bind_thread_state,
    block_dim,
    block_idx,
    ceildiv,
    current_thread_state,
    global_idx,
    shared_array,
    stack_allocation,
    thread_idx,
)


class TestCeildiv:
    @pytest.mark.parametrize("a,b,expected", [
        (10, 5, 2), (11, 5, 3), (1, 5, 1), (0, 5, 0), (1024, 256, 4),
        (1025, 256, 5),
    ])
    def test_values(self, a, b, expected):
        assert ceildiv(a, b) == expected

    def test_zero_divisor(self):
        with pytest.raises(LaunchError):
            ceildiv(10, 0)


class TestDim3:
    def test_from_int(self):
        assert Dim3.make(7) == Dim3(7, 1, 1)

    def test_from_tuple(self):
        assert Dim3.make((2, 3)) == Dim3(2, 3, 1)
        assert Dim3.make((2, 3, 4)) == Dim3(2, 3, 4)

    def test_from_dim3(self):
        d = Dim3(1, 2, 3)
        assert Dim3.make(d) is d

    def test_total(self):
        assert Dim3(4, 3, 2).total == 24

    def test_iter_and_tuple(self):
        assert tuple(Dim3(1, 2, 3)) == (1, 2, 3)
        assert Dim3(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_invalid(self):
        with pytest.raises(LaunchError):
            Dim3.make((1, 2, 3, 4))
        with pytest.raises(LaunchError):
            Dim3.make("bad")


def _state(tid=(0, 0, 0), bid=(0, 0, 0), bdim=(4, 1, 1), gdim=(2, 1, 1), **kw):
    return ThreadState(Dim3(*tid), Dim3(*bid), Dim3(*bdim), Dim3(*gdim), **kw)


class TestThreadState:
    def test_linear_ids(self):
        s = _state(tid=(1, 1, 0), bdim=(4, 2, 1), bid=(1, 0, 0), gdim=(3, 1, 1))
        assert s.linear_thread_id == 1 + 1 * 4
        assert s.linear_block_id == 1
        assert s.global_linear_id == 1 * 8 + 5

    def test_shared_alloc_same_key_same_array(self):
        shared = {}
        s1 = _state(tid=(0, 0, 0), block_shared=shared)
        s2 = _state(tid=(1, 0, 0), block_shared=shared)
        a1 = s1.shared_alloc("buf", 8, DType.float64)
        a2 = s2.shared_alloc("buf", 8, DType.float64)
        assert a1 is a2

    def test_shared_alloc_dtype_and_size(self):
        s = _state()
        arr = s.shared_alloc("x", 16, "float32")
        assert arr.dtype == np.float32 and arr.size == 16


class TestProxies:
    def test_outside_kernel_raises(self):
        with pytest.raises(LaunchError):
            _ = thread_idx.x

    def test_inside_binding(self):
        with bind_thread_state(_state(tid=(2, 0, 0), bid=(1, 0, 0))):
            assert thread_idx.x == 2
            assert block_idx.x == 1
            assert block_dim.x == 4
            assert current_thread_state().thread_idx.x == 2

    def test_global_idx(self):
        with bind_thread_state(_state(tid=(3, 0, 0), bid=(1, 0, 0), bdim=(4, 1, 1))):
            assert global_idx().x == 7

    def test_binding_restores_previous(self):
        outer = _state(tid=(1, 0, 0))
        inner = _state(tid=(2, 0, 0))
        with bind_thread_state(outer):
            with bind_thread_state(inner):
                assert thread_idx.x == 2
            assert thread_idx.x == 1

    def test_barrier_noop_without_barrier_object(self):
        with bind_thread_state(_state()):
            barrier()  # must not raise

    def test_repr_unbound(self):
        assert "unbound" in repr(thread_idx) or "thread_idx" in repr(thread_idx)


class TestStackAllocation:
    def test_shared_allocation_is_block_wide(self):
        shared = {}
        with bind_thread_state(_state(tid=(0, 0, 0), block_shared=shared)):
            a = stack_allocation(8, DType.float64, key="tile")
        with bind_thread_state(_state(tid=(1, 0, 0), block_shared=shared)):
            b = stack_allocation(8, DType.float64, key="tile")
        assert a is b

    def test_local_allocation_is_private(self):
        shared = {}
        with bind_thread_state(_state(block_shared=shared)):
            a = stack_allocation(8, DType.float64, address_space=AddressSpace.LOCAL)
            b = stack_allocation(8, DType.float64, address_space=AddressSpace.LOCAL)
        assert a is not b
        assert shared == {}

    def test_shared_array_wrapper(self):
        shared = {}
        with bind_thread_state(_state(block_shared=shared)):
            arr = shared_array(4, "float64", key="sums")
        assert arr.size == 4 and "sums" in shared

    def test_outside_kernel_raises(self):
        with pytest.raises(LaunchError):
            stack_allocation(8, DType.float64)
