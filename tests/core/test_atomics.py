"""Tests for atomic operations on simulated device memory."""

import numpy as np
import pytest

from repro.core.atomics import Atomic, AtomicView, atomic_add, atomic_max, atomic_min
from repro.core.dtypes import DType
from repro.core.errors import LaunchError
from repro.core.layout import Layout, LayoutTensor


class TestAtomicOnArrays:
    def test_fetch_add_returns_old(self):
        arr = np.zeros(4)
        old = Atomic.fetch_add(arr, 1, 5.0)
        assert old == 0.0
        assert arr[1] == 5.0

    def test_fetch_add_accumulates(self):
        arr = np.zeros(2)
        for _ in range(10):
            Atomic.fetch_add(arr, 0, 1.5)
        assert arr[0] == pytest.approx(15.0)

    def test_fetch_max(self):
        arr = np.array([3.0])
        assert Atomic.fetch_max(arr, 0, 10.0) == 3.0
        assert arr[0] == 10.0
        Atomic.fetch_max(arr, 0, 2.0)
        assert arr[0] == 10.0

    def test_fetch_min(self):
        arr = np.array([3.0])
        Atomic.fetch_min(arr, 0, -1.0)
        assert arr[0] == -1.0

    def test_compare_exchange_success(self):
        arr = np.array([7.0])
        assert Atomic.compare_exchange(arr, 0, 7.0, 9.0) is True
        assert arr[0] == 9.0

    def test_compare_exchange_failure(self):
        arr = np.array([7.0])
        assert Atomic.compare_exchange(arr, 0, 1.0, 9.0) is False
        assert arr[0] == 7.0

    def test_out_of_bounds(self):
        with pytest.raises(LaunchError):
            Atomic.fetch_add(np.zeros(4), 10, 1.0)

    def test_functional_aliases(self):
        arr = np.zeros(1)
        atomic_add(arr, 0, 2.0)
        atomic_max(arr, 0, 5.0)
        atomic_min(arr, 0, 1.0)
        assert arr[0] == 1.0


class TestAtomicOnTensors:
    def _fock(self, n=3):
        layout = Layout.row_major(n, n)
        storage = np.zeros(layout.size)
        return LayoutTensor(DType.float64, layout, storage), storage

    def test_tuple_index(self):
        fock, storage = self._fock()
        Atomic.fetch_add(fock, (1, 2), 4.0)
        assert storage[1 * 3 + 2] == 4.0

    def test_flat_index(self):
        fock, storage = self._fock()
        Atomic.fetch_add(fock, 4, 2.0)
        assert storage[4] == 2.0

    def test_symmetric_accumulation(self):
        fock, _ = self._fock()
        Atomic.fetch_add(fock, (0, 1), 1.0)
        Atomic.fetch_add(fock, (1, 0), 1.0)
        assert fock[0, 1] == fock[1, 0] == 1.0

    def test_tuple_index_on_plain_array_rejected(self):
        with pytest.raises(LaunchError):
            Atomic.fetch_add(np.zeros(9), (1, 2), 1.0)


class TestAtomicView:
    def test_view_form(self):
        arr = np.zeros(8)
        view = AtomicView(arr, 3)
        old = Atomic.fetch_add(view, 2.5)
        assert old == 0.0 and arr[3] == 2.5

    def test_missing_value_raises(self):
        with pytest.raises(LaunchError):
            Atomic.fetch_add(np.zeros(4), 1)
