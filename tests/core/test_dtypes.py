"""Tests for the DType registry."""

import numpy as np
import pytest

from repro.core.dtypes import DType, PRECISION_NAMES, dtype_from_any
from repro.core.errors import DTypeError


class TestDTypeBasics:
    def test_float64_size(self):
        assert DType.float64.sizeof == 8

    def test_float32_size(self):
        assert DType.float32.sizeof == 4

    def test_int32_size(self):
        assert DType.int32.sizeof == 4

    def test_bits(self):
        assert DType.float64.bits == 64
        assert DType.int8.bits == 8

    def test_kind_flags(self):
        assert DType.float32.is_float
        assert not DType.float32.is_integer
        assert DType.int64.is_integer
        assert not DType.int64.is_float

    def test_registry_is_frozen_instances(self):
        with pytest.raises(Exception):
            DType.float32.sizeof = 16

    def test_all_contains_known_types(self):
        names = {d.name for d in DType.all()}
        assert {"float32", "float64", "int32", "int64"} <= names

    def test_precision_names(self):
        assert PRECISION_NAMES == ("float32", "float64")


class TestDTypeLookup:
    @pytest.mark.parametrize("name,expected", [
        ("float32", DType.float32),
        ("fp64", DType.float64),
        ("f32", DType.float32),
        ("double", DType.float64),
        ("single", DType.float32),
        ("FLOAT64", DType.float64),
    ])
    def test_from_name_aliases(self, name, expected):
        assert DType.from_name(name) is expected

    def test_from_name_unknown_raises(self):
        with pytest.raises(DTypeError):
            DType.from_name("quad128")

    def test_from_numpy_roundtrip(self):
        for dt in (DType.float32, DType.float64, DType.int32, DType.uint64):
            assert DType.from_numpy(dt.to_numpy()) is dt

    def test_from_numpy_unknown_raises(self):
        with pytest.raises(DTypeError):
            DType.from_numpy(np.dtype("complex128"))

    def test_to_numpy_matches_size(self):
        for dt in DType.all():
            assert np.dtype(dt.to_numpy()).itemsize == dt.sizeof


class TestDtypeFromAny:
    def test_passthrough(self):
        assert dtype_from_any(DType.float64) is DType.float64

    def test_string(self):
        assert dtype_from_any("fp32") is DType.float32

    def test_numpy_dtype(self):
        assert dtype_from_any(np.float64) is DType.float64

    def test_numpy_dtype_object(self):
        assert dtype_from_any(np.dtype("int32")) is DType.int32

    def test_invalid_raises(self):
        with pytest.raises(DTypeError):
            dtype_from_any(object())
