"""Tests for the device runtime: DeviceContext, DeviceBuffer, streams,
events and captured device graphs."""

import numpy as np
import pytest

from repro.core import (
    DeviceContext,
    DType,
    Layout,
    block_dim,
    block_idx,
    kernel,
    thread_idx,
)
from repro.core.errors import DeviceError, OutOfMemoryError
from repro.core.kernel import KernelModel

#: a modelled store-only kernel, for tests that need non-zero kernel time
_FILL_MODEL = KernelModel(name="fill", dtype=DType.float64, loads_global=0,
                          stores_global=1, flops=0)


@kernel
def _fill(tensor, value, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        tensor[i] = value


@kernel
def _scale(tensor, factor, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        tensor[i] = tensor[i] * factor


class TestDeviceBuffer:
    def test_allocation_and_fill(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float32, 100)
        buf.fill(3.0)
        assert np.all(buf.copy_to_host() == 3.0)

    def test_copy_from_host_roundtrip(self, ctx, rng):
        data = rng.normal(size=64)
        buf = ctx.enqueue_create_buffer(DType.float64, 64)
        buf.copy_from_host(data)
        np.testing.assert_allclose(buf.copy_to_host(), data)

    def test_copy_from_host_wrong_size(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 10)
        with pytest.raises(DeviceError):
            buf.copy_from_host(np.zeros(5))

    def test_copy_to_host_into_out(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.fill(2.0)
        out = np.zeros(8)
        buf.copy_to_host(out)
        assert np.all(out == 2.0)

    def test_tensor_view(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 12)
        t = buf.tensor(Layout.row_major(3, 4))
        t[2, 3] = 5.0
        assert buf.array[11] == 5.0

    def test_free_and_double_free(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.free()
        with pytest.raises(DeviceError):
            buf.free()

    def test_use_after_free(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.free()
        with pytest.raises(DeviceError):
            buf.fill(1.0)

    def test_len_and_nbytes(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float32, 10)
        assert len(buf) == 10
        assert buf.nbytes == 40

    def test_out_of_memory(self, ctx):
        huge = ctx.spec.memory_bytes  # more than the reserved-capacity allows
        with pytest.raises(OutOfMemoryError):
            ctx.enqueue_create_buffer(DType.float64, huge // 8 + 1)


class TestDeviceContext:
    def test_kernel_launch_produces_correct_result(self, ctx):
        n = 100
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 7.0, n, grid_dim=4, block_dim=32)
        ctx.synchronize()
        assert np.all(buf.copy_to_host() == 7.0)

    def test_lazy_mode_defers_until_synchronize(self):
        ctx = DeviceContext("h100", eager=False)
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=1, block_dim=16)
        assert np.all(buf.array == 0.0)        # not yet executed
        ctx.synchronize()
        assert np.all(buf.array == 1.0)

    def test_multiple_kernels_in_order(self, ctx):
        n = 32
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 2.0, n, grid_dim=2, block_dim=16)
        ctx.enqueue_function(_scale, t, 3.0, n, grid_dim=2, block_dim=16)
        ctx.synchronize()
        assert np.all(buf.copy_to_host() == 6.0)

    def test_timeline_records_kernels_and_transfers(self, ctx):
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        buf.copy_from_host(np.zeros(n))
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=1, block_dim=16)
        buf.copy_to_host()
        kinds = [e.kind for e in ctx.timeline]
        assert kinds.count("kernel") == 1
        assert "h2d" in kinds and "d2h" in kinds
        assert ctx.kernels_launched == 1

    def test_modelled_time_recorded_with_model(self, ctx):
        n = 1024
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        model = KernelModel(name="fill", dtype=DType.float64, loads_global=0,
                            stores_global=1, flops=0)
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=4, block_dim=256,
                             model=model)
        ctx.synchronize()
        assert ctx.kernel_time_ms > 0

    def test_memory_summary_tracks_allocations(self, ctx):
        before = ctx.memory_summary["bytes_in_use"]
        buf = ctx.enqueue_create_buffer(DType.float64, 1000)
        assert ctx.memory_summary["bytes_in_use"] == before + 8000
        buf.free()
        assert ctx.memory_summary["bytes_in_use"] == before

    def test_create_tensor_convenience(self, ctx):
        t = ctx.create_tensor(DType.float64, Layout.row_major(4, 4))
        t[1, 1] = 3.0
        assert t[1, 1] == 3.0

    def test_reset_timeline(self, ctx):
        ctx.enqueue_create_buffer(DType.float32, 8).copy_to_host()
        ctx.reset_timeline()
        assert ctx.timeline == []

    def test_unknown_gpu_rejected(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            DeviceContext("rtx9090")


class TestLazyQueue:
    """Non-eager contexts: everything is ordered through the pending queue."""

    def test_h2d_kernel_d2h_ordering_under_lazy_mode(self):
        # Regression: transfers used to execute eagerly even with
        # eager=False, so a D2H issued after a kernel could observe
        # pre-kernel data.  All three must now drain in enqueue order.
        ctx = DeviceContext("h100", eager=False)
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        buf.copy_from_host(np.full(n, 2.0))
        ctx.enqueue_function(_scale, t, 3.0, n, grid_dim=1, block_dim=16)
        out = buf.copy_to_host(np.full(n, -1.0))
        assert np.all(out == -1.0)            # nothing ran yet
        assert np.all(buf.array == 0.0)       # H2D deferred too
        ctx.synchronize()
        assert np.all(out == 6.0)             # H2D -> kernel -> D2H

    def test_lazy_copy_to_host_returns_deferred_array(self):
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.copy_from_host(np.arange(8.0))
        result = buf.copy_to_host()
        assert np.all(np.isnan(result))       # loud sentinel until sync
        ctx.synchronize()
        np.testing.assert_array_equal(result, np.arange(8.0))

    def test_host_array_snapshot_taken_at_enqueue(self):
        ctx = DeviceContext("h100", eager=False)
        src = np.full(4, 1.0)
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        buf.copy_from_host(src)
        src[:] = 99.0                         # caller mutates before sync
        ctx.synchronize()
        assert np.all(buf.array == 1.0)

    def test_pending_queue_drains_on_synchronize(self):
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        buf.fill(1.0)
        buf.copy_to_host()
        assert ctx.pending_operations == 2
        ctx.synchronize()
        assert ctx.pending_operations == 0
        before = len(ctx.timeline)
        ctx.synchronize()                     # second sync is a no-op
        assert len(ctx.timeline) == before

    def test_reset_timeline_with_work_still_pending(self):
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        buf.copy_from_host(np.zeros(4))
        ctx.synchronize()
        buf.fill(5.0)                         # still pending
        ctx.reset_timeline()
        assert ctx.timeline == []             # executed history cleared...
        assert ctx.pending_operations == 1    # ...pending work preserved
        ctx.synchronize()
        assert np.all(buf.array == 5.0)
        assert ctx.elapsed_ms > 0.0           # clocks restarted from zero

    def test_use_after_free_in_pending_kernel_names_the_buffer(self):
        ctx = DeviceContext("h100", eager=False)
        n = 8
        buf = ctx.enqueue_create_buffer(DType.float64, n, label="victim")
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=1, block_dim=8)
        buf.free()
        with pytest.raises(DeviceError, match="victim"):
            ctx.synchronize()

    def test_use_after_free_in_pending_transfer_names_the_buffer(self):
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="gone")
        buf.copy_from_host(np.zeros(8))
        buf.free()
        with pytest.raises(DeviceError, match="gone"):
            ctx.synchronize()


class TestFillMemset:
    def test_fill_is_a_timeline_memset_event(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 1024, label="m")
        buf.fill(3.0)
        memsets = [e for e in ctx.timeline if e.kind == "memset"]
        assert len(memsets) == 1
        assert memsets[0].modelled_time_ms > 0.0
        assert "m" in memsets[0].name
        assert np.all(buf.array == 3.0)

    def test_enqueue_fill_is_stream_ordered_when_lazy(self):
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        ctx.enqueue_fill(buf, 7.0)
        assert np.all(buf.array == 0.0)
        ctx.synchronize()
        assert np.all(buf.array == 7.0)


class TestEvents:
    def test_elapsed_ms_is_monotonic_along_a_stream(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 4096)
        stamps = []
        for i in range(4):
            buf.copy_from_host(np.zeros(4096))
            stamps.append(ctx.event(f"e{i}").record().elapsed_ms())
        assert stamps == sorted(stamps)
        assert stamps[0] < stamps[-1]         # strictly advancing with work

    def test_elapsed_requires_execution(self):
        ctx = DeviceContext("h100", eager=False)
        ev = ctx.event("later").record()
        with pytest.raises(DeviceError, match="not executed"):
            ev.elapsed_ms()
        ctx.synchronize()
        assert ev.elapsed_ms() == 0.0         # recorded on an idle stream

    def test_elapsed_on_unrecorded_event_raises(self, ctx):
        with pytest.raises(DeviceError, match="never recorded"):
            ctx.event("nobody").elapsed_ms()

    def test_wait_on_unrecorded_event_raises(self, ctx):
        with pytest.raises(DeviceError, match="never recorded"):
            ctx.stream("s").wait(ctx.event("unrecorded"))

    def test_reset_timeline_invalidates_recorded_events(self, ctx):
        # A pre-reset timestamp belongs to the discarded timeline; waiting
        # on it afterwards would schedule work at a stale absolute time and
        # inflate elapsed_ms past serial_time_ms.
        buf = ctx.enqueue_create_buffer(DType.float64, 1 << 16)
        buf.copy_from_host(np.zeros(1 << 16))
        ev = ctx.event("stale").record()
        ctx.reset_timeline()
        with pytest.raises(DeviceError, match="never recorded"):
            ctx.stream("s2").wait(ev)
        with pytest.raises(DeviceError, match="never recorded"):
            ev.elapsed_ms()
        buf.copy_to_host()
        assert ctx.elapsed_ms == pytest.approx(ctx.serial_time_ms)
        ev.record()                            # re-recording revives it
        assert ev.elapsed_ms() == pytest.approx(ctx.elapsed_ms)

    def test_elapsed_since_reports_the_interval(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 1 << 16)
        start = ctx.event("start").record()
        buf.copy_from_host(np.zeros(1 << 16))
        stop = ctx.event("stop").record()
        interval = stop.elapsed_ms(since=start)
        assert interval == pytest.approx(
            stop.elapsed_ms() - start.elapsed_ms())
        assert interval > 0.0


class TestStreamsAndOverlap:
    def test_stream_identity_and_pool(self, ctx):
        assert ctx.stream("a") is ctx.stream("a")
        assert ctx.stream_pool(1) == [ctx.default_stream]
        pool = ctx.stream_pool(3)
        assert len(pool) == 3 and len({s.name for s in pool}) == 3

    def test_foreign_stream_rejected(self, ctx):
        other = DeviceContext("h100")
        with pytest.raises(DeviceError):
            ctx.enqueue_create_buffer(DType.float64, 4).fill(
                0.0, stream=other.default_stream)

    def test_foreign_event_rejected_by_wait(self, ctx):
        # a foreign timestamp would leak another context's absolute
        # timeline into this one's clocks
        other = DeviceContext("h100")
        other.enqueue_create_buffer(DType.float64, 1 << 18).copy_to_host()
        ev = other.event("theirs").record()
        with pytest.raises(DeviceError, match="belong"):
            ctx.stream("s").wait(ev)

    def test_foreign_event_rejected_by_elapsed_since(self, ctx):
        other = DeviceContext("h100")
        theirs = other.event("theirs").record()
        mine = ctx.event("mine").record()
        with pytest.raises(DeviceError, match="same"):
            mine.elapsed_ms(since=theirs)

    def test_fan_in_joins_lanes_and_skips_the_target(self, ctx):
        pool = ctx.stream_pool(3)
        compute = ctx.stream("compute")
        bufs = [ctx.enqueue_create_buffer(DType.float64, 1 << 16)
                for _ in pool]
        for buf, lane in zip(bufs, pool):
            buf.copy_from_host(np.zeros(1 << 16), stream=lane)
        ctx.fan_in(pool + [compute], compute, prefix="up")
        bufs[0].copy_to_host(stream=compute)
        # the download starts only after the slowest upload lane
        download = ctx.timeline[-1]
        assert download.start_ms == pytest.approx(
            max(e.end_ms for e in ctx.timeline[:3]))
        # no join event was recorded for the target stream itself
        assert not any(e.kind == "event" and e.stream == "compute"
                       for e in ctx.timeline)

    def test_two_stream_copy_compute_pipeline_beats_serial_sum(self, ctx):
        # ISSUE-4 acceptance: with the copy on one stream and an
        # independent kernel on another, the makespan must be strictly
        # less than the serial sum of the events.
        copy_s, compute_s = ctx.stream("copy"), ctx.stream("compute")
        big = ctx.enqueue_create_buffer(DType.float64, 1 << 20)
        big.copy_from_host(np.zeros(1 << 20), stream=copy_s)
        n = 256
        work = ctx.enqueue_create_buffer(DType.float64, n)
        ctx.enqueue_function(_fill, work.tensor(), 1.0, n, grid_dim=1,
                             block_dim=n, model=_FILL_MODEL, stream=compute_s)
        assert ctx.elapsed_ms < ctx.serial_time_ms
        lanes = ctx.lanes
        assert set(lanes) == {"copy", "compute"}
        breakdown = ctx.pipeline_breakdown()
        assert breakdown.overlap_saved_ms > 0.0
        assert breakdown.as_dict()["lanes"]["copy"] > 0.0

    def test_single_stream_pipeline_is_serial(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 1 << 18)
        buf.copy_from_host(np.zeros(1 << 18))
        buf.copy_to_host()
        assert ctx.elapsed_ms == pytest.approx(ctx.serial_time_ms)

    def test_event_wait_serialises_across_streams(self, ctx):
        s1, s2 = ctx.stream("s1"), ctx.stream("s2")
        buf = ctx.enqueue_create_buffer(DType.float64, 1 << 18)
        buf.copy_from_host(np.zeros(1 << 18), stream=s1)
        done = ctx.event("h2d-done").record(s1)
        s2.wait(done)
        buf.copy_to_host(stream=s2)
        # the dependent copy cannot overlap the first one
        assert ctx.elapsed_ms == pytest.approx(ctx.serial_time_ms)

    def test_lazy_cross_stream_pipeline_executes_in_dag_order(self):
        ctx = DeviceContext("h100", eager=False)
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        h2d, compute = ctx.stream("h2d"), ctx.stream("compute")
        buf.copy_from_host(np.full(n, 2.0), stream=h2d)
        compute.wait(ctx.event("up").record(h2d))
        ctx.enqueue_function(_scale, t, 2.0, n, grid_dim=1, block_dim=n,
                             stream=compute)
        out = buf.copy_to_host(stream=compute)
        ctx.synchronize()
        assert np.all(out == 4.0)


class TestDeviceGraph:
    def _captured_fill(self, ctx, n=64):
        buf = ctx.enqueue_create_buffer(DType.float64, n, label="x")
        t = buf.tensor()
        with ctx.capture("fill-step") as graph:
            buf.copy_from_host(np.zeros(n))
            ctx.enqueue_function(_scale, t, 3.0, n, grid_dim=1, block_dim=n,
                                 model=_FILL_MODEL)
            buf.copy_to_host()
        return buf, graph

    def test_capture_records_without_executing(self, ctx):
        buf, graph = self._captured_fill(ctx)
        assert np.all(buf.array == 0.0)
        assert ctx.timeline == []
        assert graph.num_operations == 3 and graph.num_kernels == 1
        assert graph.makespan_ms > 0.0
        assert graph.input_labels == ("x",)

    def test_replay_executes_and_rebinds_inputs(self, ctx):
        buf, graph = self._captured_fill(ctx, n=64)
        out = graph.replay(x=np.full(64, 2.0))
        np.testing.assert_array_equal(out["x"], np.full(64, 6.0))
        out2 = graph.replay()                 # falls back to captured source
        np.testing.assert_array_equal(out2["x"], np.zeros(64))
        assert graph.replays == 2

    def test_replay_appends_one_summary_timeline_event(self, ctx):
        _, graph = self._captured_fill(ctx)
        graph.replay()
        graph.replay()
        kinds = [e.kind for e in ctx.timeline]
        assert kinds == ["graph", "graph"]
        assert ctx.elapsed_ms == pytest.approx(2 * graph.makespan_ms)

    def test_unknown_binding_is_a_clean_error(self, ctx):
        _, graph = self._captured_fill(ctx)
        with pytest.raises(DeviceError, match="nope"):
            graph.replay(nope=np.zeros(64))

    def test_wrong_size_binding_rejected(self, ctx):
        _, graph = self._captured_fill(ctx, n=64)
        with pytest.raises(DeviceError, match="elements"):
            graph.replay(x=np.zeros(8))

    def test_replay_of_freed_buffer_names_it(self, ctx):
        buf, graph = self._captured_fill(ctx)
        buf.free()
        with pytest.raises(DeviceError, match="x"):
            graph.replay()

    def test_replay_before_capture_closes_raises(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        with ctx.capture() as graph:
            buf.fill(1.0)
            with pytest.raises(DeviceError, match="capturing"):
                graph.replay()

    def test_synchronize_during_capture_raises(self, ctx):
        with ctx.capture():
            with pytest.raises(DeviceError, match="capture"):
                ctx.synchronize()

    def test_nested_capture_rejected(self, ctx):
        with ctx.capture():
            with pytest.raises(DeviceError, match="already active"):
                ctx.capture().__enter__()

    def test_noncontiguous_copy_to_host_out_rejected(self, ctx):
        # reshape(-1) of an F-order destination would be a copy: the write
        # would silently miss the caller's array
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        buf.fill(7.0)
        with pytest.raises(DeviceError, match="contiguous"):
            buf.copy_to_host(np.zeros((2, 2)).T)
        out2d = np.zeros((2, 2))              # C-order 2-D view is fine
        buf.copy_to_host(out2d)
        assert np.all(out2d == 7.0)

    def test_replay_drains_a_pending_lazy_queue_first(self):
        # A replay is ordered after previously enqueued work — it must not
        # read buffer contents that a pending H2D has not yet written.
        ctx = DeviceContext("h100", eager=False)
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="src")
        with ctx.capture() as graph:
            buf.copy_to_host()
        buf.copy_from_host(np.full(4, 5.0))   # pending, not synchronized
        out = graph.replay()
        np.testing.assert_array_equal(out["src"], np.full(4, 5.0))
        assert ctx.pending_operations == 0

    def test_wait_on_event_from_outside_the_capture_rejected(self, ctx):
        # Same rule as CUDA stream capture: the dependency would otherwise
        # silently vanish from the replayed DAG and its makespan.
        buf = ctx.enqueue_create_buffer(DType.float64, 4)
        outside = ctx.event("outside").record()
        s = ctx.stream("s")
        with pytest.raises(DeviceError, match="outside"):
            with ctx.capture():
                s.wait(outside)
                buf.copy_to_host(stream=s)

    def test_duplicate_h2d_labels_rejected_at_capture(self, ctx):
        # Replay bindings are keyed by label; two buffers sharing one would
        # silently rebind only the last — refuse the capture instead.
        a = ctx.enqueue_create_buffer(DType.float64, 4, label="same")
        b = ctx.enqueue_create_buffer(DType.float64, 4, label="same")
        with pytest.raises(DeviceError, match="same"):
            with ctx.capture():
                a.copy_from_host(np.zeros(4))
                b.copy_from_host(np.ones(4))

    def test_duplicate_d2h_labels_rejected_at_capture(self, ctx):
        a = ctx.enqueue_create_buffer(DType.float64, 4, label="out")
        b = ctx.enqueue_create_buffer(DType.float64, 4, label="out")
        with pytest.raises(DeviceError, match="out"):
            with ctx.capture():
                a.copy_to_host()
                b.copy_to_host()

    def test_second_d2h_of_one_label_rejected_at_capture(self, ctx):
        # An intermediate snapshot would silently collapse to the final
        # state in the label-keyed outputs dict — refuse the capture.
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="f")
        t = buf.tensor()
        with pytest.raises(DeviceError, match="two D2H"):
            with ctx.capture():
                buf.copy_to_host()
                ctx.enqueue_function(_scale, t, 2.0, 4, grid_dim=1,
                                     block_dim=4)
                buf.copy_to_host()

    def test_replay_during_active_capture_rejected(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="x")
        with ctx.capture() as inner:
            buf.copy_to_host()
        with ctx.capture():
            with pytest.raises(DeviceError, match="capture is active"):
                inner.replay()

    def test_second_h2d_of_one_label_rejected_at_capture(self, ctx):
        # A replay binding for the label would silently rebind *both*
        # uploads (including a mid-graph re-seed) — refuse the capture.
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="x")
        with pytest.raises(DeviceError, match="two H2D"):
            with ctx.capture():
                buf.copy_from_host(np.ones(4))
                buf.copy_from_host(np.full(4, 2.0))

    def test_multi_stream_graph_makespan_reflects_overlap(self, ctx):
        s1, s2 = ctx.stream("g1"), ctx.stream("g2")
        a = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="a")
        b = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="b")
        with ctx.capture("wide") as graph:
            a.copy_from_host(np.zeros(1 << 18), stream=s1)
            b.copy_from_host(np.zeros(1 << 18), stream=s2)
        serial_guess = 2 * graph.makespan_ms
        with ctx.capture("narrow") as serial_graph:
            a.copy_from_host(np.zeros(1 << 18))
            b.copy_from_host(np.zeros(1 << 18))
        assert graph.makespan_ms < serial_graph.makespan_ms
        assert serial_graph.makespan_ms == pytest.approx(serial_guess)

    def test_multi_stream_graph_replay_keeps_per_lane_accounting(self, ctx):
        s1, s2 = ctx.stream("g1"), ctx.stream("g2")
        a = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="a")
        b = ctx.enqueue_create_buffer(DType.float64, 1 << 16, label="b")
        with ctx.capture("wide") as graph:
            a.copy_from_host(np.zeros(1 << 18), stream=s1)
            b.copy_from_host(np.zeros(1 << 16), stream=s2)
        graph.replay()
        lanes = ctx.pipeline_breakdown().lanes
        assert lanes["g1"] > 0.0 and lanes["g2"] > 0.0   # not all on one lane
        assert lanes["g1"] > lanes["g2"]                 # bigger copy, busier
        assert ctx.elapsed_ms == pytest.approx(graph.makespan_ms)

    def test_copy_to_host_out_rejected_during_capture(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="x")
        dest = np.zeros(4)
        with pytest.raises(DeviceError, match="replay"):
            with ctx.capture():
                buf.copy_to_host(dest)

    def test_captured_copy_to_host_returns_none(self, ctx):
        # during capture the call only registers the download — returning
        # an array would hand back data no code path ever writes
        buf = ctx.enqueue_create_buffer(DType.float64, 4, label="x")
        with ctx.capture() as graph:
            assert buf.copy_to_host() is None
        assert "x" in graph.replay()

    def test_graph_lane_busy_excludes_wait_idle(self, ctx):
        # A cross-stream wait must not count the waiting lane's idle time
        # as busy work: a fully serialised captured pipeline reports the
        # same serial_ms and zero overlap, exactly like direct enqueue.
        s1, s2 = ctx.stream("g1"), ctx.stream("g2")
        big = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="big")
        small = ctx.enqueue_create_buffer(DType.float64, 1 << 12, label="sm")
        with ctx.capture("serialised") as graph:
            big.copy_from_host(np.zeros(1 << 18), stream=s1)
            s2.wait(ctx.event("up").record(s1))
            small.copy_to_host(stream=s2)
        graph.replay()
        breakdown = ctx.pipeline_breakdown()
        assert breakdown.overlap_saved_ms == pytest.approx(0.0)
        assert breakdown.elapsed_ms == pytest.approx(graph.makespan_ms)

    def test_rerecorded_event_in_capture_uses_latest_record(self, ctx):
        # a wait observes the latest preceding record, as on a real stream
        s1, s2 = ctx.stream("r1"), ctx.stream("r2")
        first = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="r_a")
        second = ctx.enqueue_create_buffer(DType.float64, 1 << 18, label="r_b")
        ev = ctx.event("tick")
        with ctx.capture("rerecord") as graph:
            first.copy_from_host(np.zeros(1 << 18), stream=s1)
            ev.record(s1)
            second.copy_from_host(np.ones(1 << 18), stream=s1)
            ev.record(s1)                     # re-record after the 2nd copy
            s2.wait(ev)
            second.copy_to_host(stream=s2)
        with ctx.capture("serial") as serial:
            first.copy_from_host(np.zeros(1 << 18))
            second.copy_from_host(np.ones(1 << 18))
            second.copy_to_host()
        assert graph.makespan_ms == pytest.approx(serial.makespan_ms)
