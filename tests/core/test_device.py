"""Tests for DeviceContext and DeviceBuffer."""

import numpy as np
import pytest

from repro.core import (
    DeviceContext,
    DType,
    Layout,
    block_dim,
    block_idx,
    kernel,
    thread_idx,
)
from repro.core.errors import DeviceError, OutOfMemoryError
from repro.core.kernel import KernelModel


@kernel
def _fill(tensor, value, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        tensor[i] = value


@kernel
def _scale(tensor, factor, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        tensor[i] = tensor[i] * factor


class TestDeviceBuffer:
    def test_allocation_and_fill(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float32, 100)
        buf.fill(3.0)
        assert np.all(buf.copy_to_host() == 3.0)

    def test_copy_from_host_roundtrip(self, ctx, rng):
        data = rng.normal(size=64)
        buf = ctx.enqueue_create_buffer(DType.float64, 64)
        buf.copy_from_host(data)
        np.testing.assert_allclose(buf.copy_to_host(), data)

    def test_copy_from_host_wrong_size(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 10)
        with pytest.raises(DeviceError):
            buf.copy_from_host(np.zeros(5))

    def test_copy_to_host_into_out(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.fill(2.0)
        out = np.zeros(8)
        buf.copy_to_host(out)
        assert np.all(out == 2.0)

    def test_tensor_view(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 12)
        t = buf.tensor(Layout.row_major(3, 4))
        t[2, 3] = 5.0
        assert buf.array[11] == 5.0

    def test_free_and_double_free(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.free()
        with pytest.raises(DeviceError):
            buf.free()

    def test_use_after_free(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float64, 8)
        buf.free()
        with pytest.raises(DeviceError):
            buf.fill(1.0)

    def test_len_and_nbytes(self, ctx):
        buf = ctx.enqueue_create_buffer(DType.float32, 10)
        assert len(buf) == 10
        assert buf.nbytes == 40

    def test_out_of_memory(self, ctx):
        huge = ctx.spec.memory_bytes  # more than the reserved-capacity allows
        with pytest.raises(OutOfMemoryError):
            ctx.enqueue_create_buffer(DType.float64, huge // 8 + 1)


class TestDeviceContext:
    def test_kernel_launch_produces_correct_result(self, ctx):
        n = 100
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 7.0, n, grid_dim=4, block_dim=32)
        ctx.synchronize()
        assert np.all(buf.copy_to_host() == 7.0)

    def test_lazy_mode_defers_until_synchronize(self):
        ctx = DeviceContext("h100", eager=False)
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=1, block_dim=16)
        assert np.all(buf.array == 0.0)        # not yet executed
        ctx.synchronize()
        assert np.all(buf.array == 1.0)

    def test_multiple_kernels_in_order(self, ctx):
        n = 32
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 2.0, n, grid_dim=2, block_dim=16)
        ctx.enqueue_function(_scale, t, 3.0, n, grid_dim=2, block_dim=16)
        ctx.synchronize()
        assert np.all(buf.copy_to_host() == 6.0)

    def test_timeline_records_kernels_and_transfers(self, ctx):
        n = 16
        buf = ctx.enqueue_create_buffer(DType.float32, n)
        buf.copy_from_host(np.zeros(n))
        t = buf.tensor()
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=1, block_dim=16)
        buf.copy_to_host()
        kinds = [e.kind for e in ctx.timeline]
        assert kinds.count("kernel") == 1
        assert "h2d" in kinds and "d2h" in kinds
        assert ctx.kernels_launched == 1

    def test_modelled_time_recorded_with_model(self, ctx):
        n = 1024
        buf = ctx.enqueue_create_buffer(DType.float64, n)
        t = buf.tensor()
        model = KernelModel(name="fill", dtype=DType.float64, loads_global=0,
                            stores_global=1, flops=0)
        ctx.enqueue_function(_fill, t, 1.0, n, grid_dim=4, block_dim=256,
                             model=model)
        ctx.synchronize()
        assert ctx.kernel_time_ms > 0

    def test_memory_summary_tracks_allocations(self, ctx):
        before = ctx.memory_summary["bytes_in_use"]
        buf = ctx.enqueue_create_buffer(DType.float64, 1000)
        assert ctx.memory_summary["bytes_in_use"] == before + 8000
        buf.free()
        assert ctx.memory_summary["bytes_in_use"] == before

    def test_create_tensor_convenience(self, ctx):
        t = ctx.create_tensor(DType.float64, Layout.row_major(4, 4))
        t[1, 1] = 3.0
        assert t[1, 1] == 3.0

    def test_reset_timeline(self, ctx):
        ctx.enqueue_create_buffer(DType.float32, 8).copy_to_host()
        ctx.reset_timeline()
        assert ctx.timeline == []

    def test_unknown_gpu_rejected(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            DeviceContext("rtx9090")
