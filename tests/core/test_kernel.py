"""Tests for Kernel, LaunchConfig and KernelModel."""

import pytest

from repro.core.dtypes import DType
from repro.core.errors import LaunchError
from repro.core.kernel import Kernel, KernelModel, LaunchConfig, MemoryPattern, kernel


class TestLaunchConfig:
    def test_make_from_ints(self):
        cfg = LaunchConfig.make(10, 128)
        assert cfg.num_blocks == 10
        assert cfg.threads_per_block == 128
        assert cfg.total_threads == 1280

    def test_make_from_tuples(self):
        cfg = LaunchConfig.make((4, 2, 1), (16, 4, 1))
        assert cfg.grid_dim.total == 8
        assert cfg.block_dim.total == 64

    def test_for_elements(self):
        cfg = LaunchConfig.for_elements(1000, 256)
        assert cfg.num_blocks == 4
        assert cfg.total_threads >= 1000

    def test_for_elements_exact(self):
        cfg = LaunchConfig.for_elements(1024, 256)
        assert cfg.num_blocks == 4

    def test_for_elements_invalid(self):
        with pytest.raises(LaunchError):
            LaunchConfig.for_elements(0, 256)

    def test_block_too_large(self):
        with pytest.raises(LaunchError):
            LaunchConfig.make(1, 2048)

    def test_zero_extent_rejected(self):
        with pytest.raises(LaunchError):
            LaunchConfig.make(0, 128)


class TestKernelModel:
    def _model(self, **kw):
        defaults = dict(name="k", dtype=DType.float64, loads_global=2,
                        stores_global=1, flops=4)
        defaults.update(kw)
        return KernelModel(**defaults)

    def test_bytes_per_thread(self):
        m = self._model()
        assert m.bytes_per_thread() == 3 * 8

    def test_total_bytes_scales_with_threads(self):
        m = self._model()
        assert m.total_bytes(1000) == 24 * 1000

    def test_total_flops_weights_specials(self):
        plain = self._model()
        with_div = self._model(divides=1)
        assert with_div.total_flops(10) > plain.total_flops(10)

    def test_arithmetic_intensity(self):
        m = self._model(loads_global=1, stores_global=1, flops=8, dtype=DType.float32)
        assert m.arithmetic_intensity() == pytest.approx(1.0)

    def test_arithmetic_intensity_no_traffic(self):
        m = self._model(loads_global=0, stores_global=0)
        assert m.arithmetic_intensity() == float("inf")

    def test_invalid_pattern(self):
        with pytest.raises(LaunchError):
            self._model(memory_pattern="zigzag")

    def test_invalid_active_fraction(self):
        with pytest.raises(LaunchError):
            self._model(active_fraction=0.0)
        with pytest.raises(LaunchError):
            self._model(active_fraction=1.5)

    def test_scaled_returns_copy(self):
        m = self._model()
        m2 = m.scaled(flops=100)
        assert m2.flops == 100 and m.flops == 4
        assert m2.loads_global == m.loads_global

    def test_memory_pattern_constants(self):
        assert set(MemoryPattern.ALL) == {"stride1", "stencil3d", "strided", "gather"}


class TestKernelDecorator:
    def test_bare_decorator(self):
        @kernel
        def my_kernel(x):
            return x

        assert isinstance(my_kernel, Kernel)
        assert my_kernel.name == "my_kernel"
        assert my_kernel(3) == 3

    def test_decorator_with_name(self):
        @kernel(name="custom")
        def body():
            pass

        assert body.name == "custom"

    def test_decorator_with_model_builder(self):
        def builder(n):
            return KernelModel(name="m", dtype=DType.float32, loads_global=1,
                               stores_global=1, flops=n)

        @kernel(model=builder)
        def body():
            pass

        assert body.model(n=5).flops == 5

    def test_model_without_builder_raises(self):
        @kernel
        def body():
            pass

        with pytest.raises(LaunchError):
            body.model()

    def test_non_callable_rejected(self):
        with pytest.raises(LaunchError):
            Kernel(42)
