"""Tests for Layout and LayoutTensor."""

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.core.errors import LayoutError
from repro.core.layout import Layout, LayoutTensor


class TestLayout:
    def test_row_major_strides(self):
        layout = Layout.row_major(4, 3, 2)
        assert layout.shape == (4, 3, 2)
        assert layout.strides == (6, 2, 1)

    def test_col_major_strides(self):
        layout = Layout.col_major(4, 3, 2)
        assert layout.strides == (1, 4, 12)

    def test_tuple_argument_form(self):
        assert Layout.row_major((8, 8)).shape == (8, 8)

    def test_size(self):
        assert Layout.row_major(5, 6, 7).size == 210

    def test_rank(self):
        assert Layout.row_major(10).rank == 1
        assert Layout.row_major(2, 2, 2, 2).rank == 4

    def test_offset_row_major(self):
        layout = Layout.row_major(4, 5)
        assert layout.offset(0, 0) == 0
        assert layout.offset(1, 0) == 5
        assert layout.offset(2, 3) == 13

    def test_offset_col_major(self):
        layout = Layout.col_major(4, 5)
        assert layout.offset(1, 0) == 1
        assert layout.offset(0, 1) == 4

    def test_offset_out_of_bounds(self):
        layout = Layout.row_major(4, 5)
        with pytest.raises(LayoutError):
            layout.offset(4, 0)
        with pytest.raises(LayoutError):
            layout.offset(0, -1)

    def test_offset_wrong_rank(self):
        with pytest.raises(LayoutError):
            Layout.row_major(4, 5).offset(1)

    def test_zero_dimension_rejected(self):
        with pytest.raises(LayoutError):
            Layout.row_major(0, 5)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            Layout.row_major()

    def test_is_contiguous(self):
        assert Layout.row_major(3, 3).is_contiguous
        assert Layout.col_major(3, 3).is_contiguous

    def test_nbytes(self):
        assert Layout.row_major(10).nbytes("float64") == 80
        assert Layout.row_major(10, 10).nbytes(DType.float32) == 400

    def test_offsets_cover_all_elements_uniquely(self):
        layout = Layout.row_major(3, 4, 5)
        offsets = {layout.offset(i, j, k)
                   for i in range(3) for j in range(4) for k in range(5)}
        assert offsets == set(range(60))


class TestLayoutTensor:
    def _tensor(self, shape=(4, 5), dtype=DType.float64, **kw):
        layout = Layout.row_major(*shape)
        storage = np.zeros(layout.size, dtype=dtype.to_numpy())
        return LayoutTensor(dtype, layout, storage, **kw), storage

    def test_get_set_roundtrip(self):
        t, storage = self._tensor()
        t[2, 3] = 7.5
        assert t[2, 3] == 7.5
        assert storage[2 * 5 + 3] == 7.5

    def test_1d_scalar_index(self):
        layout = Layout.row_major(8)
        storage = np.arange(8, dtype=np.float64)
        t = LayoutTensor(DType.float64, layout, storage)
        assert t[3] == 3.0

    def test_immutable_rejects_writes(self):
        t, _ = self._tensor(mut=False)
        with pytest.raises(LayoutError):
            t[0, 0] = 1.0

    def test_bounds_check(self):
        t, _ = self._tensor()
        with pytest.raises(LayoutError):
            _ = t[4, 0]

    def test_bounds_check_disabled_allows_fast_path(self):
        t, _ = self._tensor(bounds_check=False)
        t[1, 1] = 2.0
        assert t[1, 1] == 2.0

    def test_storage_too_small(self):
        layout = Layout.row_major(10)
        with pytest.raises(LayoutError):
            LayoutTensor(DType.float64, layout, np.zeros(5))

    def test_dtype_mismatch(self):
        layout = Layout.row_major(4)
        with pytest.raises(LayoutError):
            LayoutTensor(DType.float64, layout, np.zeros(4, dtype=np.float32))

    def test_to_numpy_shape_and_copy(self):
        t, storage = self._tensor(shape=(2, 3))
        t[1, 2] = 9.0
        arr = t.to_numpy()
        assert arr.shape == (2, 3)
        assert arr[1, 2] == 9.0
        arr[0, 0] = 123.0
        assert t[0, 0] == 0.0  # to_numpy returns a copy

    def test_view_is_shared(self):
        t, storage = self._tensor(shape=(2, 3))
        view = t.view()
        view[1, 1] = 4.0
        assert t[1, 1] == 4.0

    def test_fill(self):
        t, _ = self._tensor(shape=(3, 3))
        t.fill(2.5)
        assert np.all(t.to_numpy() == 2.5)

    def test_copy_from(self):
        t, _ = self._tensor(shape=(2, 2))
        t.copy_from([[1, 2], [3, 4]])
        assert t[1, 0] == 3.0

    def test_copy_from_wrong_size(self):
        t, _ = self._tensor(shape=(2, 2))
        with pytest.raises(LayoutError):
            t.copy_from([1, 2, 3])

    def test_properties(self):
        t, _ = self._tensor(shape=(4, 5))
        assert t.shape == (4, 5)
        assert t.size == 20
        assert t.rank == 2
        assert t.nbytes == 160

    def test_load_store_methods(self):
        t, _ = self._tensor(shape=(3, 3))
        t.store(5.0, 2, 1)
        assert t.load(2, 1) == 5.0
