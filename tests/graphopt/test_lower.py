"""The NumPy-codegen lowering tier: legality, bit-identity, memoisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.core.intrinsics import any_lane, block_dim, block_idx, compress_lanes, thread_idx
from repro.core.kernel import LaunchConfig, kernel
from repro.core.layout import Layout
from repro.gpu.executor import KernelExecutor
from repro.graphopt import lower_launch, lower_source, lowering_report
from repro.kernels.babelstream.kernels import (
    SCALAR,
    START_A,
    START_B,
    START_C,
    add_kernel,
    copy_kernel,
    dot_kernel,
    mul_kernel,
    triad_kernel,
)
from repro.kernels.stencil.kernel import laplacian_kernel
from repro.kernels.stencil.problem import StencilProblem
from repro.kernels.stencil.runner import stencil_launch_config


N = 1 << 10


@kernel(name="_inplace_scale", vector_safe=True, strict=True)
def _inplace_scale(a, scalar, n):
    """``a[i] = scalar * a[i]`` — the store target is also read."""
    i = block_dim.x * block_idx.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    a[i] = scalar * a[i]


def _stream_tensors(ctx, n=N):
    bufs, tensors = {}, {}
    for label, start in (("a", START_A), ("b", START_B), ("c", START_C)):
        bufs[label] = ctx.enqueue_create_buffer(DType.float64, n, label=label)
        bufs[label].copy_from_host(np.full(n, start))
        tensors[label] = bufs[label].tensor()
    return bufs, tensors


class TestLowerSource:
    def test_copy_kernel_lowers_to_whole_array_slice(self):
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        source = lower_source(copy_kernel, (t["a"], t["c"], N), launch)
        assert source is not None
        assert "def _entry(*args):" in source
        # the tail guard bakes to the exact extent: lanes [0, N)
        assert f"_d1[0:{N}] = _d0[0:{N}]" in source

    def test_partial_tail_bakes_tight_bounds(self):
        # n smaller than the launched lane count: the mask tightens the slice
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)  # 1024 lanes
        source = lower_source(copy_kernel, (t["a"], t["c"], 1000), launch)
        assert "[0:1000]" in source

    def test_read_modify_write_materialises_rhs(self):
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        source = lower_source(_inplace_scale, (t["a"], SCALAR, N), launch)
        assert ".copy()" in source

    def test_barrier_kernel_is_rejected_with_reason(self):
        ctx = DeviceContext("h100")
        n, tb = 512, 64
        bufs, t = _stream_tensors(ctx, n)
        sums_buf = ctx.enqueue_create_buffer(DType.float64, n // tb,
                                             label="sums")
        args = (t["a"], t["b"], sums_buf.tensor(), n, tb)
        launch = LaunchConfig.make(n // tb, tb)
        assert lower_launch(dot_kernel, args, launch) is None
        report = lowering_report(dot_kernel, args, launch)
        assert report["kernel"] == "dot_kernel"
        assert report["lowered"] is False
        assert report["reason"]

    def test_report_for_lowerable_kernel_carries_source(self):
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        report = lowering_report(copy_kernel, (t["a"], t["c"], N), launch)
        assert report["lowered"] is True
        assert "def _entry" in report["source"]


class TestMemoisation:
    def test_same_specialisation_reuses_the_entry(self):
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        args = (t["a"], t["c"], N)
        first = lower_launch(copy_kernel, args, launch)
        second = lower_launch(copy_kernel, args, launch)
        assert first is second is not None

    def test_new_scalar_value_is_a_new_specialisation(self):
        # bounds bake scalar argument values into the generated slices
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        full = lower_launch(copy_kernel, (t["a"], t["c"], N), launch)
        tail = lower_launch(copy_kernel, (t["a"], t["c"], N - 24), launch)
        assert full is not None and tail is not None
        assert full is not tail


class TestExecutorDispatch:
    def test_lowered_mode_runs_the_compiled_entry(self):
        ctx = DeviceContext("h100")
        bufs, t = _stream_tensors(ctx)
        launch = LaunchConfig.for_elements(N, 256)
        result = KernelExecutor().launch(copy_kernel, (t["a"], t["c"], N),
                                         launch, mode="lowered")
        assert result.mode == "lowered"
        assert result.counters.threads_run == launch.total_threads
        assert result.counters.blocks_run == launch.num_blocks
        np.testing.assert_array_equal(bufs["c"].array, bufs["a"].array)

    def test_lowered_mode_falls_back_for_unsupported_bodies(self):
        ctx = DeviceContext("h100")
        n, tb = 512, 64
        bufs, t = _stream_tensors(ctx, n)
        sums_buf = ctx.enqueue_create_buffer(DType.float64, n // tb,
                                             label="sums")
        args = (t["a"], t["b"], sums_buf.tensor(), n, tb)
        result = KernelExecutor().launch(dot_kernel, args,
                                         LaunchConfig.make(n // tb, tb),
                                         mode="lowered")
        assert result.mode == "vectorized"  # fell back to the interpreter
        expected = float(np.dot(bufs["a"].array, bufs["b"].array))
        assert float(np.sum(sums_buf.array)) == pytest.approx(expected)

    def test_stream_sweep_bit_identical_to_vectorized(self):
        results = {}
        for mode in ("vectorized", "lowered"):
            ctx = DeviceContext("h100")
            bufs, t = _stream_tensors(ctx)
            launch = LaunchConfig.for_elements(N, 256)
            ex = KernelExecutor()
            for kern, args in ((copy_kernel, (t["a"], t["c"], N)),
                               (mul_kernel, (t["b"], t["c"], SCALAR, N)),
                               (add_kernel, (t["a"], t["b"], t["c"], N)),
                               (triad_kernel, (t["a"], t["b"], t["c"],
                                               SCALAR, N))):
                res = ex.launch(kern, args, launch, mode=mode)
                assert res.mode == mode
            results[mode] = {k: bufs[k].array.copy() for k in bufs}
        for label in ("a", "b", "c"):
            assert np.array_equal(results["vectorized"][label],
                                  results["lowered"][label]), label

    def test_inplace_kernel_bit_identical_to_vectorized(self):
        results = {}
        for mode in ("vectorized", "lowered"):
            ctx = DeviceContext("h100")
            bufs, t = _stream_tensors(ctx)
            res = KernelExecutor().launch(_inplace_scale,
                                          (t["a"], SCALAR, N),
                                          LaunchConfig.for_elements(N, 256),
                                          mode=mode)
            assert res.mode == mode
            results[mode] = bufs["a"].array.copy()
        assert np.array_equal(results["vectorized"], results["lowered"])

    def test_stencil_bit_identical_to_vectorized(self):
        L = 16
        problem = StencilProblem(L, "float64")
        u_host = problem.initial_field().reshape(-1)
        sargs = problem.inverse_spacing_squared
        launch = stencil_launch_config(L, (64, 4, 1))
        layout = Layout.row_major(L, L, L)
        results = {}
        for mode in ("vectorized", "lowered"):
            ctx = DeviceContext("h100")
            u_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3,
                                              label="u")
            f_buf = ctx.enqueue_create_buffer(problem.dtype, L ** 3,
                                              label="f")
            u_buf.copy_from_host(u_host)
            u = u_buf.tensor(layout, mut=False, bounds_check=False)
            f = f_buf.tensor(layout, bounds_check=False)
            res = KernelExecutor().launch(
                laplacian_kernel, (f, u, L, L, L) + tuple(sargs),
                launch, mode=mode)
            assert res.mode == mode
            results[mode] = f_buf.array.copy()
        assert np.any(results["lowered"] != 0.0)
        assert np.array_equal(results["vectorized"], results["lowered"])
