"""The ``repro graph`` CLI surface — the graph-compiler CI gate command."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


def test_parser_accepts_ci_gate_invocation():
    args = build_parser().parse_args(["graph", "--all", "--passes", "all",
                                      "--json"])
    assert args.command == "graph"
    assert args.graph_all and args.json
    assert args.passes == "all"


def test_graph_single_workload_json(capsys):
    assert main(["graph", "babelstream", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.graphopt-report/v1"
    assert payload["passes"] == ["elide", "fuse", "hoist"]
    (entry,) = payload["graphs"]
    assert entry["workload"] == "babelstream"
    assert entry["kernels_before"] == 4 and entry["kernels_after"] == 1
    assert entry["fused"][0]["parts"] == ["copy_kernel", "mul_kernel",
                                          "add_kernel", "triad_kernel"]
    assert entry["lint_clean"] is True
    # the surviving fused kernel reports its lowering outcome
    assert all(low["lowered"] for low in entry["lowering"])


def test_graph_all_covers_registry_and_exits_clean(capsys):
    assert main(["graph", "--all", "--passes", "all", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    workloads = {entry["workload"] for entry in payload["graphs"]}
    assert {"babelstream", "stencil", "minibude", "hartreefock"} <= workloads
    for entry in payload["graphs"]:
        if entry.get("graph") is not None:
            assert entry["lint_clean"] is True


def test_graph_text_rendering_mentions_fusion(capsys):
    assert main(["graph", "babelstream"]) == 0
    out = capsys.readouterr().out
    assert "fused:" in out
    assert "optimized graph lint: clean" in out


def test_graph_subset_of_passes(capsys):
    assert main(["graph", "babelstream", "--passes", "elide", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["passes"] == ["elide"]
    (entry,) = payload["graphs"]
    assert entry["fused"] == []  # fusion not requested
    assert entry["kernels_after"] == entry["kernels_before"]


def test_graph_output_writes_payload_file(tmp_path, capsys):
    out_path = tmp_path / "graphopt.json"
    assert main(["graph", "stencil", "--json",
                 "--output", str(out_path)]) == 0
    on_disk = json.loads(out_path.read_text())
    assert on_disk["schema"] == "repro.graphopt-report/v1"
    assert on_disk == json.loads(capsys.readouterr().out)


def test_graph_unknown_workload_is_config_error(capsys):
    assert main(["graph", "nosuchworkload"]) == 2
    assert "graph:" in capsys.readouterr().err


def test_graph_unknown_pass_is_config_error(capsys):
    assert main(["graph", "babelstream", "--passes", "vectorize"]) == 2
    assert "graph:" in capsys.readouterr().err


def test_graph_requires_a_target(capsys):
    assert main(["graph"]) == 2


def test_graph_rejects_both_name_and_all(capsys):
    assert main(["graph", "stencil", "--all"]) == 2


def test_graphopt_report_section_renders():
    """The EXPERIMENTS.md section: per-workload speedups plus the Φ row."""
    from repro.graphopt import graphopt_report

    report = graphopt_report(["babelstream"], repeats=2)
    (row,) = report.rows
    assert row.workload == "babelstream"
    assert row.fused_speedup is not None and row.fused_speedup > 0
    assert "fused_speedup" in report.mean_speedups()
    markdown = report.to_markdown()
    assert "Φ (mean)" in markdown and "babelstream" in markdown
    payload = report.as_dict()
    assert payload["rows"][0]["unfused_s"] > 0
