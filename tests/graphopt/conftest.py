"""Shared capture builders for the graph-compiler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.kernels.babelstream.kernels import (
    SCALAR,
    START_A,
    START_B,
    START_C,
    add_kernel,
    copy_kernel,
    mul_kernel,
    triad_kernel,
)
from repro.core.kernel import LaunchConfig

N = 1 << 10


@pytest.fixture
def stream_capture():
    """H2D a/b/c -> Copy -> Mul -> Add -> Triad -> D2H a, c on one stream.

    The canonical fusion subject: four adjacent vector-safe kernels with an
    identical launch sharing the a/b/c buffers.
    """
    ctx = DeviceContext("h100")
    launch = LaunchConfig.for_elements(N, 256)
    bufs = {}
    tensors = {}
    for label in ("a", "b", "c"):
        bufs[label] = ctx.enqueue_create_buffer(DType.float64, N, label=label)
        tensors[label] = bufs[label].tensor()
    a, b, c = tensors["a"], tensors["b"], tensors["c"]
    with ctx.capture("stream") as graph:
        bufs["a"].copy_from_host(np.full(N, START_A))
        bufs["b"].copy_from_host(np.full(N, START_B))
        bufs["c"].copy_from_host(np.full(N, START_C))
        for kern, args in ((copy_kernel, (a, c, N)),
                           (mul_kernel, (b, c, SCALAR, N)),
                           (add_kernel, (a, b, c, N)),
                           (triad_kernel, (a, b, c, SCALAR, N))):
            ctx.enqueue_function(kern, *args,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim)
        bufs["a"].copy_to_host()
        bufs["c"].copy_to_host()
    return ctx, graph, bufs
