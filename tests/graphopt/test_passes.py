"""The graph-compiler pass pipeline: elision, fusion, hoisting, legality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DeviceContext, DeviceError
from repro.core.dtypes import DType
from repro.core.errors import ConfigurationError
from repro.core.kernel import LaunchConfig
from repro.graphopt import PASS_NAMES, optimize_graph, parse_passes
from repro.kernels.babelstream.kernels import (
    SCALAR,
    add_kernel,
    copy_kernel,
    dot_kernel,
    mul_kernel,
)


def _replays_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert np.array_equal(a[key], b[key]), key


class TestParsePasses:
    def test_all_none_and_subsets(self):
        assert parse_passes("all") == PASS_NAMES
        assert parse_passes("none") == ()
        assert parse_passes(None) == ()
        assert parse_passes("fuse") == ("fuse",)

    def test_canonical_order_is_restored(self):
        assert parse_passes("hoist,fuse,elide") == PASS_NAMES
        assert parse_passes(["fuse", "elide"]) == ("elide", "fuse")

    def test_unknown_pass_raises(self):
        with pytest.raises(ConfigurationError):
            parse_passes("fuse,vectorize")


class TestFusion:
    def test_adjacent_stream_kernels_fuse_to_one(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "fuse")
        assert graph.num_kernels == 4          # input untouched
        assert optimized.num_kernels == 1
        assert report.fused[0]["parts"] == ["copy_kernel", "mul_kernel",
                                            "add_kernel", "triad_kernel"]
        _replays_equal(graph.replay(), optimized.replay())

    def test_fused_op_dispatches_through_lowering_tier(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, _ = optimize_graph(graph, "fuse")
        fused = [op for op in optimized.ops
                 if op.kind == "kernel" and not (op.meta or {}).get("elided")]
        assert len(fused) == 1
        assert fused[0].meta["mode"] == "lowered"

    def test_tombstones_carry_provenance(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, _ = optimize_graph(graph, "fuse")
        stones = [op for op in optimized.ops
                  if (op.meta or {}).get("elided")]
        assert len(stones) == 4
        for op in stones:
            assert op.meta["graphopt"]["pass"] == "fuse"
            assert op.meta["graphopt"]["action"] == "fused-into"

    def test_fused_timing_is_sum_of_parts(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "fuse")
        # no per-kernel models were supplied, so the parts model 0 ms each
        assert report.fused[0]["timing_ms"] == pytest.approx(0.0)
        assert optimized.makespan_ms <= graph.makespan_ms

    def test_barrier_kernel_never_fuses(self):
        """The Dot reduction (shared memory + barriers) stays unfused."""
        n, tb = 512, 64
        blocks = n // tb
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
        sums_buf = ctx.enqueue_create_buffer(DType.float64, blocks,
                                             label="sums")
        a, c = a_buf.tensor(), c_buf.tensor()
        sums = sums_buf.tensor()
        launch = LaunchConfig.make(blocks, tb)
        with ctx.capture("dot") as graph:
            a_buf.copy_from_host(np.linspace(0.0, 1.0, n))
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim)
            ctx.enqueue_function(dot_kernel, a, c, sums, n, tb,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim)
            sums_buf.copy_to_host()
        optimized, report = optimize_graph(graph, "fuse")
        assert report.fused == []
        assert optimized.num_kernels == 2
        _replays_equal(graph.replay(), optimized.replay())

    def test_cross_stream_kernels_never_fuse(self):
        """Event-ordered kernels on different streams stay separate."""
        n = 256
        ctx = DeviceContext("h100")
        s1, s2 = ctx.stream("s1"), ctx.stream("s2")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        b_buf = ctx.enqueue_create_buffer(DType.float64, n, label="b")
        c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
        a, b, c = a_buf.tensor(), b_buf.tensor(), c_buf.tensor()
        launch = LaunchConfig.for_elements(n, 64)
        with ctx.capture("cross", check=True) as graph:
            a_buf.copy_from_host(np.ones(n), stream=s1)
            c_buf.copy_from_host(np.zeros(n), stream=s1)
            b_buf.copy_from_host(np.zeros(n), stream=s1)
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim, stream=s1)
            s2.wait(ctx.event("copy-done").record(s1))
            ctx.enqueue_function(mul_kernel, b, c, SCALAR, n,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim, stream=s2)
            b_buf.copy_to_host(stream=s2)
        optimized, report = optimize_graph(graph, "fuse")
        assert report.fused == []
        assert optimized.num_kernels == 2
        _replays_equal(graph.replay(), optimized.replay())

    def test_covered_launch_fuses_bit_identical(self):
        """Non-identical launches fuse once regions prove a cover set.

        Both kernels guard with ``i < n`` over the same 256 elements, so
        the symbolic regions under either geometry are identical — the
        follower legally joins the leader's run and replay is
        bit-identical.
        """
        n = 256
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
        a, c = a_buf.tensor(), c_buf.tensor()
        with ctx.capture("launches") as graph:
            a_buf.copy_from_host(np.ones(n))
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=4, block_dim=64)
            ctx.enqueue_function(add_kernel, a, c, c, n,
                                 grid_dim=2, block_dim=128)
            c_buf.copy_to_host()
        optimized, report = optimize_graph(graph, "fuse")
        assert len(report.fused) == 1
        assert report.fused[0]["parts"] == ["copy_kernel", "add_kernel"]
        assert optimized.num_kernels == 1
        _replays_equal(graph.replay(), optimized.replay())

    def test_uncovered_launch_never_fuses(self):
        """A launch pair whose regions differ stays unfused.

        The follower only carries 128 lanes, so under its own launch it
        writes ``[0..127]`` — running it under the leader's 256-lane
        geometry would double the region.  No cover, no fusion.
        """
        n = 256
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
        a, c = a_buf.tensor(), c_buf.tensor()
        with ctx.capture("launches") as graph:
            a_buf.copy_from_host(np.ones(n))
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=4, block_dim=64)
            ctx.enqueue_function(add_kernel, a, c, c, n,
                                 grid_dim=1, block_dim=128)
            c_buf.copy_to_host()
        optimized, report = optimize_graph(graph, "fuse")
        assert report.fused == []
        assert optimized.num_kernels == 2
        _replays_equal(graph.replay(), optimized.replay())

    def test_multi_chunk_launch_never_fuses(self):
        """Launches beyond one lane chunk interleave per chunk: unsound."""
        from repro.gpu.vector_executor import VECTOR_CHUNK_LANES

        n = VECTOR_CHUNK_LANES + 1024
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
        a, c = a_buf.tensor(), c_buf.tensor()
        launch = LaunchConfig.for_elements(n, 256)
        with ctx.capture("chunked") as graph:
            a_buf.copy_from_host(np.ones(n))
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim)
            ctx.enqueue_function(add_kernel, a, c, c, n,
                                 grid_dim=launch.grid_dim,
                                 block_dim=launch.block_dim)
            c_buf.copy_to_host()
        optimized, report = optimize_graph(graph, "fuse")
        assert report.fused == []
        _replays_equal(graph.replay(), optimized.replay())

    def test_fused_graph_lints_clean(self, stream_capture):
        from repro.analysis.racecheck import analyze_graph

        ctx, graph, bufs = stream_capture
        optimized, _ = optimize_graph(graph, "all", check=True)
        assert analyze_graph(optimized) == []


class TestElision:
    def _capture_with_dead_upload(self):
        n = 64
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        d_buf = ctx.enqueue_create_buffer(DType.float64, n, label="dead")
        a, c = a_buf.tensor(), d_buf.tensor()
        with ctx.capture("dead") as graph:
            a_buf.copy_from_host(np.ones(n))
            d_buf.copy_from_host(np.zeros(n))     # never read afterwards
            a_buf.copy_to_host()
        return ctx, graph

    def test_dead_upload_is_elided(self):
        ctx, graph = self._capture_with_dead_upload()
        optimized, report = optimize_graph(graph, "elide")
        assert [e["action"] for e in report.elided] == ["dead-write"]
        assert report.elided[0]["buffer"] == "dead"
        assert report.ops_after == report.ops_before - 1
        _replays_equal(graph.replay(), optimized.replay())

    def test_redundant_memset_is_elided(self):
        n = 64
        ctx = DeviceContext("h100")
        buf = ctx.enqueue_create_buffer(DType.float64, n, label="x")
        with ctx.capture("redundant") as graph:
            buf.fill(0.0)                         # overwritten before read
            buf.copy_from_host(np.ones(n))
            buf.copy_to_host()
        optimized, report = optimize_graph(graph, "elide")
        assert [e["action"] for e in report.elided] == ["redundant-write"]
        assert report.elided[0]["kind"] == "memset"
        _replays_equal(graph.replay(), optimized.replay())

    def test_live_upload_is_kept(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "elide")
        assert report.elided == []

    def test_drop_outputs_cascades_to_feeding_upload(self):
        n = 64
        ctx = DeviceContext("h100")
        a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
        b_buf = ctx.enqueue_create_buffer(DType.float64, n, label="b")
        with ctx.capture("cascade") as graph:
            a_buf.copy_from_host(np.ones(n))
            b_buf.copy_from_host(np.full(n, 2.0))
            a_buf.copy_to_host()
            b_buf.copy_to_host()
        optimized, report = optimize_graph(graph, "elide",
                                           drop_outputs=("b",))
        actions = {(e["buffer"], e["action"]) for e in report.elided}
        # dropping the download makes its upload dead — elision cascades
        assert actions == {("b", "dropped-output"), ("b", "dead-write")}
        result = optimized.replay()
        assert "b" not in result and "a" in result

    def test_unknown_drop_output_raises(self, stream_capture):
        ctx, graph, bufs = stream_capture
        with pytest.raises(ConfigurationError):
            optimize_graph(graph, "elide", drop_outputs=("nope",))


class TestHoist:
    def _capture(self):
        n = 64
        ctx = DeviceContext("h100")
        u_buf = ctx.enqueue_create_buffer(DType.float64, n, label="u")
        f_buf = ctx.enqueue_create_buffer(DType.float64, n, label="f")
        u, f = u_buf.tensor(mut=False), f_buf.tensor()
        host = np.linspace(0.0, 1.0, n)
        with ctx.capture("hoistable") as graph:
            u_buf.copy_from_host(host)
            ctx.enqueue_function(copy_kernel, u, f, n,
                                 grid_dim=1, block_dim=n)
            f_buf.copy_to_host()
        return ctx, graph, host

    def test_pin_all_hoists_invariant_upload(self):
        ctx, graph, host = self._capture()
        base = graph.replay()
        optimized, report = optimize_graph(graph, "hoist", pin="all")
        assert report.pinned == ["u"]
        assert optimized._pinned == frozenset({"u"})
        _replays_equal(base, optimized.replay())

    def test_pinned_label_cannot_be_rebound(self):
        ctx, graph, host = self._capture()
        optimized, _ = optimize_graph(graph, "hoist", pin="u")
        with pytest.raises(DeviceError, match="pinned"):
            optimized.replay(u=np.zeros_like(host))
        # the unoptimized capture still accepts the binding
        assert np.array_equal(graph.replay(u=np.zeros_like(host))["f"],
                              np.zeros_like(host))

    def test_pinning_written_buffer_raises(self, stream_capture):
        # "a" is re-written by Add/Triad kernels, so its upload is not
        # replay-invariant; naming it explicitly must refuse, not skip
        ctx, graph, bufs = stream_capture
        with pytest.raises(ConfigurationError, match="cannot pin"):
            optimize_graph(graph, "hoist", pin="a")

    def test_pin_all_skips_non_invariant_uploads(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "hoist", pin="all")
        # every buffer is kernel-written in the STREAM sweep: nothing pins
        assert report.pinned == []

    def test_unknown_pin_label_raises(self):
        ctx, graph, host = self._capture()
        with pytest.raises(ConfigurationError, match="no"):
            optimize_graph(graph, "hoist", pin="ghost")


class TestPipeline:
    def test_input_graph_is_never_mutated(self, stream_capture):
        ctx, graph, bufs = stream_capture
        before = [(op.kind, op.name) for op in graph.ops]
        optimize_graph(graph, "all")
        after = [(op.kind, op.name) for op in graph.ops]
        assert before == after

    def test_report_shape(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "all")
        payload = report.as_dict()
        assert payload["graph"] == "stream"
        assert payload["optimized"] == "stream+opt"
        assert payload["passes"] == list(PASS_NAMES)
        assert payload["kernels_before"] == 4
        assert payload["kernels_after"] == 1
        assert payload["ops_before"] == 9  # 3 h2d + 4 kernels + 2 d2h
        assert payload["ops_after"] == 6   # 4 kernels -> 1 fused

    def test_optimized_graph_carries_report(self, stream_capture):
        ctx, graph, bufs = stream_capture
        optimized, report = optimize_graph(graph, "all")
        assert optimized._graphopt_report is report

    def test_workload_request_opt_in(self):
        """RunRequest.optimize feeds the probe through the pipeline."""
        from repro.workloads import get_workload

        wl = get_workload("babelstream")
        plain = wl.tuning_probe(wl.make_request(verify=False))
        optimized = wl.tuning_probe(
            wl.make_request(verify=False, optimize="all"))
        assert plain.num_kernels == 4
        assert optimized.num_kernels == 1
        assert optimized._graphopt_report.fused
        _replays_equal(plain.replay(), optimized.replay())

    def test_rewritten_requires_compiled_graph(self):
        ctx = DeviceContext("h100")
        buf = ctx.enqueue_create_buffer(DType.float64, 8, label="x")
        with pytest.raises(DeviceError, match="capturing"):
            with ctx.capture("open") as graph:
                buf.fill(0.0)
                graph.rewritten(list(graph.ops))
