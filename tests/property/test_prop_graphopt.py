"""Property: graph-compiler rewrites never change replay results.

The central soundness contract of the optimizing pipeline (ISSUE-8): for
every workload capture and every pass combination, replaying the optimized
graph produces bit-identical outputs to replaying the capture as recorded.
Not approximately equal — ``np.array_equal``: the passes reorder and
specialise execution but perform the very same element operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphopt import optimize_graph
from repro.workloads import get_workload, list_workloads

WORKLOADS = tuple(list_workloads())
PASS_COMBOS = ("elide", "fuse", "hoist", "elide,fuse", "all")


def _assert_bit_identical(base, opt):
    assert set(base) == set(opt)
    for label in base:
        assert np.array_equal(base[label], opt[label]), label


@pytest.mark.parametrize("passes", PASS_COMBOS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_optimized_replay_is_bit_identical(name, passes):
    workload = get_workload(name)
    graph = workload.lint_graph()
    if graph is None:
        pytest.skip(f"{name} declares no lint graph")
    base = graph.replay()
    optimized, _report = optimize_graph(graph, passes)
    _assert_bit_identical(base, optimized.replay())
    # replaying the optimized graph again stays stable (memsets/h2ds rerun)
    _assert_bit_identical(base, optimized.replay())


@pytest.mark.parametrize("name", WORKLOADS)
def test_pinned_hoist_is_bit_identical(name):
    """pin="all" (upload-once) must never pin a non-invariant transfer."""
    workload = get_workload(name)
    graph = workload.lint_graph()
    if graph is None:
        pytest.skip(f"{name} declares no lint graph")
    base = graph.replay()
    optimized, _report = optimize_graph(graph, "hoist", pin="all")
    _assert_bit_identical(base, optimized.replay())
    _assert_bit_identical(base, optimized.replay())


@pytest.mark.parametrize("name", WORKLOADS)
def test_optimized_probe_matches_unoptimized(name):
    """The RunRequest.optimize opt-in path preserves probe replays too."""
    workload = get_workload(name)
    plain = workload.tuning_probe(workload.make_request(verify=False))
    if plain is None:
        pytest.skip(f"{name} declares no tuning probe")
    optimized = workload.tuning_probe(
        workload.make_request(verify=False, optimize="all"))
    _assert_bit_identical(plain.replay(), optimized.replay())


@pytest.mark.parametrize("geometries", [
    ((4, 64), (2, 128)),
    ((2, 128), (4, 64)),
    ((8, 32), (1, 256), (4, 64)),
])
def test_cover_set_fusion_is_bit_identical(geometries):
    """Non-identical launches fused under cover-set legality replay
    bit-identically: every kernel guards with ``i < n`` over the same
    element range, so the region analysis proves the follower touches
    the same indices under the leader's geometry."""
    from repro.core.device import DeviceContext
    from repro.core.dtypes import DType
    from repro.kernels.babelstream.kernels import (SCALAR, add_kernel,
                                                   copy_kernel, mul_kernel)

    n = 256
    chain = (copy_kernel, mul_kernel, add_kernel)
    ctx = DeviceContext("h100")
    a_buf = ctx.enqueue_create_buffer(DType.float64, n, label="a")
    b_buf = ctx.enqueue_create_buffer(DType.float64, n, label="b")
    c_buf = ctx.enqueue_create_buffer(DType.float64, n, label="c")
    a, b, c = a_buf.tensor(), b_buf.tensor(), c_buf.tensor()
    arglists = ((a, c, n), (b, c, SCALAR, n), (a, b, c, n))
    with ctx.capture("covered") as graph:
        a_buf.copy_from_host(np.linspace(0.0, 1.0, n))
        for i, (kern, args) in enumerate(zip(chain, arglists)):
            grid, block = geometries[i % len(geometries)]
            ctx.enqueue_function(kern, *args,
                                 grid_dim=grid, block_dim=block)
        c_buf.copy_to_host()
        b_buf.copy_to_host()
    base = graph.replay()
    optimized, report = optimize_graph(graph, "fuse")
    assert len(report.fused) == 1
    assert report.fused[0]["parts"] == [k.name for k in chain]
    _assert_bit_identical(base, optimized.replay())
    _assert_bit_identical(base, optimized.replay())
