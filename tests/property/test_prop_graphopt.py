"""Property: graph-compiler rewrites never change replay results.

The central soundness contract of the optimizing pipeline (ISSUE-8): for
every workload capture and every pass combination, replaying the optimized
graph produces bit-identical outputs to replaying the capture as recorded.
Not approximately equal — ``np.array_equal``: the passes reorder and
specialise execution but perform the very same element operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphopt import optimize_graph
from repro.workloads import get_workload, list_workloads

WORKLOADS = tuple(list_workloads())
PASS_COMBOS = ("elide", "fuse", "hoist", "elide,fuse", "all")


def _assert_bit_identical(base, opt):
    assert set(base) == set(opt)
    for label in base:
        assert np.array_equal(base[label], opt[label]), label


@pytest.mark.parametrize("passes", PASS_COMBOS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_optimized_replay_is_bit_identical(name, passes):
    workload = get_workload(name)
    graph = workload.lint_graph()
    if graph is None:
        pytest.skip(f"{name} declares no lint graph")
    base = graph.replay()
    optimized, _report = optimize_graph(graph, passes)
    _assert_bit_identical(base, optimized.replay())
    # replaying the optimized graph again stays stable (memsets/h2ds rerun)
    _assert_bit_identical(base, optimized.replay())


@pytest.mark.parametrize("name", WORKLOADS)
def test_pinned_hoist_is_bit_identical(name):
    """pin="all" (upload-once) must never pin a non-invariant transfer."""
    workload = get_workload(name)
    graph = workload.lint_graph()
    if graph is None:
        pytest.skip(f"{name} declares no lint graph")
    base = graph.replay()
    optimized, _report = optimize_graph(graph, "hoist", pin="all")
    _assert_bit_identical(base, optimized.replay())
    _assert_bit_identical(base, optimized.replay())


@pytest.mark.parametrize("name", WORKLOADS)
def test_optimized_probe_matches_unoptimized(name):
    """The RunRequest.optimize opt-in path preserves probe replays too."""
    workload = get_workload(name)
    plain = workload.tuning_probe(workload.make_request(verify=False))
    if plain is None:
        pytest.skip(f"{name} declares no tuning probe")
    optimized = workload.tuning_probe(
        workload.make_request(verify=False, optimize="all"))
    _assert_bit_identical(plain.replay(), optimized.replay())
