"""Property-based tests for the GPU substrate (occupancy, timing, metrics)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.compiler import CompilerProfile, compile_kernel
from repro.core.dtypes import DType
from repro.core.kernel import KernelModel, LaunchConfig, MemoryPattern
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.roofline import Roofline
from repro.gpu.specs import get_gpu
from repro.gpu.timing import KernelTimingModel

gpus = st.sampled_from(["h100", "mi300a", "a100", "mi250x"])
block_sizes = st.sampled_from([32, 64, 128, 256, 512, 1024])
registers = st.integers(min_value=8, max_value=255)


class TestOccupancyProperties:
    @given(gpu=gpus, tpb=block_sizes, regs=registers,
           shared=st.sampled_from([0, 1024, 8192, 32768]))
    def test_occupancy_bounds_and_consistency(self, gpu, tpb, regs, shared):
        spec = get_gpu(gpu)
        occ = compute_occupancy(spec, tpb, regs, shared)
        assert 0.0 <= occ.occupancy <= 1.0
        assert occ.active_threads_per_sm <= spec.max_threads_per_sm
        assert occ.active_threads_per_sm == occ.blocks_per_sm * tpb

    @given(gpu=gpus, tpb=block_sizes, shared=st.sampled_from([0, 4096]))
    def test_occupancy_monotone_in_registers(self, gpu, tpb, shared):
        spec = get_gpu(gpu)
        occs = [compute_occupancy(spec, tpb, r, shared).occupancy
                for r in (16, 32, 64, 128, 255)]
        assert all(b <= a + 1e-12 for a, b in zip(occs, occs[1:]))


def _timed(gpu, model, launch, fast_math=False):
    compiled = compile_kernel(model, CompilerProfile(), fast_math=fast_math)
    return KernelTimingModel(get_gpu(gpu)).predict(compiled, launch)


class TestTimingProperties:
    @given(gpu=gpus,
           loads=st.integers(min_value=1, max_value=16),
           stores=st.integers(min_value=0, max_value=4),
           flops=st.integers(min_value=0, max_value=10000),
           log_n=st.integers(min_value=12, max_value=24),
           block=block_sizes,
           pattern=st.sampled_from(MemoryPattern.ALL))
    @settings(max_examples=60, deadline=None)
    def test_time_positive_and_rates_below_peak(self, gpu, loads, stores, flops,
                                                log_n, block, pattern):
        spec = get_gpu(gpu)
        model = KernelModel(name="m", dtype=DType.float64, loads_global=loads,
                            stores_global=stores, flops=flops,
                            memory_pattern=pattern)
        launch = LaunchConfig.for_elements(2 ** log_n, block)
        timing = _timed(gpu, model, launch)
        assert timing.kernel_time_ms > 0
        assert timing.achieved_bandwidth_gbs <= spec.mem_bw_gbs * (1 + 1e-9)
        assert timing.achieved_gflops <= spec.peak_flops("float64") / 1e9 * (1 + 1e-9)
        assert timing.kernel_time_ms >= max(timing.memory_time_ms,
                                            timing.compute_time_ms) - 1e-12

    @given(gpu=gpus, log_n1=st.integers(min_value=14, max_value=20),
           extra=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_more_elements_never_faster(self, gpu, log_n1, extra):
        model = KernelModel(name="m", dtype=DType.float64, loads_global=2,
                            stores_global=1, flops=4)
        t1 = _timed(gpu, model, LaunchConfig.for_elements(2 ** log_n1, 256))
        t2 = _timed(gpu, model, LaunchConfig.for_elements(2 ** (log_n1 + extra), 256))
        assert t2.kernel_time_ms >= t1.kernel_time_ms

    @given(divides=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_fast_math_never_slower(self, divides):
        model = KernelModel(name="m", dtype=DType.float32, loads_global=2,
                            stores_global=1, flops=1000, divides=divides)
        launch = LaunchConfig.for_elements(2 ** 16, 128)
        slow = _timed("h100", model, launch, fast_math=False)
        fast = _timed("h100", model, launch, fast_math=True)
        assert fast.kernel_time_ms <= slow.kernel_time_ms + 1e-12


class TestRooflineProperties:
    @given(gpu=gpus, ai=st.floats(min_value=1e-3, max_value=1e3,
                                  allow_nan=False, allow_infinity=False),
           precision=st.sampled_from(["float32", "float64"]))
    def test_attainable_is_min_of_roofs(self, gpu, ai, precision):
        roof = Roofline(gpu)
        value = roof.attainable(ai, precision)
        assert value <= roof.peak_flops(precision) + 1e-6
        assert value <= ai * roof.peak_bandwidth * (1 + 1e-12)
        assert value == pytest.approx(min(roof.peak_flops(precision),
                                          ai * roof.peak_bandwidth))

    @given(gpu=gpus)
    def test_roof_series_monotone(self, gpu):
        series = Roofline(gpu).roof_series(points=16)
        ys = [y for _, y in series]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
