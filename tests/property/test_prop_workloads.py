"""Property-based tests for workload-level invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.babelstream import arrays_moved, operation_bandwidth_gbs, operation_bytes
from repro.kernels.hartreefock import boys_f0, decode_pair, surviving_quadruple_fraction
from repro.kernels.minibude import ops_per_workitem, total_ops
from repro.kernels.stencil import effective_fetch_bytes, effective_write_bytes
from repro.metrics.portability import arithmetic_mean_phi, harmonic_mean_phi
from repro.metrics.statistics import summarize


class TestStencilMetricProperties:
    @given(L=st.integers(min_value=3, max_value=1024),
           precision=st.sampled_from(["float32", "float64"]))
    def test_eq1_byte_counts_positive_and_bounded(self, L, precision):
        fetch = effective_fetch_bytes(L, precision)
        write = effective_write_bytes(L, precision)
        sizeof = 4 if precision == "float32" else 8
        assert 0 < write < fetch or L == 3
        assert fetch <= L ** 3 * sizeof
        assert write == (L - 2) ** 3 * sizeof

    @given(L=st.integers(min_value=4, max_value=512))
    def test_eq1_fetch_exceeds_interior(self, L):
        # Everything the kernel writes must also have been fetched.
        assert effective_fetch_bytes(L, "float64") >= effective_write_bytes(L, "float64")


class TestBabelStreamMetricProperties:
    @given(op=st.sampled_from(["copy", "mul", "add", "triad", "dot"]),
           n=st.integers(min_value=1, max_value=2 ** 26),
           time_s=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False))
    def test_eq2_consistency(self, op, n, time_s):
        nbytes = operation_bytes(op, n, "float64")
        assert nbytes == arrays_moved(op) * n * 8
        bw = operation_bandwidth_gbs(op, n, "float64", time_s)
        assert bw == pytest.approx(nbytes / time_s / 1e9)

    @given(n=st.integers(min_value=1, max_value=2 ** 26),
           time_s=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False))
    def test_triad_moves_more_than_copy(self, n, time_s):
        assert (operation_bandwidth_gbs("triad", n, "float64", time_s)
                > operation_bandwidth_gbs("copy", n, "float64", time_s))


class TestMiniBudeMetricProperties:
    @given(ppwi=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]),
           natlig=st.integers(min_value=1, max_value=64),
           natpro=st.integers(min_value=1, max_value=2000))
    def test_eq3_total_ops_independent_of_ppwi_to_first_order(self, ppwi, natlig, natpro):
        """The dominant natlig*natpro*30 term of Eq. 3 is PPWI-invariant."""
        nposes = 65536
        dominant = 30.0 * natlig * natpro * nposes
        assert total_ops(ppwi, natlig, natpro, nposes) >= dominant

    @given(ppwi=st.integers(min_value=1, max_value=128),
           natlig=st.integers(min_value=1, max_value=64),
           natpro=st.integers(min_value=1, max_value=2000))
    def test_eq3_monotonic_in_every_argument(self, ppwi, natlig, natpro):
        base = ops_per_workitem(ppwi, natlig, natpro)
        assert ops_per_workitem(ppwi + 1, natlig, natpro) > base
        assert ops_per_workitem(ppwi, natlig + 1, natpro) > base
        assert ops_per_workitem(ppwi, natlig, natpro + 1) > base


class TestHartreeFockProperties:
    @given(idx=st.integers(min_value=0, max_value=10 ** 12))
    def test_decode_pair_inverse(self, idx):
        row, col = decode_pair(idx)
        assert 0 <= col <= row
        assert row * (row + 1) // 2 + col == idx

    @given(t=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_boys_function_bounds(self, t):
        value = boys_f0(t)
        assert 0.0 < value <= 1.0

    @given(t1=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
           dt=st.floats(min_value=1e-6, max_value=1e3, allow_nan=False))
    def test_boys_function_monotone_decreasing(self, t1, dt):
        assert boys_f0(t1 + dt) <= boys_f0(t1) + 1e-12

    @given(values=st.lists(st.floats(min_value=1e-12, max_value=1.0,
                                     allow_nan=False), min_size=1, max_size=200),
           tol=st.floats(min_value=1e-12, max_value=1e-2, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_surviving_fraction_matches_brute_force(self, values, tol):
        schwarz = np.asarray(values)
        frac = surviving_quadruple_fraction(schwarz, tol)
        n = len(schwarz)
        count = sum(1 for q in range(n) for p in range(q + 1)
                    if schwarz[p] * schwarz[q] >= tol)
        # order pairs by sorted value: brute force over sorted array
        s = np.sort(schwarz)
        count = sum(1 for q in range(n) for p in range(q + 1)
                    if s[p] * s[q] >= tol)
        assert frac == pytest.approx(count / (n * (n + 1) / 2))


class TestMetricAggregationProperties:
    @given(values=st.lists(st.floats(min_value=0.01, max_value=10.0,
                                     allow_nan=False), min_size=1, max_size=50))
    def test_harmonic_never_exceeds_arithmetic(self, values):
        assert harmonic_mean_phi(values) <= arithmetic_mean_phi(values) + 1e-12

    @given(values=st.lists(st.floats(min_value=0.01, max_value=100.0,
                                     allow_nan=False), min_size=2, max_size=50))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.p05 <= stats.median <= stats.p95 <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
