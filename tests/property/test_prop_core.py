"""Property-based tests (hypothesis) for core data structures."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dtypes import DType
from repro.core.intrinsics import Dim3, ceildiv
from repro.core.kernel import KernelModel, LaunchConfig
from repro.core.layout import Layout, LayoutTensor

dims = st.integers(min_value=1, max_value=12)
small_positive = st.integers(min_value=1, max_value=10 ** 6)


class TestCeildivProperties:
    @given(a=st.integers(min_value=0, max_value=10 ** 9),
           b=st.integers(min_value=1, max_value=10 ** 6))
    def test_ceildiv_covers_and_is_minimal(self, a, b):
        q = ceildiv(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestLayoutProperties:
    @given(shape=st.lists(dims, min_size=1, max_size=4))
    def test_offsets_are_a_bijection(self, shape):
        layout = Layout.row_major(*shape)
        offsets = set()
        for idx in np.ndindex(*shape):
            offsets.add(layout.offset(*idx))
        assert len(offsets) == layout.size
        assert min(offsets) == 0 and max(offsets) == layout.size - 1

    @given(shape=st.lists(dims, min_size=1, max_size=4))
    def test_row_and_col_major_agree_on_size(self, shape):
        assert Layout.row_major(*shape).size == Layout.col_major(*shape).size

    @given(shape=st.lists(dims, min_size=1, max_size=3),
           value=st.floats(min_value=-1e6, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
    def test_tensor_roundtrip(self, shape, value):
        layout = Layout.row_major(*shape)
        storage = np.zeros(layout.size)
        tensor = LayoutTensor(DType.float64, layout, storage)
        idx = tuple(d - 1 for d in shape)
        tensor[idx] = value
        assert tensor[idx] == value

    @given(shape=st.lists(dims, min_size=2, max_size=3))
    def test_to_numpy_matches_elementwise_reads(self, shape):
        layout = Layout.row_major(*shape)
        storage = np.arange(layout.size, dtype=np.float64)
        tensor = LayoutTensor(DType.float64, layout, storage)
        arr = tensor.to_numpy()
        for idx in np.ndindex(*tuple(shape)):
            assert arr[idx] == tensor[idx]


class TestDim3AndLaunchProperties:
    @given(x=dims, y=dims, z=dims)
    def test_dim3_total(self, x, y, z):
        assert Dim3(x, y, z).total == x * y * z

    @given(n=st.integers(min_value=1, max_value=10 ** 7),
           block=st.sampled_from([32, 64, 128, 256, 512, 1024]))
    def test_for_elements_covers_all_elements(self, n, block):
        cfg = LaunchConfig.for_elements(n, block)
        assert cfg.total_threads >= n
        assert cfg.total_threads - n < block


class TestKernelModelProperties:
    @given(loads=st.floats(min_value=0, max_value=100, allow_nan=False),
           stores=st.floats(min_value=0, max_value=100, allow_nan=False),
           flops=st.floats(min_value=0, max_value=1e6, allow_nan=False),
           threads=st.integers(min_value=1, max_value=10 ** 6))
    def test_totals_scale_linearly_with_threads(self, loads, stores, flops, threads):
        model = KernelModel(name="m", dtype=DType.float64, loads_global=loads,
                            stores_global=stores, flops=flops)
        assert model.total_bytes(threads) == pytest.approx(
            model.bytes_per_thread() * threads)
        assert model.total_flops(threads) == pytest.approx(
            model.total_flops(1) * threads, rel=1e-9)

    @given(flops=st.floats(min_value=1, max_value=1e4, allow_nan=False),
           divides=st.floats(min_value=0, max_value=1e3, allow_nan=False))
    def test_special_functions_never_reduce_weighted_flops(self, flops, divides):
        plain = KernelModel(name="m", dtype=DType.float32, loads_global=1,
                            stores_global=1, flops=flops)
        special = plain.scaled(divides=divides)
        assert special.total_flops(10) >= plain.total_flops(10)
