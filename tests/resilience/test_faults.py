"""Deterministic fault injection: plans, schedules, hooks, zero overhead."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, DeviceError, LaunchError
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    active_injector,
    install_fault_plan,
)
from repro.resilience import faults as faults_mod
from repro.resilience.faults import FAULT_SITES, corrupt_array

from chaos_utils import stencil_request


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="transfer.sideways")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="launch", probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule(site="launch", probability=-0.1)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="launch", indices=[-1])

    def test_max_faults_and_latency_validated(self):
        with pytest.raises(ConfigurationError):
            FaultRule(site="launch", max_faults=0)
        with pytest.raises(ConfigurationError):
            FaultRule(site="latency", latency_ms=-1.0)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule.from_dict({"site": "launch", "when": "always"})

    def test_round_trip(self):
        rule = FaultRule(site="transfer.h2d", indices=(0, 3), max_faults=2,
                         match="input")
        assert FaultRule.from_dict(rule.as_dict()) == rule


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=7, rules=(
            FaultRule(site="launch", indices=(2,)),
            FaultRule(site="latency", probability=0.25, latency_ms=1.0),
        ))
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 3, "rules": [{"site": "launch"}]}')
        plan = FaultPlan.load(str(path))
        assert plan.seed == 3
        assert plan.rules[0].site == "launch"

    def test_invalid_json_and_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.loads("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.load(str(tmp_path / "absent.json"))

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"seed": 1, "faults": []})

    def test_example_plan_parses(self):
        import os

        here = os.path.dirname(__file__)
        path = os.path.join(here, "..", "..", "examples", "fault_plan.json")
        plan = FaultPlan.load(path)
        assert plan.rules
        assert all(r.site in FAULT_SITES for r in plan.rules)


class TestSchedule:
    def test_indices_fire_at_exact_occurrences(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="launch", indices=(1, 3)),)))
        hits = [inj.decide("launch") is not None for _ in range(5)]
        assert hits == [False, True, False, True, False]

    def test_probability_schedule_is_deterministic(self):
        plan = FaultPlan(seed=11, rules=(
            FaultRule(site="launch", probability=0.5),))
        first = [FaultInjector(plan).decide("launch") is not None
                 for _ in range(1)]
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.decide("launch") is not None for _ in range(64)]
        seq_b = [b.decide("launch") is not None for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert first[0] == seq_a[0]

    def test_different_seeds_differ(self):
        def schedule(seed):
            inj = FaultInjector(FaultPlan(seed=seed, rules=(
                FaultRule(site="launch", probability=0.5),)))
            return [inj.decide("launch") is not None for _ in range(64)]

        assert schedule(1) != schedule(2)

    def test_max_faults_caps_firing(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="launch", probability=1.0, max_faults=2),)))
        hits = [inj.decide("launch") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_match_restricts_to_labels(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="transfer.h2d", probability=1.0, match="grid"),)))
        assert inj.decide("transfer.h2d", "other") is None
        assert inj.decide("transfer.h2d", "grid_in") is not None

    def test_occurrences_counted_even_without_rules(self):
        inj = FaultInjector(FaultPlan())
        inj.decide("launch")
        inj.decide("launch")
        assert inj.stats()["occurrences"] == {"launch": 2}
        assert inj.stats()["total_fired"] == 0

    def test_events_record_what_fired(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="launch", indices=(0,)),)))
        inj.decide("launch", "stencil_kernel")
        [event] = inj.events
        assert event.site == "launch" and event.index == 0
        assert event.key == "stencil_kernel"
        assert inj.stats()["fired"] == {"launch": 1}


class TestHooks:
    def test_fail_transfer_raises_marked_device_error(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),)))
        with pytest.raises(DeviceError) as err:
            inj.fail_transfer("h2d", "grid_in")
        assert "[fault-injection]" in str(err.value)
        assert err.value.injected is True

    def test_fail_launch_raises_marked_launch_error(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="launch", indices=(0,)),)))
        with pytest.raises(LaunchError) as err:
            inj.fail_launch("launch", "stencil_kernel")
        assert "[fault-injection]" in str(err.value)
        assert err.value.injected is True

    def test_latency_hook_sleeps_the_configured_time(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="latency", indices=(0,), latency_ms=4.0),)))
        slept = []
        inj.inject_latency("latency", "k", sleep=slept.append)
        inj.inject_latency("latency", "k", sleep=slept.append)
        assert slept == [0.004]

    def test_corrupt_read_reports_miss(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule(site="diskstore.read", indices=(0,)),)))
        assert inj.corrupt_read("/store/a.json") is True
        assert inj.corrupt_read("/store/a.json") is False


class TestCorruptArray:
    def test_floats_blow_any_tolerance(self):
        data = np.linspace(0.0, 1.0, 50)
        corrupt_array(data)
        assert np.max(np.abs(data)) == pytest.approx(1e30)
        # interior elements are hit, not just a boundary corner
        assert np.count_nonzero(data == 1e30) >= 7

    def test_ints_and_bools_bit_flip(self):
        ints = np.arange(20, dtype=np.int64)
        corrupt_array(ints)
        assert np.any(ints < 0)
        bools = np.zeros(20, dtype=bool)
        corrupt_array(bools)
        assert np.any(bools)

    def test_deterministic(self):
        a = np.linspace(0.0, 1.0, 64)
        b = a.copy()
        corrupt_array(a)
        corrupt_array(b)
        np.testing.assert_array_equal(a, b)


class TestInstallation:
    def test_scoped_install_and_reset(self):
        plan = FaultPlan()
        assert active_injector() is None
        with install_fault_plan(plan) as injector:
            assert active_injector() is injector
        assert active_injector() is None

    def test_nesting_rejected(self):
        with install_fault_plan(FaultPlan()):
            with pytest.raises(ConfigurationError):
                with install_fault_plan(FaultPlan()):
                    pass
        assert active_injector() is None

    def test_reset_on_error(self):
        with pytest.raises(RuntimeError):
            with install_fault_plan(FaultPlan()):
                raise RuntimeError("boom")
        assert active_injector() is None


class TestZeroOverheadDisabledPath:
    def test_hot_paths_never_consult_the_injector_when_off(self, stencil,
                                                           monkeypatch):
        """With no plan installed the hooks must not even reach decide()."""

        def trap(self, *args, **kwargs):
            raise AssertionError("fault injector consulted while disabled")

        monkeypatch.setattr(FaultInjector, "decide", trap)
        result = stencil.run(stencil_request(stencil, L=18))
        assert result.verification.passed

    def test_injected_faults_surface_through_workload_run(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan):
            with pytest.raises(DeviceError) as err:
                stencil.run(stencil_request(stencil, L=18))
        assert "[fault-injection]" in str(err.value)

    def test_corruption_fails_verification_not_the_run(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="corrupt.d2h", probability=1.0),))
        with install_fault_plan(plan) as injector:
            result = stencil.run(stencil_request(stencil, L=18))
        assert injector.stats()["total_fired"] >= 1
        assert result.verification.ran
        assert not result.verification.passed

    def test_module_flag_is_the_single_switch(self):
        assert faults_mod._ACTIVE is None
        with install_fault_plan(FaultPlan()) as injector:
            assert faults_mod._ACTIVE is injector
