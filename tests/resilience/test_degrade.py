"""Retry + degradation ladder: recovered runs must be bit-identical."""

import pytest

from repro.core.errors import DeviceError, LaunchError
from repro.resilience import (
    FaultPlan,
    FaultRule,
    RetryPolicy,
    degradation_ladder,
    install_fault_plan,
    run_resilient,
)

from chaos_utils import stencil_request


def assert_bit_identical(a, b):
    assert a.metrics == b.metrics
    assert a.samples == b.samples
    assert a.verification.passed == b.verification.passed
    assert a.verification.max_rel_error == b.verification.max_rel_error


class TestDegradationLadder:
    def test_untuned_request_downgrades_executor_only(self, stencil):
        request = stencil_request(stencil)
        steps = degradation_ladder(request)
        assert [s.executor for s in steps] == \
            ["auto", "cooperative", "sequential"]
        assert all(s.tune == "off" for s in steps)

    def test_tuned_request_drops_tuning_first(self, stencil):
        request = stencil_request(stencil, tune="cached")
        steps = degradation_ladder(request)
        assert steps[0].tune == "cached"
        assert [s.tune for s in steps[1:]] == ["off"] * (len(steps) - 1)
        assert [s.executor for s in steps[1:]] == \
            ["auto", "cooperative", "sequential"]

    def test_sequential_has_nowhere_to_go(self, stencil):
        request = stencil_request(stencil, executor="sequential")
        assert degradation_ladder(request) == [request]


class TestRunResilient:
    def test_clean_run_records_single_attempt(self, stencil):
        request = stencil_request(stencil)
        result = run_resilient(stencil, request, retry=RetryPolicy(
            max_attempts=3, sleep=lambda s: None))
        record = result.provenance["resilience"]
        assert record["attempts"] == 1
        assert not record["retried"] and not record["degraded"]
        assert record["ran"] == {"executor": "auto", "tune": "off"}
        assert record["history"] == []

    def test_transfer_fault_retried_bit_identical(self, stencil):
        request = stencil_request(stencil)
        clean = stencil.run(request)
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan):
            recovered = run_resilient(
                stencil, request,
                retry=RetryPolicy(max_attempts=3, sleep=lambda s: None))
        record = recovered.provenance["resilience"]
        assert record["attempts"] == 2 and record["retried"]
        assert not record["degraded"]
        assert record["history"][0]["error_type"] == "DeviceError"
        assert_bit_identical(recovered, clean)

    def test_corruption_surfaces_as_verification_retry(self, stencil):
        request = stencil_request(stencil)
        clean = stencil.run(request)
        plan = FaultPlan(rules=(
            FaultRule(site="corrupt.d2h", indices=(0,)),))
        with install_fault_plan(plan):
            recovered = run_resilient(
                stencil, request,
                retry=RetryPolicy(max_attempts=3, sleep=lambda s: None))
        record = recovered.provenance["resilience"]
        assert record["retried"]
        assert record["history"][0]["error_type"] == "VerificationError"
        assert recovered.verification.passed
        assert_bit_identical(recovered, clean)

    def test_persistent_vectorized_fault_degrades_executor(self, stencil):
        request = stencil_request(stencil)
        clean = stencil.run(request)
        # launch.vectorized fires on every vectorized dispatch but never in
        # the cooperative/sequential interpreters: retries on step 0 are
        # futile, the ladder's executor fallback is the only way through.
        plan = FaultPlan(rules=(
            FaultRule(site="launch.vectorized", probability=1.0),))
        with install_fault_plan(plan):
            recovered = run_resilient(
                stencil, request,
                retry=RetryPolicy(max_attempts=2, sleep=lambda s: None))
        record = recovered.provenance["resilience"]
        assert record["degraded"]
        assert record["ran"]["executor"] == "cooperative"
        assert record["requested"]["executor"] == "auto"
        assert record["attempts"] == 3  # 2 on vectorized + 1 on cooperative
        assert_bit_identical(recovered, clean)

    def test_degrade_false_exhausts_and_raises(self, stencil):
        request = stencil_request(stencil)
        plan = FaultPlan(rules=(
            FaultRule(site="launch", probability=1.0),))
        with install_fault_plan(plan):
            with pytest.raises(LaunchError):
                run_resilient(stencil, request,
                              retry=RetryPolicy(max_attempts=2,
                                                sleep=lambda s: None),
                              degrade=False)

    def test_no_retry_single_attempt_propagates(self, stencil):
        request = stencil_request(stencil)
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", probability=1.0),))
        with install_fault_plan(plan):
            with pytest.raises(DeviceError):
                run_resilient(stencil, request, degrade=False)

    def test_int_retry_is_accepted(self, stencil):
        request = stencil_request(stencil)
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan):
            recovered = run_resilient(stencil, request, retry=2)
        assert recovered.provenance["resilience"]["attempts"] == 2

    def test_stuck_verification_returns_flagged_fallback(self, stencil):
        request = stencil_request(stencil)
        # corrupt every D2H on every executor: no ladder step can recover,
        # but the run *completed*, so the flagged result beats an exception
        plan = FaultPlan(rules=(
            FaultRule(site="corrupt.d2h", probability=1.0),))
        with install_fault_plan(plan):
            result = run_resilient(
                stencil, request,
                retry=RetryPolicy(max_attempts=2, sleep=lambda s: None))
        record = result.provenance["resilience"]
        assert record["verification_failed"]
        assert not result.verification.passed
        assert len(record["history"]) == record["attempts"]

    def test_workload_facade(self, stencil):
        request = stencil_request(stencil)
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan):
            result = stencil.run_resilient(request, retry=3)
        assert result.provenance["resilience"]["retried"]
        assert result.verification.passed

    def test_deadline_exceeded_is_retried(self, stencil, monkeypatch):
        import time

        request = stencil_request(stencil)
        real_run = type(stencil).run
        calls = []

        def slow_once(self, req):
            calls.append(1)
            if len(calls) == 1:
                # This attempt is abandoned by the 100 ms deadline; its
                # return value is discarded.  Do NOT run the real workload
                # here: the orphaned worker thread would keep issuing
                # device transfers in the background and consume the
                # global fault-injection occurrence indices a later
                # test's plan keys on.
                time.sleep(0.2)
                return None
            return real_run(self, req)

        monkeypatch.setattr(type(stencil), "run", slow_once)
        result = run_resilient(
            stencil, request,
            retry=RetryPolicy(max_attempts=3, sleep=lambda s: None),
            timeout_ms=100.0)
        record = result.provenance["resilience"]
        assert record["attempts"] == 2
        assert record["history"][0]["error_type"] == "DeadlineExceeded"
        assert record["timeout_ms"] == 100.0
        assert result.verification.passed
