"""The resilience layer reports itself to the metrics registry.

Chaos runs must be *accountable*: the process-wide counters
(``fault_injections_fired_total``, ``retry_attempts_total``,
``degradation_steps_total``, the breaker transitions) have to agree exactly
with the journaled per-attempt history each resilient run attaches to its
result provenance.
"""

import pytest

from repro.obs.metrics import registry, reset_metrics
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    install_fault_plan,
    run_resilient,
)

from chaos_utils import stencil_request

RETRY = RetryPolicy(max_attempts=3, sleep=lambda s: None)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


def counters():
    snap = registry().snapshot()["counters"]
    return {name: snap[name] for name in (
        "fault_injections_fired_total",
        "retry_attempts_total",
        "degradation_steps_total",
    )}


def assert_counters_match_journal(result, injector):
    """The registry deltas must equal what the attempt journal implies."""
    record = result.provenance["resilience"]
    got = counters()
    # each ladder step is entered exactly once, so the re-attempt count is
    # total attempts minus the number of steps actually entered
    steps_entered = record["ladder_step"] + 1
    assert got["retry_attempts_total"] == record["attempts"] - steps_entered
    assert got["degradation_steps_total"] == record["ladder_step"]
    assert got["fault_injections_fired_total"] == \
        injector.stats()["total_fired"]


class TestResilientRunCounters:
    def test_clean_run_counts_nothing(self, stencil):
        result = run_resilient(stencil, stencil_request(stencil), retry=RETRY)
        assert result.provenance["resilience"]["attempts"] == 1
        assert all(v == 0 for v in counters().values())

    def test_retried_fault_counts_once(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan) as injector:
            result = run_resilient(stencil, stencil_request(stencil),
                                   retry=RETRY)
        record = result.provenance["resilience"]
        assert record["attempts"] == 2 and not record["degraded"]
        assert_counters_match_journal(result, injector)
        assert counters()["retry_attempts_total"] == 1
        assert registry().counter("fault_injections_fired_total",
                                  site="transfer.h2d") == 1.0

    def test_degraded_run_counts_ladder_steps(self, stencil):
        # every launch attempt of the first two ladder steps fails, so the
        # run degrades twice and succeeds on the sequential rung
        plan = FaultPlan(rules=(
            FaultRule(site="launch", indices=(0, 1, 2, 3, 4, 5)),))
        with install_fault_plan(plan) as injector:
            result = run_resilient(stencil, stencil_request(stencil),
                                   retry=RETRY)
        record = result.provenance["resilience"]
        assert record["degraded"]
        assert len(record["history"]) == record["attempts"] - 1
        assert_counters_match_journal(result, injector)

    def test_journal_reconciles_for_any_outcome(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0, 1)),
            FaultRule(site="transfer.d2h", indices=(1,)),
        ))
        with install_fault_plan(plan) as injector:
            result = run_resilient(stencil, stencil_request(stencil),
                                   retry=RETRY)
        assert result.verification.passed
        assert_counters_match_journal(result, injector)


class TestBreakerCounters:
    def test_full_open_probe_close_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0,
                                 clock=lambda: clock[0])
        key = "h100/mojo"
        assert breaker.allow(key)
        breaker.record_failure(key)
        assert registry().counter("breaker_open_total") == 0.0
        breaker.record_failure(key)  # threshold crossed: closed -> open
        assert registry().counter("breaker_open_total") == 1.0
        assert not breaker.allow(key)
        clock[0] = 11.0
        assert breaker.allow(key)    # probe admitted: open -> half-open
        assert registry().counter("breaker_half_open_total") == 1.0
        breaker.record_success(key)  # probe succeeded: half-open -> closed
        assert registry().counter("breaker_closed_total") == 1.0

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure("k")
        clock[0] = 6.0
        assert breaker.allow("k")
        breaker.record_failure("k")  # half-open probe failed: re-open
        assert registry().counter("breaker_open_total") == 2.0
        assert registry().counter("breaker_closed_total") == 0.0

    def test_success_without_open_counts_nothing(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_success("k")
        assert registry().counter("breaker_closed_total") == 0.0
