"""Retry, deadline and circuit-breaker policy units."""

import time

import pytest

from repro.core.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceeded,
    DeviceError,
    LaunchError,
)
from repro.resilience import CircuitBreaker, Deadline, RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)

    def test_default_retryable_classes(self):
        policy = RetryPolicy()
        assert policy.retryable(LaunchError("x"))
        assert policy.retryable(DeviceError("x"))
        assert policy.retryable(DeadlineExceeded("x"))
        assert not policy.retryable(ConfigurationError("x"))

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.01, multiplier=2.0, jitter=0.1,
                             seed=5)
        again = RetryPolicy(backoff_s=0.01, multiplier=2.0, jitter=0.1,
                            seed=5)
        for attempt in range(1, 6):
            base = 0.01 * 2.0 ** (attempt - 1)
            delay = policy.delay_s(attempt)
            assert delay == again.delay_s(attempt)
            assert base * 0.9 <= delay <= base * 1.1

    def test_jitter_varies_with_seed(self):
        a = RetryPolicy(seed=1).delay_s(1)
        b = RetryPolicy(seed=2).delay_s(1)
        assert a != b

    def test_call_retries_until_success(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise LaunchError("transient")
            return "done"

        retries = []
        value = policy.call(flaky,
                            on_retry=lambda i, e: retries.append((i, str(e))))
        assert value == "done"
        assert len(calls) == 3
        assert len(slept) == 2
        assert [i for i, _ in retries] == [1, 2]

    def test_call_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        calls = []

        def always_fails():
            calls.append(1)
            raise DeviceError("down")

        with pytest.raises(DeviceError):
            policy.call(always_fails)
        assert len(calls) == 2

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)
        calls = []

        def broken():
            calls.append(1)
            raise ConfigurationError("bad request")

        with pytest.raises(ConfigurationError):
            policy.call(broken)
        assert len(calls) == 1

    def test_as_dict(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5, seed=9)
        payload = policy.as_dict()
        assert payload["max_attempts"] == 4
        assert payload["backoff_s"] == 0.5
        assert payload["seed"] == 9


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Deadline(0)
        with pytest.raises(ConfigurationError):
            Deadline(-5)

    def test_check_with_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(1000.0, clock=clock)
        deadline.check()
        clock.now += 0.5
        assert deadline.elapsed_ms == pytest.approx(500.0)
        assert deadline.remaining_ms == pytest.approx(500.0)
        assert not deadline.expired
        clock.now += 0.6
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("probe")
        assert "probe" in str(err.value)
        assert err.value.timeout_ms == 1000.0

    def test_run_returns_value_and_propagates_errors(self):
        assert Deadline(5000.0).run(lambda x: x * 2, 21) == 42
        with pytest.raises(ValueError):
            Deadline(5000.0).run(self._raise)

    @staticmethod
    def _raise():
        raise ValueError("from worker")

    def test_run_times_out_a_hung_function(self):
        with pytest.raises(DeadlineExceeded) as err:
            Deadline(30.0).run(time.sleep, 5.0)
        assert err.value.timeout_ms == 30.0


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1000)
        key = ("stencil", "h100", "mojo")
        assert breaker.allow(key)
        breaker.record_failure(key)
        assert breaker.allow(key)
        breaker.record_failure(key)
        assert not breaker.allow(key)
        assert breaker.state(key) == "open"
        with pytest.raises(CircuitOpenError) as err:
            breaker.check(key)
        assert err.value.key == key

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1000)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.allow("k")
        assert breaker.state("k") == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10, clock=clock)
        breaker.record_failure("k")
        assert not breaker.allow("k")
        clock.now += 11
        assert breaker.state("k") == "half-open"
        assert breaker.allow("k")       # the probe
        assert not breaker.allow("k")   # everyone else keeps waiting

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10, clock=clock)
        breaker.record_failure("k")
        clock.now += 11
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

        breaker.record_failure("k")
        clock.now += 11
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert not breaker.allow("k")
        assert breaker.state("k") == "open"

    def test_keys_are_isolated(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=1000)
        breaker.record_failure(("stencil", "h100", "mojo"))
        assert not breaker.allow(("stencil", "h100", "mojo"))
        assert breaker.allow(("stencil", "mi300a", "mojo"))

    def test_info_snapshot(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1000)
        breaker.record_failure("k")
        info = breaker.info()
        assert info["k"] == {"failures": 1, "state": "closed"}
