"""Fixtures for the resilience/chaos suite."""

import pytest

from repro.resilience import faults
from repro.workloads import clear_result_cache, get_workload


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Fault injection must never leak across tests (or into the suite)."""
    assert faults._ACTIVE is None
    yield
    assert faults._ACTIVE is None


@pytest.fixture(autouse=True)
def _clean_default_cache():
    clear_result_cache()
    yield
    clear_result_cache()


@pytest.fixture
def stencil():
    return get_workload("stencil")
