"""End-to-end chaos: resilient sweeps, checkpoint resume, async cancellation."""

import asyncio
import threading
import time

import pytest

from repro.core.errors import DeviceError
from repro.harness.sweep import sweep
from repro.resilience import (
    CircuitBreaker,
    FailureRecord,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    install_fault_plan,
)
from repro.tuning.db import TuningDB
from repro.workloads.cache import ResultCache

from chaos_utils import FAST

CHAOS_PLAN = FaultPlan(seed=7, rules=(
    FaultRule(site="transfer.h2d", indices=(0,)),
    FaultRule(site="launch", indices=(2,)),
    FaultRule(site="corrupt.d2h", indices=(1,)),
))

RETRY = RetryPolicy(max_attempts=3, sleep=lambda s: None)


def chaos_sweep():
    return sweep(L=[18, 20, 22])


def run_clean(stencil):
    return chaos_sweep().run_workload(stencil, cache=False, verify=True,
                                      protocol=FAST)


class TestResilientSweep:
    def test_chaos_sweep_is_bit_identical_to_clean(self, stencil):
        clean = run_clean(stencil)
        with install_fault_plan(CHAOS_PLAN) as injector:
            chaotic = chaos_sweep().run_workload(
                stencil, cache=False, verify=True, protocol=FAST,
                on_error="retry", retry=RETRY)
        assert injector.stats()["total_fired"] == 3
        assert len(chaotic) == len(clean) == 3
        for survived, reference in zip(chaotic, clean):
            assert survived.verification.passed
            assert survived.metrics == reference.metrics
            assert survived.samples == reference.samples
        assert sum(1 for r in chaotic
                   if r.provenance.get("resilience", {}).get("retried")) >= 1

    def test_on_error_skip_keeps_sweep_order(self, stencil):
        # one unretried fault on the second configuration's H2D: that slot
        # becomes a FailureRecord, the neighbours complete normally
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(1,)),))
        with install_fault_plan(plan):
            results = chaos_sweep().run_workload(
                stencil, cache=False, verify=True, protocol=FAST,
                on_error="skip")
        assert len(results) == 3
        assert results[0].verification.passed
        assert isinstance(results[1], FailureRecord)
        assert results[1].error_type == "DeviceError"
        assert results[2].verification.passed

    def test_on_error_raise_propagates(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(0,)),))
        with install_fault_plan(plan):
            with pytest.raises(DeviceError):
                chaos_sweep().run_workload(stencil, cache=False, verify=True,
                                           protocol=FAST)

    def test_default_keywords_change_nothing(self, stencil):
        plain = chaos_sweep().run_workload(stencil, cache=False, verify=True,
                                           protocol=FAST)
        for result in plain:
            assert "resilience" not in result.provenance

    def test_circuit_breaker_fails_fast(self, stencil):
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", probability=1.0),))
        breaker = CircuitBreaker(threshold=1, cooldown_s=1000)
        with install_fault_plan(plan) as injector:
            results = chaos_sweep().run_workload(
                stencil, cache=False, verify=True, protocol=FAST,
                on_error="skip", breaker=breaker)
        assert all(isinstance(r, FailureRecord) for r in results)
        assert results[0].stage == "run"
        assert [r.stage for r in results[1:]] == ["circuit-open"] * 2
        # the open circuit stopped the later requests before the substrate
        assert injector.stats()["occurrences"]["transfer.h2d"] == 1


class TestCheckpointedSweep:
    def test_interrupted_sweep_resumes_without_rerunning(self, stencil,
                                                         tmp_path,
                                                         monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        with install_fault_plan(CHAOS_PLAN):
            first = chaos_sweep().run_workload(
                stencil, cache=False, verify=True, protocol=FAST,
                on_error="retry", retry=RETRY, checkpoint=path)
        assert all(r.verification.passed for r in first)

        calls = []
        real_run = type(stencil).run

        def spy(self, request):
            calls.append(request)
            return real_run(self, request)

        monkeypatch.setattr(type(stencil), "run", spy)
        resumed = chaos_sweep().run_workload(
            stencil, cache=False, verify=True, protocol=FAST,
            checkpoint=path, resume=True)
        assert calls == []  # every request answered from the journal
        for replayed, original in zip(resumed, first):
            assert replayed.metrics == original.metrics
            assert replayed.samples == original.samples

    def test_partial_journal_reruns_only_the_missing(self, stencil, tmp_path,
                                                     monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        sweep(L=[18, 20]).run_workload(stencil, cache=False, verify=True,
                                       protocol=FAST, checkpoint=path)
        calls = []
        real_run = type(stencil).run
        monkeypatch.setattr(
            type(stencil), "run",
            lambda self, r: calls.append(r) or real_run(self, r))
        results = chaos_sweep().run_workload(stencil, cache=False,
                                             verify=True, protocol=FAST,
                                             checkpoint=path, resume=True)
        assert len(results) == 3
        assert [r.params["L"] for r in calls] == [22]

    def test_resume_false_reruns_everything(self, stencil, tmp_path,
                                            monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        sweep(L=[18, 20]).run_workload(stencil, cache=False, verify=True,
                                       protocol=FAST, checkpoint=path)
        calls = []
        real_run = type(stencil).run
        monkeypatch.setattr(
            type(stencil), "run",
            lambda self, r: calls.append(r) or real_run(self, r))
        sweep(L=[18, 20]).run_workload(stencil, cache=False, verify=True,
                                       protocol=FAST, checkpoint=path,
                                       resume=False)
        assert len(calls) == 2

    def test_journal_records_failures(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        plan = FaultPlan(rules=(
            FaultRule(site="transfer.h2d", indices=(1,)),))
        with install_fault_plan(plan):
            results = chaos_sweep().run_workload(
                stencil, cache=False, verify=True, protocol=FAST,
                on_error="skip", checkpoint=path)
        assert isinstance(results[1], FailureRecord)

        from repro.resilience import CheckpointJournal

        journal = CheckpointJournal(path)
        assert journal.summary()["completed"] == 2
        assert journal.summary()["failed"] == 1
        # the failed slot is re-attempted on resume — and succeeds now that
        # the fault plan is gone
        resumed = chaos_sweep().run_workload(
            stencil, cache=False, verify=True, protocol=FAST,
            checkpoint=path, resume=True)
        assert all(r.verification.passed for r in resumed)


class TestAsyncResilience:
    def test_async_sweep_with_retries_and_checkpoint(self, stencil, tmp_path):
        path = str(tmp_path / "async.jsonl")
        clean = run_clean(stencil)
        with install_fault_plan(CHAOS_PLAN):
            chaotic = asyncio.run(chaos_sweep().run_workload_async(
                stencil, workers=2, cache=False, verify=True, protocol=FAST,
                on_error="retry", retry=RETRY, checkpoint=path))
        assert len(chaotic) == 3
        for survived, reference in zip(chaotic, clean):
            assert survived.verification.passed
            assert survived.metrics == reference.metrics

        from repro.resilience import CheckpointJournal

        assert CheckpointJournal(path).summary()["completed"] == 3

    def test_cancellation_leaves_no_residue(self, stencil, monkeypatch,
                                            tmp_path):
        """Cancel mid-sweep: single-flight table drains, the tuning DB stays
        consistent, and the next run re-executes cleanly."""
        import repro.workloads.cache as cache_mod

        isolated = ResultCache()
        monkeypatch.setattr(cache_mod, "_default_cache", isolated)
        db = TuningDB(disk_dir=str(tmp_path / "tune"))
        started = threading.Event()
        real_run = type(stencil).run

        def slow_run(self, request):
            started.set()
            time.sleep(0.05)
            return real_run(self, request)

        monkeypatch.setattr(type(stencil), "run", slow_run)

        async def interrupt():
            task = asyncio.create_task(
                sweep(L=[18, 20, 22, 24]).run_workload_async(
                    stencil, workers=2, verify=True, protocol=FAST))
            await asyncio.to_thread(started.wait, 2.0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(interrupt())  # joins the executor threads on shutdown
        assert isolated._inflight == {}
        assert isolated._inflight_refs == {}
        assert db.info()["size"] == 0  # untouched by the cancelled sweep

        monkeypatch.setattr(type(stencil), "run", real_run)
        rerun = asyncio.run(sweep(L=[18, 20, 22, 24]).run_workload_async(
            stencil, workers=2, verify=True, protocol=FAST))
        assert len(rerun) == 4
        assert all(r.verification.passed for r in rerun)
        assert isolated._inflight == {}
