"""Shared helpers for the resilience/chaos suite."""

from repro.harness.runner import MeasurementProtocol

FAST = MeasurementProtocol(warmup=0, repeats=2)


def stencil_request(wl, L=18, **overrides):
    fields = dict(params={"L": L}, protocol=FAST)
    fields.update(overrides)
    return wl.make_request(**fields)
