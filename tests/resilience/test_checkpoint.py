"""Checkpoint journal and failure-record units."""

import json

import pytest

from repro.core.errors import ConfigurationError, LaunchError
from repro.resilience import (
    CheckpointJournal,
    FailureRecord,
    RetryPolicy,
    SweepResilience,
    request_digest,
)
from repro.workloads.cache import ResultCache

from chaos_utils import stencil_request


class TestRequestDigest:
    def test_matches_the_result_cache_key(self, stencil):
        request = stencil_request(stencil)
        assert request_digest(request) == ResultCache.disk_key(request)

    def test_distinct_requests_distinct_digests(self, stencil):
        a = stencil_request(stencil, L=18)
        b = stencil_request(stencil, L=20)
        assert request_digest(a) != request_digest(b)


class TestFailureRecord:
    def test_from_exception_and_round_trip(self, stencil):
        request = stencil_request(stencil)
        record = FailureRecord.from_exception(
            request, LaunchError("kernel died"), attempts=3)
        assert record.ok is False
        assert record.workload == "stencil"
        assert record.error_type == "LaunchError"
        assert record.attempts == 3
        assert record.digest == request_digest(request)
        again = FailureRecord.from_dict(record.as_dict())
        assert again.as_dict() == record.as_dict()
        assert again.ok is False


class TestCheckpointJournal:
    def test_round_trip_through_the_file(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        request = stencil_request(stencil)
        result = stencil.run(request)

        journal = CheckpointJournal(path)
        assert journal.get(request) is None
        journal.record_success(request, result)
        assert journal.completed_count == 1

        resumed = CheckpointJournal(path)
        stored = resumed.get(request)
        assert stored is not None
        assert stored.metrics == result.metrics
        assert stored.samples == result.samples
        assert stored.verification.passed == result.verification.passed

    def test_resume_false_truncates(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        request = stencil_request(stencil)
        CheckpointJournal(path).record_success(request, stencil.run(request))
        fresh = CheckpointJournal(path, resume=False)
        assert fresh.completed_count == 0
        assert fresh.get(request) is None

    def test_torn_tail_line_is_skipped(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        request = stencil_request(stencil)
        CheckpointJournal(path).record_success(request, stencil.run(request))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.sweep-checkpoint/v1", "status": "ok"'
                     ', "dig')  # the process died mid-write
        resumed = CheckpointJournal(path)
        assert resumed.skipped_lines == 1
        assert resumed.get(request) is not None

    def test_foreign_schema_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": "someone-else/v9",
                                 "digest": "x", "status": "ok"}) + "\n")
        journal = CheckpointJournal(path)
        assert journal.completed_count == 0
        assert journal.skipped_lines == 1

    def test_failed_entries_are_reported_but_rerun(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        request = stencil_request(stencil)
        journal = CheckpointJournal(path)
        failure = FailureRecord.from_exception(request, LaunchError("boom"))
        journal.record_failure(failure)

        resumed = CheckpointJournal(path)
        assert resumed.get(request) is None  # a failure is not a result
        [reported] = resumed.failures()
        assert reported.error_type == "LaunchError"
        assert resumed.summary() == {"completed": 0, "failed": 1,
                                     "skipped_lines": 0}

    def test_success_supersedes_an_earlier_failure(self, stencil, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        request = stencil_request(stencil)
        journal = CheckpointJournal(path)
        journal.record_failure(
            FailureRecord.from_exception(request, LaunchError("boom")))
        journal.record_success(request, stencil.run(request))

        resumed = CheckpointJournal(path)
        assert resumed.get(request) is not None
        assert resumed.failures() == []

    def test_missing_file_resumes_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "absent.jsonl"))
        assert journal.completed_count == 0


class TestSweepResilience:
    def test_on_error_validated(self):
        with pytest.raises(ConfigurationError):
            SweepResilience(on_error="explode")

    def test_wrap_run_is_identity_without_retry_or_timeout(self, stencil):
        bundle = SweepResilience(on_error="skip")
        assert bundle.wrap_run(stencil) == stencil.run

    def test_retry_mode_defaults_a_policy(self):
        bundle = SweepResilience(on_error="retry")
        assert isinstance(bundle.retry, RetryPolicy)

    def test_int_retry_coerced(self):
        bundle = SweepResilience(retry=4)
        assert isinstance(bundle.retry, RetryPolicy)
        assert bundle.retry.max_attempts == 4
