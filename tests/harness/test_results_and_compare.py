"""Tests for result tables, experiment results and paper comparisons."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.compare import (
    ordering_comparison,
    qualitative_comparison,
    ratio_comparison,
    within_band,
)
from repro.harness.results import Comparison, ExperimentResult, ResultTable


class TestResultTable:
    def _table(self):
        t = ResultTable(columns=["op", "gbs"], title="demo")
        t.add_row(op="copy", gbs=3300.5)
        t.add_row(op="dot", gbs=2500.0)
        return t

    def test_add_and_column(self):
        t = self._table()
        assert len(t) == 2
        assert t.column("op") == ["copy", "dot"]

    def test_unknown_column_rejected(self):
        t = self._table()
        with pytest.raises(ConfigurationError):
            t.add_row(op="x", gflops=1.0)
        with pytest.raises(ConfigurationError):
            t.column("gflops")

    def test_markdown(self):
        md = self._table().to_markdown()
        assert "| op | gbs |" in md
        assert "copy" in md and "### demo" in md

    def test_text(self):
        txt = self._table().to_text()
        assert "demo" in txt and "dot" in txt

    def test_csv(self):
        csv = self._table().to_csv()
        assert csv.splitlines()[0] == "op,gbs"
        assert len(csv.splitlines()) == 3

    def test_float_formatting(self):
        t = ResultTable(columns=["x"])
        t.add_row(x=1234567.0)
        t.add_row(x=0.000001)
        t.add_row(x=None)
        text = t.to_text()
        assert "e+06" in text and "e-06" in text and "-" in text

    def test_json_round_trip(self):
        t = self._table()
        payload = json.loads(t.to_json())
        rebuilt = ResultTable(columns=payload["columns"],
                              title=payload["title"])
        for row in payload["rows"]:
            rebuilt.add_row(**row)
        assert rebuilt.to_csv() == t.to_csv()
        assert rebuilt.to_text() == t.to_text()
        assert rebuilt.to_markdown() == t.to_markdown()

    def test_csv_round_trip(self):
        import csv as csv_mod
        import io

        t = self._table()
        reader = csv_mod.DictReader(io.StringIO(t.to_csv()))
        rows = list(reader)
        assert [r["op"] for r in rows] == ["copy", "dot"]
        assert [float(r["gbs"]) for r in rows] == [3300.5, 2500.0]

    def test_as_dict_is_plain_data(self):
        payload = self._table().as_dict()
        assert payload["columns"] == ["op", "gbs"]
        # mutating the export must not touch the table
        payload["rows"][0]["op"] = "tampered"
        assert self._table().rows[0]["op"] == "copy"


class TestComparisons:
    def test_within_band(self):
        assert within_band(0.9, 1.0, rel_tol=0.15)
        assert not within_band(0.5, 1.0, rel_tol=0.15)
        assert within_band(0.0, 0.0)

    def test_ratio_comparison_pass_and_fail(self):
        ok = ratio_comparison("x", 0.9, 1.0, rel_tol=0.2)
        bad = ratio_comparison("x", 0.5, 1.0, rel_tol=0.2)
        assert ok.passed and not bad.passed
        assert ok.ratio == pytest.approx(0.9)

    def test_ratio_comparison_without_paper_value(self):
        c = ratio_comparison("x", 5.0, None)
        assert c.passed and c.ratio is None

    def test_ordering_comparison(self):
        values = {"fast": 10.0, "mid": 5.0, "slow": 1.0}
        ok = ordering_comparison("o", values, ["fast", "mid", "slow"])
        bad = ordering_comparison("o", values, ["slow", "mid", "fast"])
        assert ok.passed and not bad.passed
        assert "expected" in bad.detail

    def test_ordering_lower_is_better(self):
        values = {"a": 1.0, "b": 2.0}
        ok = ordering_comparison("o", values, ["a", "b"], higher_is_better=False)
        assert ok.passed

    def test_ordering_missing_key(self):
        with pytest.raises(ConfigurationError):
            ordering_comparison("o", {"a": 1.0}, ["a", "b"])

    def test_qualitative(self):
        assert qualitative_comparison("q", True).passed
        assert not qualitative_comparison("q", False).passed

    def test_comparison_text(self):
        text = ratio_comparison("metric", 0.9, 1.0).to_text()
        assert "[ok]" in text and "metric" in text
        text = ratio_comparison("metric", 0.1, 1.0).to_text()
        assert "MISMATCH" in text


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult("figX", "demo experiment")
        t = ResultTable(columns=["a"], title="t")
        t.add_row(a=1)
        r.add_table(t)
        r.add_comparison(Comparison("c", 1.0, 1.0))
        r.notes.append("a note")
        return r

    def test_all_passed(self):
        r = self._result()
        assert r.all_passed
        r.add_comparison(Comparison("bad", 0.0, 1.0, passed=False))
        assert not r.all_passed

    def test_text_rendering(self):
        text = self._result().to_text()
        assert "figX" in text and "Paper comparison" in text and "note:" in text

    def test_markdown_rendering(self):
        md = self._result().to_markdown()
        assert md.startswith("## figX")
        assert "**Paper comparison**" in md

    def test_json_rendering(self):
        payload = json.loads(self._result().to_json())
        assert payload["experiment_id"] == "figX"
        assert payload["all_passed"] is True
        assert payload["tables"][0]["rows"] == [{"a": 1}]

    def test_json_tables_match_table_export(self):
        r = self._result()
        payload = json.loads(r.to_json())
        assert payload["tables"] == [json.loads(t.to_json())
                                     for t in r.tables]


class FakeWorkloadResult:
    """Anything implementing the to_row()/ROW_COLUMNS protocol tabulates."""

    ROW_COLUMNS = ("workload", "gpu", "value")

    def __init__(self, workload, gpu, value):
        self._row = {"workload": workload, "gpu": gpu, "value": value}

    def to_row(self):
        return dict(self._row)


class TestWorkloadResultTables:
    def test_add_workload_results(self):
        r = ExperimentResult("figY", "workload demo")
        table = r.add_workload_results(
            [FakeWorkloadResult("stencil", "h100", 1.0),
             FakeWorkloadResult("stencil", "mi300a", 2.0)],
            title="sweep")
        assert table in r.tables
        assert table.columns == ["workload", "gpu", "value"]
        assert table.column("value") == [1.0, 2.0]

    def test_column_subset(self):
        r = ExperimentResult("figY", "workload demo")
        table = r.add_workload_results(
            [FakeWorkloadResult("stencil", "h100", 1.0)],
            columns=["gpu", "value"])
        assert table.columns == ["gpu", "value"]
        assert table.rows == [{"gpu": "h100", "value": 1.0}]

    def test_empty_results_rejected(self):
        r = ExperimentResult("figY", "workload demo")
        with pytest.raises(ConfigurationError):
            r.add_workload_results([])

    def test_real_workload_results_tabulate(self):
        from repro.harness.runner import MeasurementProtocol
        from repro.workloads import get_workload

        wl = get_workload("stencil")
        result = wl.run(wl.make_request(
            params={"L": 32}, verify=False,
            protocol=MeasurementProtocol(warmup=0, repeats=1)))
        r = ExperimentResult("figY", "workload demo")
        table = r.add_workload_results([result])
        assert table.rows[0]["workload"] == "stencil"
        json.loads(table.to_json())  # NaN-free, serialisable
