"""Tests for sweeps, text plotting and the host-side benchmark runner."""

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.plotting import Series, bar_chart, line_chart, series_to_csv
from repro.harness.runner import BenchmarkRunner, MeasurementProtocol
from repro.harness.sweep import Sweep, sweep
from repro.harness.paper_data import (
    TABLE2_STENCIL_NCU,
    TABLE4_HARTREE_FOCK_MS,
    TABLE5_EFFICIENCIES,
    TABLE5_PHI,
)


class TestSweep:
    def test_cartesian_product(self):
        s = sweep(a=[1, 2], b=["x", "y"])
        configs = s.configurations()
        assert len(configs) == 4
        assert {"a": 1, "b": "x"} in configs

    def test_order_is_deterministic(self):
        s = sweep(a=[1, 2], b=[10, 20])
        assert s.configurations() == [
            {"a": 1, "b": 10}, {"a": 1, "b": 20},
            {"a": 2, "b": 10}, {"a": 2, "b": 20},
        ]

    def test_where_filter(self):
        s = sweep(ppwi=[1, 2, 4, 8], wg=[8, 64]).where(lambda c: c["ppwi"] * c["wg"] <= 64)
        assert all(c["ppwi"] * c["wg"] <= 64 for c in s)
        assert len(s) < 8

    def test_chained_filters(self):
        s = sweep(x=[1, 2, 3, 4]).where(lambda c: c["x"] > 1).where(lambda c: c["x"] < 4)
        assert [c["x"] for c in s] == [2, 3]

    def test_run_applies_function(self):
        s = sweep(x=[1, 2, 3])
        assert s.run(lambda x: x * 2) == [2, 4, 6]

    def test_empty_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(x=[])

    def test_duplicate_parameter_rejected(self):
        s = sweep(x=[1])
        with pytest.raises(ConfigurationError):
            s.add("x", [2])

    def test_empty_sweep_iteration_rejected(self):
        with pytest.raises(ConfigurationError):
            list(Sweep())


class TestPlotting:
    def test_bar_chart(self):
        chart = bar_chart({"mojo": 3300.0, "cuda": 3400.0}, title="bw", unit=" GB/s")
        assert "mojo" in chart and "#" in chart and "bw" in chart

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})

    def test_line_chart(self):
        s1 = Series("mojo")
        s2 = Series("cuda")
        for x in (1, 2, 4):
            s1.add(x, x * 10.0)
            s2.add(x, x * 12.0)
        chart = line_chart([s1, s2], title="minibude")
        assert "mojo" in chart and "cuda" in chart

    def test_line_chart_mismatched_x_rejected(self):
        s1, s2 = Series("a"), Series("b")
        s1.add(1, 1.0)
        s2.add(2, 1.0)
        with pytest.raises(ConfigurationError):
            line_chart([s1, s2])

    def test_series_to_csv(self):
        s = Series("mojo")
        s.add(1, 2.0)
        s.add(2, 3.0)
        csv = series_to_csv([s], x_label="ppwi")
        assert csv.splitlines()[0] == "ppwi,mojo"
        assert csv.splitlines()[1] == "1,2.0"


class TestBenchmarkRunner:
    def test_measure_collects_repeats(self):
        runner = BenchmarkRunner(MeasurementProtocol(warmup=1, repeats=3))
        calls = []
        m = runner.measure("noop", lambda: calls.append(1) or 42)
        assert len(calls) == 4               # 1 warmup + 3 repeats
        assert len(m.samples_s) == 3
        assert m.result == 42
        assert m.best_s <= m.mean_s

    def test_report_text(self):
        runner = BenchmarkRunner(MeasurementProtocol(warmup=0, repeats=2))
        runner.measure("thing", lambda: None)
        assert "thing" in runner.report()

    def test_invalid_protocol(self):
        with pytest.raises(ConfigurationError):
            MeasurementProtocol(warmup=-1)
        with pytest.raises(ConfigurationError):
            MeasurementProtocol(repeats=0)


class TestPaperData:
    """Sanity checks on the transcribed paper values."""

    def test_table2_register_counts(self):
        assert TABLE2_STENCIL_NCU[("float64", "mojo")]["registers"] == 24
        assert TABLE2_STENCIL_NCU[("float64", "cuda")]["registers"] == 21

    def test_table4_mojo_faster_on_h100_up_to_256(self):
        for natoms in (64, 128, 256):
            row = TABLE4_HARTREE_FOCK_MS[(natoms, 3)]
            assert row[("h100", "mojo")] < row[("h100", "cuda")]

    def test_table4_mojo_slower_on_mi300a(self):
        for natoms in (64, 128, 256):
            row = TABLE4_HARTREE_FOCK_MS[(natoms, 3)]
            assert row[("mi300a", "mojo")] > 10 * row[("mi300a", "hip")]

    def test_table5_phi_values(self):
        assert TABLE5_PHI == {"stencil": 0.92, "babelstream": 0.96,
                              "minibude": 0.54, "hartreefock": 0.92}

    def test_table5_efficiencies_match_phi(self):
        stencil = TABLE5_EFFICIENCIES["stencil"]
        phi = sum(stencil.values()) / len(stencil)
        assert phi == pytest.approx(TABLE5_PHI["stencil"], abs=0.01)


class TestSweepCountAndWorkers:
    def test_len_without_constraint_builds_no_dicts(self):
        s = sweep(a=[1, 2, 3], b=[10, 20], c=["x", "y"])
        # Poison the constraint-free path: a failing predicate would be
        # called if __len__ materialised configurations.
        assert len(s) == 12

    def test_len_cached(self):
        calls = []
        s = sweep(a=[1, 2, 3, 4]).where(lambda c: calls.append(1) or c["a"] > 1)
        assert len(s) == 3
        first_pass_calls = len(calls)
        assert len(s) == 3
        assert len(calls) == first_pass_calls   # second len() hit the cache

    def test_len_matches_configurations_with_constraint(self):
        s = sweep(ppwi=[1, 2, 4, 8], wg=[8, 64]).where(
            lambda c: c["ppwi"] * c["wg"] <= 64)
        assert len(s) == len(s.configurations())

    def test_len_invalidated_by_add_and_where(self):
        s = sweep(a=[1, 2])
        assert len(s) == 2
        s.add("b", [1, 2, 3])
        assert len(s) == 6
        s.where(lambda c: c["b"] < 3)
        assert len(s) == 4

    def test_len_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            len(Sweep())

    def test_run_workers_preserves_configuration_order(self):
        import time as time_mod

        s = sweep(a=[1, 2, 3, 4], b=[10, 20])

        def fn(a, b):
            # Earlier configurations sleep longer, so completion order is the
            # reverse of submission order.
            time_mod.sleep(0.02 / (a * b))
            return (a, b)

        sequential = s.run(fn)
        concurrent = s.run(fn, workers=4)
        assert concurrent == sequential

    def test_run_workers_propagates_errors(self):
        s = sweep(a=[1, 0, 2])

        def fn(a):
            return 1 // a

        with pytest.raises(ZeroDivisionError):
            s.run(fn, workers=2)


class TestMeasurementCaching:
    def test_statistics_computed_once(self):
        runner = BenchmarkRunner(MeasurementProtocol(warmup=0, repeats=3))
        m = runner.measure("noop", lambda: None)
        assert m.statistics is m.statistics     # same cached object
        assert m.best_s == min(m.samples_s)
        assert m.mean_s == pytest.approx(m.statistics.mean)
