"""Tests for the benchmark-regression guard behind ``repro bench-compare``."""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.benchcheck import (
    compare_benchmarks,
    extract_stats,
    load_stats,
    write_baseline,
)


def _trimmed(**named):
    return {name: {"min": t, "mean": t * 1.1} for name, t in named.items()}


class TestExtractStats:
    def test_from_full_pytest_benchmark_export(self):
        export = {
            "machine_info": {"cpu": "whatever"},
            "benchmarks": [
                {"name": "test_a", "stats": {"min": 0.5, "mean": 0.6, "max": 1.0}},
                {"name": "test_b", "stats": {"min": 0.1, "mean": 0.2, "max": 0.3}},
            ],
        }
        stats = extract_stats(export)
        assert stats == {"test_a": {"min": 0.5, "mean": 0.6},
                         "test_b": {"min": 0.1, "mean": 0.2}}

    def test_trimmed_mapping_passthrough(self):
        trimmed = _trimmed(test_a=0.5)
        assert extract_stats(trimmed) == {"test_a": {"min": 0.5, "mean": 0.55}}


class TestCompare:
    def test_within_threshold_ok(self):
        rows = compare_benchmarks(_trimmed(t=1.0), _trimmed(t=1.9))
        assert [r.status for r in rows] == ["ok"]
        assert rows[0].ratio == pytest.approx(1.9)

    def test_regression_fails(self):
        rows = compare_benchmarks(_trimmed(t=1.0), _trimmed(t=2.5))
        assert rows[0].status == "fail" and rows[0].regressed

    def test_speedup_ok(self):
        rows = compare_benchmarks(_trimmed(t=1.0), _trimmed(t=0.01))
        assert rows[0].status == "ok"

    def test_new_benchmark_is_informational(self):
        rows = compare_benchmarks({}, _trimmed(fresh=1.0))
        assert rows[0].status == "new" and not rows[0].regressed

    def test_missing_benchmark_is_flagged_but_not_failing(self):
        rows = compare_benchmarks(_trimmed(gone=1.0), {})
        assert rows[0].status == "missing" and not rows[0].regressed

    def test_custom_threshold(self):
        rows = compare_benchmarks(_trimmed(t=1.0), _trimmed(t=1.6),
                                  threshold=1.5)
        assert rows[0].regressed

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            compare_benchmarks(_trimmed(t=1.0), _trimmed(t=1.0), threshold=0.9)

    def test_report_rows_render(self):
        rows = compare_benchmarks(_trimmed(t=1.0), _trimmed(t=2.5, fresh=0.1))
        text = "\n".join(r.to_text() for r in rows)
        assert "fail" in text and "new" in text


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        stats = _trimmed(test_a=0.25, test_b=0.5)
        write_baseline(str(path), stats)
        assert load_stats(str(path)) == stats

    def test_load_full_export(self, tmp_path):
        path = tmp_path / "export.json"
        path.write_text(json.dumps({
            "benchmarks": [{"name": "t", "stats": {"min": 1.0, "mean": 2.0}}]}))
        assert load_stats(str(path)) == {"t": {"min": 1.0, "mean": 2.0}}

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_stats(str(tmp_path / "nope.json"))

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_stats(str(path))


class TestRepoBaseline:
    def test_checked_in_baseline_covers_host_benchmarks(self):
        """benchmarks/baseline.json must track every host-execution bench."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        with open(os.path.join(root, "benchmarks",
                               "test_host_execution.py")) as fh:
            source = fh.read()
        declared = {line.split("(")[0].replace("def ", "").strip()
                    for line in source.splitlines()
                    if line.startswith("def test_bench_")}
        assert declared == set(stats)

    def test_vectorized_stencil_baseline_beats_sequential_10x(self):
        """ISSUE-3 acceptance: the lockstep executor's recorded baseline is
        at least 10x faster than the sequential one on the same launch.

        Checked against the committed baselines (both are measured on the
        same machine in the same `bench-compare --update` run), so the
        assertion does not depend on the speed of the machine running the
        tests."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        sequential = stats["test_bench_functional_executor_stencil"]["min"]
        vectorized = stats["test_bench_vectorized_executor_stencil"]["min"]
        assert sequential >= 10.0 * vectorized

    def test_tuned_stencil_baseline_beats_untuned_1_2x(self):
        """ISSUE-5 acceptance: the tuned launch geometry's recorded baseline
        is at least 1.2x faster than the untuned default (512, 1, 1) launch
        on the guard grid.

        Like the other cross-baseline guards this compares two committed
        baselines measured in one `bench-compare --update` run, so the
        assertion is machine-independent.  The wall-clock ratio tracks the
        modelled one because the functional simulator's cost scales with
        launched lanes — exactly what the oversized default wastes."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        untuned = stats["test_bench_untuned_stencil_launch"]["min"]
        tuned = stats["test_bench_tuned_stencil_launch"]["min"]
        assert untuned >= 1.2 * tuned

    def test_fused_babelstream_baseline_beats_unfused(self):
        """ISSUE-8 acceptance: the fusion pass's replay baseline is no
        slower than the unfused capture on the four-kernel STREAM sweep.

        The fused kernel dispatches through the lowering tier, so in
        practice the recorded margin is large; the guard only demands
        fused >= unfused so it stays robust to machine noise."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        unfused = stats["test_bench_unfused_babelstream_graph_replay"]["min"]
        fused = stats["test_bench_fused_babelstream_graph_replay"]["min"]
        assert unfused >= fused

    def test_lowered_stencil_baseline_beats_vectorized_2x(self):
        """ISSUE-8 acceptance: NumPy-codegen lowering of the stencil graph
        replays at least 2x faster than the lockstep vector executor on
        the same 32^3 capture.

        Both baselines come from one `bench-compare --update` run, so the
        ratio is machine-independent."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        vectorized = stats["test_bench_vectorized_stencil_graph_replay"]["min"]
        lowered = stats["test_bench_lowered_stencil_graph_replay"]["min"]
        assert vectorized >= 2.0 * lowered

    def test_trace_disabled_dispatch_baseline_within_2x(self):
        """ISSUE-10 acceptance: the tracing-instrumented (but disabled)
        workload-dispatch baseline stays within 2x of the plain dispatch
        baseline — the disabled path is one module-attribute read per hook
        site plus one histogram sample per run."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        plain = stats["test_bench_workload_dispatch"]["min"]
        instrumented = \
            stats["test_bench_trace_disabled_workload_dispatch"]["min"]
        assert instrumented <= 2.0 * plain

    def test_graph_replay_baseline_beats_reenqueue_2x(self):
        """ISSUE-4 acceptance: replaying a captured device graph is at least
        2x faster than re-enqueueing the same sweep point from scratch.

        Like the 10x executor guard above, this compares the two committed
        baselines (measured together in one `bench-compare --update` run),
        so the assertion is machine-independent."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        stats = load_stats(os.path.join(root, "benchmarks", "baseline.json"))
        reenqueue = stats["test_bench_graph_reenqueue_stencil_point"]["min"]
        replay = stats["test_bench_graph_replay_stencil_point"]["min"]
        assert reenqueue >= 2.0 * replay


class TestDegenerateBaseline:
    def test_zero_baseline_min_is_informational_not_a_crash(self):
        rows = compare_benchmarks({"t": {"min": 0.0, "mean": 0.0}},
                                  _trimmed(t=1.0))
        assert rows[0].status == "new"
        assert rows[0].ratio is None
        assert not rows[0].regressed
        assert "new" in rows[0].to_text()
