"""Tests for the stream-aware request surface and the async workload façade."""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.sweep import Sweep, sweep
from repro.workloads import MAX_STREAMS, RunRequest, get_workload

QUICK = {
    "stencil": {"L": 32},
    "babelstream": {"n": 4096},
    "minibude": {"nposes": 256, "verify_poses": 64},
    "hartreefock": {"natoms": 16, "verify_natoms": 4},
}


class TestStreamsRequestField:
    def test_default_and_export(self):
        request = RunRequest(workload="stencil")
        assert request.streams == 1
        assert request.as_dict()["streams"] == 1

    def test_string_value_coerced(self):
        assert RunRequest(workload="stencil", streams="4").streams == 4

    @pytest.mark.parametrize("bad", [0, -1, "many", 2.5, MAX_STREAMS + 1])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            RunRequest(workload="stencil", streams=bad)

    def test_streams_participates_in_hash_and_eq(self):
        one = RunRequest(workload="stencil", streams=1)
        two = RunRequest(workload="stencil", streams=2)
        assert one != two
        assert hash(one) != hash(two)
        assert hash(two) == hash(RunRequest(workload="stencil", streams=2))

    def test_swept_as_request_field(self):
        assert "streams" in Sweep.REQUEST_FIELDS
        requests = list(sweep(streams=[1, 2], L=[32]).requests(
            "stencil", verify=False))
        assert [r.streams for r in requests] == [1, 2]
        assert all(r.params["L"] == 32 for r in requests)


class TestStreamParity:
    """The stream count shapes the modelled pipeline, never the numerics."""

    @pytest.mark.parametrize("name", sorted(QUICK))
    def test_metrics_identical_across_stream_counts(self, name):
        wl = get_workload(name)
        results = [
            wl.run(wl.make_request(executor="vectorized", streams=streams,
                                   params=QUICK[name]))
            for streams in (1, 3)
        ]
        assert results[0].metrics == results[1].metrics
        assert (results[0].verification.max_rel_error
                == results[1].verification.max_rel_error)
        assert all(r.verification.passed for r in results)

    @pytest.mark.parametrize("name", sorted(QUICK))
    def test_verify_pipeline_timing_reported(self, name):
        wl = get_workload(name)
        result = wl.run(wl.make_request(streams=2, params=QUICK[name]))
        pipeline = result.timing["verify_pipeline"]
        payload = pipeline.as_dict()
        assert payload["elapsed_ms"] > 0.0
        assert payload["elapsed_ms"] <= payload["serial_ms"]
        assert len(payload["lanes"]) >= 2     # h2d lane(s) + compute
        # the uniform JSON export carries the pipeline too
        exported = result.as_dict()["timing"]["verify_pipeline"]
        assert exported["serial_ms"] == payload["serial_ms"]

    def test_multi_stream_minibude_overlaps_uploads(self):
        wl = get_workload("minibude")
        result = wl.run(wl.make_request(streams=3,
                                        params=QUICK["minibude"]))
        pipeline = result.timing["verify_pipeline"]
        assert pipeline.overlap_saved_ms > 0.0
        assert pipeline.elapsed_ms < pipeline.serial_ms

    def test_no_pipeline_entry_without_verification(self):
        wl = get_workload("stencil")
        result = wl.run(wl.make_request(verify=False, streams=2,
                                        params=QUICK["stencil"]))
        assert "verify_pipeline" not in result.timing


class TestAsyncFacade:
    def test_run_async_matches_run(self):
        wl = get_workload("stencil")
        request = wl.make_request(params=QUICK["stencil"])
        sync_result = wl.run(request)
        async_result = asyncio.run(wl.run_async(request))
        assert async_result.metrics == sync_result.metrics
        assert async_result.request == request

    def test_sweep_run_workload_async_preserves_order(self):
        s = sweep(L=[16, 24, 32])
        results = asyncio.run(s.run_workload_async(
            "stencil", workers=3, cache=False, verify=False))
        assert [r.request.params["L"] for r in results] == [16, 24, 32]
        assert all(r.metrics["bandwidth_gbs"] > 0 for r in results)

    def test_async_results_match_sync_sweep(self):
        s = sweep(L=[16, 24], streams=[2])
        sync_results = s.run_workload("stencil", cache=False, verify=False)
        async_results = asyncio.run(s.run_workload_async(
            "stencil", workers=2, cache=False, verify=False))
        assert [r.metrics for r in async_results] \
            == [r.metrics for r in sync_results]

    def test_run_workload_async_uses_the_result_cache(self):
        from repro.workloads.cache import (clear_result_cache,
                                           result_cache_info)

        clear_result_cache()
        s = sweep(L=[20])
        asyncio.run(s.run_workload_async("stencil", verify=False))
        asyncio.run(s.run_workload_async("stencil", verify=False))
        info = result_cache_info()
        assert info["hits"] >= 1
        clear_result_cache()


class TestAsyncCacheParity:
    """ISSUE-5 satellite: the async sweep path must show the same result-
    cache hit/miss behaviour and accounting as the sync path.

    The historical divergence was duplicate sweep points: run sequentially
    they cost one workload run (miss) plus hits, but run concurrently —
    async workers or a thread pool — every duplicate missed *before* any
    of them stored, so the workload ran redundantly and the counters
    disagreed with the sync path.  ``run_cached`` now single-flights
    identical requests, making the accounting identical everywhere.
    """

    class _Counting:
        """Wraps the stencil workload, counting real _run invocations."""

        def __init__(self):
            import threading

            from repro.workloads import get_workload

            self._inner = get_workload("stencil")
            self.runs = 0
            self._lock = threading.Lock()

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def run(self, request):
            with self._lock:
                self.runs += 1
            return self._inner.run(request)

    @staticmethod
    def _duplicate_sweep():
        # Sweep.add does not deduplicate values, so [20, 20, 20] yields
        # three identical configurations — i.e. three identical requests.
        return sweep(L=[20, 20, 20])

    def _drive(self, mode):
        from repro.workloads.cache import ResultCache, run_cached

        cache = ResultCache()
        workload = self._Counting()
        runner = lambda r: run_cached(r, cache=cache, workload=workload)
        s = self._duplicate_sweep()
        reqs = list(s.requests(workload._inner, verify=False))
        if mode == "sync":
            results = [runner(r) for r in reqs]
        elif mode == "threads":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=3) as pool:
                results = [f.result()
                           for f in [pool.submit(runner, r) for r in reqs]]
        else:
            async def drive():
                return await asyncio.gather(
                    *(asyncio.to_thread(runner, r) for r in reqs))

            results = asyncio.run(drive())
        return workload.runs, cache.info(), results

    @pytest.mark.parametrize("mode", ["sync", "threads", "async"])
    def test_duplicate_requests_run_once_in_every_mode(self, mode):
        runs, info, results = self._drive(mode)
        assert runs == 1, f"{mode}: duplicates must coalesce into one run"
        assert info["misses"] == 1
        assert info["hits"] == 2
        assert len({id(r) for r in results}) == 3  # every caller owns a clone

    def test_async_accounting_matches_sync(self):
        sync_runs, sync_info, _ = self._drive("sync")
        async_runs, async_info, _ = self._drive("async")
        assert async_runs == sync_runs
        assert {k: async_info[k] for k in ("hits", "misses", "size")} == \
            {k: sync_info[k] for k in ("hits", "misses", "size")}

    def test_sweep_async_path_coalesces_duplicates(self):
        from repro.workloads.cache import (clear_result_cache,
                                           result_cache_info)

        clear_result_cache()
        s = self._duplicate_sweep()
        results = asyncio.run(s.run_workload_async("stencil", workers=3,
                                                   verify=False))
        info = result_cache_info()
        assert info["misses"] == 1 and info["hits"] == 2
        assert len(results) == 3
        assert results[0].metrics == results[1].metrics == results[2].metrics
        clear_result_cache()
