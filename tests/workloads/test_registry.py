"""Tests for the unified workload registry."""

import pytest

from repro.core.errors import ConfigurationError
from repro.workloads import (
    ParamSpec,
    Workload,
    get_workload,
    list_workloads,
    register_workload,
    unregister_workload,
)


class DummyWorkload(Workload):
    name = "dummy"
    description = "a test workload"
    primary_metric = "widgets_per_s"
    params = (
        ParamSpec("size", int, 8, "problem size", minimum=1),
        ParamSpec("mode", str, "fast", "execution mode",
                  choices=("fast", "slow")),
        ParamSpec("scale", float, 1.0, "scale factor"),
        ParamSpec("flag", bool, False, "a switch"),
    )


@pytest.fixture
def dummy():
    workload = register_workload(DummyWorkload(), "dmy")
    yield workload
    # Individual tests replace/unregister entries; sweep out every dummy
    # registration so no alias leaks into the next test.
    from repro.workloads import registry
    for key in [k for k, v in registry._REGISTRY.items()
                if isinstance(v, DummyWorkload)]:
        del registry._REGISTRY[key]


class TestRegistry:
    def test_all_four_paper_workloads_registered(self):
        assert list_workloads() == ("babelstream", "hartreefock",
                                    "minibude", "stencil")

    def test_lookup_by_name_and_alias(self):
        assert get_workload("stencil").name == "stencil"
        assert get_workload("STENCIL") is get_workload("stencil")
        assert get_workload("hf") is get_workload("hartreefock")
        assert get_workload("laplacian") is get_workload("stencil")

    def test_instance_passthrough(self):
        wl = get_workload("minibude")
        assert get_workload(wl) is wl

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_workload("heat3d")

    def test_duplicate_registration_rejected(self, dummy):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_workload(DummyWorkload())

    def test_duplicate_alias_rejected(self, dummy):
        class Other(DummyWorkload):
            name = "other"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_workload(Other(), "dmy")

    def test_replace_allows_override(self, dummy):
        replacement = DummyWorkload()
        register_workload(replacement, replace=True)
        assert get_workload("dummy") is replacement

    def test_replace_evicts_stale_aliases(self, dummy):
        replacement = DummyWorkload()
        register_workload(replacement, replace=True)
        # the old instance's 'dmy' alias must not keep resolving to it
        with pytest.raises(ConfigurationError):
            get_workload("dmy")

    def test_replacing_only_an_alias_keeps_the_other_workload(self, dummy):
        class Variant(DummyWorkload):
            name = "variant"

        # take over the 'dmy' alias without displacing 'dummy' itself
        variant = register_workload(Variant(), "dmy", replace=True)
        assert get_workload("dmy") is variant
        assert get_workload("dummy") is dummy
        assert "dummy" in list_workloads()

    def test_reregistering_same_instance_is_idempotent(self, dummy):
        assert register_workload(dummy) is dummy

    def test_unnamed_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="no name"):
            register_workload(Workload())

    def test_unregister_removes_aliases(self, dummy):
        unregister_workload("dummy")
        with pytest.raises(ConfigurationError):
            get_workload("dmy")


class TestParamValidation:
    def test_defaults_applied(self, dummy):
        params = dummy.validate_params({})
        assert params == {"size": 8, "mode": "fast", "scale": 1.0,
                          "flag": False}

    def test_unknown_param_rejected(self, dummy):
        with pytest.raises(ConfigurationError, match="no parameter"):
            dummy.validate_params({"sizzle": 4})

    def test_type_coercion_from_strings(self, dummy):
        params = dummy.validate_params({"size": "16", "scale": "2.5",
                                        "flag": "true"})
        assert params["size"] == 16 and params["scale"] == 2.5
        assert params["flag"] is True

    def test_bad_type_rejected(self, dummy):
        with pytest.raises(ConfigurationError, match="expects int"):
            dummy.validate_params({"size": "many"})
        with pytest.raises(ConfigurationError, match="expects int"):
            dummy.validate_params({"size": 2.5})

    def test_minimum_enforced(self, dummy):
        with pytest.raises(ConfigurationError, match=">= 1"):
            dummy.validate_params({"size": 0})

    def test_choices_enforced(self, dummy):
        with pytest.raises(ConfigurationError, match="one of"):
            dummy.validate_params({"mode": "turbo"})

    def test_bool_string_rejected_when_ambiguous(self, dummy):
        with pytest.raises(ConfigurationError):
            dummy.validate_params({"flag": "maybe"})

    def test_tuple_param_parsing(self):
        spec = ParamSpec("block_shape", tuple, (512, 1, 1), "block")
        assert spec.coerce("256,2,1") == (256, 2, 1)
        assert spec.coerce("(128, 1, 1)") == (128, 1, 1)
        assert spec.coerce([64, 4, 1]) == (64, 4, 1)
        assert spec.coerce([64.0, 4, 1]) == (64, 4, 1)
        with pytest.raises(ConfigurationError):
            spec.coerce("axbxc")
        with pytest.raises(ConfigurationError, match="not an integer"):
            spec.coerce((8.5, 4, 4))

    def test_mismatched_workload_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="via 'stencil'"):
            get_workload("stencil").make_request(workload="minibude")
        # passing the matching name (e.g. from a request dict) is fine
        request = get_workload("stencil").make_request(workload="stencil")
        assert request.workload == "stencil"

    def test_precision_validated_per_workload(self):
        minibude = get_workload("minibude")
        with pytest.raises(ConfigurationError, match="precisions"):
            minibude.make_request(precision="float64")
        assert minibude.make_request().precision == "float32"
        assert get_workload("stencil").make_request().precision == "float64"

    def test_describe_schema(self, dummy):
        schema = dummy.describe()
        assert schema["name"] == "dummy"
        names = [p["name"] for p in schema["params"]]
        assert names == ["size", "mode", "scale", "flag"]
        mode = schema["params"][1]
        assert mode["choices"] == ["fast", "slow"]
