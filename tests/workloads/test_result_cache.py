"""Tests for the request-level result cache (memory LRU + disk store)."""

import json

import numpy as np
import pytest

from repro.harness.runner import MeasurementProtocol
from repro.harness.sweep import sweep
from repro.workloads import (
    clear_result_cache,
    get_workload,
    result_cache_info,
    run_cached,
)
from repro.workloads.cache import DEFAULT_CACHE_DIR, ResultCache

FAST = MeasurementProtocol(warmup=0, repeats=3)


@pytest.fixture(autouse=True)
def _clean_default_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def _stencil_request(**overrides):
    fields = dict(gpu="h100", backend="mojo", params={"L": 48},
                  protocol=FAST, verify=False)
    fields.update(overrides)
    return get_workload("stencil").make_request(**fields)


class TestMemoryCache:
    def test_repeated_identical_requests_hit(self):
        request = _stencil_request()
        first = run_cached(request)
        info = result_cache_info()
        assert info["hits"] == 0 and info["misses"] == 1
        second = run_cached(request)
        info = result_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert second.metrics == first.metrics
        assert second.request == request

    def test_different_requests_miss(self):
        run_cached(_stencil_request())
        run_cached(_stencil_request(params={"L": 32}))
        run_cached(_stencil_request(executor="sequential"))
        info = result_cache_info()
        assert info["hits"] == 0 and info["misses"] == 3

    def test_cached_result_is_isolated_copy(self):
        request = _stencil_request()
        first = run_cached(request)
        first.metrics["bandwidth_gbs"] = -1.0   # caller-side mutation
        second = run_cached(request)
        assert second.metrics["bandwidth_gbs"] > 0

    def test_clear_resets_counters_and_entries(self):
        run_cached(_stencil_request())
        clear_result_cache()
        info = result_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0,
                        "maxsize": info["maxsize"], "disk_hits": 0,
                        "disk_enabled": False,
                        "max_disk_bytes": info["max_disk_bytes"]}

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        for L in (32, 48, 64):
            run_cached(_stencil_request(params={"L": L}), cache=cache)
        assert cache.info()["size"] == 2
        # The oldest entry (L=32) was evicted: running it again misses.
        run_cached(_stencil_request(params={"L": 32}), cache=cache)
        assert cache.info()["misses"] == 4


class TestDiskCache:
    def test_round_trip_across_cache_instances(self, tmp_path):
        disk = str(tmp_path / "cache")
        request = _stencil_request()
        first = run_cached(request, cache=ResultCache(disk_dir=disk))

        fresh = ResultCache(disk_dir=disk)      # simulates a new process
        second = run_cached(request, cache=fresh)
        info = fresh.info()
        assert info["disk_hits"] == 1 and info["hits"] == 1
        assert second.metrics == pytest.approx(first.metrics)
        assert second.verification.ran == first.verification.ran
        # Rehydrated results are export-shaped: plain-dict timing, no raw.
        assert second.raw is None
        payload = second.as_dict()
        assert payload["metrics"]["bandwidth_gbs"] == pytest.approx(
            first.metrics["bandwidth_gbs"])

    def test_disk_entries_survive_clear(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(disk_dir=disk)
        request = _stencil_request()
        run_cached(request, cache=cache)
        cache.clear()
        run_cached(request, cache=cache)
        assert cache.info()["disk_hits"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        disk = str(tmp_path / "cache")
        cache = ResultCache(disk_dir=disk)
        request = _stencil_request()
        run_cached(request, cache=cache)
        path = cache._disk_path(request)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        fresh = ResultCache(disk_dir=disk)
        result = run_cached(request, cache=fresh)
        assert fresh.info()["misses"] == 1
        assert result.metrics["bandwidth_gbs"] > 0

    def test_disk_key_is_stable_and_request_specific(self):
        a = ResultCache.disk_key(_stencil_request())
        b = ResultCache.disk_key(_stencil_request())
        c = ResultCache.disk_key(_stencil_request(params={"L": 32}))
        assert a == b
        assert a != c

    def test_disk_key_changes_across_package_versions(self, monkeypatch):
        """A release boundary must invalidate the on-disk store (cached
        results — including verification verdicts — assume unchanged code)."""
        import repro

        before = ResultCache.disk_key(_stencil_request())
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        after = ResultCache.disk_key(_stencil_request())
        assert before != after


class TestSweepMemo:
    def test_run_workload_memoises_repeated_points(self):
        s = sweep(L=[32, 32, 48])
        results = s.run_workload("stencil", protocol=FAST, verify=False)
        assert [r.request.params["L"] for r in results] == [32, 32, 48]
        info = result_cache_info()
        assert info["hits"] == 1 and info["misses"] == 2
        assert results[0].metrics == results[1].metrics

    def test_repeated_sweep_is_all_hits(self):
        s = sweep(L=[32, 48])
        s.run_workload("stencil", protocol=FAST, verify=False)
        s.run_workload("stencil", protocol=FAST, verify=False)
        info = result_cache_info()
        assert info["hits"] == 2 and info["misses"] == 2

    def test_cache_false_forces_fresh_runs(self):
        s = sweep(L=[32, 32])
        s.run_workload("stencil", protocol=FAST, verify=False, cache=False)
        info = result_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_unregistered_workload_instances_still_sweep(self):
        """run_workload must use the resolved instance, not re-resolve by
        name through the registry (which passes instances through)."""
        from repro.workloads import StencilWorkload

        class AdHocStencil(StencilWorkload):
            name = "adhoc-stencil"

        results = sweep(L=[16, 16]).run_workload(
            AdHocStencil(), protocol=FAST, verify=False)
        assert [r.request.workload for r in results] == ["adhoc-stencil"] * 2
        assert result_cache_info()["hits"] == 1   # memo still applies

    def test_workers_preserve_sweep_order_with_cache(self):
        s = sweep(L=[64, 48, 32, 24], gpu=["h100", "mi300a"])
        sequential = s.run_workload("stencil", protocol=FAST, verify=False)
        clear_result_cache()
        concurrent = s.run_workload("stencil", protocol=FAST, verify=False,
                                    workers=4)
        assert [(r.request.params["L"], r.request.gpu) for r in concurrent] \
            == [(r.request.params["L"], r.request.gpu) for r in sequential]
        assert [r.primary_value for r in concurrent] \
            == [r.primary_value for r in sequential]


class TestExecutorRequestField:
    def test_executor_field_in_key_and_export(self):
        request = _stencil_request(executor="vectorized")
        assert request.as_dict()["executor"] == "vectorized"
        assert hash(request) != hash(_stencil_request(executor="sequential"))
        assert request.replace(executor="auto") == _stencil_request()

    def test_unknown_executor_mode_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _stencil_request(executor="warp")

    def test_sweep_lifts_executor_key(self):
        s = sweep(L=[32], executor=["vectorized", "sequential"])
        requests = list(s.requests("stencil", protocol=FAST, verify=False))
        assert [r.executor for r in requests] == ["vectorized", "sequential"]

    def test_executor_modes_produce_identical_results(self):
        wl = get_workload("stencil")
        results = {}
        for mode in ("vectorized", "sequential"):
            request = wl.make_request(gpu="h100", params={"L": 20},
                                      protocol=FAST, verify=True,
                                      executor=mode)
            results[mode] = wl.run(request)
        assert results["vectorized"].verification.passed
        assert results["sequential"].verification.passed
        assert results["vectorized"].metrics["bandwidth_gbs"] == \
            results["sequential"].metrics["bandwidth_gbs"]
