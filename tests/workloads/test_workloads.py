"""Tests for the unified request/result schema and the four adapters."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, VerificationError
from repro.harness.runner import MeasurementProtocol
from repro.harness.sweep import sweep
from repro.kernels.babelstream import run_babelstream
from repro.kernels.hartreefock import run_hartreefock
from repro.kernels.minibude import run_minibude
from repro.kernels.stencil import run_stencil
from repro.workloads import (
    RunRequest,
    Verification,
    Workload,
    WorkloadResult,
    get_workload,
    list_workloads,
    run_workload,
)

FAST_PROTOCOL = MeasurementProtocol(warmup=1, repeats=3)

#: reduced problem sizes per workload, for fast tests
QUICK = {
    "stencil": {"L": 64},
    "babelstream": {"n": 2 ** 18},
    "minibude": {"ppwi": 2, "wgsize": 8, "nposes": 1024},
    "hartreefock": {"natoms": 16},
}


def quick_result(name, **kwargs):
    workload = get_workload(name)
    request = workload.make_request(params=QUICK[name],
                                    protocol=FAST_PROTOCOL, **kwargs)
    return workload.run(request)


class TestRunRequest:
    def test_frozen(self):
        request = RunRequest(workload="stencil")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.gpu = "mi300a"

    def test_params_mapping_immutable(self):
        request = RunRequest(workload="stencil", params={"L": 64})
        with pytest.raises(TypeError):
            request.params["L"] = 128

    def test_replace_and_with_params(self):
        request = RunRequest(workload="stencil", params={"L": 64})
        other = request.replace(backend="cuda")
        assert other.backend == "cuda" and other.params["L"] == 64
        merged = request.with_params(seed=7)
        assert dict(merged.params) == {"L": 64, "seed": 7}
        assert request.params == {"L": 64}  # original untouched

    def test_hashable_for_caching(self):
        a = get_workload("stencil").make_request(params={"L": 64})
        b = get_workload("stencil").make_request(params={"L": 64})
        c = get_workload("stencil").make_request(params={"L": 128})
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2

    def test_zero_block_shape_rejected_at_validation(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            get_workload("stencil").make_request(
                params={"block_shape": "0,0,0"})

    @pytest.mark.parametrize("value", ["8,4", "", "8,4,4,2"])
    def test_wrong_arity_block_shape_rejected(self, value):
        with pytest.raises(ConfigurationError, match="comma-separated"):
            get_workload("stencil").make_request(
                params={"block_shape": value})

    def test_as_dict_round_trips_through_json(self):
        request = RunRequest(workload="stencil", params={"L": 64},
                             protocol=MeasurementProtocol(2, 9))
        payload = json.loads(json.dumps(request.as_dict()))
        assert payload["workload"] == "stencil"
        assert payload["protocol"] == {"warmup": 2, "repeats": 9}


class TestAdapters:
    @pytest.mark.parametrize("name", ["stencil", "babelstream", "minibude",
                                      "hartreefock"])
    def test_runs_without_verification(self, name):
        result = quick_result(name, verify=False)
        assert result.workload == name
        assert math.isfinite(result.primary_value)
        assert result.primary_value > 0
        assert not result.verification.ran
        assert "kernel_time_ms" in result.metrics

    @pytest.mark.parametrize("name", ["stencil", "babelstream", "minibude",
                                      "hartreefock"])
    def test_json_schema_identical_across_workloads(self, name):
        result = quick_result(name, verify=False)
        payload = json.loads(json.dumps(result.as_dict(), default=str))
        assert sorted(payload) == ["metrics", "primary_metric", "provenance",
                                   "request", "samples", "schema", "timing",
                                   "verification", "workload"]
        assert payload["schema"] == "repro.workload-result/v1"
        assert sorted(payload["verification"]) == ["detail", "max_rel_error",
                                                   "passed", "ran"]
        assert payload["provenance"]["substrate"] == "simulated"
        for breakdown in payload["timing"].values():
            assert "kernel_time_ms" in breakdown

    def test_verification_runs_and_passes(self):
        result = quick_result("hartreefock")
        assert result.verification.ran and result.verification.passed
        assert result.verification.max_rel_error < 1e-9

    def test_to_row_matches_declared_columns(self):
        result = quick_result("stencil", verify=False)
        row = result.to_row()
        assert tuple(row) == WorkloadResult.ROW_COLUMNS
        assert row["max_rel_error"] is None  # NaN folded to None

    def test_run_workload_dispatches_by_request_name(self):
        request = get_workload("stencil").make_request(
            params=QUICK["stencil"], protocol=FAST_PROTOCOL, verify=False)
        result = run_workload(request)
        assert result.workload == "stencil"

    def test_mismatched_dispatch_rejected(self):
        request = RunRequest(workload="stencil")
        with pytest.raises(ConfigurationError, match="dispatched"):
            get_workload("minibude").run(request)

    def test_reference_and_verify_protocol_methods(self):
        stencil = get_workload("stencil")
        ref = stencil.reference(L=12)
        assert ref.shape == (12, 12, 12)
        assert stencil.verify(L=12) < 1e-9
        hf = get_workload("hartreefock")
        fock = hf.reference(natoms=2)
        assert fock.shape == (2, 2) and np.all(np.isfinite(fock))

    def test_verification_error_folded_with_full_metrics(self):
        class Failing(Workload):
            name = "failing"
            primary_metric = "x"

            def _run(self, request):
                if request.verify:
                    raise VerificationError("kaboom", max_rel_error=0.25)
                return WorkloadResult(
                    request=request, metrics={"x": 1.0, "y": 2.0},
                    primary_metric="x",
                    verification=Verification(ran=False, passed=False),
                )

        result = Failing().run(RunRequest(workload="failing"))
        assert result.verification.ran and not result.verification.passed
        assert "kaboom" in result.verification.detail
        # the checker's measured error survives the fold as structured data
        assert result.verification.max_rel_error == 0.25
        # the bench re-ran without verification: full metrics survive, and
        # the stored request still records that verification was asked for
        assert result.metrics == {"x": 1.0, "y": 2.0}
        assert result.request.verify

    def test_nonfinite_metrics_export_as_strict_json(self):
        result = WorkloadResult(
            request=RunRequest(workload="stencil"),
            metrics={"x": float("nan"), "y": 3.0},
            primary_metric="x",
            verification=Verification(ran=False, passed=False),
            samples={"x": [1.0, float("inf")]},
        )
        text = json.dumps(result.as_dict(), default=str)
        payload = json.loads(text, parse_constant=lambda c: pytest.fail(
            f"non-strict JSON constant {c!r} in export"))
        assert payload["metrics"] == {"x": None, "y": 3.0}
        assert payload["samples"]["x"] == [1.0, None]

    def test_fast_math_flag_reaches_the_backend_model(self):
        # mojo models the paper's lack of fast-math, so use CUDA
        workload = get_workload("minibude")
        base = workload.make_request(params=QUICK["minibude"],
                                     backend="cuda", verify=False)
        plain = workload.run(base)
        fast = workload.run(base.replace(fast_math=True))
        assert fast.metrics["gflops"] > plain.metrics["gflops"]
        assert fast.raw.fast_math and not plain.raw.fast_math

    def test_fast_math_flag_honoured_by_every_adapter(self):
        # compiled-in fast-math must reach the timing model for all four
        # workloads (it previously only did for minibude)
        for name in list_workloads():
            workload = get_workload(name)
            request = workload.make_request(params=QUICK[name],
                                            backend="cuda", verify=False,
                                            protocol=FAST_PROTOCOL,
                                            fast_math=True)
            result = workload.run(request)
            for breakdown in result.timing.values():
                assert "fast-math" in " ".join(breakdown.notes)

    def test_babelstream_honours_warmup_and_repeats(self):
        workload = get_workload("babelstream")
        for warmup in (0, 1, 3):
            request = workload.make_request(
                params=QUICK["babelstream"], verify=False,
                protocol=MeasurementProtocol(warmup=warmup, repeats=4))
            result = workload.run(request)
            assert all(len(s) == 4 for s in result.samples.values())

    def test_sampling_provenance_is_honest(self):
        sampled = quick_result("stencil", verify=False)
        single = quick_result("hartreefock", verify=False)
        assert sampled.provenance["sampling"] == "synthetic-jitter"
        assert len(sampled.samples["bandwidth_gbs"]) == FAST_PROTOCOL.repeats
        assert single.provenance["sampling"] == "single-evaluation"
        assert single.samples == {}


class TestLegacyShimParity:
    """The deprecated run_* shims and the adapters share one engine."""

    def test_stencil(self):
        legacy = run_stencil(L=64, verify=False, iterations=4, warmup=1)
        unified = quick_result("stencil", verify=False)
        assert legacy.bandwidth_gbs == unified.metrics["bandwidth_gbs"]
        assert legacy.samples_gbs == unified.samples["bandwidth_gbs"]
        assert unified.raw.L == legacy.L

    def test_babelstream(self):
        legacy = run_babelstream(n=2 ** 18, verify=False, num_times=4)
        unified = quick_result("babelstream", verify=False)
        for op in ("copy", "mul", "add", "triad", "dot"):
            assert legacy.bandwidths_gbs[op] == unified.metrics[f"{op}_gbs"]
            assert legacy.samples_gbs[op] == unified.samples[f"{op}_gbs"]

    def test_minibude(self):
        legacy = run_minibude(ppwi=2, wgsize=8, nposes=1024, verify=False)
        unified = quick_result("minibude", verify=False)
        assert legacy.gflops == unified.metrics["gflops"]

    def test_hartreefock(self):
        legacy = run_hartreefock(natoms=16, verify=False)
        unified = quick_result("hartreefock", verify=False)
        assert legacy.kernel_time_ms == unified.metrics["kernel_time_ms"]
        assert legacy.nquads == unified.metrics["nquads"]


class TestSweepIntegration:
    def test_requests_lift_fields_and_params(self):
        s = sweep(backend=["mojo", "cuda"], L=[32, 64])
        requests = list(s.requests("stencil", gpu="a100", verify=False))
        assert len(requests) == 4
        assert {r.backend for r in requests} == {"mojo", "cuda"}
        assert all(r.gpu == "a100" and not r.verify for r in requests)
        assert sorted({r.params["L"] for r in requests}) == [32, 64]
        # schema defaults are filled in for params not swept over
        assert all(r.params["block_shape"] == (512, 1, 1) for r in requests)

    def test_requests_validate_against_schema(self):
        s = sweep(bogus=[1])
        with pytest.raises(ConfigurationError, match="no parameter"):
            list(s.requests("stencil"))

    def test_run_workload_preserves_order_with_workers(self):
        s = sweep(L=[32, 48, 64])
        sequential = s.run_workload("stencil", verify=False,
                                    protocol=FAST_PROTOCOL)
        threaded = s.run_workload("stencil", verify=False,
                                  protocol=FAST_PROTOCOL, workers=3)
        assert [r.request.params["L"] for r in sequential] == [32, 48, 64]
        assert [r.primary_value for r in threaded] == \
               [r.primary_value for r in sequential]


class TestVerificationDataclass:
    def test_nan_error_serialises_to_none(self):
        v = Verification(ran=True, passed=True, max_rel_error=float("nan"))
        assert v.as_dict()["max_rel_error"] is None

    def test_finite_error_preserved(self):
        v = Verification(ran=True, passed=True, max_rel_error=1.5e-11)
        assert v.as_dict()["max_rel_error"] == 1.5e-11
