"""Profiling counters in WorkloadResult.metrics (``counter_*`` keys).

Every adapter folds the analytic profiling counters of its primary kernel
into the uniform metrics dict.  The counters are a pure function of the
compiled kernel and the analytic timing model, so they must not depend on
which functional-simulator mode executed the verification launches.
"""

import math

import pytest

from repro.harness.runner import MeasurementProtocol
from repro.workloads import get_workload

FAST = MeasurementProtocol(warmup=1, repeats=3)

QUICK = {
    "stencil": {"L": 64},
    "babelstream": {"n": 2 ** 18},
    "minibude": {"ppwi": 2, "wgsize": 8, "nposes": 1024},
    "hartreefock": {"natoms": 16},
}

EXPECTED_KEYS = {
    "counter_duration_ms",
    "counter_compute_throughput_pct",
    "counter_memory_throughput_pct",
    "counter_flops_per_second",
    "counter_occupancy",
    "counter_registers",
}


@pytest.mark.parametrize("name", sorted(QUICK))
def test_every_workload_reports_counters(name):
    workload = get_workload(name)
    request = workload.make_request(params=QUICK[name], protocol=FAST)
    result = workload.run(request)
    counter_keys = {k for k in result.metrics if k.startswith("counter_")}
    assert EXPECTED_KEYS <= counter_keys
    for key in counter_keys:
        value = result.metrics[key]
        assert isinstance(value, float) and math.isfinite(value)
    assert result.metrics["counter_duration_ms"] > 0


@pytest.mark.parametrize("executor", ["sequential", "cooperative",
                                      "vectorized"])
def test_counters_are_executor_mode_invariant(executor):
    workload = get_workload("stencil")
    base = workload.make_request(params={"L": 18},
                                 protocol=MeasurementProtocol(warmup=0,
                                                              repeats=2))
    reference = workload.run(base)
    other = workload.run(base.replace(executor=executor))
    ref_counters = {k: v for k, v in reference.metrics.items()
                    if k.startswith("counter_")}
    assert ref_counters
    for key, value in ref_counters.items():
        assert other.metrics[key] == value, key


def test_counter_metrics_memo_returns_copies():
    workload = get_workload("stencil")
    request = workload.make_request(params={"L": 18}, protocol=FAST)
    first = workload.counter_metrics(request)
    first["counter_duration_ms"] = -1.0  # caller-side mutation
    second = workload.counter_metrics(request)
    assert second["counter_duration_ms"] > 0
