"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(["run", "fig3", "table4", "--full",
                                          "--markdown"])
        assert args.ids == ["fig3", "table4"]
        assert args.full and args.markdown and not args.verify


class TestMain:
    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table5" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out and "mojo" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "MI300A" in out and "fast-math" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "[ok]" in out

    def test_run_markdown_output(self, capsys):
        assert main(["run", "fig5", "--markdown"]) == 0
        assert "## fig5" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestBenchCompare:
    @staticmethod
    def _stats_file(path, **named):
        import json
        path.write_text(json.dumps(
            {name: {"min": t, "mean": t * 1.1} for name, t in named.items()}))
        return str(path)

    def test_parser_accepts_bench_compare(self):
        args = build_parser().parse_args(
            ["bench-compare", "--baseline", "b.json", "--current", "c.json",
             "--threshold", "3.0"])
        assert args.command == "bench-compare"
        assert args.threshold == 3.0 and not args.update

    def test_ok_when_within_threshold(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=1.5)
        assert main(["bench-compare", "--baseline", base, "--current", cur]) == 0
        assert "[     ok]" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=3.0)
        assert main(["bench-compare", "--baseline", base, "--current", cur]) == 1
        captured = capsys.readouterr()
        assert "fail" in captured.out and "regressed" in captured.err

    def test_threshold_option_respected(self, tmp_path):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=3.0)
        assert main(["bench-compare", "--baseline", base, "--current", cur,
                     "--threshold", "4.0"]) == 0

    def test_update_writes_new_baseline(self, tmp_path):
        import json
        cur = self._stats_file(tmp_path / "cur.json", bench_a=0.5)
        target = tmp_path / "new_baseline.json"
        assert main(["bench-compare", "--baseline", str(target),
                     "--current", cur, "--update"]) == 0
        assert json.loads(target.read_text())["bench_a"]["min"] == 0.5

    def test_missing_baseline_is_a_clean_error(self, tmp_path, capsys):
        cur = self._stats_file(tmp_path / "cur.json", bench_a=1.0)
        code = main(["bench-compare", "--baseline", str(tmp_path / "none.json"),
                     "--current", cur])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_threshold_is_a_clean_error(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        code = main(["bench-compare", "--baseline", base, "--current", base,
                     "--threshold", "0.5"])
        assert code == 2
        assert "threshold" in capsys.readouterr().err
