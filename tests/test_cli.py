"""Tests for the command-line interface."""

import functools
import json

import pytest

from repro.cli import accepts_option, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(["run", "fig3", "table4", "--full",
                                          "--markdown"])
        assert args.ids == ["fig3", "table4"]
        assert args.full and args.markdown and not args.verify


class TestMain:
    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table5" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out and "mojo" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "MI300A" in out and "fast-math" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "[ok]" in out

    def test_run_markdown_output(self, capsys):
        assert main(["run", "fig5", "--markdown"]) == 0
        assert "## fig5" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestVerifyDetection:
    """`run --verify` probes the experiment signature via inspect, not
    ``__code__.co_varnames`` (which breaks on wrapped/**kwargs runners)."""

    def test_plain_keyword(self):
        def run(*, quick=True, verify=False):
            return None
        assert accepts_option(run, "verify")
        assert not accepts_option(run, "bogus")

    def test_kwargs_runner(self):
        def run(**options):
            return None
        assert accepts_option(run, "verify")

    def test_wrapped_runner(self):
        def inner(*, quick=True, verify=False):
            return None

        @functools.wraps(inner)
        def run(*args, **kwargs):
            return inner(*args, **kwargs)

        # co_varnames of the wrapper sees neither name; the signature does.
        assert "verify" not in run.__code__.co_varnames
        assert accepts_option(run, "verify")

    def test_positional_only_and_builtins(self):
        assert not accepts_option(len, "verify")

    def test_positional_only_parameter_not_keyword_passable(self):
        namespace = {}
        exec("def run(verify, /, quick=True):\n    return None", namespace)
        assert not accepts_option(namespace["run"], "verify")
        assert accepts_option(namespace["run"], "quick")


class TestWorkloadsCommand:
    def test_lists_all_four_with_schemas(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("stencil", "babelstream", "minibude", "hartreefock"):
            assert name in out
        assert "--param L=512" in out and "primary metric" in out

    def test_json_schema_export(self, capsys):
        assert main(["workloads", "--json"]) == 0
        schemas = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in schemas] == [
            "babelstream", "hartreefock", "minibude", "stencil"]
        assert all("params" in s and "primary_metric" in s for s in schemas)


class TestBenchCommand:
    def test_parser_options(self):
        args = build_parser().parse_args(
            ["bench", "stencil", "--gpu", "mi300a", "--backend", "hip",
             "--param", "L=64", "--param", "seed=7", "--repeats", "3",
             "--no-verify", "--json"])
        assert args.workload == "stencil" and args.gpu == "mi300a"
        assert args.param == ["L=64", "seed=7"] and args.repeats == 3
        assert args.no_verify and args.json

    def test_text_output(self, capsys):
        code = main(["bench", "stencil", "--param", "L=64", "--no-verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bandwidth_gbs" in out and "metrics:" in out
        assert "verification: skipped" in out

    def test_markdown_output(self, capsys):
        code = main(["bench", "stencil", "--param", "L=64", "--no-verify",
                     "--markdown"])
        assert code == 0
        assert "| workload |" in capsys.readouterr().out

    @pytest.mark.parametrize("workload,params", [
        ("stencil", ["--param", "L=64"]),
        ("babelstream", ["--param", "n=262144"]),
        ("minibude", ["--param", "nposes=1024", "--param", "ppwi=2",
                      "--param", "wgsize=8"]),
        ("hartreefock", ["--param", "natoms=16"]),
    ])
    def test_json_schema_identical_for_all_workloads(self, capsys, workload,
                                                     params):
        code = main(["bench", workload, "--gpu", "h100", "--backend", "mojo",
                     "--repeats", "3", "--no-verify", "--json"] + params)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["metrics", "primary_metric", "provenance",
                                   "request", "samples", "schema", "table",
                                   "timing", "verification", "workload"]
        assert payload["workload"] == workload
        assert payload["table"]["columns"][0] == "workload"
        assert len(payload["table"]["rows"]) == 1

    def test_streams_flag_reaches_the_request(self, capsys):
        code = main(["bench", "stencil", "--param", "L=64", "--streams", "3",
                     "--no-verify", "--no-cache", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request"]["streams"] == 3

    def test_streams_flag_default_is_one(self):
        args = build_parser().parse_args(["bench", "stencil"])
        assert args.streams == 1

    def test_invalid_streams_is_clean_error(self, capsys):
        code = main(["bench", "stencil", "--streams", "0", "--no-cache"])
        assert code == 2
        assert "streams" in capsys.readouterr().err

    def test_verified_bench_exits_zero(self, capsys):
        code = main(["bench", "hartreefock", "--param", "natoms=16",
                     "--repeats", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verification"]["passed"] is True
        assert payload["verification"]["max_rel_error"] < 1e-9

    def test_unknown_workload_is_clean_error(self, capsys):
        assert main(["bench", "heat3d"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_param_is_clean_error(self, capsys):
        assert main(["bench", "stencil", "--param", "L=many"]) == 2
        assert "expects int" in capsys.readouterr().err

    def test_malformed_param_is_clean_error(self, capsys):
        assert main(["bench", "stencil", "--param", "L:64"]) == 2
        assert "K=V" in capsys.readouterr().err

    def test_unsupported_precision_is_clean_error(self, capsys):
        assert main(["bench", "minibude", "--precision", "float64"]) == 2
        assert "precisions" in capsys.readouterr().err

    def test_launch_time_repro_error_is_clean_config_error(self, capsys):
        # invalid values that only fail inside the engine (LaunchError, …)
        # must exit 2 like any config error, not escape as a traceback
        code = main(["bench", "minibude", "--param", "nposes=100",
                     "--param", "ppwi=3", "--no-verify"])
        assert code == 2
        assert "divisible" in capsys.readouterr().err

    def test_single_evaluation_sampling_is_announced(self, capsys):
        assert main(["bench", "hartreefock", "--param", "natoms=16",
                     "--repeats", "50", "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "single model evaluation" in out


class TestReportCommand:
    def test_writes_markdown_document(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "fig5", "--write", str(target)]) == 0
        assert "wrote 1 experiment report" in capsys.readouterr().out
        document = target.read_text()
        assert document.startswith("# EXPERIMENTS")
        assert "| fig5 |" in document and "## fig5" in document

    def test_prints_to_stdout_without_write(self, capsys):
        assert main(["report", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "# EXPERIMENTS" in out and "## fig5" in out

    def test_unknown_id_is_clean_error(self, capsys):
        assert main(["report", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_all_keyword_matches_run_subcommand(self, tmp_path, capsys):
        target = tmp_path / "all.md"
        assert main(["report", "all", "--write", str(target)]) == 0
        assert "wrote 10 experiment report" in capsys.readouterr().out

    def test_document_ends_with_tuned_portability_section(self, tmp_path):
        target = tmp_path / "tuned.md"
        assert main(["report", "fig5", "--write", str(target)]) == 0
        document = target.read_text()
        assert "## Tuned performance portability" in document
        assert "Φ (all)" in document

    def test_no_tuning_skips_the_section(self, tmp_path):
        target = tmp_path / "plain.md"
        assert main(["report", "fig5", "--no-tuning",
                     "--write", str(target)]) == 0
        assert "Tuned performance portability" not in target.read_text()


class TestTuneCommand:
    GUARD = ["--param", "L=64"]

    def _tune(self, tmp_path, *extra):
        return main(["tune", "stencil", "--gpu", "h100", "--backend", "mojo",
                     "--budget", "16", "--tune-dir", str(tmp_path),
                     *self.GUARD, *extra])

    def test_parser_accepts_tune_options(self):
        args = build_parser().parse_args(
            ["tune", "stencil", "--budget", "8", "--strategy", "random",
             "--seed", "3", "--force", "--no-prune", "--json",
             "--tune-dir", "/tmp/t"])
        assert args.command == "tune" and args.budget == 8
        assert args.strategy == "random" and args.force and args.no_prune

    def test_search_persists_then_second_invocation_is_a_db_hit(
            self, tmp_path, capsys):
        """ISSUE-5 acceptance: tune persists a record; repeating the exact
        invocation is a database hit that runs no search."""
        assert self._tune(tmp_path) == 0
        first = capsys.readouterr().out
        assert "pruned by the occupancy/roofline models" in first
        assert "modelled vs measured ranking" in first
        assert (tmp_path / "records").exists()

        assert self._tune(tmp_path) == 0
        second = capsys.readouterr().out
        assert "tuning db: hit" in second and "no search" in second
        assert "ranking" not in second  # no search output

    def test_force_searches_despite_hit(self, tmp_path, capsys):
        assert self._tune(tmp_path) == 0
        capsys.readouterr()
        assert self._tune(tmp_path, "--force") == 0
        assert "modelled vs measured ranking" in capsys.readouterr().out

    def test_json_output_schema(self, tmp_path, capsys):
        assert self._tune(tmp_path, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "search"
        assert payload["prune"]["pruned"] >= 1
        assert payload["best"]["measured_ms"] > 0
        assert payload["speedup"] >= 1.2
        # DB hit payload carries the persisted record
        assert self._tune(tmp_path, "--json") == 0
        hit = json.loads(capsys.readouterr().out)
        assert hit["source"] == "db-hit"
        assert hit["record"]["config"] == payload["best"]["config"]

    def test_unknown_workload_is_clean_error(self, tmp_path, capsys):
        assert main(["tune", "warpfield", "--tune-dir", str(tmp_path)]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bench_tuned_applies_persisted_winner(self, tmp_path, capsys):
        from repro.tuning import configure_tuning_db

        assert self._tune(tmp_path) == 0
        capsys.readouterr()
        try:
            argv = ["bench", "stencil", "--param", "L=64", "--no-verify",
                    "--tuned", "--tune-dir", str(tmp_path)]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "tuning: applied" in out and "block_shape=" in out
            assert "result cache: bypassed (tuned request)" in out
        finally:
            configure_tuning_db(disk=False)

    def test_bench_tuned_miss_reports_untuned_run(self, tmp_path, capsys):
        from repro.tuning import configure_tuning_db

        try:
            argv = ["bench", "stencil", "--param", "L=48", "--no-verify",
                    "--tuned", "--tune-dir", str(tmp_path)]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "tuning: not applied (db-miss)" in out
        finally:
            configure_tuning_db(disk=False)

    def test_tune_dir_without_tuned_rejected(self, capsys):
        assert main(["bench", "stencil", "--tune-dir", "/tmp/x"]) == 2
        assert "--tune-dir only applies with --tuned" in \
            capsys.readouterr().err


class TestBenchCompare:
    @staticmethod
    def _stats_file(path, **named):
        import json
        path.write_text(json.dumps(
            {name: {"min": t, "mean": t * 1.1} for name, t in named.items()}))
        return str(path)

    def test_parser_accepts_bench_compare(self):
        args = build_parser().parse_args(
            ["bench-compare", "--baseline", "b.json", "--current", "c.json",
             "--threshold", "3.0"])
        assert args.command == "bench-compare"
        assert args.threshold == 3.0 and not args.update

    def test_ok_when_within_threshold(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=1.5)
        assert main(["bench-compare", "--baseline", base, "--current", cur]) == 0
        assert "[     ok]" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=3.0)
        assert main(["bench-compare", "--baseline", base, "--current", cur]) == 1
        captured = capsys.readouterr()
        assert "fail" in captured.out and "regressed" in captured.err

    def test_threshold_option_respected(self, tmp_path):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=3.0)
        assert main(["bench-compare", "--baseline", base, "--current", cur,
                     "--threshold", "4.0"]) == 0

    def test_update_writes_new_baseline(self, tmp_path):
        import json
        cur = self._stats_file(tmp_path / "cur.json", bench_a=0.5)
        target = tmp_path / "new_baseline.json"
        assert main(["bench-compare", "--baseline", str(target),
                     "--current", cur, "--update"]) == 0
        assert json.loads(target.read_text())["bench_a"]["min"] == 0.5

    def test_missing_baseline_is_a_clean_error(self, tmp_path, capsys):
        cur = self._stats_file(tmp_path / "cur.json", bench_a=1.0)
        code = main(["bench-compare", "--baseline", str(tmp_path / "none.json"),
                     "--current", cur])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_threshold_is_a_clean_error(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        code = main(["bench-compare", "--baseline", base, "--current", base,
                     "--threshold", "0.5"])
        assert code == 2
        assert "threshold" in capsys.readouterr().err

    def test_parser_accepts_quick(self):
        args = build_parser().parse_args(["bench-compare", "--quick"])
        assert args.quick is True

    def test_quick_update_combination_refused(self, tmp_path, capsys):
        """--quick --update would rewrite the baseline with only the fast
        subset, silently dropping the reference-benchmark entries."""
        code = main(["bench-compare", "--quick", "--update",
                     "--baseline", str(tmp_path / "b.json")])
        assert code == 2
        assert "--quick" in capsys.readouterr().err

    def test_quick_subset_expression_matches_fast_benchmarks(self):
        # The -k expression must select the executor/dispatch benches and
        # exclude the multi-second reference benches.
        from repro.cli import QUICK_BENCH_EXPR

        selected = [
            "test_bench_functional_executor_stencil",
            "test_bench_vectorized_executor_stencil",
            "test_bench_vectorized_babelstream_dot",
            "test_bench_workload_dispatch",
        ]
        excluded = [
            "test_bench_minibude_reference_energies",
            "test_bench_hartreefock_fock_quadruple_16",
            "test_bench_stencil_reference_l128",
        ]
        import re
        terms = [t for t in re.split(r"\s+or\s+", QUICK_BENCH_EXPR) if t]
        for name in selected:
            assert any(term in name for term in terms), name
        for name in excluded:
            assert not any(term in name for term in terms), name

    def test_report_includes_cache_counters(self, tmp_path, capsys):
        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        cur = self._stats_file(tmp_path / "cur.json", bench_a=1.0)
        assert main(["bench-compare", "--baseline", base, "--current", cur]) == 0
        out = capsys.readouterr().out
        # With --current no subprocess runs; this process's counters print.
        assert "compile cache (this process):" in out
        assert "result cache (this process):" in out

    def test_cache_counters_read_from_benchmark_subprocess_export(
            self, tmp_path, capsys, monkeypatch):
        """The counters must come from the process that ran the benchmarks
        (the pytest subprocess), not from the CLI parent where they are
        always zero."""
        from repro import cli as cli_mod

        base = self._stats_file(tmp_path / "base.json", bench_a=1.0)
        exported = {"compile": {"hits": 7, "misses": 3, "size": 3,
                                "maxsize": 512},
                    "result": {"hits": 2, "misses": 1, "size": 1,
                               "maxsize": 256}}

        def fake_run(bench_file, *, quick=False, cache_stats_path=None):
            assert cache_stats_path is not None
            with open(cache_stats_path, "w", encoding="utf-8") as fh:
                json.dump(exported, fh)
            out = tmp_path / "current.json"
            out.write_text(json.dumps({"bench_a": {"min": 1.0, "mean": 1.1}}))
            return str(out)

        monkeypatch.setattr(cli_mod, "_run_host_benchmarks", fake_run)
        assert main(["bench-compare", "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "compile cache (benchmark run): 7 hit(s), 3 miss(es)" in out
        assert "result cache (benchmark run):  2 hit(s), 1 miss(es)" in out


class TestBenchExecutorAndCache:
    def test_parser_accepts_executor_and_cache_flags(self):
        args = build_parser().parse_args(
            ["bench", "stencil", "--executor", "sequential", "--no-cache",
             "--cache-dir", "/tmp/x"])
        assert args.executor == "sequential"
        assert args.no_cache and args.cache_dir == "/tmp/x"

    def test_invalid_executor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "stencil", "--executor", "warp"])

    def test_executor_recorded_in_request_payload(self, capsys, tmp_path):
        code = main(["bench", "stencil", "--param", "L=32", "--repeats", "2",
                     "--executor", "sequential", "--json",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["request"]["executor"] == "sequential"
        assert payload["verification"]["passed"] is True

    def test_repeated_bench_hits_disk_cache(self, capsys, tmp_path):
        argv = ["bench", "stencil", "--param", "L=32", "--repeats", "2",
                "--no-verify", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "result cache: miss (stored)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "result cache: hit (disk)" in second

    def test_no_cache_bypasses_store(self, capsys, tmp_path):
        argv = ["bench", "stencil", "--param", "L=32", "--repeats", "2",
                "--no-verify", "--no-cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "result cache: disabled (--no-cache)" in capsys.readouterr().out
        assert not (tmp_path / "results").exists()

    def test_cached_and_fresh_results_agree(self, capsys, tmp_path):
        argv = ["bench", "babelstream", "--param", "n=4096", "--repeats", "2",
                "--no-verify", "--json", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        cached = json.loads(capsys.readouterr().out)
        assert cached["metrics"] == fresh["metrics"]
        assert sorted(cached) == sorted(fresh)
