"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(["run", "fig3", "table4", "--full",
                                          "--markdown"])
        assert args.ids == ["fig3", "table4"]
        assert args.full and args.markdown and not args.verify


class TestMain:
    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table5" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends" in out and "mojo" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "H100" in out and "MI300A" in out and "fast-math" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "[ok]" in out

    def test_run_markdown_output(self, capsys):
        assert main(["run", "fig5", "--markdown"]) == 0
        assert "## fig5" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out
