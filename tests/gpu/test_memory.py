"""Tests for device memory tracking and the transfer model."""

import pytest

from repro.core.dtypes import DType
from repro.core.errors import DeviceError, OutOfMemoryError
from repro.gpu.memory import AllocationTracker, MemorySpace, TransferModel
from repro.gpu.specs import get_gpu


class TestAllocationTracker:
    def _tracker(self):
        return AllocationTracker(get_gpu("h100"))

    def test_allocate_updates_usage(self):
        tracker = self._tracker()
        alloc = tracker.allocate(1000, DType.float64)
        assert tracker.bytes_in_use == 8000
        assert alloc.nbytes == 8000
        assert tracker.live_allocations == 1

    def test_free_returns_memory(self):
        tracker = self._tracker()
        alloc = tracker.allocate(1000, DType.float32)
        tracker.free(alloc)
        assert tracker.bytes_in_use == 0
        assert tracker.live_allocations == 0
        assert tracker.free_count == 1

    def test_double_free_raises(self):
        tracker = self._tracker()
        alloc = tracker.allocate(10, DType.float32)
        tracker.free(alloc)
        with pytest.raises(DeviceError):
            tracker.free(alloc)

    def test_peak_tracking(self):
        tracker = self._tracker()
        a = tracker.allocate(1000, DType.float64)
        b = tracker.allocate(2000, DType.float64)
        tracker.free(a)
        assert tracker.peak_bytes == 24000
        assert tracker.bytes_in_use == 16000

    def test_oom(self):
        tracker = self._tracker()
        with pytest.raises(OutOfMemoryError):
            tracker.allocate(tracker.capacity_bytes // 8 + 1, DType.float64)

    def test_capacity_reserves_fraction(self):
        tracker = self._tracker()
        assert tracker.capacity_bytes < get_gpu("h100").memory_bytes

    def test_invalid_count(self):
        with pytest.raises(DeviceError):
            self._tracker().allocate(0, DType.float64)

    def test_summary_keys(self):
        tracker = self._tracker()
        tracker.allocate(10, DType.float32, label="x")
        summary = tracker.summary()
        assert summary["alloc_count"] == 1
        assert summary["bytes_in_use"] == 40

    def test_memory_space_constants(self):
        assert MemorySpace.GLOBAL == "global"
        assert MemorySpace.SHARED == "shared"


class TestTransferModel:
    def test_time_increases_with_bytes(self):
        model = TransferModel(get_gpu("h100"))
        assert model.transfer_time_s(1 << 30) > model.transfer_time_s(1 << 20)

    def test_latency_floor(self):
        model = TransferModel(get_gpu("h100"), latency_us=10.0)
        assert model.transfer_time_s(0) == pytest.approx(10e-6)

    def test_effective_bandwidth_below_peak(self):
        model = TransferModel(get_gpu("h100"))
        assert model.effective_bandwidth_gbs(1 << 30) <= get_gpu("h100").transfer_bw_gbs

    def test_negative_bytes_rejected(self):
        with pytest.raises(DeviceError):
            TransferModel(get_gpu("h100")).transfer_time_s(-1)

    def test_unified_memory_is_faster_on_mi300a(self):
        h = TransferModel(get_gpu("h100"))
        m = TransferModel(get_gpu("mi300a"))
        nbytes = 1 << 30
        assert m.transfer_time_s(nbytes) < h.transfer_time_s(nbytes)
