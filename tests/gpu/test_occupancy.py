"""Tests for the occupancy calculator."""

import pytest

from repro.core.errors import LaunchError
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.specs import get_gpu


class TestOccupancyLimits:
    def test_full_occupancy_small_footprint(self, h100):
        occ = compute_occupancy(h100, threads_per_block=256,
                                registers_per_thread=32)
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.active_threads_per_sm == h100.max_threads_per_sm

    def test_thread_limited(self, h100):
        occ = compute_occupancy(h100, threads_per_block=1024,
                                registers_per_thread=16)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by in ("threads", "blocks")

    def test_register_limited(self, h100):
        occ = compute_occupancy(h100, threads_per_block=256,
                                registers_per_thread=255)
        assert occ.limited_by == "registers"
        assert occ.occupancy < 1.0

    def test_more_registers_never_increase_occupancy(self, h100):
        occs = [compute_occupancy(h100, 512, regs).occupancy
                for regs in (16, 32, 64, 128, 255)]
        assert occs == sorted(occs, reverse=True)

    def test_shared_memory_limited(self, h100):
        occ = compute_occupancy(h100, threads_per_block=64,
                                registers_per_thread=16,
                                shared_bytes_per_block=100 * 1024)
        assert occ.limited_by == "shared"

    def test_shared_memory_over_block_limit(self, h100):
        with pytest.raises(LaunchError):
            compute_occupancy(h100, 64, 16,
                              shared_bytes_per_block=h100.shared_mem_per_block + 4096)

    def test_small_blocks_limited_by_block_slots(self, h100):
        occ = compute_occupancy(h100, threads_per_block=32,
                                registers_per_thread=16)
        assert occ.limited_by == "blocks"
        assert occ.blocks_per_sm == 32

    def test_invalid_threads(self, h100):
        with pytest.raises(LaunchError):
            compute_occupancy(h100, 0)
        with pytest.raises(LaunchError):
            compute_occupancy(h100, 2048)

    def test_waves_reported(self, h100):
        occ = compute_occupancy(h100, 256, 32, num_blocks=h100.sm_count * 8 * 3)
        assert occ.waves == pytest.approx(3.0)

    def test_warp_size_differences(self, h100, mi300a):
        occ_h = compute_occupancy(h100, 128, 32)
        occ_m = compute_occupancy(mi300a, 128, 32)
        assert occ_h.max_warps_per_sm == 64
        assert occ_m.max_warps_per_sm == 32

    def test_occupancy_never_exceeds_one(self, h100, mi300a):
        for spec in (h100, mi300a):
            for tpb in (64, 128, 256, 512, 1024):
                occ = compute_occupancy(spec, tpb, 24)
                assert 0.0 < occ.occupancy <= 1.0

    def test_str_mentions_limit(self, h100):
        occ = compute_occupancy(h100, 256, 255)
        assert "registers" in str(occ)
