"""Edge cases of the occupancy/roofline models the tuning pruner relies on.

The pruner (:mod:`repro.tuning.model`) never measures a candidate the
models reject or score as hopeless, so these behaviours must stay pinned:
oversized blocks raise, fractional warps are charged whole, zero-FLOP
kernels sit on the memory roof, and dtype widths shift the roofline.
"""

import math

import pytest

from repro.core.dtypes import DType
from repro.core.errors import ConfigurationError, LaunchError
from repro.core.kernel import KernelModel
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.roofline import Roofline, RooflinePoint, classify_workload


class TestOccupancyEdges:
    def test_block_above_device_max_threads_raises(self, h100, mi300a):
        for spec in (h100, mi300a):
            with pytest.raises(LaunchError):
                compute_occupancy(spec, spec.max_threads_per_block + 1)
            # the exact limit is accepted
            occ = compute_occupancy(spec, spec.max_threads_per_block)
            assert occ.blocks_per_sm >= 1

    def test_fractional_warps_charged_whole(self, h100):
        # A 48-thread block occupies two 32-lane warps; the resident-warp
        # count (the latency-hiding resource the pruner derates by) must
        # reflect that, not the 1.5 warps of threads.
        occ = compute_occupancy(h100, 48, 32)
        assert occ.active_warps_per_sm == occ.blocks_per_sm * 2

    def test_wavefront_width_changes_warp_charge(self, mi300a):
        # The same 48-thread block is one 64-lane wavefront on AMD.
        occ = compute_occupancy(mi300a, 48, 32)
        assert occ.active_warps_per_sm == occ.blocks_per_sm * 1

    def test_sub_wave_grid_reports_fractional_waves(self, h100):
        occ = compute_occupancy(h100, 256, 32, num_blocks=h100.sm_count)
        assert 0 < occ.waves < 1

    def test_nonpositive_registers_treated_as_minimal(self, h100):
        occ = compute_occupancy(h100, 256, registers_per_thread=0)
        assert occ.blocks_per_sm > 0


class TestRooflineEdges:
    def test_zero_intensity_attains_zero(self):
        # A kernel that does no FLOPs has no attainable FLOP rate; the
        # pruner must score it purely by the memory term.
        roofline = Roofline("h100")
        assert roofline.attainable(0.0) == 0.0

    def test_zero_flop_kernel_classifies_memory_bound(self):
        roofline = Roofline("h100")
        point = RooflinePoint(name="copy", arithmetic_intensity=1e-9,
                              performance=1.0)
        assert classify_workload(point, roofline) == "memory-bound"

    def test_memory_only_kernel_model_has_zero_intensity(self):
        model = KernelModel(name="copy", dtype=DType.float64,
                            loads_global=1.0, stores_global=1.0, flops=0.0)
        assert model.arithmetic_intensity() == 0.0
        assert model.total_flops(1024) == 0.0

    def test_zero_traffic_kernel_model_has_infinite_intensity(self):
        model = KernelModel(name="pure", dtype=DType.float64,
                            loads_global=0.0, stores_global=0.0, flops=8.0)
        assert math.isinf(model.arithmetic_intensity())

    def test_dtype_width_moves_ridge_point(self):
        roofline = Roofline("h100")
        # fp32 peak is 2x fp64 on H100, so its ridge sits at twice the
        # intensity — a candidate memory-bound in fp64 can be memory-bound
        # in fp32 at double the intensity.
        assert roofline.ridge_point("float32") == pytest.approx(
            2 * roofline.ridge_point("float64"))

    def test_dtype_width_changes_model_bytes(self):
        for dtype, width in ((DType.float32, 4), (DType.float64, 8)):
            model = KernelModel(name="k", dtype=dtype, loads_global=2.0,
                                stores_global=1.0, flops=1.0)
            assert model.bytes_per_thread() == 3 * width

    def test_unknown_precision_rejected(self, h100):
        with pytest.raises(ConfigurationError):
            h100.peak_flops("float128")
