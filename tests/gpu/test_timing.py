"""Tests for the analytic kernel timing model."""

import pytest

from repro.backends import get_backend
from repro.core.compiler import CompilerProfile, compile_kernel
from repro.core.dtypes import DType
from repro.core.errors import ConfigurationError
from repro.core.kernel import KernelModel, LaunchConfig, MemoryPattern
from repro.gpu.specs import get_gpu
from repro.gpu.timing import KernelTimingModel, estimate_cache_traffic


def _compiled(model, profile=None, launch=None, fast_math=False):
    return compile_kernel(model, profile or CompilerProfile(), launch=launch,
                          fast_math=fast_math)


def _stream_model(**kw):
    defaults = dict(name="stream", dtype=DType.float64, loads_global=2,
                    stores_global=1, flops=2, working_values=12)
    defaults.update(kw)
    return KernelModel(**defaults)


def _compute_model(**kw):
    defaults = dict(name="compute", dtype=DType.float32, loads_global=4,
                    stores_global=1, flops=50_000, divides=1000,
                    working_values=40)
    defaults.update(kw)
    return KernelModel(**defaults)


class TestMemoryBound:
    def test_streaming_kernel_is_memory_bound(self, h100):
        launch = LaunchConfig.for_elements(2 ** 24, 1024)
        timing = KernelTimingModel(h100).predict(_compiled(_stream_model()), launch)
        assert timing.bound == "memory"
        assert timing.memory_time_ms > timing.compute_time_ms

    def test_bandwidth_below_peak(self, h100):
        launch = LaunchConfig.for_elements(2 ** 24, 1024)
        timing = KernelTimingModel(h100).predict(_compiled(_stream_model()), launch)
        assert 0 < timing.achieved_bandwidth_gbs <= h100.mem_bw_gbs

    def test_bandwidth_reasonably_close_to_peak_for_streaming(self, h100):
        launch = LaunchConfig.for_elements(2 ** 25, 1024)
        timing = KernelTimingModel(h100).predict(_compiled(_stream_model()), launch)
        assert timing.achieved_bandwidth_gbs > 0.7 * h100.mem_bw_gbs

    def test_time_scales_linearly_with_elements(self, h100):
        model = _stream_model()
        t1 = KernelTimingModel(h100).predict(
            _compiled(model), LaunchConfig.for_elements(2 ** 22, 1024))
        t2 = KernelTimingModel(h100).predict(
            _compiled(model), LaunchConfig.for_elements(2 ** 24, 1024))
        ratio = t2.kernel_time_ms / t1.kernel_time_ms
        assert 3.0 < ratio < 5.0

    def test_mi300a_faster_than_h100_for_memory_bound(self, h100, mi300a):
        model = _stream_model()
        launch = LaunchConfig.for_elements(2 ** 25, 1024)
        t_h = KernelTimingModel(h100).predict(_compiled(model), launch)
        t_m = KernelTimingModel(mi300a).predict(_compiled(model), launch)
        assert t_m.kernel_time_ms < t_h.kernel_time_ms


class TestComputeBound:
    def test_flop_heavy_kernel_is_compute_bound(self, h100):
        launch = LaunchConfig.for_elements(65536, 64)
        timing = KernelTimingModel(h100).predict(_compiled(_compute_model()), launch)
        assert timing.bound == "compute"

    def test_fast_math_speeds_up_compute_kernels(self, h100):
        launch = LaunchConfig.for_elements(65536, 64)
        profile = CompilerProfile(fast_math_available=True)
        slow = KernelTimingModel(h100).predict(
            _compiled(_compute_model(), profile, fast_math=False), launch)
        fast = KernelTimingModel(h100).predict(
            _compiled(_compute_model(), profile, fast_math=True), launch)
        assert fast.kernel_time_ms < slow.kernel_time_ms

    def test_gflops_below_peak(self, h100):
        launch = LaunchConfig.for_elements(65536, 64)
        timing = KernelTimingModel(h100).predict(_compiled(_compute_model()), launch)
        assert timing.achieved_gflops < h100.fp32_tflops * 1e3

    def test_ilp_improves_throughput(self, h100):
        launch = LaunchConfig.for_elements(65536, 64)
        low = KernelTimingModel(h100).predict(
            _compiled(_compute_model(ilp=1)), launch)
        high = KernelTimingModel(h100).predict(
            _compiled(_compute_model(ilp=8)), launch)
        assert high.kernel_time_ms < low.kernel_time_ms


class TestAtomicsAndSpills:
    def test_atomics_add_time(self, h100):
        launch = LaunchConfig.for_elements(2 ** 20, 256)
        base = _stream_model()
        with_atomics = _stream_model(atomics=6)
        t0 = KernelTimingModel(h100).predict(_compiled(base), launch)
        t1 = KernelTimingModel(h100).predict(_compiled(with_atomics), launch)
        assert t1.kernel_time_ms > t0.kernel_time_ms
        assert t1.atomic_time_ms > 0
        assert t1.bound == "atomic"

    def test_cas_atomics_slower_than_native(self, h100):
        launch = LaunchConfig.for_elements(2 ** 20, 256)
        model = _stream_model(atomics=6)
        native = KernelTimingModel(h100).predict(
            _compiled(model, CompilerProfile(atomic_mode="native")), launch)
        cas = KernelTimingModel(h100).predict(
            _compiled(model, CompilerProfile(atomic_mode="cas",
                                             cas_expected_retries=100)), launch)
        assert cas.kernel_time_ms > 10 * native.kernel_time_ms

    def test_spilled_kernel_slower(self, h100):
        launch = LaunchConfig.for_elements(65536, 64)
        small = _compute_model(working_values=40)
        big = _compute_model(working_values=400)
        t_small = KernelTimingModel(h100).predict(
            _compiled(small, CompilerProfile(spill_threshold_values=200)), launch)
        t_big = KernelTimingModel(h100).predict(
            _compiled(big, CompilerProfile(spill_threshold_values=200)), launch)
        assert t_big.kernel_time_ms > t_small.kernel_time_ms


class TestCacheTrafficAndMisc:
    def test_stencil_dram_traffic_below_l1(self):
        model = KernelModel(name="stencil", dtype=DType.float64, loads_global=7,
                            stores_global=1, flops=13,
                            memory_pattern=MemoryPattern.STENCIL3D)
        compiled = _compiled(model)
        cache = estimate_cache_traffic(compiled, 1000)
        assert cache["dram_bytes"] < cache["l2_bytes"] <= cache["l1_bytes"]

    def test_stride1_traffic_equal_at_all_levels(self):
        compiled = _compiled(_stream_model())
        cache = estimate_cache_traffic(compiled, 1000)
        assert cache["dram_bytes"] == cache["l2_bytes"] == cache["l1_bytes"]

    def test_throughput_percentages_bounded(self, h100):
        launch = LaunchConfig.for_elements(2 ** 24, 1024)
        timing = KernelTimingModel(h100).predict(_compiled(_stream_model()), launch)
        assert 0 <= timing.memory_throughput_pct <= 100
        assert 0 <= timing.compute_throughput_pct <= 100

    def test_missing_launch_rejected(self, h100):
        with pytest.raises(ConfigurationError):
            KernelTimingModel(h100).predict(_compiled(_stream_model()))

    def test_as_dict_keys(self, h100):
        launch = LaunchConfig.for_elements(1024, 256)
        d = KernelTimingModel(h100).predict(_compiled(_stream_model()), launch).as_dict()
        assert {"kernel_time_ms", "achieved_bandwidth_gbs", "bound"} <= set(d)

    def test_active_fraction_reduces_traffic(self, h100):
        launch = LaunchConfig.for_elements(2 ** 24, 1024)
        full = KernelTimingModel(h100).predict(
            _compiled(_stream_model(active_fraction=1.0)), launch)
        half = KernelTimingModel(h100).predict(
            _compiled(_stream_model(active_fraction=0.5)), launch)
        assert half.dram_bytes == pytest.approx(full.dram_bytes * 0.5, rel=1e-6)


class TestPaperShapedBehaviour:
    """End-to-end timing-model checks tied to the paper's headline ratios."""

    def test_stencil_mojo_cuda_ratio(self, h100):
        from repro.kernels.stencil import stencil_kernel_model, stencil_launch_config
        model = stencil_kernel_model(L=512, precision="float64")
        launch = stencil_launch_config(512, (512, 1, 1))
        mojo = get_backend("mojo").time(model, h100, launch)
        cuda = get_backend("cuda").time(model, h100, launch)
        ratio = cuda.kernel_time_ms / mojo.kernel_time_ms
        assert 0.80 <= ratio <= 0.95          # paper: ~87%

    def test_stencil_parity_on_mi300a(self, mi300a):
        from repro.kernels.stencil import stencil_kernel_model, stencil_launch_config
        model = stencil_kernel_model(L=512, precision="float64")
        launch = stencil_launch_config(512, (512, 1, 1))
        mojo = get_backend("mojo").time(model, mi300a, launch)
        hip = get_backend("hip").time(model, mi300a, launch)
        assert mojo.kernel_time_ms == pytest.approx(hip.kernel_time_ms, rel=0.05)
