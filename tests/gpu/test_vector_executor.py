"""Tests for the lockstep (vectorized) SIMT execution engine.

Covers the lane helpers, the mode-selection/fallback rules, and the two
contracts the vectorized engine must honour for every science kernel:

* **counter parity** — ``ExecutionCounters`` (threads_run, blocks_run,
  barriers, atomics) identical across sequential, cooperative and vectorized
  execution of the same launch;
* **bit parity** — results bit-identical to the scalar executors for the
  deterministic kernels (stencil, BabelStream, miniBUDE), and matching the
  scalar ``contracted_eri`` oracle via the batched quadruple reference for
  Hartree–Fock (whose six atomic scatter sites interleave differently across
  executors, leaving only last-ulp associativity differences on the
  accumulated Fock matrix).
"""

import numpy as np
import pytest

from repro.core import DType, barrier, block_dim, block_idx, kernel, shared_array, thread_idx
from repro.core.intrinsics import (
    any_lane,
    all_lanes,
    compress_lanes,
    lane_where,
    masked_gather,
    masked_store,
)
from repro.core.kernel import LaunchConfig
from repro.core.layout import Layout, LayoutTensor
from repro.gpu.executor import KernelExecutor, kernel_uses_barrier, kernel_vector_safe
from repro.gpu import vector_executor


# ---------------------------------------------------------------------------
# Lane helpers
# ---------------------------------------------------------------------------

class TestLaneHelpers:
    def test_scalar_degradation(self):
        assert any_lane(True) and not any_lane(False)
        assert all_lanes(True) and not all_lanes(False)
        assert lane_where(True, 1.0, 2.0) == 1.0
        assert lane_where(False, 1.0, 2.0) == 2.0
        assert compress_lanes(True, 5) == 5
        assert compress_lanes(True, 5, 6) == (5, 6)

    def test_vector_forms(self):
        m = np.array([True, False, True])
        assert any_lane(m) is True
        assert all_lanes(m) is False
        np.testing.assert_array_equal(lane_where(m, 1.0, 0.0), [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(
            compress_lanes(m, np.array([10, 20, 30])), [10, 30])
        a, b = compress_lanes(m, np.array([1, 2, 3]), np.array([4, 5, 6]))
        np.testing.assert_array_equal(a, [1, 3])
        np.testing.assert_array_equal(b, [4, 6])

    def test_masked_gather_never_dereferences_inactive_lanes(self):
        target = np.array([1.0, 2.0, 3.0])
        idx = np.array([0, 99, 2])         # lane 1 out of bounds but masked
        m = np.array([True, False, True])
        np.testing.assert_array_equal(
            masked_gather(target, idx, m, other=-1.0), [1.0, -1.0, 3.0])
        # Scalar forms
        assert masked_gather(target, 1, True) == 2.0
        assert masked_gather(target, 99, False, other=7.0) == 7.0

    def test_masked_store_scatters_active_lanes_only(self):
        out = np.zeros(4)
        masked_store(out, np.array([0, 1, 99]), np.array([5.0, 6.0, 7.0]),
                     np.array([True, True, False]))
        np.testing.assert_array_equal(out, [5.0, 6.0, 0.0, 0.0])
        # Broadcasting scalar index/value over the mask shape
        out2 = np.zeros(4)
        masked_store(out2, 2, 9.0, np.array([False, True]))
        assert out2[2] == 9.0
        # Scalar forms
        masked_store(out2, 3, 1.5, True)
        masked_store(out2, 0, 8.0, False)
        np.testing.assert_array_equal(out2, [0.0, 0.0, 9.0, 1.5])

    def test_masked_store_all_inactive_is_noop(self):
        out = np.zeros(2)
        masked_store(out, np.array([5, 6]), np.array([1.0, 2.0]),
                     np.array([False, False]))
        np.testing.assert_array_equal(out, 0.0)


# ---------------------------------------------------------------------------
# Mode selection and fallback
# ---------------------------------------------------------------------------

@kernel(vector_safe=True)
def _vec_iota(out, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    out[i] = i


@kernel
def _scalar_iota(out, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        out[i] = i


class TestModeSelection:
    def test_vector_safe_flag_round_trips(self):
        assert kernel_vector_safe(_vec_iota) is True
        assert kernel_vector_safe(_scalar_iota) is False
        assert _vec_iota.vector_safe is True

    def test_explicit_false_overrides_sticky_function_marking(self):
        from repro.core.kernel import Kernel

        # Re-wrapping the underlying function inherits the marking ...
        assert Kernel(_vec_iota.fn).vector_safe is True
        # ... but an explicit opt-out must win over the cached attribute.
        assert Kernel(_vec_iota.fn, vector_safe=False).vector_safe is False
        out = np.zeros(8)
        result = KernelExecutor().launch(
            Kernel(_vec_iota.fn, vector_safe=False), (out, 8),
            LaunchConfig.make(1, 8))
        assert result.mode == "sequential"
        np.testing.assert_array_equal(out, np.arange(8.0))

    def test_auto_picks_vectorized_for_vector_safe(self):
        out = np.zeros(32)
        result = KernelExecutor().launch(_vec_iota, (out, 32),
                                         LaunchConfig.make(2, 16))
        assert result.mode == "vectorized"
        np.testing.assert_array_equal(out, np.arange(32.0))

    def test_explicit_vectorized_falls_back_for_plain_kernel(self):
        out = np.zeros(32)
        result = KernelExecutor().launch(_scalar_iota, (out, 32),
                                         LaunchConfig.make(2, 16),
                                         mode="vectorized")
        assert result.mode == "sequential"   # vector safety is a kernel property
        np.testing.assert_array_equal(out, np.arange(32.0))

    def test_explicit_vectorized_falls_back_to_cooperative_for_barrier_kernel(self):
        @kernel
        def barrier_probe(out):
            barrier()
            out[thread_idx.x] = 1.0

        out = np.zeros(4)
        result = KernelExecutor().launch(barrier_probe, (out,),
                                         LaunchConfig.make(1, 4),
                                         mode="vectorized")
        assert result.mode == "cooperative"
        np.testing.assert_array_equal(out, 1.0)

    def test_explicit_scalar_modes_still_available(self):
        out = np.zeros(8)
        result = KernelExecutor().launch(_vec_iota, (out, 8),
                                         LaunchConfig.make(1, 8),
                                         mode="sequential")
        assert result.mode == "sequential"
        np.testing.assert_array_equal(out, np.arange(8.0))


# ---------------------------------------------------------------------------
# Whole-grid chunking
# ---------------------------------------------------------------------------

class TestChunking:
    def test_chunked_whole_grid_matches_single_chunk(self, monkeypatch):
        launch = LaunchConfig.make(16, 8)
        n = 100                               # tail guard active
        full = np.zeros(128)
        KernelExecutor().launch(_vec_iota, (full, n), launch)

        monkeypatch.setattr(vector_executor, "VECTOR_CHUNK_LANES", 16)
        chunked = np.zeros(128)
        result = KernelExecutor().launch(_vec_iota, (chunked, n), launch)
        assert result.mode == "vectorized"
        assert result.threads_run == 128
        assert result.blocks_run == 16
        np.testing.assert_array_equal(full, chunked)

    def test_single_lane_block(self):
        # One thread per block: the lane arrays have size 1 and NumPy keeps
        # them on the array path (no silent scalar degradation).
        out = np.zeros(4)
        result = KernelExecutor().launch(_vec_iota, (out, 4),
                                         LaunchConfig.make(4, 1))
        assert result.mode == "vectorized"
        np.testing.assert_array_equal(out, np.arange(4.0))


# ---------------------------------------------------------------------------
# Cross-mode parity on the four science kernels
# ---------------------------------------------------------------------------

def _stencil_run(mode, L=10, block=(4, 2, 2)):
    from repro.kernels.stencil import StencilProblem
    from repro.kernels.stencil.kernel import laplacian_kernel
    from repro.kernels.stencil.runner import stencil_launch_config

    problem = StencilProblem(L, "float64")
    u_host = problem.initial_field()
    args = problem.inverse_spacing_squared
    layout = Layout.row_major(L, L, L)
    u = LayoutTensor(DType.float64, layout, u_host.reshape(-1).copy(),
                     mut=False, bounds_check=False)
    f_store = np.zeros(L ** 3)
    f = LayoutTensor(DType.float64, layout, f_store, bounds_check=False)
    result = KernelExecutor().launch(
        laplacian_kernel, (f, u, L, L, L, *args),
        stencil_launch_config(L, block), mode=mode)
    return f_store, result


class TestStencilParity:
    def test_three_mode_bit_and_counter_parity(self):
        f_seq, r_seq = _stencil_run("sequential")
        f_coop, r_coop = _stencil_run("cooperative")
        f_vec, r_vec = _stencil_run("vectorized")
        assert r_vec.mode == "vectorized"
        np.testing.assert_array_equal(f_seq, f_vec)
        np.testing.assert_array_equal(f_seq, f_coop)
        assert r_seq.counters.as_dict() == r_vec.counters.as_dict() \
            == r_coop.counters.as_dict()


class TestBabelStreamParity:
    def test_streaming_kernels_bitwise(self, rng):
        from repro.kernels.babelstream.kernels import (
            add_kernel, copy_kernel, mul_kernel, triad_kernel)

        n, tb = 500, 64
        launch = LaunchConfig.for_elements(n, tb)
        base = rng.normal(size=n)
        outputs = {}
        for mode in ("sequential", "vectorized"):
            a = base.copy()
            b = np.zeros(n)
            c = np.zeros(n)
            ex = KernelExecutor()
            ex.launch(copy_kernel, (a, c, n), launch, mode=mode)
            ex.launch(mul_kernel, (b, c, 0.4, n), launch, mode=mode)
            ex.launch(add_kernel, (a, b, c, n), launch, mode=mode)
            ex.launch(triad_kernel, (a, b, c, 0.4, n), launch, mode=mode)
            outputs[mode] = (a, b, c)
        for seq_arr, vec_arr in zip(*outputs.values()):
            np.testing.assert_array_equal(seq_arr, vec_arr)

    def test_dot_matches_cooperative_bitwise_with_counters(self, rng):
        from repro.kernels.babelstream.kernels import dot_kernel

        n, tb, blocks = 1000, 64, 4
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        launch = LaunchConfig.make(blocks, tb)
        out = {}
        for mode in ("cooperative", "vectorized"):
            sums = np.zeros(blocks)
            r = KernelExecutor().launch(dot_kernel, (a, b, sums, n, tb),
                                        launch, mode=mode)
            out[mode] = (sums, r)
        sums_coop, r_coop = out["cooperative"]
        sums_vec, r_vec = out["vectorized"]
        assert r_vec.mode == "vectorized"
        np.testing.assert_array_equal(sums_coop, sums_vec)
        assert r_coop.counters.as_dict() == r_vec.counters.as_dict()
        # log2(64) barriers in the tree + the final one, per thread
        assert r_vec.counters.barriers == blocks * tb * 7
        assert r_vec.shared_bytes_per_block == tb * 8
        np.testing.assert_allclose(sums_vec.sum(), a @ b, rtol=1e-12)


class TestMiniBudeParity:
    def test_three_mode_bit_and_counter_parity(self):
        from repro.kernels.minibude import make_deck
        from repro.kernels.minibude.runner import run_fasten_functional

        deck = make_deck(natlig=6, natpro=24, ntypes=4, nposes=32, seed=5)
        energies = {}
        for mode in ("sequential", "cooperative", "vectorized"):
            e, err = run_fasten_functional(deck, ppwi=2, wgsize=8,
                                           executor=mode)
            energies[mode] = e
            assert err < 2e-3
        np.testing.assert_array_equal(energies["sequential"],
                                      energies["vectorized"])
        np.testing.assert_array_equal(energies["sequential"],
                                      energies["cooperative"])


class TestHartreeFockParity:
    def _run(self, mode, system, schwarz, schwarz_tol=0.0, block=16):
        from repro.core.device import DeviceContext
        from repro.kernels.hartreefock.kernel import hartree_fock_kernel

        ctx = DeviceContext("h100")
        n = system.natoms

        def make_tensor(data, shape, label):
            flat = np.asarray(data, dtype=np.float64).reshape(-1)
            buf = ctx.enqueue_create_buffer(DType.float64, flat.size,
                                            label=label)
            buf.copy_from_host(flat)
            return buf, buf.tensor(Layout.row_major(*shape),
                                   bounds_check=False)

        _, schwarz_t = make_tensor(schwarz, (len(schwarz),), "schwarz")
        _, xpnt_t = make_tensor(system.xpnt, (system.ngauss,), "xpnt")
        _, coef_t = make_tensor(system.coef, (system.ngauss,), "coef")
        _, geom_t = make_tensor(system.geometry, (n, 3), "geom")
        _, dens_t = make_tensor(system.dens, (n, n), "dens")
        fock_buf, fock_t = make_tensor(np.zeros((n, n)), (n, n), "fock")
        launch = LaunchConfig.for_elements(system.nquads, block)
        ctx.enqueue_function(
            hartree_fock_kernel, system.ngauss, n, system.nquads, schwarz_t,
            schwarz_tol, xpnt_t, coef_t, geom_t, dens_t, fock_t,
            grid_dim=launch.grid_dim, block_dim=launch.block_dim, mode=mode)
        ctx.synchronize()
        event = ctx.timeline[-1].execution
        return fock_buf.copy_to_host().reshape(n, n), event

    def test_counter_parity_and_oracle_match(self):
        from repro.kernels.hartreefock import make_helium_system
        from repro.kernels.hartreefock.reference import fock_quadruple_reference
        from repro.kernels.hartreefock.runner import compute_schwarz

        system = make_helium_system(5, 3, spacing=2.5)
        schwarz = compute_schwarz(system)
        results = {m: self._run(m, system, schwarz)
                   for m in ("sequential", "cooperative", "vectorized")}
        counters = {m: r[1].counters.as_dict() for m, r in results.items()}
        assert counters["sequential"] == counters["vectorized"] \
            == counters["cooperative"]
        assert counters["vectorized"]["atomics"] == 6 * system.nquads

        # The six atomic scatter sites interleave differently across
        # executors (per-thread in scalar modes, per-site np.add.at in
        # lockstep), so the accumulated Fock matrix agrees to floating-point
        # associativity, not bit-for-bit.
        fock_vec = results["vectorized"][0]
        scale = np.max(np.abs(fock_vec))
        assert np.max(np.abs(fock_vec - results["sequential"][0])) / scale < 1e-13

        # Against the batched unique-quadruple reference — the scalar
        # contracted_eri oracle evaluated via contracted_eri_batch — the
        # lockstep kernel shares both the ERI arithmetic and the np.add.at
        # scatter order, so the agreement is at the ulp level.
        expected = fock_quadruple_reference(system)
        assert np.max(np.abs(fock_vec - expected)) / scale < 1e-15

    def test_screened_launch_parity(self):
        from repro.kernels.hartreefock import make_helium_system
        from repro.kernels.hartreefock.runner import compute_schwarz

        system = make_helium_system(6, 3, spacing=6.0)   # wide: screening bites
        schwarz = compute_schwarz(system)
        f_seq, r_seq = self._run("sequential", system, schwarz,
                                 schwarz_tol=1e-9)
        f_vec, r_vec = self._run("vectorized", system, schwarz,
                                 schwarz_tol=1e-9)
        assert r_seq.counters.as_dict() == r_vec.counters.as_dict()
        # Screening must actually drop quadruples for this geometry.
        assert r_vec.counters.atomics < 6 * system.nquads
        scale = max(np.max(np.abs(f_vec)), 1e-30)
        assert np.max(np.abs(f_vec - f_seq)) / scale < 1e-13


# ---------------------------------------------------------------------------
# Lane-vector atomics
# ---------------------------------------------------------------------------

class TestLaneVectorAtomics:
    def test_duplicate_indices_accumulate_in_lane_order(self):
        from repro.core.atomics import Atomic

        out = np.zeros(3)
        tensor = LayoutTensor(DType.float64, Layout.row_major(3), out)
        Atomic.fetch_add(tensor, np.array([0, 1, 1, 2]),
                         np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_array_equal(out, [1.0, 5.0, 4.0])

    def test_tuple_index_arrays_resolve_through_layout(self):
        from repro.core.atomics import Atomic

        out = np.zeros(4)
        tensor = LayoutTensor(DType.float64, Layout.row_major(2, 2), out)
        Atomic.fetch_add(tensor, (np.array([0, 1]), np.array([1, 0])),
                         np.array([2.0, 3.0]))
        np.testing.assert_array_equal(out, [0.0, 2.0, 3.0, 0.0])

    def test_out_of_bounds_lane_rejected(self):
        from repro.core.atomics import Atomic
        from repro.core.errors import LaunchError

        out = np.zeros(2)
        with pytest.raises(LaunchError):
            Atomic.fetch_add(out, np.array([0, 5]), np.array([1.0, 1.0]))

    def test_compare_exchange_rejects_lane_vectors(self):
        from repro.core.atomics import Atomic
        from repro.core.errors import LaunchError

        out = np.zeros(2)
        with pytest.raises(LaunchError):
            Atomic.compare_exchange(out, np.array([0, 1]), 0.0, 1.0)


# ---------------------------------------------------------------------------
# Lane-aware tensor indexing
# ---------------------------------------------------------------------------

class TestLaneTensorIndexing:
    def test_bounds_checked_gather_and_scatter(self):
        store = np.arange(6.0)
        t = LayoutTensor(DType.float64, Layout.row_major(2, 3), store,
                         bounds_check=True)
        np.testing.assert_array_equal(t[np.array([0, 1]), np.array([2, 0])],
                                      [2.0, 3.0])
        t[np.array([0, 1]), np.array([0, 2])] = np.array([10.0, 11.0])
        assert store[0] == 10.0 and store[5] == 11.0

    def test_bounds_checked_lane_index_rejected_when_out_of_range(self):
        from repro.core.errors import LayoutError

        t = LayoutTensor(DType.float64, Layout.row_major(2, 3),
                         np.zeros(6), bounds_check=True)
        with pytest.raises(LayoutError):
            t[np.array([0, 2]), np.array([0, 0])]

    def test_unchecked_flat_gather(self):
        t = LayoutTensor(DType.float64, Layout.row_major(4),
                         np.arange(4.0), bounds_check=False)
        np.testing.assert_array_equal(t[np.array([3, 1])], [3.0, 1.0])
