"""Tests for the functional kernel executor (sequential and cooperative)."""

import numpy as np
import pytest

from repro.core import DType, barrier, block_dim, block_idx, grid_dim, kernel, shared_array, thread_idx
from repro.core.intrinsics import masked_store
from repro.core.errors import LaunchError
from repro.core.kernel import LaunchConfig
from repro.gpu.executor import ExecutionCounters, KernelExecutor, kernel_uses_barrier


@kernel
def _global_id_kernel(out, n):
    i = block_idx.x * block_dim.x + thread_idx.x
    if i < n:
        out[i] = i


@kernel
def _block_sum_kernel(a, sums, n, tb):
    tile = shared_array(tb, DType.float64, key="tile")
    i = block_idx.x * block_dim.x + thread_idx.x
    tid = thread_idx.x
    tile[tid] = a[i] if i < n else 0.0
    offset = block_dim.x // 2
    while offset > 0:
        barrier()
        if tid < offset:
            tile[tid] += tile[tid + offset]
        offset //= 2
    barrier()
    # predicated final store (the shipped dot_kernel idiom) so the kernel
    # also verifies clean under `repro lint` when the suite registers it
    masked_store(sums, block_idx.x, tile[0], tid == 0)


@kernel
def _kernel_3d(out, nx, ny, nz):
    x = block_idx.x * block_dim.x + thread_idx.x
    y = block_idx.y * block_dim.y + thread_idx.y
    z = block_idx.z * block_dim.z + thread_idx.z
    if x < nx and y < ny and z < nz:
        out[z * ny * nx + y * nx + x] += 1


class TestSequentialExecution:
    def test_every_thread_runs_once(self):
        n = 64
        out = np.full(n, -1.0)
        result = KernelExecutor().launch(_global_id_kernel, (out, n),
                                         LaunchConfig.make(4, 16))
        np.testing.assert_array_equal(out, np.arange(n, dtype=float))
        assert result.threads_run == 64
        assert result.blocks_run == 4
        assert result.mode == "sequential"

    def test_3d_grid_covers_domain_exactly_once(self):
        nx, ny, nz = 6, 5, 4
        out = np.zeros(nx * ny * nz)
        launch = LaunchConfig.make((2, 3, 2), (4, 2, 2))
        KernelExecutor().launch(_kernel_3d, (out, nx, ny, nz), launch)
        assert np.all(out == 1.0)

    def test_guard_threads_do_nothing(self):
        n = 10
        out = np.full(16, -1.0)
        KernelExecutor().launch(_global_id_kernel, (out, n), LaunchConfig.make(1, 16))
        assert np.all(out[n:] == -1.0)

    def test_plain_callable_accepted(self):
        out = np.zeros(4)

        def body(buf):
            buf[thread_idx.x] = 2.0

        KernelExecutor().launch(body, (out,), LaunchConfig.make(1, 4))
        assert np.all(out == 2.0)


class TestCooperativeExecution:
    def test_block_reduction_matches_numpy(self, rng):
        n, tb, blocks = 64, 16, 4
        a = rng.normal(size=n)
        sums = np.zeros(blocks)
        result = KernelExecutor().launch(
            _block_sum_kernel, (a, sums, n, tb), LaunchConfig.make(blocks, tb))
        assert result.mode == "cooperative"
        expected = a.reshape(blocks, tb).sum(axis=1)
        np.testing.assert_allclose(sums, expected, rtol=1e-12)
        assert result.counters.barriers > 0
        assert result.shared_bytes_per_block == tb * 8

    def test_forced_sequential_mode(self):
        out = np.zeros(8)
        result = KernelExecutor().launch(_global_id_kernel, (out, 8),
                                         LaunchConfig.make(1, 8), mode="sequential")
        assert result.mode == "sequential"

    def test_kernel_error_is_surfaced(self):
        @kernel
        def bad_kernel(a):
            barrier()
            raise ValueError("boom")

        with pytest.raises(LaunchError):
            KernelExecutor().launch(bad_kernel, (np.zeros(2),),
                                    LaunchConfig.make(1, 2), mode="cooperative")


class TestExecutorLimits:
    def test_total_thread_limit(self):
        small = KernelExecutor(max_total_threads=100)
        with pytest.raises(LaunchError):
            small.launch(_global_id_kernel, (np.zeros(1000), 1000),
                         LaunchConfig.make(10, 100))

    def test_unknown_mode(self):
        with pytest.raises(LaunchError):
            KernelExecutor().launch(_global_id_kernel, (np.zeros(4), 4),
                                    LaunchConfig.make(1, 4), mode="warp")

    def test_barrier_detection_heuristic(self):
        assert kernel_uses_barrier(_block_sum_kernel) is True
        assert kernel_uses_barrier(_global_id_kernel) is False

    def test_counters_dict(self):
        counters = ExecutionCounters()
        counters.record_atomic()
        counters.record_barrier()
        counters.record_thread()
        counters.record_block()
        assert counters.as_dict() == {"threads_run": 1, "blocks_run": 1,
                                      "barriers": 1, "atomics": 1}


class TestCooperativePool:
    """Semantics of the pooled cooperative executor (one worker pool + one
    reusable barrier processing every block of the grid)."""

    def test_multiblock_reduction_matches_numpy(self, rng):
        n, tb, blocks = 128, 16, 8
        a = rng.normal(size=n)
        sums = np.zeros(blocks)
        result = KernelExecutor().launch(
            _block_sum_kernel, (a, sums, n, tb), LaunchConfig.make(blocks, tb))
        assert result.mode == "cooperative"
        np.testing.assert_allclose(sums, a.reshape(blocks, tb).sum(axis=1),
                                   rtol=1e-12)
        # Every simulated thread ran exactly once, in every block.
        assert result.threads_run == blocks * tb
        assert result.blocks_run == blocks
        # _block_sum_kernel executes log2(tb) barriers in the loop + 1 final
        # barrier per thread; the executor's end-of-block lockstep wait is an
        # implementation detail and must NOT be counted.
        assert result.counters.barriers == blocks * tb * 5
        assert result.shared_bytes_per_block == tb * 8

    def test_pool_matches_sequential_for_plain_kernel(self):
        n = 64
        out_seq = np.full(n, -1.0)
        out_coop = np.full(n, -1.0)
        launch = LaunchConfig.make(4, 16)
        r_seq = KernelExecutor().launch(_global_id_kernel, (out_seq, n), launch,
                                        mode="sequential")
        r_coop = KernelExecutor().launch(_global_id_kernel, (out_coop, n),
                                         launch, mode="cooperative")
        np.testing.assert_array_equal(out_seq, out_coop)
        assert r_seq.threads_run == r_coop.threads_run == n
        assert r_seq.blocks_run == r_coop.blocks_run == 4

    def test_error_in_later_block_is_surfaced(self):
        @kernel
        def bad_in_block_two(a):
            if block_idx.x == 2 and thread_idx.x == 0:
                raise ValueError("boom in block 2")
            barrier()

        with pytest.raises(LaunchError, match="bad_in_block_two"):
            KernelExecutor().launch(bad_in_block_two, (np.zeros(2),),
                                    LaunchConfig.make(4, 4), mode="cooperative")

    def test_shared_alloc_is_race_free_at_wide_blocks(self, rng):
        """Regression: the check-then-insert shared allocation let two of a
        wide block's workers allocate distinct arrays, silently dropping one
        thread's partial sums (nondeterministic dot results at tb >= 128)."""
        from repro.kernels.babelstream.kernels import dot_kernel

        n, tb, blocks = 4096, 128, 4
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        expected = a @ b
        for _ in range(5):
            sums = np.zeros(blocks)
            KernelExecutor().launch(dot_kernel, (a, b, sums, n, tb),
                                    LaunchConfig.make(blocks, tb),
                                    mode="cooperative")
            np.testing.assert_allclose(sums.sum(), expected, rtol=1e-12)

    def test_counters_merge_batches_events(self):
        counters = ExecutionCounters()
        counters.merge(threads_run=7, blocks_run=2, barriers=3, atomics=11)
        counters.merge(atomics=1)
        assert counters.as_dict() == {"threads_run": 7, "blocks_run": 2,
                                      "barriers": 3, "atomics": 12}


class TestBarrierHeuristicCache:
    def test_result_cached_on_function_object(self, monkeypatch):
        @kernel
        def cached_probe(a):
            barrier()

        assert kernel_uses_barrier(cached_probe) is True
        # Second query must not re-run source inspection.
        import inspect as inspect_mod

        def exploding_getsource(fn):
            raise AssertionError("getsource re-ran despite the cache")

        monkeypatch.setattr(inspect_mod, "getsource", exploding_getsource)
        assert kernel_uses_barrier(cached_probe) is True

    def test_rewrapped_callable_shares_cache(self):
        def plain(a):
            a[thread_idx.x] = 1.0

        assert kernel_uses_barrier(plain) is False
        # Wrapping the same function in a fresh Kernel (what launch() does for
        # plain callables) must reuse the cached verdict.
        from repro.core.kernel import Kernel
        assert kernel_uses_barrier(Kernel(plain)) is False
        assert plain._repro_uses_barrier is False
