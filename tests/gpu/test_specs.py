"""Tests for the GPU specification registry (paper Table 1)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.gpu.specs import GPUSpec, H100_NVL, MI300A, get_gpu, list_gpus, register_gpu
from repro.harness.paper_data import TABLE1_HARDWARE


class TestPaperHardware:
    """The registry must reproduce the paper's Table 1 exactly."""

    @pytest.mark.parametrize("name", ["h100", "mi300a"])
    def test_table1_values(self, name):
        spec = get_gpu(name)
        paper = TABLE1_HARDWARE[name]
        assert spec.mem_bw_gbs == paper["bandwidth_gbs"]
        assert spec.fp32_tflops == paper["fp32_tflops"]
        assert spec.fp64_tflops == paper["fp64_tflops"]
        assert spec.memory_gib == paper["memory_gb"]

    def test_vendors(self):
        assert get_gpu("h100").is_nvidia
        assert get_gpu("mi300a").is_amd

    def test_warp_sizes(self):
        assert get_gpu("h100").warp_size == 32
        assert get_gpu("mi300a").warp_size == 64

    def test_mi300a_has_more_bandwidth_and_flops(self):
        h, m = get_gpu("h100"), get_gpu("mi300a")
        assert m.mem_bw_gbs > h.mem_bw_gbs
        assert m.fp64_tflops > h.fp64_tflops


class TestSpecDerived:
    def test_peak_flops_lookup(self, h100):
        assert h100.peak_flops("float64") == pytest.approx(30e12)
        assert h100.peak_flops("float32") == pytest.approx(60e12)

    def test_peak_flops_unknown(self, h100):
        with pytest.raises(ConfigurationError):
            h100.peak_flops("int8")

    def test_ridge_point(self, h100):
        ridge = h100.ridge_point("float64")
        assert ridge == pytest.approx(30e12 / 3.9e12, rel=1e-6)

    def test_memory_bytes(self, h100):
        assert h100.memory_bytes == int(94 * 1024 ** 3)

    def test_str_contains_name(self, mi300a):
        assert "MI300A" in str(mi300a)


class TestRegistry:
    def test_aliases(self):
        assert get_gpu("hopper") is H100_NVL
        assert get_gpu("mi300") is MI300A

    def test_passthrough(self, h100):
        assert get_gpu(h100) is h100

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_gpu("tpu-v5")

    def test_list_gpus_deduplicates_aliases(self):
        names = list_gpus()
        assert len(names) == len(set(names))
        assert "h100" in names and "mi300a" in names

    def test_register_custom(self):
        custom = GPUSpec(name="testgpu", full_name="Test GPU", vendor="nvidia",
                         memory_gib=16, mem_bw_gbs=500, fp32_tflops=10,
                         fp64_tflops=5, sm_count=20, warp_size=32)
        register_gpu(custom, "tg")
        assert get_gpu("tg") is custom
