"""Tests for the roofline model (Figure 2)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.gpu.roofline import Roofline, RooflinePoint, classify_workload


class TestRoofline:
    def test_attainable_memory_region(self):
        roof = Roofline("h100")
        ai = 0.1
        assert roof.attainable(ai, "float64") == pytest.approx(ai * 3.9e12)

    def test_attainable_compute_region(self):
        roof = Roofline("h100")
        assert roof.attainable(1000.0, "float64") == pytest.approx(30e12)

    def test_ridge_point_continuity(self):
        roof = Roofline("h100")
        ridge = roof.ridge_point("float64")
        assert roof.attainable(ridge, "float64") == pytest.approx(30e12, rel=1e-6)

    def test_precision_changes_roof(self):
        roof = Roofline("h100")
        assert roof.attainable(100, "float32") == pytest.approx(60e12)

    def test_negative_ai_rejected(self):
        with pytest.raises(ConfigurationError):
            Roofline("h100").attainable(-1.0)

    def test_roof_series_monotonic(self):
        roof = Roofline("mi300a")
        series = roof.roof_series("float64", points=32)
        ys = [y for _, y in series]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert len(series) == 32

    def test_roof_series_bad_range(self):
        with pytest.raises(ConfigurationError):
            Roofline("h100").roof_series(ai_range=(1.0, 0.5))

    def test_place_point(self):
        roof = Roofline("h100")
        point = roof.place("stencil", flops=1e9, bytes_moved=4e9, time_s=1e-3)
        assert point.arithmetic_intensity == pytest.approx(0.25)
        assert point.performance == pytest.approx(1e12)
        assert point.gflops == pytest.approx(1000.0)

    def test_place_invalid_inputs(self):
        roof = Roofline("h100")
        with pytest.raises(ConfigurationError):
            roof.place("x", flops=1, bytes_moved=1, time_s=0)
        with pytest.raises(ConfigurationError):
            roof.place("x", flops=1, bytes_moved=0, time_s=1)

    def test_efficiency_capped_at_one(self):
        roof = Roofline("h100")
        point = RooflinePoint("x", 0.1, 1e15)
        assert roof.efficiency(point) == 1.0


class TestClassification:
    def test_memory_bound(self):
        roof = Roofline("h100")
        point = RooflinePoint("stencil", 0.6, 1e12, precision="float64")
        assert classify_workload(point, roof) == "memory-bound"

    def test_compute_bound(self):
        roof = Roofline("h100")
        point = RooflinePoint("minibude", 50.0, 1e13, precision="float32")
        assert classify_workload(point, roof) == "compute-bound"

    def test_paper_fig2_regions(self, h100):
        """The four workloads land in the regions shown in Figure 2."""
        from repro.experiments.fig2_roofline import EXPECTED_REGION, run
        result = run(quick=True)
        assert result.all_passed
        table = result.tables[0]
        regions = {row["workload"]: row["region"] for row in table.rows}
        assert regions == EXPECTED_REGION
