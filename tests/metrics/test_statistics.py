"""Tests for run statistics (warm-up discard, repeats)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.statistics import (
    coefficient_of_variation,
    discard_warmup,
    summarize,
)


class TestDiscardWarmup:
    def test_drops_first_samples(self):
        assert discard_warmup([10, 1, 2, 3], warmup=1) == [1, 2, 3]

    def test_zero_warmup(self):
        assert discard_warmup([1, 2], warmup=0) == [1, 2]

    def test_all_discarded_rejected(self):
        with pytest.raises(ConfigurationError):
            discard_warmup([1, 2], warmup=2)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            discard_warmup([1], warmup=-1)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_warmup_applied(self):
        stats = summarize([100.0, 1.0, 1.0, 1.0], warmup=1)
        assert stats.mean == pytest.approx(1.0)
        assert stats.count == 3

    def test_single_sample_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_percentiles_ordered(self):
        stats = summarize(np.linspace(0, 1, 101))
        assert stats.p05 <= stats.median <= stats.p95

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert {"mean", "std", "min", "max", "median"} <= set(d)

    def test_jit_warmup_protocol(self):
        """The paper discards the first (JIT) iteration before averaging."""
        samples = [50.0] + [10.0] * 99
        assert summarize(samples, warmup=1).mean == pytest.approx(10.0)
        assert summarize(samples).mean > 10.0


class TestCoefficientOfVariation:
    def test_constant_series(self):
        assert coefficient_of_variation([3.0, 3.0, 3.0]) == 0.0

    def test_scales_with_spread(self):
        tight = coefficient_of_variation([10.0, 10.1, 9.9])
        wide = coefficient_of_variation([10.0, 15.0, 5.0])
        assert wide > tight
