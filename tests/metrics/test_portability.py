"""Tests for the performance-portability metric (Eq. 4)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.portability import (
    EfficiencyEntry,
    PortabilityResult,
    arithmetic_mean_phi,
    efficiency,
    harmonic_mean_phi,
    portability_from_entries,
)


class TestEfficiency:
    def test_throughput_metric(self):
        assert efficiency(90.0, 100.0) == pytest.approx(0.9)

    def test_time_metric(self):
        assert efficiency(200.0, 100.0, higher_is_better=False) == pytest.approx(0.5)

    def test_can_exceed_one(self):
        assert efficiency(110.0, 100.0) == pytest.approx(1.1)

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            efficiency(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            efficiency(1.0, -2.0)


class TestPhiMeans:
    def test_arithmetic_mean(self):
        assert arithmetic_mean_phi([0.8, 1.0, 1.2]) == pytest.approx(1.0)

    def test_harmonic_mean_below_arithmetic(self):
        values = [0.5, 1.0, 1.5]
        assert harmonic_mean_phi(values) < arithmetic_mean_phi(values)

    def test_harmonic_mean_zero_when_unsupported(self):
        assert harmonic_mean_phi([1.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            arithmetic_mean_phi([])
        with pytest.raises(ConfigurationError):
            harmonic_mean_phi([])

    def test_paper_table5_stencil_phi(self):
        """Table 5: stencil efficiencies 0.82/1.00/0.87/1.00 -> Φ = 0.92."""
        assert arithmetic_mean_phi([0.82, 1.00, 0.87, 1.00]) == pytest.approx(0.9225)

    def test_paper_table5_babelstream_phi(self):
        values = [1.01, 1.00, 1.02, 1.00, 1.01, 1.00, 1.01, 1.00, 0.78, 1.00]
        assert arithmetic_mean_phi(values) == pytest.approx(0.983, abs=0.03)


class TestPortabilityResult:
    def _samples(self):
        return [
            {"configuration": "fp32", "platform": "h100", "efficiency": 0.82},
            {"configuration": "fp64", "platform": "h100", "efficiency": 0.87},
            {"configuration": "fp32", "platform": "mi300a", "efficiency": 1.0},
            {"configuration": "fp64", "platform": "mi300a", "efficiency": 1.0},
        ]

    def test_from_entries(self):
        result = portability_from_entries("stencil", self._samples())
        assert result.workload == "stencil"
        assert len(result.entries) == 4
        assert result.phi == pytest.approx(0.9225)
        assert result.platforms == ["h100", "mi300a"]

    def test_by_platform_grouping(self):
        result = portability_from_entries("stencil", self._samples())
        groups = result.by_platform()
        assert len(groups["h100"]) == 2

    def test_rows_include_phi(self):
        rows = portability_from_entries("stencil", self._samples()).to_rows()
        assert rows[-1]["configuration"] == "Φ"
        assert rows[-1]["efficiency"] == pytest.approx(0.9225)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            portability_from_entries("x", [])

    def test_harmonic_available(self):
        result = portability_from_entries("stencil", self._samples())
        assert 0 < result.phi_harmonic <= result.phi
