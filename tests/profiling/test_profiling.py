"""Tests for the profiling substrate (counters, ncu, rocprof, sass)."""

import pytest

from repro.backends import get_backend
from repro.core.dtypes import DType
from repro.core.kernel import KernelModel, LaunchConfig
from repro.kernels.babelstream import babelstream_kernel_model
from repro.kernels.stencil import stencil_kernel_model, stencil_launch_config
from repro.profiling import (
    NcuReport,
    RocprofReport,
    SassComparison,
    collect_counters,
    compare_sass,
    format_metric_table,
)


def _stencil_run(backend="cuda", gpu="h100"):
    model = stencil_kernel_model(L=512, precision="float64")
    launch = stencil_launch_config(512, (512, 1, 1))
    return get_backend(backend).time(model, gpu, launch)


def _triad_compiled(backend, gpu="h100"):
    model = babelstream_kernel_model("triad", n=2 ** 25, precision="float64")
    launch = LaunchConfig.for_elements(2 ** 25, 1024)
    return get_backend(backend).compile(model, gpu, launch=launch)


class TestCounters:
    def test_collect_counters_basic_fields(self):
        counters = collect_counters(_stencil_run())
        assert counters.kernel_name == "seven_point_stencil"
        assert counters.duration_ms > 0
        assert counters.registers_per_thread == 21
        assert counters.load_global_per_thread == 7
        assert counters.store_global_per_thread == 1

    def test_arithmetic_intensity_hierarchy(self):
        counters = collect_counters(_stencil_run())
        # Cache filtering makes DRAM-level intensity the highest (Table 2).
        assert (counters.dram_arithmetic_intensity
                > counters.l2_arithmetic_intensity
                > counters.l1_arithmetic_intensity)

    def test_stencil_dram_intensity_matches_table2_scale(self):
        counters = collect_counters(_stencil_run())
        assert counters.dram_arithmetic_intensity == pytest.approx(0.62, rel=0.15)

    def test_throughput_percentages_bounded(self):
        counters = collect_counters(_stencil_run("mojo"))
        assert 0 <= counters.compute_throughput_pct <= 100
        assert 0 <= counters.memory_throughput_pct <= 100

    def test_as_dict(self):
        d = collect_counters(_stencil_run()).as_dict()
        assert {"duration_ms", "registers", "ldg", "stg", "backend"} <= set(d)


class TestNcuReport:
    def _report(self):
        report = NcuReport()
        report.add_run("mojo", _stencil_run("mojo"))
        report.add_run("cuda", _stencil_run("cuda"))
        return report

    def test_labels_and_lookup(self):
        report = self._report()
        assert report.labels == ["mojo", "cuda"]
        assert report.get("mojo").backend_name == "mojo"
        with pytest.raises(KeyError):
            report.get("hip")

    def test_rows_cover_table2_metrics(self):
        names = [name for name, _ in self._report().rows()]
        assert "Duration (ms)" in names
        assert "Registers" in names
        assert "L1 ai (FLOP/byte)" in names
        assert "Load Global (LDG)" in names

    def test_markdown_and_text_rendering(self):
        report = self._report()
        md = report.to_markdown()
        txt = report.to_text()
        assert md.startswith("| ncu metric |")
        assert "Registers" in md and "Registers" in txt
        assert "mojo" in md and "cuda" in md

    def test_format_metric_table(self):
        blob = format_metric_table([self._report(), self._report()])
        assert blob.count("ncu metric") == 2


class TestRocprof:
    def test_rows_and_csv(self):
        report = RocprofReport()
        run = get_backend("hip").time(
            stencil_kernel_model(L=512, precision="float64"), "mi300a",
            stencil_launch_config(512, (512, 1, 1)))
        row = report.add_run(run)
        assert row["Backend"] == "hip"
        assert row["DurationNs"] > 0
        csv = report.to_csv()
        assert csv.splitlines()[0].startswith("KernelName,")
        assert len(csv.splitlines()) == 2
        assert len(report) == 1


class TestSassComparison:
    def test_paper_observations_hold_for_triad(self):
        comparison = compare_sass(_triad_compiled("mojo"), _triad_compiled("cuda"))
        obs = comparison.observations
        assert obs["fewer_constant_loads"]
        assert obs["fewer_registers_more_int_ops"]
        assert obs["matching_global_accesses"]

    def test_text_rendering(self):
        comparison = compare_sass(_triad_compiled("mojo"), _triad_compiled("cuda"))
        text = comparison.to_text()
        assert "mojo" in text and "cuda" in text
        assert "LDG" in text

    def test_markdown_rendering(self):
        comparison = compare_sass(_triad_compiled("mojo"), _triad_compiled("cuda"))
        md = comparison.to_markdown()
        assert md.startswith("| instruction |")
        assert "registers/thread" in md

    def test_counts_accessor(self):
        comparison = compare_sass(_triad_compiled("mojo"), _triad_compiled("cuda"))
        ldg_mojo, ldg_cuda = comparison.counts("LDG")
        assert ldg_mojo == ldg_cuda == 2.0
