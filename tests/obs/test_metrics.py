"""Tests for the process-wide metrics registry (repro.obs.metrics)."""

import pytest

from repro.harness.runner import MeasurementProtocol
from repro.obs.metrics import (
    COUNTER_CATALOG,
    HISTOGRAM_CATALOG,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    registry,
    render_prometheus,
    reset_metrics,
    snapshot,
)

FAST = MeasurementProtocol(warmup=0, repeats=2)


class TestRegistry:
    def test_snapshot_zero_fills_full_catalog(self):
        reg = MetricsRegistry()
        snap = reg.snapshot()
        assert snap["schema"] == "repro.metrics-snapshot/v1"
        for name in COUNTER_CATALOG:
            assert snap["counters"][name] == 0.0
        for name in HISTOGRAM_CATALOG:
            hist = snap["histograms"][name]
            assert hist["count"] == 0 and hist["sum"] == 0.0
            assert hist["buckets"]["+Inf"] == 0

    def test_inc_bumps_bare_and_labelled_child(self):
        reg = MetricsRegistry()
        reg.inc("lint_diagnostics_total", rule="KV103")
        reg.inc("lint_diagnostics_total", rule="KV103")
        reg.inc("lint_diagnostics_total", rule="GR204")
        snap = reg.snapshot()
        assert snap["counters"]["lint_diagnostics_total"] == 3.0
        assert snap["counters"]['lint_diagnostics_total{rule="KV103"}'] == 2.0
        assert snap["counters"]['lint_diagnostics_total{rule="GR204"}'] == 1.0
        assert reg.counter("lint_diagnostics_total") == 3.0
        assert reg.counter("lint_diagnostics_total", rule="KV103") == 2.0

    def test_inc_zero_is_a_noop(self):
        reg = MetricsRegistry()
        reg.inc("graphopt_ops_fused_total", 0)
        assert reg.counter("graphopt_ops_fused_total") == 0.0
        assert "graphopt_ops_fused_total{}" not in reg.snapshot()["counters"]

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("queue_depth", 4)
        reg.set_gauge("queue_depth", 2, device="h100")
        snap = reg.snapshot()
        assert snap["gauges"]["queue_depth"] == 4.0
        assert snap["gauges"]['queue_depth{device="h100"}'] == 2.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        for value in (0.3, 0.7, 3.0, 99999.0):
            reg.observe("workload_run_latency_ms", value)
        hist = reg.snapshot()["histograms"]["workload_run_latency_ms"]
        assert hist["count"] == 4
        assert hist["min"] == 0.3 and hist["max"] == 99999.0
        assert hist["sum"] == pytest.approx(0.3 + 0.7 + 3.0 + 99999.0)
        assert hist["buckets"]["0.5"] == 1
        assert hist["buckets"]["1"] == 2
        assert hist["buckets"]["5"] == 3
        assert hist["buckets"]["+Inf"] == 4
        # cumulative counts never decrease along the bounds
        counts = [hist["buckets"][f"{b:g}"] for b in LATENCY_BUCKETS_MS]
        assert counts == sorted(counts)

    def test_labelled_histogram_child(self):
        reg = MetricsRegistry()
        reg.observe("workload_run_latency_ms", 2.0, workload="stencil")
        snap = reg.snapshot()
        child = snap["histograms"]['workload_run_latency_ms{workload="stencil"}']
        assert child["count"] == 1
        assert snap["histograms"]["workload_run_latency_ms"]["count"] == 1

    def test_reset_restores_zero_filled_catalog(self):
        reg = MetricsRegistry()
        reg.inc("retry_attempts_total", 5, site="x")
        reg.observe("workload_run_latency_ms", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"]["retry_attempts_total"] == 0.0
        assert 'retry_attempts_total{site="x"}' not in snap["counters"]
        assert snap["histograms"]["workload_run_latency_ms"]["count"] == 0


class TestPrometheusExposition:
    def test_render_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("fault_injections_fired_total", site="launch")
        reg.observe("workload_run_latency_ms", 3.0)
        text = reg.render_prometheus()
        assert "# TYPE fault_injections_fired_total counter" in text
        assert "fault_injections_fired_total 1" in text
        assert 'fault_injections_fired_total{site="launch"} 1' in text
        assert "# TYPE workload_run_latency_ms histogram" in text
        assert 'workload_run_latency_ms_bucket{le="+Inf"} 1' in text
        assert "workload_run_latency_ms_count 1" in text
        assert text.endswith("\n")

    def test_module_level_render(self):
        assert "# TYPE retry_attempts_total counter" in render_prometheus()


class TestInstrumentedSites:
    """The hook sites actually feed the process-wide registry."""

    def test_workload_run_observes_latency(self, stencil):
        reset_metrics()
        request = stencil.make_request(params={"L": 18}, protocol=FAST)
        stencil.run(request)
        hist = snapshot()["histograms"]["workload_run_latency_ms"]
        assert hist["count"] == 1
        child = snapshot()["histograms"].get(
            'workload_run_latency_ms{workload="stencil"}')
        assert child is not None and child["count"] == 1

    def test_compile_cache_counters(self, stencil):
        reset_metrics()
        request = stencil.make_request(params={"L": 18}, protocol=FAST)
        stencil.run(request)
        first = snapshot()["counters"]
        stencil.run(request)
        second = snapshot()["counters"]
        # a repeat run re-serves every kernel from the compile memo
        assert second["compile_cache_hits_total"] > first["compile_cache_hits_total"]
        assert (second["compile_cache_misses_total"]
                == first["compile_cache_misses_total"])

    def test_result_cache_counters(self, stencil):
        from repro.workloads.cache import ResultCache, run_cached

        reset_metrics()
        request = stencil.make_request(params={"L": 18}, protocol=FAST)
        cache = ResultCache()
        run_cached(request, cache=cache, workload=stencil)
        assert registry().counter("result_cache_misses_total") == 1.0
        run_cached(request, cache=cache, workload=stencil)
        assert registry().counter("result_cache_hits_total") == 1.0

    def test_tuning_db_counters(self, stencil):
        from repro.tuning.db import TuningDB

        reset_metrics()
        db = TuningDB()
        request = stencil.make_request(params={"L": 18}, protocol=FAST)
        assert db.get(request) is None
        assert registry().counter("tuning_db_misses_total") == 1.0

    def test_lint_diagnostics_counter(self):
        from repro.analysis.lint import run_lint

        reset_metrics()
        report = run_lint()
        total = registry().counter("lint_diagnostics_total")
        assert total == float(len(report.diagnostics))
