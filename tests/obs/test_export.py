"""Tests for the Chrome/Perfetto trace export (repro.obs.export)."""

import json

import pytest

from repro.harness.runner import MeasurementProtocol
from repro.obs import (
    COUNTER_CATALOG,
    TraceCollector,
    build_chrome_trace,
    install_trace_collector,
    modelled_vs_wall,
    observability_markdown,
    write_chrome_trace,
)
from repro.obs.metrics import reset_metrics, snapshot

FAST = MeasurementProtocol(warmup=0, repeats=2)


@pytest.fixture
def traced_run(stencil):
    """One traced stencil run: (collector, trace dict)."""
    request = stencil.make_request(params={"L": 18}, protocol=FAST)
    with install_trace_collector() as collector:
        stencil.run(request)
    return collector, build_chrome_trace(collector,
                                         metrics_snapshot=snapshot())


class TestChromeTrace:
    def test_event_schema(self, traced_run):
        _, trace = traced_run
        events = trace["traceEvents"]
        assert events
        assert trace["displayTimeUnit"] == "ms"
        for ev in events:
            assert {"name", "ph", "pid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
                assert isinstance(ev["tid"], int)

    def test_host_and_device_processes(self, traced_run):
        _, trace = traced_run
        events = trace["traceEvents"]
        pids = {ev["pid"] for ev in events if ev["ph"] != "M"}
        assert 1 in pids          # host spans
        assert pids - {1}         # at least one device context
        # every stream got a named lane
        lane_names = [ev for ev in events
                      if ev["ph"] == "M" and ev["name"] == "thread_name"
                      and ev["pid"] != 1]
        assert any(ev["args"]["name"].startswith("stream:")
                   for ev in lane_names)

    def test_nested_host_span_present(self, traced_run):
        _, trace = traced_run
        host = [ev for ev in trace["traceEvents"]
                if ev["ph"] == "X" and ev["pid"] == 1]
        assert any(ev["args"].get("parent_id") is not None for ev in host)
        assert any(ev["args"].get("parent_id") is None for ev in host)

    def test_metrics_snapshot_carries_full_catalog(self, traced_run):
        _, trace = traced_run
        counters = trace["metrics"]["counters"]
        for name in COUNTER_CATALOG:
            assert name in counters

    def test_other_data(self, traced_run):
        collector, trace = traced_run
        other = trace["otherData"]
        assert other["exporter"] == "repro.obs.export/v1"
        assert other["spans"] == len(collector.spans)
        assert other["contexts"] == len(collector.contexts)

    def test_written_file_is_loadable(self, traced_run, tmp_path):
        collector, _ = traced_run
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), collector)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert len(loaded["traceEvents"]) == len(written["traceEvents"])

    def test_graph_replay_expands_schedule(self, stencil):
        request = stencil.make_request(params={"L": 18}, protocol=FAST,
                                       optimize="all")
        with install_trace_collector() as collector:
            probe = stencil.tuning_probe(request)
            probe.replay()
        trace = build_chrome_trace(collector)
        cats = {ev.get("cat") for ev in trace["traceEvents"]}
        # the graph summary slice plus its expanded per-op children
        assert "graph" in cats
        assert any(str(c).startswith("graph.") for c in cats)
        expanded = [ev for ev in trace["traceEvents"]
                    if str(ev.get("cat", "")).startswith("graph.")]
        parent = next(ev for ev in trace["traceEvents"]
                      if ev.get("cat") == "graph")
        for ev in expanded:
            assert ev["ts"] >= parent["ts"]
            assert ev["args"]["graph"] == parent["name"]


class TestModelledVsWall:
    def test_rows_only_for_modelled_spans(self):
        collector = TraceCollector()
        with collector.span("with-model") as sp:
            sp.set_modelled(5.0)
        with collector.span("without-model"):
            pass
        with collector.span("zero-model") as sp:
            sp.set_modelled(0.0)
        rows = modelled_vs_wall(collector)
        assert [r["name"] for r in rows] == ["with-model"]
        row = rows[0]
        assert row["modelled_ms"] == 5.0
        assert row["error_pct"] == pytest.approx(
            (row["wall_ms"] - 5.0) / 5.0 * 100.0)


class TestObservabilityMarkdown:
    def test_section_with_fired_counters(self):
        reset_metrics()
        from repro.obs.metrics import inc, observe

        inc("retry_attempts_total", 2)
        observe("workload_run_latency_ms", 4.0)
        collector = TraceCollector()
        with collector.span("workload.run") as sp:
            sp.set_modelled(1.0)
        lines = observability_markdown(collector)
        text = "\n".join(lines)
        assert "## Observability" in text
        assert "| `retry_attempts_total` | 2 |" in text
        assert "workload_run_latency_ms`: n=1" in text
        assert "### Modelled vs wall time per span" in text
        assert "| `workload.run` |" in text

    def test_section_without_activity(self):
        reset_metrics()
        text = "\n".join(observability_markdown())
        assert "No counters fired in this process." in text
        assert "Modelled vs wall" not in text  # no collector given

    def test_row_cap_keeps_worst_errors(self):
        reset_metrics()
        collector = TraceCollector()
        for i in range(30):
            with collector.span(f"s{i}") as sp:
                sp.set_modelled(0.0001 * (i + 1))
        text = "\n".join(observability_markdown(collector))
        assert "Top 20 of 30 spans by |error|." in text
