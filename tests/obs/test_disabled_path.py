"""The disabled-path contract: no collector, no collector calls.

Tracing is off by default, and the instrumented hot paths (``Workload.run``,
``DeviceContext.synchronize``, ``DeviceGraph.replay``) must branch away on
the single ``_ACTIVE is None`` check without ever touching a collector.
These tests make every :class:`TraceCollector` entry point explode and then
exercise the instrumented paths — any consultation of the collector
machinery fails loudly.
"""

import numpy as np
import pytest

from repro.core.device import DeviceContext
from repro.core.dtypes import DType
from repro.core.layout import Layout
from repro.harness.runner import MeasurementProtocol
from repro.kernels.babelstream.kernels import copy_kernel
from repro.obs.trace import TraceCollector

FAST = MeasurementProtocol(warmup=0, repeats=2)


@pytest.fixture(autouse=True)
def _exploding_collector(monkeypatch):
    """Any touch of the span machinery raises while tracing is disabled."""
    def boom(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError(
            "TraceCollector consulted on the disabled path")

    for method in ("record", "begin", "finish", "span", "register_context"):
        monkeypatch.setattr(TraceCollector, method, boom)
    yield


def _captured_graph(ctx):
    n = 128
    buf_a = ctx.enqueue_create_buffer(DType.float32, n, label="a")
    buf_c = ctx.enqueue_create_buffer(DType.float32, n, label="c")
    a = buf_a.tensor(Layout.row_major(n), mut=False)
    c = buf_c.tensor(Layout.row_major(n), mut=True)
    with ctx.capture("copy") as graph:
        buf_a.copy_from_host(np.ones(n, dtype=np.float32))
        ctx.enqueue_function(copy_kernel, a, c, n,
                             grid_dim=(1,), block_dim=(n,))
        buf_c.copy_to_host()
    return graph


def test_workload_run_never_consults_collector(stencil):
    request = stencil.make_request(params={"L": 18}, protocol=FAST)
    result = stencil.run(request)
    assert result.verification.passed


def test_synchronize_never_consults_collector(ctx):
    n = 64
    buf = ctx.enqueue_create_buffer(DType.float64, n)
    buf.copy_from_host(np.zeros(n))
    ctx.synchronize()


def test_graph_replay_never_consults_collector(ctx):
    graph = _captured_graph(ctx)
    out = graph.replay()
    assert np.allclose(out["c"], 1.0)


def test_context_creation_never_registers():
    DeviceContext("h100")


def test_resilient_run_never_consults_collector(stencil):
    from repro.resilience import run_resilient

    request = stencil.make_request(params={"L": 18}, protocol=FAST)
    result = run_resilient(stencil, request, retry=2)
    assert result.provenance["resilience"]["attempts"] == 1
