"""Fixtures for the observability suite."""

import pytest

from repro.obs import trace
from repro.obs.metrics import reset_metrics
from repro.workloads import clear_result_cache, get_workload


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    """A trace collector must never leak across tests (or into the suite)."""
    assert trace._ACTIVE is None
    yield
    assert trace._ACTIVE is None


@pytest.fixture(autouse=True)
def _clean_metrics():
    """Counter assertions in this suite start from a zeroed registry."""
    reset_metrics()
    yield


@pytest.fixture(autouse=True)
def _clean_default_cache():
    clear_result_cache()
    yield
    clear_result_cache()


@pytest.fixture
def stencil():
    return get_workload("stencil")
