"""Tests for the host-side tracing spans (repro.obs.trace)."""

import threading

import pytest

from repro.core.device import DeviceContext
from repro.core.errors import ConfigurationError
from repro.harness.runner import MeasurementProtocol
from repro.obs import trace
from repro.obs.trace import (
    Span,
    TraceCollector,
    active_collector,
    install_trace_collector,
)

FAST = MeasurementProtocol(warmup=0, repeats=2)


def small_request(workload, **kwargs):
    return workload.make_request(params={"L": 18}, protocol=FAST, **kwargs)


class TestSpanNesting:
    def test_parent_child_links(self):
        collector = TraceCollector()
        with collector.span("outer") as outer:
            with collector.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.children == [inner]
        # completion order: inner closes first
        assert [s.name for s in collector.spans] == ["inner", "outer"]
        assert [s.name for s in collector.roots()] == ["outer"]

    def test_wall_and_modelled_durations(self):
        collector = TraceCollector()
        with collector.span("timed") as sp:
            sp.set_modelled(1.25)
        assert sp.wall_ms is not None and sp.wall_ms >= 0.0
        assert sp.modelled_ms == 1.25
        sp.set_modelled(None)  # None never clobbers an attribution
        assert sp.modelled_ms == 1.25

    def test_annotate_and_as_dict(self):
        collector = TraceCollector()
        with collector.span("s", gpu="h100") as sp:
            sp.annotate(source="search")
        payload = sp.as_dict()
        assert payload["args"] == {"gpu": "h100", "source": "search"}
        assert payload["name"] == "s"
        assert payload["error"] is None

    def test_error_is_recorded_and_reraised(self):
        collector = TraceCollector()
        with pytest.raises(ValueError):
            with collector.span("failing"):
                raise ValueError("boom")
        (sp,) = collector.spans
        assert sp.error == "ValueError: boom"
        assert sp.wall_ms is not None

    def test_threads_build_independent_trees(self):
        collector = TraceCollector()
        seen = {}

        def worker(tag):
            with collector.span(f"outer-{tag}"):
                with collector.span(f"inner-{tag}") as inner:
                    seen[tag] = inner

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in ("a", "b")]
        with collector.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans nest under their own thread's root, never under main
        for tag in ("a", "b"):
            parent = next(s for s in collector.spans
                          if s.name == f"outer-{tag}")
            assert parent.parent_id is None
            assert seen[tag].parent_id == parent.span_id

    def test_summary_aggregates_by_name(self):
        collector = TraceCollector()
        for _ in range(3):
            with collector.span("rep") as sp:
                sp.set_modelled(2.0)
        summary = collector.summary()
        assert summary["spans"] == 3
        assert summary["by_name"]["rep"]["count"] == 3
        assert summary["by_name"]["rep"]["modelled_ms"] == pytest.approx(6.0)


class TestInstall:
    def test_install_sets_and_clears_active(self):
        assert active_collector() is None
        with install_trace_collector() as collector:
            assert active_collector() is collector
        assert active_collector() is None

    def test_nesting_raises(self):
        with install_trace_collector():
            with pytest.raises(ConfigurationError):
                with install_trace_collector():
                    pass  # pragma: no cover

    def test_cleared_even_on_error(self):
        with pytest.raises(RuntimeError):
            with install_trace_collector():
                raise RuntimeError("escape")
        assert active_collector() is None

    def test_module_span_disabled_is_shared_noop(self):
        scope = trace.span("anything", key="value")
        assert scope is trace._NULL_SCOPE
        with scope:  # no collector consulted, nothing recorded
            pass

    def test_module_span_enabled_records(self):
        with install_trace_collector() as collector:
            with trace.span("via-module") as sp:
                assert isinstance(sp, Span)
        assert [s.name for s in collector.spans] == ["via-module"]


class TestWorkloadIntegration:
    def test_workload_run_span_tree(self, stencil):
        request = small_request(stencil)
        with install_trace_collector() as collector:
            result = stencil.run(request)
        assert result.verification.passed
        names = [s.name for s in collector.spans]
        assert "workload.run" in names
        run_span = next(s for s in collector.spans if s.name == "workload.run")
        assert run_span.parent_id is None
        assert run_span.args["workload"] == "stencil"
        # the analytic device time is attributed to the run span
        assert run_span.modelled_ms is not None and run_span.modelled_ms > 0
        assert run_span.wall_ms > 0
        # device drains nest under the run
        drains = [s for s in collector.spans if s.name == "device.drain"]
        assert drains
        assert all(s.parent_id is not None for s in drains)

    def test_contexts_registered_while_tracing(self, stencil):
        with install_trace_collector() as collector:
            stencil.run(small_request(stencil))
        assert collector.contexts
        ctx = collector.contexts[0]
        assert hasattr(ctx, "timeline")

    def test_register_context_dedups_on_identity(self):
        collector = TraceCollector()
        ctx = DeviceContext("h100")
        collector.register_context(ctx)
        collector.register_context(ctx)
        assert len(collector.contexts) == 1

    def test_graph_replay_span(self, ctx):
        import numpy as np

        from repro.core.dtypes import DType
        from repro.core.layout import Layout
        from repro.kernels.babelstream.kernels import copy_kernel

        n = 256
        buf_a = ctx.enqueue_create_buffer(DType.float32, n, label="a")
        buf_c = ctx.enqueue_create_buffer(DType.float32, n, label="c")
        a = buf_a.tensor(Layout.row_major(n), mut=False)
        c = buf_c.tensor(Layout.row_major(n), mut=True)
        with ctx.capture("copy") as graph:
            buf_a.copy_from_host(np.ones(n, dtype=np.float32))
            ctx.enqueue_function(copy_kernel, a, c, n,
                                 grid_dim=(1,), block_dim=(n,))
            buf_c.copy_to_host()
        with install_trace_collector() as collector:
            graph.replay()
        replay = next(s for s in collector.spans if s.name == "graph.replay")
        assert replay.args["graph"] == "copy"
        assert replay.modelled_ms is not None and replay.modelled_ms > 0
