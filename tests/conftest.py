"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DeviceContext
from repro.gpu.specs import get_gpu


@pytest.fixture
def h100():
    """The NVIDIA H100 spec used throughout the paper."""
    return get_gpu("h100")


@pytest.fixture
def mi300a():
    """The AMD MI300A spec used throughout the paper."""
    return get_gpu("mi300a")


@pytest.fixture
def ctx():
    """A fresh simulated device context on the H100."""
    return DeviceContext("h100")


@pytest.fixture
def amd_ctx():
    """A fresh simulated device context on the MI300A."""
    return DeviceContext("mi300a")


@pytest.fixture
def rng():
    """Seeded NumPy generator for reproducible test data."""
    return np.random.default_rng(20250614)
