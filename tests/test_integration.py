"""End-to-end integration tests across the public API."""

import numpy as np
import pytest

import repro
from repro import (
    DeviceContext,
    DType,
    Layout,
    block_dim,
    block_idx,
    ceildiv,
    kernel,
    thread_idx,
)
from repro.backends import get_backend, vendor_baseline_for
from repro.core.kernel import KernelModel, LaunchConfig


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.2.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_present(self):
        import repro.kernels
        import repro.experiments
        import repro.profiling
        import repro.metrics
        import repro.harness
        assert repro.kernels.stencil is not None
        assert len(repro.experiments.EXPERIMENTS) == 10


class TestListing1Workflow:
    """The paper's Listing 1 workflow expressed against this API."""

    def test_fill_one_kernel(self):
        nx = 1024
        block_size = 256
        num_blocks = ceildiv(nx, block_size)

        @kernel
        def fill_one(tensor, n):
            tid = block_idx.x * block_dim.x + thread_idx.x
            if tid < n:
                tensor[tid] = 1

        ctx = DeviceContext("h100")
        d_u = ctx.enqueue_create_buffer(DType.float32, nx)
        u_tensor = d_u.tensor(Layout.row_major(nx))
        ctx.enqueue_function(fill_one, u_tensor, nx,
                             grid_dim=num_blocks, block_dim=block_size)
        ctx.synchronize()
        assert np.all(d_u.copy_to_host() == 1.0)


class TestCrossWorkloadPortability:
    """The paper's headline claims, checked through the public API."""

    def test_same_kernel_source_runs_on_both_vendors(self):
        from repro.kernels.stencil import verify_stencil_kernel
        assert verify_stencil_kernel(L=10, gpu="h100") < 1e-12
        assert verify_stencil_kernel(L=10, gpu="mi300a") < 1e-12

    def test_memory_bound_parity_on_amd_gap_on_nvidia(self):
        from repro.kernels.stencil import run_stencil
        h_mojo = run_stencil(L=512, backend="mojo", gpu="h100", verify=False, iterations=3)
        h_cuda = run_stencil(L=512, backend="cuda", gpu="h100", verify=False, iterations=3)
        a_mojo = run_stencil(L=512, backend="mojo", gpu="mi300a", verify=False, iterations=3)
        a_hip = run_stencil(L=512, backend="hip", gpu="mi300a", verify=False, iterations=3)
        assert h_mojo.bandwidth_gbs < h_cuda.bandwidth_gbs
        assert a_mojo.bandwidth_gbs == pytest.approx(a_hip.bandwidth_gbs, rel=0.05)

    def test_vendor_baseline_selection(self):
        assert vendor_baseline_for("h100").name == "cuda"
        assert vendor_baseline_for("mi300a").name == "hip"

    def test_backend_timing_consistency_with_metric_equations(self):
        """Bandwidth computed via Eq. 2 equals traffic divided by model time."""
        from repro.kernels.babelstream import babelstream_kernel_model, operation_bytes
        n = 2 ** 24
        model = babelstream_kernel_model("triad", n=n, precision="float64")
        run = get_backend("cuda").time(model, "h100", LaunchConfig.for_elements(n, 1024))
        expected = operation_bytes("triad", n, "float64") / run.timing.kernel_time_s / 1e9
        from repro.kernels.babelstream import operation_bandwidth_gbs
        assert operation_bandwidth_gbs("triad", n, "float64",
                                       run.timing.kernel_time_s) == pytest.approx(expected)


class TestFullPipelineSmoke:
    def test_profile_report_from_public_api(self):
        from repro.kernels.stencil import stencil_kernel_model, stencil_launch_config
        from repro.profiling import NcuReport
        report = NcuReport()
        model = stencil_kernel_model(L=512, precision="float64")
        launch = stencil_launch_config(512, (512, 1, 1))
        for backend in ("mojo", "cuda"):
            report.add_run(backend, get_backend(backend).time(model, "h100", launch))
        text = report.to_text()
        assert "Registers" in text

    def test_experiment_markdown_has_tables_and_checks(self):
        from repro.experiments import run_experiment
        md = run_experiment("fig5").to_markdown()
        assert "| instruction |" in md or "instruction" in md
        assert "Paper comparison" in md
