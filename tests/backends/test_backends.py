"""Tests for the Mojo/CUDA/HIP backend models."""

import pytest

from repro.backends import (
    CUDABackend,
    HIPBackend,
    MojoBackend,
    get_backend,
    list_backends,
    register_backend,
    vendor_baseline_for,
)
from repro.backends.base import Backend
from repro.core.dtypes import DType
from repro.core.errors import ConfigurationError, UnsupportedBackendError
from repro.core.kernel import KernelModel, LaunchConfig


def _model(**kw):
    defaults = dict(name="k", dtype=DType.float64, loads_global=2,
                    stores_global=1, flops=8, scalar_args=2, working_values=16)
    defaults.update(kw)
    return KernelModel(**defaults)


class TestRegistry:
    def test_known_backends(self):
        assert set(list_backends()) == {"mojo", "cuda", "hip"}

    def test_lookup_and_passthrough(self):
        mojo = get_backend("mojo")
        assert isinstance(mojo, MojoBackend)
        assert get_backend(mojo) is mojo
        assert get_backend("MOJO") is mojo

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            get_backend("sycl")

    def test_vendor_baseline(self):
        assert isinstance(vendor_baseline_for("h100"), CUDABackend)
        assert isinstance(vendor_baseline_for("mi300a"), HIPBackend)

    def test_register_custom(self):
        class Custom(Backend):
            name = "custom"
        register_backend(Custom())
        assert get_backend("custom").name == "custom"


class TestVendorSupport:
    def test_mojo_supports_both_vendors(self):
        mojo = get_backend("mojo")
        assert mojo.supports("h100") and mojo.supports("mi300a")
        assert mojo.portable

    def test_cuda_is_nvidia_only(self):
        cuda = get_backend("cuda")
        assert cuda.supports("h100") and not cuda.supports("mi300a")
        with pytest.raises(UnsupportedBackendError):
            cuda.compile(_model(), "mi300a")

    def test_hip_is_amd_only(self):
        hip = get_backend("hip")
        assert hip.supports("mi300a") and not hip.supports("h100")
        with pytest.raises(UnsupportedBackendError):
            hip.time(_model(), "h100", LaunchConfig.for_elements(1024, 256))

    def test_fast_math_availability(self):
        assert get_backend("cuda").fast_math_available
        assert get_backend("hip").fast_math_available
        assert not get_backend("mojo").fast_math_available


class TestCompilationDifferences:
    """The lowering differences that drive the paper's Tables 2-3 / Figure 5."""

    def _compile(self, backend, gpu="h100", **model_kw):
        launch = LaunchConfig.for_elements(2 ** 20, 1024)
        return get_backend(backend).compile(_model(**model_kw), gpu, launch=launch)

    def test_mojo_uses_more_registers_than_cuda(self):
        stencil = dict(loads_global=7, stores_global=1, flops=13, working_values=18)
        mojo = self._compile("mojo", **stencil)
        cuda = self._compile("cuda", **stencil)
        assert mojo.registers_per_thread > cuda.registers_per_thread

    def test_mojo_registers_match_table2(self):
        stencil = dict(loads_global=7, stores_global=1, flops=13, working_values=18)
        assert self._compile("mojo", **stencil).registers_per_thread == 24
        assert self._compile("cuda", **stencil).registers_per_thread == 21

    def test_mojo_promotes_constants(self):
        mojo = self._compile("mojo")
        cuda = self._compile("cuda")
        assert mojo.uses_constant_memory and not cuda.uses_constant_memory
        assert mojo.instruction_mix["LDC"] < cuda.instruction_mix["LDC"]

    def test_mojo_fast_math_request_ignored(self):
        launch = LaunchConfig.for_elements(2 ** 20, 1024)
        compiled = get_backend("mojo").compile(_model(divides=10), "h100",
                                               launch=launch, fast_math=True)
        assert compiled.fast_math is False

    def test_cuda_fast_math_honoured(self):
        launch = LaunchConfig.for_elements(2 ** 20, 1024)
        compiled = get_backend("cuda").compile(_model(divides=10), "h100",
                                               launch=launch, fast_math=True)
        assert compiled.fast_math is True

    def test_mojo_atomics_cas_on_amd_native_on_nvidia(self):
        nvidia = get_backend("mojo").compile(_model(atomics=6), "h100")
        amd = get_backend("mojo").compile(_model(atomics=6), "mi300a")
        assert nvidia.atomic_mode == "native"
        assert amd.atomic_mode == "cas"

    def test_vendor_baselines_use_native_atomics(self):
        assert get_backend("cuda").compile(_model(atomics=6), "h100").atomic_mode == "native"
        assert get_backend("hip").compile(_model(atomics=6), "mi300a").atomic_mode == "native"


class TestTiming:
    def test_time_returns_backend_run(self, h100):
        run = get_backend("mojo").time(_model(), h100,
                                       LaunchConfig.for_elements(2 ** 22, 1024))
        assert run.backend_name == "mojo"
        assert run.kernel_time_ms > 0
        assert run.achieved_bandwidth_gbs > 0
        assert run.gpu.name == "h100"

    def test_block_size_heuristics(self):
        for backend in ("mojo", "cuda"):
            be = get_backend(backend)
            assert be.default_block_size("h100", kernel_kind="stencil") == 512
            assert be.default_block_size("h100") == 1024

    def test_dot_grid_heuristics_differ(self):
        n = 2 ** 25
        cuda_blocks = get_backend("cuda").dot_num_blocks("h100", n, 1024)
        mojo_blocks = get_backend("mojo").dot_num_blocks("h100", n, 1024)
        assert cuda_blocks == 4 * 132        # multiprocessor-count heuristic
        assert mojo_blocks != cuda_blocks    # portable heuristic
        hip_blocks = get_backend("hip").dot_num_blocks("mi300a", n, 1024)
        assert hip_blocks == 4 * 228
