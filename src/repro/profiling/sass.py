"""Instruction-mix ("SASS") comparison between backends (Figure 5).

Figure 5 of the paper puts the Mojo and CUDA SASS of the BabelStream Triad
kernel side by side and draws three observations: Mojo emits fewer constant
loads, Mojo shows fewer live registers but more integer adds (IADD3), and the
global load/store counts match.  This module renders the same comparison from
the compiled kernels' instruction mixes and checks those observations
programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.compiler import CompiledKernel, Opcode

__all__ = ["SassComparison", "compare_sass"]

#: opcodes shown in the side-by-side listing, in display order
_DISPLAY_OPCODES = (
    Opcode.LDG, Opcode.STG, Opcode.LDC, Opcode.MOV, Opcode.FFMA, Opcode.FADD,
    Opcode.FMUL, Opcode.FDIV, Opcode.MUFU, Opcode.IADD3, Opcode.IMAD,
    Opcode.ISETP, Opcode.BRA, Opcode.BAR, Opcode.LDS, Opcode.STS,
    Opcode.ATOM, Opcode.ATOM_CAS, Opcode.LDL, Opcode.STL,
)


@dataclass
class SassComparison:
    """Side-by-side instruction mix of two compiled kernels."""

    left: CompiledKernel
    right: CompiledKernel

    # ------------------------------------------------------------------ query
    def counts(self, opcode: str) -> Tuple[float, float]:
        """Per-thread counts of *opcode* in (left, right)."""
        return (self.left.instruction_mix.get(opcode, 0.0),
                self.right.instruction_mix.get(opcode, 0.0))

    @property
    def observations(self) -> Dict[str, bool]:
        """The paper's three Figure-5 observations, evaluated on this pair.

        Keys (with ``left`` playing Mojo's role and ``right`` CUDA's):

        * ``fewer_constant_loads`` — left emits fewer LDC operations.
        * ``fewer_registers_more_int_ops`` — left uses no more registers than
          right would suggest from its extra integer traffic (i.e. left has
          more IADD3/IMAD while not holding more live registers than right
          plus a small tolerance).
        * ``matching_global_accesses`` — LDG and STG counts agree.
        """
        ldc_l, ldc_r = self.counts(Opcode.LDC)
        iadd_l, iadd_r = self.counts(Opcode.IADD3)
        imad_l, imad_r = self.counts(Opcode.IMAD)
        ldg_l, ldg_r = self.counts(Opcode.LDG)
        stg_l, stg_r = self.counts(Opcode.STG)
        return {
            "fewer_constant_loads": ldc_l < ldc_r,
            "fewer_registers_more_int_ops": (
                (iadd_l + imad_l) > (iadd_r + imad_r)
            ),
            "matching_global_accesses": (
                abs(ldg_l - ldg_r) < 1e-9 and abs(stg_l - stg_r) < 1e-9
            ),
        }

    # -------------------------------------------------------------- rendering
    def to_text(self) -> str:
        """Render the two listings side by side."""
        left_name = f"{self.left.backend_name} ({self.left.kernel_name})"
        right_name = f"{self.right.backend_name} ({self.right.kernel_name})"
        width = 34
        lines = [f"{left_name:<{width}}  {right_name}",
                 f"{'-' * len(left_name):<{width}}  {'-' * len(right_name)}"]
        lines.append(
            f"{'registers: ' + str(self.left.registers_per_thread):<{width}}  "
            f"registers: {self.right.registers_per_thread}")
        for opcode in _DISPLAY_OPCODES:
            l, r = self.counts(opcode)
            if l == 0 and r == 0:
                continue
            lines.append(f"{opcode + ' x' + format(l, '.1f'):<{width}}  "
                         f"{opcode} x{r:.1f}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a markdown table (opcode, left count, right count)."""
        header = ["instruction", self.left.backend_name, self.right.backend_name]
        lines = ["| " + " | ".join(header) + " |", "|---|---|---|"]
        lines.append(f"| registers/thread | {self.left.registers_per_thread} "
                     f"| {self.right.registers_per_thread} |")
        for opcode in _DISPLAY_OPCODES:
            l, r = self.counts(opcode)
            if l == 0 and r == 0:
                continue
            lines.append(f"| {opcode} | {l:.1f} | {r:.1f} |")
        return "\n".join(lines)


def compare_sass(left: CompiledKernel, right: CompiledKernel) -> SassComparison:
    """Convenience constructor for a :class:`SassComparison`."""
    return SassComparison(left, right)
