"""Nsight-Compute-style report objects (Tables 2 and 3 of the paper).

``ncu`` presents per-kernel sections (speed-of-light throughput, memory
workload, launch statistics).  :class:`NcuReport` collects the same quantities
for one or more kernels and renders side-by-side comparison tables in the
paper's layout: one column per (kernel, programming model) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backends.base import BackendRun
from .counters import CounterSet, collect_counters

__all__ = ["NcuReport", "format_metric_table"]


@dataclass
class NcuReport:
    """A collection of profiled kernels, renderable as a comparison table."""

    title: str = "Nsight Compute CLI (ncu) report"
    entries: List[Tuple[str, CounterSet]] = field(default_factory=list)

    # ------------------------------------------------------------------ build
    def add_run(self, label: str, run: BackendRun) -> CounterSet:
        """Profile a backend run and add it under *label*."""
        counters = collect_counters(run)
        self.entries.append((label, counters))
        return counters

    def add_counters(self, label: str, counters: CounterSet) -> None:
        self.entries.append((label, counters))

    # ------------------------------------------------------------------ query
    @property
    def labels(self) -> List[str]:
        return [label for label, _ in self.entries]

    def get(self, label: str) -> CounterSet:
        for lab, counters in self.entries:
            if lab == label:
                return counters
        raise KeyError(f"no profiled entry labelled {label!r}")

    # ------------------------------------------------------------- rendering
    def rows(self) -> List[Tuple[str, List[str]]]:
        """(metric name, values per column) rows in the paper's Table 2/3 order."""
        def fmt(value, pattern="{:.2f}"):
            if value is None:
                return "-"
            return pattern.format(value)

        metric_rows = [
            ("Duration (ms)", lambda c: fmt(c.duration_ms, "{:.3f}")),
            ("Compute (SM) Throughput (%)", lambda c: fmt(c.compute_throughput_pct, "{:.1f}")),
            ("Memory Throughput (%)", lambda c: fmt(c.memory_throughput_pct, "{:.1f}")),
            ("L1 ai (FLOP/byte)", lambda c: fmt(c.l1_arithmetic_intensity)),
            ("L2 ai (FLOP/byte)", lambda c: fmt(c.l2_arithmetic_intensity)),
            ("L3 ai (FLOP/byte)", lambda c: fmt(c.dram_arithmetic_intensity)),
            ("L1-3 Perf (FLOP/s)", lambda c: fmt(c.flops_per_second, "{:.2e}")),
            ("Registers", lambda c: fmt(c.registers_per_thread, "{:.0f}")),
            ("Load Global (LDG)", lambda c: fmt(c.load_global_per_thread, "{:.0f}")),
            ("Store Global (STG)", lambda c: fmt(c.store_global_per_thread, "{:.0f}")),
        ]
        return [(name, [getter(c) for _, c in self.entries])
                for name, getter in metric_rows]

    def to_markdown(self) -> str:
        """Render the report as a GitHub-flavoured markdown table."""
        header = ["ncu metric"] + self.labels
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "|".join(["---"] * len(header)) + "|"]
        for name, values in self.rows():
            lines.append("| " + " | ".join([name] + values) + " |")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Render the report as an aligned plain-text table."""
        header = ["ncu metric"] + self.labels
        table = [header] + [[name] + values for name, values in self.rows()]
        widths = [max(len(str(row[i])) for row in table) for i in range(len(header))]
        out = [self.title, "=" * len(self.title)]
        for row in table:
            out.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(out)


def format_metric_table(reports: Sequence[NcuReport]) -> str:
    """Concatenate several reports into one text blob."""
    return "\n\n".join(r.to_text() for r in reports)
