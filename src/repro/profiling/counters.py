"""Profiling counters collected from compiled kernels and the timing model.

The paper's Tables 2 and 3 report Nsight Compute metrics: kernel duration,
compute (SM) and memory throughput percentages, arithmetic intensity at the
L1/L2/DRAM levels, achieved FLOP/s, registers per thread and global
load/store counts.  :class:`CounterSet` is the device-neutral container for
those quantities and :func:`collect_counters` produces one from a backend run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..backends.base import BackendRun
from ..core.compiler import CompiledKernel, Opcode
from ..gpu.timing import TimingBreakdown, estimate_cache_traffic

__all__ = ["CounterSet", "collect_counters"]


@dataclass
class CounterSet:
    """One kernel's worth of profiling counters."""

    kernel_name: str
    backend_name: str
    gpu_name: str
    duration_ms: float
    compute_throughput_pct: float
    memory_throughput_pct: float
    #: arithmetic intensity (FLOP/byte) at each cache level
    l1_arithmetic_intensity: float
    l2_arithmetic_intensity: float
    dram_arithmetic_intensity: float
    #: achieved floating-point rate in FLOP/s
    flops_per_second: float
    registers_per_thread: int
    #: global loads / stores per thread (element granularity)
    load_global_per_thread: float
    store_global_per_thread: float
    #: total traffic in bytes at each level
    l1_bytes: float
    l2_bytes: float
    dram_bytes: float
    total_flops: float
    atomic_ops: float = 0.0
    occupancy: float = 0.0
    spilled: bool = False
    uses_constant_memory: bool = False
    instruction_mix: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (used by CSV emission and reports)."""
        out = {
            "kernel": self.kernel_name,
            "backend": self.backend_name,
            "gpu": self.gpu_name,
            "duration_ms": self.duration_ms,
            "compute_throughput_pct": self.compute_throughput_pct,
            "memory_throughput_pct": self.memory_throughput_pct,
            "l1_ai": self.l1_arithmetic_intensity,
            "l2_ai": self.l2_arithmetic_intensity,
            "dram_ai": self.dram_arithmetic_intensity,
            "flops_per_second": self.flops_per_second,
            "registers": self.registers_per_thread,
            "ldg": self.load_global_per_thread,
            "stg": self.store_global_per_thread,
            "occupancy": self.occupancy,
            "atomics": self.atomic_ops,
        }
        return out


def collect_counters(run: BackendRun) -> CounterSet:
    """Build a :class:`CounterSet` from a compiled+timed backend run."""
    compiled: CompiledKernel = run.compiled
    timing: TimingBreakdown = run.timing
    model = compiled.model

    cache = estimate_cache_traffic(compiled, timing.active_threads)
    l1_bytes = cache["l1_bytes"]
    l2_bytes = cache["l2_bytes"]
    dram_bytes = timing.dram_bytes
    flops = timing.raw_flops

    def _ai(bytes_level: float) -> float:
        return flops / bytes_level if bytes_level > 0 else float("inf")

    return CounterSet(
        kernel_name=compiled.kernel_name,
        backend_name=compiled.backend_name,
        gpu_name=run.gpu.name,
        duration_ms=timing.kernel_time_ms,
        compute_throughput_pct=timing.compute_throughput_pct,
        memory_throughput_pct=timing.memory_throughput_pct,
        l1_arithmetic_intensity=_ai(l1_bytes),
        l2_arithmetic_intensity=_ai(l2_bytes),
        dram_arithmetic_intensity=_ai(dram_bytes),
        flops_per_second=flops / timing.kernel_time_s if timing.kernel_time_s > 0 else 0.0,
        registers_per_thread=compiled.registers_per_thread,
        load_global_per_thread=model.loads_global,
        store_global_per_thread=model.stores_global,
        l1_bytes=l1_bytes,
        l2_bytes=l2_bytes,
        dram_bytes=dram_bytes,
        total_flops=flops,
        atomic_ops=timing.atomic_ops,
        occupancy=timing.occupancy.occupancy,
        spilled=compiled.spilled,
        uses_constant_memory=compiled.uses_constant_memory,
        instruction_mix=dict(compiled.instruction_mix),
    )
