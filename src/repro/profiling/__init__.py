"""Profiler substrate: ncu-style reports, rocprof CSV, SASS comparisons."""

from .counters import CounterSet, collect_counters
from .ncu import NcuReport, format_metric_table
from .rocprof import RocprofReport
from .sass import SassComparison, compare_sass

__all__ = [
    "CounterSet", "collect_counters",
    "NcuReport", "format_metric_table",
    "RocprofReport",
    "SassComparison", "compare_sass",
]
