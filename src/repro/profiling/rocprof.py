"""rocprof-style CSV output for AMD runs.

The paper notes that profiling Mojo code with AMD's ``rocprof`` was only
possible for AOT-compiled binaries and that no officially supported Mojo
tooling existed; the HIP baselines, however, are profiled with rocprof's CSV
output.  This module produces the equivalent CSV rows from simulated runs so
AMD-side experiments have a profiler artifact too.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List

from ..backends.base import BackendRun
from .counters import CounterSet, collect_counters

__all__ = ["RocprofReport"]

#: column order of the emitted CSV (subset of rocprof's kernel trace columns)
_CSV_COLUMNS = (
    "KernelName", "gpu", "Backend", "DurationNs", "VGPRs", "LDSBytes",
    "FetchSizeBytes", "WriteSizeBytes", "MemUnitBusyPct", "VALUUtilizationPct",
    "AtomicOps",
)


@dataclass
class RocprofReport:
    """Accumulates kernel rows and serialises them as rocprof-like CSV."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_run(self, run: BackendRun) -> Dict[str, object]:
        """Profile a run and append a CSV row for it."""
        counters: CounterSet = collect_counters(run)
        model = run.compiled.model
        sizeof = model.dtype.sizeof
        active = run.timing.active_threads
        row = {
            "KernelName": counters.kernel_name,
            "gpu": counters.gpu_name,
            "Backend": counters.backend_name,
            "DurationNs": int(counters.duration_ms * 1e6),
            "VGPRs": counters.registers_per_thread,
            "LDSBytes": run.compiled.shared_bytes_per_block,
            "FetchSizeBytes": int(model.loads_global * sizeof * active),
            "WriteSizeBytes": int(model.stores_global * sizeof * active),
            "MemUnitBusyPct": round(counters.memory_throughput_pct, 1),
            "VALUUtilizationPct": round(counters.compute_throughput_pct, 1),
            "AtomicOps": int(counters.atomic_ops),
        }
        self.rows.append(row)
        return row

    def to_csv(self) -> str:
        """Serialise all rows as a CSV string."""
        buf = io.StringIO()
        buf.write(",".join(_CSV_COLUMNS) + "\n")
        for row in self.rows:
            buf.write(",".join(str(row.get(col, "")) for col in _CSV_COLUMNS) + "\n")
        return buf.getvalue()

    def __len__(self) -> int:
        return len(self.rows)
