"""Graph compiler: optimizing passes and a lowering tier for DeviceGraphs.

The compilation stack the paper's thesis calls for, applied to the captured
graph IR: :func:`optimize_graph` runs the pass pipeline (kernel fusion,
transfer/memset elision, invariant-transfer hoisting) over a
:class:`~repro.core.device.DeviceGraph`, and :mod:`repro.graphopt.lower`
compiles fused vector-safe kernel bodies into NumPy whole-array slicing for
the executor's ``mode="lowered"`` dispatch.

Entry points
------------
* ``optimize_graph(graph, passes="all")`` -> ``(optimized_graph, report)``
* ``lower_launch(kern, args, launch)`` -> compiled entry or ``None``
* ``RunRequest(optimize="all")`` opts a workload's captured graphs in
* ``repro graph <workload> --passes ...`` inspects what the passes did
"""

from .lower import (LoweringUnsupported, lower_launch, lower_source,
                    lowering_report)
from .passes import GraphOptReport, PASS_NAMES, optimize_graph, parse_passes
from .report import GraphOptBenchReport, graphopt_report

__all__ = [
    "GraphOptBenchReport",
    "GraphOptReport",
    "LoweringUnsupported",
    "PASS_NAMES",
    "graphopt_report",
    "lower_launch",
    "lower_source",
    "lowering_report",
    "optimize_graph",
    "parse_passes",
]
