"""Optimizing passes over captured :class:`~repro.core.device.DeviceGraph`.

The graph compiler's middle end.  Each pass consumes an ordered op list (the
graph IR recorded at capture) and produces a rewritten list; the pipeline
then re-lowers the result through :meth:`DeviceGraph.rewritten` into fresh
replay steps and a new cached makespan.  Three passes exist, applied in the
canonical order ``elide -> fuse -> hoist``:

``elide``
    Drop dead and redundant data movement: an H2D copy or memset whose
    buffer nothing reads afterwards (the optimization form of racecheck's
    ``GR203`` *warning*), a memset whose buffer is fully overwritten before
    any read, and D2H downloads the caller explicitly discards via
    ``drop_outputs=``.  Elision cascades to a fixpoint — dropping a dead
    download can make its upstream upload dead too.

``fuse``
    Merge runs of *adjacent* vector-safe kernels on one stream that share a
    buffer and an identical launch into a single fused kernel, so a replay
    pays one lane-set sweep (one state bind, one geometry fetch, one thunk)
    instead of N.  Legality comes from the PR-7 analyses: both bodies must
    be lockstep-safe (:func:`~repro.gpu.vector_executor.kernel_vector_safe`,
    inference allowed) and barrier-free, the follower must carry no event
    waits (the leader's waits transfer to the fused op), and the launch must
    fit a single lane chunk (:func:`~repro.gpu.vector_executor.single_chunk`)
    — chunked execution interleaves part bodies per chunk, which is not
    equivalent to running each part over the whole grid in sequence.
    Kernels with barriers/shared memory (e.g. the BabelStream dot reduction)
    and cross-stream neighbours never fuse.

``hoist``
    Pin replay-invariant uploads: an H2D op whose buffer has no other
    writer in the graph (and no earlier reader) is executed once at
    optimization time and tombstoned, so replays stop paying its transfer.
    Opt-in via ``pin=`` — binding a pinned label at replay raises, and the
    pass refuses labels whose upload is not provably invariant.

Rewrites never mutate the input graph: modified ops are cloned, removed ops
stay in the rewritten list as *tombstones* (``meta["elided"]`` plus a
``meta["graphopt"]`` provenance record naming the pass and action), which
keeps inspection honest (``repro graph`` shows what was cut) and lets the
race detector skip them while still crediting their reads — an elided D2H
must not re-trigger GR203 on the upload that fed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.racecheck import op_accesses
from ..core.errors import AnalysisError, ConfigurationError
from ..core.kernel import Kernel
from ..gpu.executor import kernel_uses_barrier
from ..gpu.vector_executor import kernel_vector_safe, single_chunk
from ..obs import metrics as _obs_metrics

__all__ = ["GraphOptReport", "PASS_NAMES", "optimize_graph", "parse_passes"]

#: canonical pass order (elision first widens fusion adjacency; hoisting
#: last sees the final set of live uploads)
PASS_NAMES = ("elide", "fuse", "hoist")


@dataclass
class GraphOptReport:
    """What the pipeline did to one graph, for CLI dumps and tests."""

    graph: str
    optimized: str
    passes: Tuple[str, ...]
    ops_before: int = 0
    ops_after: int = 0
    kernels_before: int = 0
    kernels_after: int = 0
    fused: List[dict] = field(default_factory=list)
    elided: List[dict] = field(default_factory=list)
    pinned: List[str] = field(default_factory=list)
    makespan_before_ms: float = 0.0
    makespan_after_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "graph": self.graph,
            "optimized": self.optimized,
            "passes": list(self.passes),
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "kernels_before": self.kernels_before,
            "kernels_after": self.kernels_after,
            "fused": list(self.fused),
            "elided": list(self.elided),
            "pinned": list(self.pinned),
            "makespan_before_ms": self.makespan_before_ms,
            "makespan_after_ms": self.makespan_after_ms,
        }


def parse_passes(passes) -> Tuple[str, ...]:
    """Normalise a pass selection into a canonical-order tuple.

    Accepts ``"all"``, ``"none"``, a comma-separated string or an iterable
    of pass names; unknown names raise :class:`ConfigurationError`.
    """
    if passes is None:
        return ()
    if isinstance(passes, str):
        tokens = [t.strip() for t in passes.split(",") if t.strip()]
    else:
        tokens = [str(t) for t in passes]
    if tokens == ["all"]:
        return PASS_NAMES
    if tokens in ([], ["none"]):
        return ()
    unknown = sorted(set(tokens) - set(PASS_NAMES))
    if unknown:
        raise ConfigurationError(
            f"unknown graphopt pass(es) {unknown}; expected 'all', 'none' "
            f"or a comma list of {PASS_NAMES}"
        )
    return tuple(p for p in PASS_NAMES if p in tokens)


# ------------------------------------------------------------------ plumbing
def _is_elided(op) -> bool:
    return bool((op.meta or {}).get("elided"))


def _clone(op, meta: dict):
    new = op.__class__(op.kind, op.name, op.stream, op.waits, op.buffers,
                       op.work, op.event, meta, op.reads, op.writes)
    new.site = op.site
    return new


def _tombstone(op, pass_name: str, action: str, **extra):
    meta = dict(op.meta or {})
    meta["elided"] = True
    meta["graphopt"] = {"pass": pass_name, "action": action, **extra}
    return _clone(op, meta)


def _kernel_duration_ms(ctx, op) -> float:
    """An op's modelled kernel duration, as ``DeviceGraph._compile`` sees it."""
    meta = op.meta or {}
    timing = meta.get("timing")
    if timing is not None:
        return float(getattr(timing, "kernel_time_ms", timing))
    model = meta.get("model")
    if model is not None:
        return ctx._predict_time(model, meta["launch"])
    return 0.0


# ----------------------------------------------------------------- elide pass
def _next_access(ops: Sequence, start: int, buf) -> Optional[str]:
    """First access kind to *buf* after *start*: "read", "overwrite" or None.

    Elided tombstones are skipped — their effects are gone from the replay.
    Kernel accesses count as reads (a ``mut=True`` tensor is conservatively
    read+write, so a kernel never proves a full overwrite).
    """
    for j in range(start + 1, len(ops)):
        op = ops[j]
        if _is_elided(op):
            continue
        reads, writes = op_accesses(op)
        if any(b is buf for b in reads):
            return "read"
        if op.kind in ("h2d", "memset") and any(b is buf for b in writes):
            return "overwrite"
    return None


def _elide_pass(ops: List, report: GraphOptReport,
                drop_outputs: Sequence[str]) -> List:
    drop = set(drop_outputs)
    dropped: set = set()
    changed = True
    while changed:
        changed = False
        for i, op in enumerate(ops):
            if _is_elided(op) or op.waits:
                # Ops carrying event waits are never elided: the race
                # detector skips tombstones when chaining happens-before,
                # which is only sound for ops that add no event edges.
                continue
            if op.kind == "d2h":
                label = op.buffers[0].label
                if label in drop and label not in dropped:
                    dropped.add(label)
                    ops[i] = _tombstone(op, "elide", "dropped-output",
                                        buffer=label)
                    report.elided.append({"kind": op.kind, "name": op.name,
                                          "buffer": label,
                                          "action": "dropped-output"})
                    changed = True
            elif op.kind in ("h2d", "memset"):
                buf = op.buffers[0]
                nxt = _next_access(ops, i, buf)
                if nxt == "read":
                    continue
                action = "dead-write" if nxt is None else "redundant-write"
                ops[i] = _tombstone(op, "elide", action, buffer=buf.label)
                report.elided.append({"kind": op.kind, "name": op.name,
                                      "buffer": buf.label, "action": action})
                changed = True
    missing = drop - dropped
    if missing:
        raise ConfigurationError(
            f"drop_outputs names {sorted(missing)} but the graph captures "
            f"no matching D2H copy"
        )
    return ops


# ------------------------------------------------------------------ fuse pass
def _fusable_kernel(op) -> bool:
    if op.kind != "kernel" or _is_elided(op):
        return False
    meta = op.meta or {}
    if meta.get("mode", "auto") not in ("auto", "vectorized"):
        return False
    kern = meta.get("kern")
    launch = meta.get("launch")
    if kern is None or launch is None or not single_chunk(launch):
        return False
    return kernel_vector_safe(kern, infer=True) \
        and not kernel_uses_barrier(kern)


def _same_launch(a, b) -> bool:
    return (a.grid_dim.x, a.grid_dim.y, a.grid_dim.z,
            a.block_dim.x, a.block_dim.y, a.block_dim.z) == \
           (b.grid_dim.x, b.grid_dim.y, b.grid_dim.z,
            b.block_dim.x, b.block_dim.y, b.block_dim.z)


def _launch_compatible(op, leader) -> bool:
    """Fusion launch legality: identical launches, or a proven cover set.

    Identical ``Dim3`` pairs fuse as before.  Otherwise the follower may
    join the run when the symbolic region analysis proves that running it
    under the *leader's* launch touches exactly the same index regions as
    under its own (the extra lanes are all masked off by the kernel's own
    guards) with no access leaving its buffers — then substituting the
    leader's geometry is observationally equivalent and replay stays
    bit-identical.
    """
    la = leader.meta["launch"]
    lb = op.meta["launch"]
    if _same_launch(la, lb):
        return True
    try:
        from ..analysis.regions import covers
        return covers(op.meta["kern"], op.meta["args"], lb, la)
    except Exception:  # pragma: no cover - never let analysis break replay
        return False


def _op_buffer_ids(op) -> set:
    return {id(b) for b in op.buffers}


def _build_fused_kernel(part_ops: Sequence) -> Tuple[Kernel, tuple]:
    """One vector-safe kernel running every part body over the shared args.

    Arguments are deduplicated by identity across parts; each part body is
    invoked with its own argument selection.  Sequencing whole bodies is
    sound exactly because fusion is restricted to single-chunk launches:
    every lane of part *i* completes before part *i+1* reads its output,
    matching the per-kernel replay the unfused graph performs.
    """
    kernels = [op.meta["kern"] for op in part_ops]
    combined: List = []
    positions: Dict[int, int] = {}
    index_map: List[Tuple[int, ...]] = []
    for op in part_ops:
        idxs = []
        for a in op.meta["args"]:
            pos = positions.get(id(a))
            if pos is None:
                pos = positions[id(a)] = len(combined)
                combined.append(a)
            idxs.append(pos)
        index_map.append(tuple(idxs))
    specs = tuple((k, idxs) for k, idxs in zip(kernels, index_map))
    call_specs = tuple((k.fn if isinstance(k, Kernel) else k, idxs)
                       for k, idxs in specs)

    def fused_fn(*fargs):
        for fn, idxs in call_specs:
            fn(*[fargs[x] for x in idxs])

    name = "fused(" + "+".join(k.name for k in kernels) + ")"
    fused_fn.__name__ = fused_fn.__qualname__ = name
    # The wrapper's own source (this loop) is meaningless to the static
    # analyses; record the facts fusion legality already established so the
    # verifier is neither consulted nor warned about, and hang the part
    # table where the lowering tier finds it.
    fused_fn._repro_flag_warned = True
    fused_fn._repro_uses_barrier = False
    fused_fn._repro_fused_parts = specs
    return Kernel(fused_fn, name=name, vector_safe=True), tuple(combined)


def _union_accesses(part_ops: Sequence) -> Tuple[tuple, tuple, tuple]:
    buffers: Dict[int, object] = {}
    reads: Dict[int, object] = {}
    writes: Dict[int, object] = {}
    for op in part_ops:
        for b in op.buffers:
            buffers[id(b)] = b
        r, w = op_accesses(op)
        for b in r:
            reads[id(b)] = b
        for b in w:
            writes[id(b)] = b
    return (tuple(buffers.values()), tuple(reads.values()),
            tuple(writes.values()))


def _emit_fused(ctx, run: List, out: List, report: GraphOptReport) -> None:
    if len(run) < 2:
        out.extend(run)
        return
    first = run[0]
    fused_kern, combined = _build_fused_kernel(run)
    buffers, reads, writes = _union_accesses(run)
    total_ms = sum(_kernel_duration_ms(ctx, op) for op in run)

    def _no_direct_execution():  # pragma: no cover - replay never calls it
        raise AnalysisError(
            f"fused op {fused_kern.name!r} executes through graph replay "
            f"steps only"
        )

    # Fused bodies dispatch through the lowering tier: "lowered" first
    # tries the NumPy-codegen entry for the merged body (one whole-array
    # expression per part store instead of N lockstep sweeps) and falls
    # back to the vector executor when codegen declines the body — so the
    # override can only change speed, never semantics.
    meta = {"kern": fused_kern, "args": combined,
            "launch": first.meta["launch"], "mode": "lowered", "model": None,
            "timing": total_ms,
            "graphopt": {"pass": "fuse",
                         "parts": [op.meta["kern"].name for op in run]}}
    fused_op = first.__class__("kernel", fused_kern.name, first.stream,
                               first.waits, buffers, _no_direct_execution,
                               None, meta, reads, writes)
    fused_op.site = first.site
    out.append(fused_op)
    for op in run:
        out.append(_tombstone(op, "fuse", "fused-into", into=fused_kern.name))
    report.fused.append({"name": fused_kern.name,
                         "parts": [op.meta["kern"].name for op in run],
                         "timing_ms": total_ms})


def _fuse_pass(ctx, ops: List, report: GraphOptReport) -> List:
    out: List = []
    run: List = []
    pending_tombstones: List = []

    def flush():
        _emit_fused(ctx, run, out, report)
        out.extend(pending_tombstones)
        run.clear()
        pending_tombstones.clear()

    for op in ops:
        if _is_elided(op):
            # Tombstones are transparent for adjacency but must keep their
            # position relative to the run they interrupt.
            (pending_tombstones if run else out).append(op)
            continue
        extends = (run and _fusable_kernel(op) and not op.waits
                   and op.stream is run[0].stream
                   and _launch_compatible(op, run[0])
                   and (_op_buffer_ids(op)
                        & set().union(*map(_op_buffer_ids, run))))
        if extends:
            run.append(op)
            continue
        flush()
        if _fusable_kernel(op):
            run.append(op)
        else:
            out.append(op)
    flush()
    return out


# ----------------------------------------------------------------- hoist pass
def _hoist_legal(ops: Sequence, pos: int, buf) -> Optional[str]:
    """None when the upload at *pos* is replay-invariant, else the reason."""
    if ops[pos].waits:
        return "the upload carries event waits"
    for j, op in enumerate(ops):
        if j == pos or _is_elided(op):
            continue
        reads, writes = op_accesses(op)
        if any(b is buf for b in writes):
            return f"{op.kind} {op.name!r} also writes the buffer"
        if j < pos and any(b is buf for b in reads):
            return f"{op.kind} {op.name!r} reads the buffer before the upload"
    return None


def _hoist_pass(ops: List, pin, report: GraphOptReport,
                strict: bool) -> Tuple[List, List]:
    pin_all = pin == "all"
    if isinstance(pin, str) and not pin_all:
        pin = [t.strip() for t in pin.split(",") if t.strip()]
    wanted = set() if pin_all else {str(p) for p in pin}
    actions: List[Tuple[object, object]] = []
    seen: set = set()
    for i, op in enumerate(ops):
        if op.kind != "h2d" or _is_elided(op):
            continue
        buf = op.buffers[0]
        seen.add(buf.label)
        if not pin_all and buf.label not in wanted:
            continue
        reason = _hoist_legal(ops, i, buf)
        if reason is not None:
            if strict and buf.label in wanted:
                raise ConfigurationError(
                    f"cannot pin input {buf.label!r}: {reason}"
                )
            continue
        actions.append((buf, op.meta["src"]))
        report.pinned.append(buf.label)
        ops[i] = _tombstone(op, "hoist", "pinned", buffer=buf.label)
    missing = wanted - seen
    if missing:
        raise ConfigurationError(
            f"pin names {sorted(missing)} but the graph captures no "
            f"matching H2D upload"
        )
    return ops, actions


# ------------------------------------------------------------------ pipeline
def optimize_graph(graph, passes="all", *, pin=(), drop_outputs=(),
                   name: Optional[str] = None, check: bool = True):
    """Run the selected passes over *graph*; returns ``(optimized, report)``.

    The input graph is left untouched and stays replayable — the rewritten
    graph is a sibling on the same context (and the same device buffers).
    With ``check=True`` (default) the transformed op list is re-linted
    through the happens-before race detector and any error-severity finding
    raises :class:`~repro.core.errors.AnalysisError`, mirroring
    ``ctx.capture(check=True)`` for compiler output.

    ``pin`` activates the hoist pass for the named input labels (or
    ``"all"`` for every provably invariant upload); explicitly named labels
    that cannot be pinned raise.  ``drop_outputs`` lets the elide pass
    remove named D2H downloads (and, transitively, uploads that fed only
    them).
    """
    selected = parse_passes(passes)
    ops = list(graph.ops)
    report = GraphOptReport(
        graph=graph.name, optimized=name or f"{graph.name}+opt",
        passes=selected, ops_before=len(ops),
        kernels_before=sum(1 for op in ops
                           if op.kind == "kernel" and not _is_elided(op)),
        makespan_before_ms=graph.makespan_ms)
    actions: List = []
    for p in selected:
        if p == "elide":
            ops = _elide_pass(ops, report, drop_outputs)
        elif p == "fuse":
            ops = _fuse_pass(graph.ctx, ops, report)
        elif p == "hoist":
            ops, actions = _hoist_pass(ops, pin, report, strict=True)
    optimized = graph.rewritten(ops, name=report.optimized)
    optimized._pinned = frozenset(report.pinned)
    optimized._graphopt_report = report
    # Pinned uploads run once, here, after the rewrite is known compilable.
    for buf, src in actions:
        buf.array[...] = np.asarray(src)
    report.ops_after = sum(1 for op in ops if not _is_elided(op))
    report.kernels_after = optimized.num_kernels
    report.makespan_after_ms = optimized.makespan_ms
    _obs_metrics.inc("graphopt_ops_elided_total", len(report.elided))
    _obs_metrics.inc("graphopt_ops_fused_total", len(report.fused))
    if check:
        from ..analysis.racecheck import analyze_graph

        errors = [d for d in analyze_graph(optimized)
                  if d.severity == "error"]
        if errors:
            findings = "\n".join(f"  {d}" for d in errors)
            raise AnalysisError(
                f"optimized graph {optimized.name!r} failed the race "
                f"check:\n{findings}"
            )
    return optimized, report
