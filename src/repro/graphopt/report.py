"""Graph-compiler speedup report for ``repro report`` / EXPERIMENTS.md.

One row per workload: best-of-*repeats* replay time of the lint capture
before and after the all-pass pipeline, plus vectorized-vs-lowered dispatch
times of the tuning probe for workloads that declare one.  The closing Φ
row aggregates the speedups with the same arithmetic-mean treatment the
portability tables use — fusion and lowering are "performance portability
across executors" in the paper's Eq. 4 sense: how much of the compiled
path's performance the interpreted path reaches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..harness.results import ResultTable
from .passes import optimize_graph

__all__ = ["GraphOptReportRow", "GraphOptBenchReport", "graphopt_report"]


@dataclass
class GraphOptReportRow:
    """Replay/dispatch timings for one workload's captured graph."""

    workload: str
    unfused_s: Optional[float] = None
    fused_s: Optional[float] = None
    vectorized_s: Optional[float] = None
    lowered_s: Optional[float] = None

    @property
    def fused_speedup(self) -> Optional[float]:
        if self.unfused_s and self.fused_s:
            return self.unfused_s / self.fused_s
        return None

    @property
    def lowered_speedup(self) -> Optional[float]:
        if self.vectorized_s and self.lowered_s:
            return self.vectorized_s / self.lowered_s
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "unfused_s": self.unfused_s,
            "fused_s": self.fused_s,
            "fused_speedup": self.fused_speedup,
            "vectorized_s": self.vectorized_s,
            "lowered_s": self.lowered_s,
            "lowered_speedup": self.lowered_speedup,
        }


@dataclass
class GraphOptBenchReport:
    """Fused/lowered speedups across the registered workloads."""

    rows: List[GraphOptReportRow] = field(default_factory=list)
    repeats: int = 10

    def mean_speedups(self) -> Dict[str, float]:
        """Arithmetic-mean fused/lowered speedups over measurable rows."""
        out: Dict[str, float] = {}
        for key in ("fused_speedup", "lowered_speedup"):
            values = [getattr(r, key) for r in self.rows
                      if getattr(r, key) is not None]
            if values:
                out[key] = sum(values) / len(values)
        return out

    def table(self) -> ResultTable:
        table = ResultTable(
            columns=["workload", "unfused_us", "fused_us", "fused_speedup",
                     "vectorized_us", "lowered_us", "lowered_speedup"],
            title="Graph-compiler replay and dispatch speedups",
        )

        def us(value: Optional[float]):
            return value * 1e6 if value is not None else float("nan")

        for row in self.rows:
            table.add_row(
                workload=row.workload,
                unfused_us=us(row.unfused_s), fused_us=us(row.fused_s),
                fused_speedup=row.fused_speedup
                if row.fused_speedup is not None else float("nan"),
                vectorized_us=us(row.vectorized_s),
                lowered_us=us(row.lowered_s),
                lowered_speedup=row.lowered_speedup
                if row.lowered_speedup is not None else float("nan"),
            )
        means = self.mean_speedups()
        table.add_row(
            workload="Φ (mean)", unfused_us=float("nan"),
            fused_us=float("nan"),
            fused_speedup=means.get("fused_speedup", float("nan")),
            vectorized_us=float("nan"), lowered_us=float("nan"),
            lowered_speedup=means.get("lowered_speedup", float("nan")),
        )
        return table

    def to_markdown(self) -> str:
        lines = [
            "## Graph compiler: fused and lowered speedups",
            "",
            "Best-of-{n} replay of each workload's lint capture before and "
            "after the all-pass pipeline (`elide,fuse,hoist`), and "
            "vectorized-vs-lowered executor dispatch of the tuning probe. "
            "The closing Φ row is the arithmetic-mean speedup over the "
            "measurable workloads; committed baselines guard fused ≥ "
            "unfused and lowered ≥ 2× vectorized on every merge.".format(
                n=self.repeats),
            "",
            self.table().to_markdown(),
        ]
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {"repeats": self.repeats,
                "rows": [r.as_dict() for r in self.rows],
                "mean_speedups": self.mean_speedups()}


def _best(fn, repeats: int) -> float:
    fn()                                        # warm caches/codegen
    samples = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return min(samples)


def graphopt_report(workload_names=None, *,
                    repeats: int = 10) -> GraphOptBenchReport:
    """Measure fused/lowered speedups for the registered workloads."""
    from ..workloads import get_workload, list_workloads

    report = GraphOptBenchReport(repeats=repeats)
    for name in (workload_names or list_workloads()):
        workload = get_workload(name)
        row = GraphOptReportRow(workload=name)
        graph = workload.lint_graph()
        if graph is not None:
            optimized, _ = optimize_graph(graph, "all")
            row.unfused_s = _best(graph.replay, repeats)
            row.fused_s = _best(optimized.replay, repeats)
        for mode, attr in (("vectorized", "vectorized_s"),
                           ("lowered", "lowered_s")):
            probe = workload.tuning_probe(
                workload.make_request(executor=mode, verify=False))
            if probe is not None:
                setattr(row, attr, _best(probe.replay, repeats))
        report.rows.append(row)
    return report
