"""Lowering tier: compile vector-safe kernel bodies to NumPy-slice code.

The vectorized executor (:mod:`repro.gpu.vector_executor`) already amortises
the Python interpreter over whole lane sets, but every tensor subscript in
the kernel body still pays a fancy-indexing gather/scatter through per-lane
index arrays.  This module goes one step further, the way the paper's MLIR
stack lowers its parametric kernels to target code: a vector-safe body whose
lane indices are *affine* in the launch axes is rewritten — via AST analysis,
not execution — into plain NumPy whole-array slicing, compiled with
``exec`` into a synthetic module, and dispatched through the executor's
``mode="lowered"``.

The contract mirrors a real compiler's legality checking: lowering is a
*best-effort specialisation*.  ``lower_launch`` returns a compiled entry
point when the body fits the supported shape and ``None`` otherwise, and the
executor falls back to the lockstep interpreter — behaviour, counters and
results stay identical either way (the generated code performs the very same
NumPy element operations, in the same order and dtype, that the lane
interpreter would, so results are bit-identical; the property suite in
``tests/property`` holds the compiler to that).

Supported body shape (the SIMT-generic idiom all four science kernels use):

* lane indices bound from affine intrinsics, e.g.
  ``i = block_dim.x * block_idx.x + thread_idx.x`` (any operand order);
* guard masks that are conjunctions of comparisons between a lane index and
  a statically evaluable scalar expression, e.g.
  ``interior = (i > 0) & (i < nx - 1) & ...``;
* the ``if not any_lane(m): return`` early-exit idiom;
* ``i = compress_lanes(m, i)`` / ``i, j, k = compress_lanes(m, i, j, k)``
  range tightening;
* whole-tensor stores ``t[i, j, k] = expr`` whose indices are lane
  variables with constant offsets (``u[i - 1, j, k]``) and whose right-hand
  side is built from ``+ - * /``, scalar arguments, constants and aligned
  tensor reads.

Everything else — ``while`` loops, ``barrier()``, shared memory, masked
gathers, data-dependent indexing — raises :class:`LoweringUnsupported`
internally and surfaces as a ``None`` entry (i.e. "keep interpreting").

Specialisation key: the generated source bakes slice *bounds* (derived from
launch extents, scalar argument values and tensor shapes), so compiled
entries are memoised on the kernel function object keyed by exactly those
ingredients.  Tensor *data* is rebound on every call (the entry re-reads
``args[i].ptr``), so replaying a graph with new H2D bindings reuses the
compiled module.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
import types
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.kernel import Kernel, LaunchConfig
from ..core.layout import LayoutTensor

__all__ = ["LoweringUnsupported", "lower_launch", "lower_source",
           "lowering_report"]


class LoweringUnsupported(Exception):
    """The kernel body falls outside the lowerable subset (internal)."""


#: intrinsic names whose attributes form affine lane-index expressions
_AXIS_INTRINSICS = ("thread_idx", "block_idx", "block_dim")
_AXES = ("x", "y", "z")
#: scalar-argument references in generated source ("_s<combined index>")
_SCALAR_TOKEN = re.compile(r"_s(\d+)")


class _Axis:
    """A lane-index variable along one launch axis, restricted to [lo, hi)."""

    __slots__ = ("axis", "lo", "hi")

    def __init__(self, axis: str, lo: int, hi: int):
        self.axis = axis
        self.lo = int(lo)
        self.hi = int(hi)

    def tightened(self, lo: Optional[int], hi: Optional[int]) -> "_Axis":
        new_lo = self.lo if lo is None else max(self.lo, lo)
        new_hi = self.hi if hi is None else min(self.hi, hi)
        return _Axis(self.axis, new_lo, max(new_hi, new_lo))


class _Mask:
    """A guard mask: per-lane-variable half-open bounds."""

    __slots__ = ("bounds",)

    def __init__(self, bounds: Dict[str, Tuple[Optional[int], Optional[int]]]):
        self.bounds = bounds


class _Tensor:
    """A tensor argument: combined-arg index plus its shape."""

    __slots__ = ("index", "shape")

    def __init__(self, index: int, shape: Tuple[int, ...]):
        self.index = index
        self.shape = shape


class _Scalar:
    """A scalar argument: combined-arg index plus its captured value."""

    __slots__ = ("index", "value")

    def __init__(self, index: int, value):
        self.index = index
        self.value = value


def _fail(reason: str) -> "LoweringUnsupported":
    return LoweringUnsupported(reason)


def _axis_extents(launch: LaunchConfig) -> Dict[str, int]:
    bd, gd = launch.block_dim, launch.grid_dim
    return {"x": bd.x * gd.x, "y": bd.y * gd.y, "z": bd.z * gd.z}


# --------------------------------------------------------------------- match
def _intrinsic_component(node) -> Optional[Tuple[str, str]]:
    """``thread_idx.x`` -> ("thread_idx", "x"), else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id in _AXIS_INTRINSICS and node.attr in _AXES:
        return node.value.id, node.attr
    return None


def _match_axis_expr(node) -> str:
    """Match the global-linear-index idiom; returns the axis letter.

    Accepts ``thread_idx.A + block_idx.A * block_dim.A`` with the addition
    and the multiplication operands in either order.
    """
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
        raise _fail("lane index is not of the form thread_idx + block_idx*block_dim")
    sides = (node.left, node.right)
    thread = next((s for s in sides
                   if (_intrinsic_component(s) or ("", ""))[0] == "thread_idx"),
                  None)
    mult = next((s for s in sides
                 if isinstance(s, ast.BinOp) and isinstance(s.op, ast.Mult)),
                None)
    if thread is None or mult is None:
        raise _fail("lane index is not of the form thread_idx + block_idx*block_dim")
    axis = _intrinsic_component(thread)[1]
    parts = {}
    for s in (mult.left, mult.right):
        comp = _intrinsic_component(s)
        if comp is None:
            raise _fail("lane-index multiplication has a non-intrinsic operand")
        parts[comp[0]] = comp[1]
    if set(parts) != {"block_idx", "block_dim"} \
            or parts["block_idx"] != axis or parts["block_dim"] != axis:
        raise _fail("lane-index terms mix launch axes")
    return axis


def _eval_static(node, env) -> float:
    """Numerically evaluate a scalar expression from constants and scalar args."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value
    if isinstance(node, ast.Name):
        sym = env.get(node.id)
        if isinstance(sym, _Scalar):
            return sym.value
        raise _fail(f"name {node.id!r} is not a scalar argument")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_eval_static(node.operand, env)
    if isinstance(node, ast.BinOp):
        left = _eval_static(node.left, env)
        right = _eval_static(node.right, env)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.FloorDiv):
            return left // right
        if isinstance(node.op, ast.Div):
            return left / right
    raise _fail("bound expression is not statically evaluable")


def _static_int(node, env) -> int:
    value = _eval_static(node, env)
    if int(value) != value:
        raise _fail(f"bound expression evaluates to non-integer {value}")
    return int(value)


def _merge_bounds(into: Dict, frm: Dict) -> None:
    for var, (lo, hi) in frm.items():
        old_lo, old_hi = into.get(var, (None, None))
        if lo is not None:
            old_lo = lo if old_lo is None else max(old_lo, lo)
        if hi is not None:
            old_hi = hi if old_hi is None else min(old_hi, hi)
        into[var] = (old_lo, old_hi)


def _match_mask(node, env) -> _Mask:
    """Match a conjunction of lane-variable comparisons into a :class:`_Mask`."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
        bounds: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        _merge_bounds(bounds, _match_mask(node.left, env).bounds)
        _merge_bounds(bounds, _match_mask(node.right, env).bounds)
        return _Mask(bounds)
    if isinstance(node, ast.Compare) and len(node.ops) == 1:
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if isinstance(left, ast.Name) and isinstance(env.get(left.id), _Axis):
            var, bound_node, flip = left.id, right, False
        elif isinstance(right, ast.Name) \
                and isinstance(env.get(right.id), _Axis):
            var, bound_node, flip = right.id, left, True
        else:
            raise _fail("comparison does not involve a lane index")
        bound = _static_int(bound_node, env)
        if flip:  # "bound OP var" -> invert the operator direction
            op = {ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                  ast.LtE: ast.GtE, ast.GtE: ast.LtE}.get(type(op), type(op))()
        if isinstance(op, ast.Lt):
            return _Mask({var: (None, bound)})
        if isinstance(op, ast.LtE):
            return _Mask({var: (None, bound + 1)})
        if isinstance(op, ast.Gt):
            return _Mask({var: (bound + 1, None)})
        if isinstance(op, ast.GtE):
            return _Mask({var: (bound, None)})
        raise _fail("unsupported comparison operator in guard mask")
    raise _fail("guard mask is not a conjunction of lane comparisons")


def _is_guard_return(stmt, env) -> bool:
    """Match ``if not any_lane(m): return`` (lowered slices are pre-masked)."""
    if not (isinstance(stmt, ast.If) and not stmt.orelse
            and len(stmt.body) == 1 and isinstance(stmt.body[0], ast.Return)
            and stmt.body[0].value is None):
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return False
    call = test.operand
    return (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
            and call.func.id == "any_lane" and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
            and isinstance(env.get(call.args[0].id), _Mask))


def _match_compress(stmt, env) -> Optional[Tuple[List[str], str]]:
    """Match ``i[, j, k] = compress_lanes(m, i[, j, k])`` -> (vars, mask)."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
        return None
    value = stmt.value
    if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id == "compress_lanes"):
        return None
    target = stmt.targets[0]
    if isinstance(target, ast.Name):
        names = [target.id]
    elif isinstance(target, ast.Tuple) \
            and all(isinstance(e, ast.Name) for e in target.elts):
        names = [e.id for e in target.elts]
    else:
        raise _fail("compress_lanes target is not a name tuple")
    if len(value.args) != len(names) + 1:
        raise _fail("compress_lanes arity does not match its targets")
    mask_node, var_nodes = value.args[0], value.args[1:]
    if not (isinstance(mask_node, ast.Name)
            and isinstance(env.get(mask_node.id), _Mask)):
        raise _fail("compress_lanes mask is not a known guard mask")
    for name, node in zip(names, var_nodes):
        if not (isinstance(node, ast.Name) and node.id == name
                and isinstance(env.get(name), _Axis)):
            raise _fail("compress_lanes operands must be the lane indices "
                        "being reassigned")
    return names, mask_node.id


def _apply_compress(names: Sequence[str], mask_name: str, env) -> None:
    mask: _Mask = env[mask_name]
    if not set(mask.bounds) <= set(names):
        raise _fail("guard mask constrains a lane index that is not "
                    "being compressed")
    axes = [env[n].axis for n in names]
    if len(set(axes)) != len(axes):
        raise _fail("compress_lanes operands share a launch axis")
    for name in names:
        lo, hi = mask.bounds.get(name, (None, None))
        env[name] = env[name].tightened(lo, hi)


# ------------------------------------------------------------------- codegen
def _index_components(node, env) -> List[Tuple[str, int]]:
    """Subscript index -> [(lane-var name, constant offset)] per dimension."""
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    comps: List[Tuple[str, int]] = []
    for e in elts:
        if isinstance(e, ast.Name):
            name, off = e.id, 0
        elif isinstance(e, ast.BinOp) and isinstance(e.left, ast.Name) \
                and isinstance(e.op, (ast.Add, ast.Sub)):
            name = e.left.id
            off = _static_int(e.right, env)
            if isinstance(e.op, ast.Sub):
                off = -off
        else:
            raise _fail("tensor index is not lane-variable +/- constant")
        if not isinstance(env.get(name), _Axis):
            raise _fail(f"tensor index {name!r} is not a lane index")
        comps.append((name, off))
    return comps


def _slices_for(comps: Sequence[Tuple[str, int]], shape: Tuple[int, ...],
                env) -> str:
    if len(comps) != len(shape):
        raise _fail("tensor subscript rank does not match its shape")
    parts = []
    for (name, off), extent in zip(comps, shape):
        var: _Axis = env[name]
        lo, hi = var.lo + off, var.hi + off
        if lo < 0 or hi > extent:
            raise _fail(f"slice [{lo}:{hi}] escapes tensor extent {extent}")
        parts.append(f"{lo}:{hi}")
    return ", ".join(parts)


class _BodyLowerer:
    """Lower one kernel body's statements into NumPy-slice source lines."""

    def __init__(self, env: Dict[str, object], extents: Dict[str, int],
                 tensors: Dict[int, _Tensor]):
        self.env = env
        self.extents = extents
        self.tensors = tensors
        self.lines: List[str] = []

    # ------------------------------------------------------------ expression
    def _emit_expr(self, node, lhs_comps, lhs_index: int,
                   reads_lhs: List[bool]) -> str:
        env = self.env
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, (int, float)):
            return repr(node.value)
        if isinstance(node, ast.Name):
            sym = env.get(node.id)
            if isinstance(sym, _Scalar):
                return f"_s{sym.index}"
            raise _fail(f"unsupported value {node.id!r} in expression")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return f"(-{self._emit_expr(node.operand, lhs_comps, lhs_index, reads_lhs)})"
        if isinstance(node, ast.BinOp):
            ops = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}
            sym = ops.get(type(node.op))
            if sym is None:
                raise _fail("unsupported arithmetic operator")
            left = self._emit_expr(node.left, lhs_comps, lhs_index, reads_lhs)
            right = self._emit_expr(node.right, lhs_comps, lhs_index, reads_lhs)
            return f"({left} {sym} {right})"
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            tensor = env.get(node.value.id)
            if not isinstance(tensor, _Tensor):
                raise _fail(f"subscript of non-tensor {node.value.id!r}")
            comps = _index_components(node.slice, env)
            # Alignment: a read must enumerate lanes exactly as the store
            # does, else the slice views would pair the wrong elements.
            if [c[0] for c in comps] != [c[0] for c in lhs_comps]:
                raise _fail("tensor read indices are not aligned with the "
                            "store indices")
            if tensor.index == lhs_index:
                reads_lhs[0] = True
            return f"_d{tensor.index}[{_slices_for(comps, tensor.shape, env)}]"
        raise _fail("unsupported expression in kernel body")

    # ------------------------------------------------------------- statement
    def lower_statements(self, body: Sequence[ast.stmt]) -> None:
        env = self.env
        for stmt in body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str):
                continue  # docstring
            if _is_guard_return(stmt, env):
                continue  # empty lane sets produce empty slices: a no-op
            if isinstance(stmt, ast.Return) and stmt.value is None:
                break
            compress = _match_compress(stmt, env) \
                if isinstance(stmt, ast.Assign) else None
            if compress is not None:
                _apply_compress(compress[0], compress[1], env)
                continue
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                raise _fail(f"unsupported statement {ast.dump(stmt)[:60]}")
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                self._lower_binding(target.id, stmt.value)
            elif isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name):
                self._lower_store(target, stmt.value)
            else:
                raise _fail("unsupported assignment target")

    def _lower_binding(self, name: str, value) -> None:
        env = self.env
        try:
            axis = _match_axis_expr(value)
        except LoweringUnsupported:
            env[name] = _match_mask(value, env)
            return
        env[name] = _Axis(axis, 0, self.extents[axis])

    def _lower_store(self, target: ast.Subscript, value) -> None:
        env = self.env
        tensor = env.get(target.value.id)
        if not isinstance(tensor, _Tensor):
            raise _fail(f"store into non-tensor {target.value.id!r}")
        comps = _index_components(target.slice, env)
        axes = [env[name].axis for name, _ in comps]
        if len(set(axes)) != len(axes):
            raise _fail("store uses one launch axis for two dimensions")
        # Every populated launch axis must drive a store dimension, or two
        # lanes would scatter different values to one element.
        live_axes = {a for a, n in self.extents.items() if n > 1}
        if not live_axes <= set(axes):
            raise _fail("store does not cover every populated launch axis")
        slices = _slices_for(comps, tensor.shape, env)
        reads_lhs = [False]
        rhs = self._emit_expr(value, comps, tensor.index, reads_lhs)
        if reads_lhs[0]:
            # The store target appears on its right-hand side: materialise
            # the RHS first, as the lane interpreter's gather does, so an
            # overlapping slice copy cannot read half-written data.
            rhs = f"({rhs}).copy()"
        self.lines.append(f"_d{tensor.index}[{slices}] = {rhs}")


# ------------------------------------------------------------------ assembly
def _arg_signature(args: Sequence) -> Tuple:
    sig = []
    for a in args:
        if isinstance(a, LayoutTensor):
            sig.append(("T", a.shape, a.dtype.name))
        elif isinstance(a, (int, float, np.integer, np.floating)):
            sig.append(("S", type(a).__name__, a))
        else:
            raise _fail(f"unsupported argument type {type(a).__name__}")
    return tuple(sig)


def _bind_params(fn, args: Sequence, indices: Sequence[int],
                 tensors: Dict[int, _Tensor]) -> Tuple[Dict, ast.FunctionDef]:
    """Parse *fn* and bind its parameters to combined-arg symbols."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        raise _fail("kernel source is unavailable")
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise _fail("kernel source does not start with a function definition")
    params = [p.arg for p in fdef.args.args]
    if len(params) != len(indices) or fdef.args.vararg or fdef.args.kwarg \
            or fdef.args.kwonlyargs:
        raise _fail("kernel signature does not match its captured arguments")
    env: Dict[str, object] = {}
    for pname, idx in zip(params, indices):
        a = args[idx]
        if isinstance(a, LayoutTensor):
            if a.layout.order != "row_major" or not a.layout.is_contiguous:
                raise _fail(f"tensor {pname!r} is not row-major contiguous")
            sym = tensors.get(idx)
            if sym is None:
                sym = tensors[idx] = _Tensor(idx, a.shape)
            env[pname] = sym
        elif isinstance(a, (int, float, np.integer, np.floating)):
            env[pname] = _Scalar(idx, a)
        else:
            raise _fail(f"unsupported argument type {type(a).__name__}")
    return env, fdef


def _fused_parts(kern) -> Optional[Tuple]:
    fn = kern.fn if isinstance(kern, Kernel) else kern
    return getattr(fn, "_repro_fused_parts", None)


def _generate(kern, args: Sequence, launch: LaunchConfig) -> Tuple[object, str]:
    """Build (entry, source) for a launch; raises LoweringUnsupported."""
    extents = _axis_extents(launch)
    parts = _fused_parts(kern)
    if parts is None:
        fn = kern.fn if isinstance(kern, Kernel) else kern
        parts = ((fn, tuple(range(len(args)))),)
    tensors: Dict[int, _Tensor] = {}
    body_lines: List[str] = []
    for fn, indices in parts:
        fn = fn.fn if isinstance(fn, Kernel) else fn
        env, fdef = _bind_params(fn, args, indices, tensors)
        lowerer = _BodyLowerer(env, extents, tensors)
        lowerer.lower_statements(fdef.body)
        if not lowerer.lines:
            raise _fail("kernel body lowered to no stores")
        body_lines.extend(lowerer.lines)

    name = kern.name if isinstance(kern, Kernel) else \
        getattr(kern, "__name__", "kernel")
    prelude = []
    for idx in sorted(tensors):
        shape = tensors[idx].shape
        size = int(np.prod(shape))
        prelude.append(
            f"_d{idx} = args[{idx}].ptr[:{size}].reshape({shape!r})")
    # Scalar prelude: reference every scalar index the body mentions.
    scalar_idx = sorted({int(m) for line in body_lines
                         for m in _SCALAR_TOKEN.findall(line)})
    for idx in scalar_idx:
        prelude.append(f"_s{idx} = args[{idx}]")
    indent = "\n    ".join(prelude + body_lines)
    source = (f"# lowered from kernel {name!r} for launch {launch}\n"
              f"def _entry(*args):\n    {indent}\n")
    module = types.ModuleType(f"_repro_lowered_{name}")
    code = compile(source, f"<lowered:{name}>", "exec")
    exec(code, module.__dict__)
    return module._entry, source


# -------------------------------------------------------------------- public
def _cache_for(fn) -> Optional[Dict]:
    cache = getattr(fn, "_repro_lowered", None)
    if cache is None:
        try:
            cache = fn._repro_lowered = {}
        except (AttributeError, TypeError):  # pragma: no cover - builtins
            return None
    return cache


def _lower(kern, args: Sequence, launch: LaunchConfig):
    """(entry, source-or-reason): memoised lowering of one specialisation."""
    fn = kern.fn if isinstance(kern, Kernel) else kern
    bd, gd = launch.block_dim, launch.grid_dim
    try:
        key = ((bd.x, bd.y, bd.z, gd.x, gd.y, gd.z), _arg_signature(args))
    except LoweringUnsupported as exc:
        return None, str(exc)
    cache = _cache_for(fn)
    if cache is not None and key in cache:
        return cache[key]
    try:
        entry = _generate(kern, args, launch)
    except LoweringUnsupported as exc:
        entry = (None, str(exc))
    if cache is not None:
        cache[key] = entry
    return entry


def lower_launch(kern, args: Sequence, launch: LaunchConfig):
    """Compiled NumPy-slice entry for the launch, or None when unsupported.

    The entry takes the original positional ``*args`` and performs exactly
    the stores the kernel body would; the executor's ``mode="lowered"``
    dispatches through it and falls back to the interpreter on None.
    """
    return _lower(kern, args, launch)[0]


def lower_source(kern, args: Sequence, launch: LaunchConfig) -> Optional[str]:
    """The generated module source for the launch, or None when unsupported."""
    entry, source = _lower(kern, args, launch)
    return source if entry is not None else None


def lowering_report(kern, args: Sequence, launch: LaunchConfig) -> Dict[str, object]:
    """Structured lowering outcome for inspection tools (``repro graph``)."""
    entry, detail = _lower(kern, args, launch)
    name = kern.name if isinstance(kern, Kernel) else \
        getattr(kern, "__name__", "kernel")
    return {"kernel": name, "lowered": entry is not None,
            ("source" if entry is not None else "reason"): detail}
