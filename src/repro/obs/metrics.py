"""Process-wide metrics registry: counters, gauges, histograms.

Every subsystem in the reproduction already counts things — result-cache
and tuning-database hits, compile-cache reuse, fault firings, retry
attempts, breaker trips, graph-compiler rewrites, lint diagnostics — but
until now each count lived in its own ad-hoc dict.  This registry gives
them one process-wide home with a stable catalog, a :func:`snapshot` dict
for JSON surfaces (``repro trace --json``, CI asserts) and a Prometheus
text exposition ready for the future ``repro serve``.

Design points:

* **Catalogued and zero-filled.**  Every counter and histogram the stack
  can emit is declared in :data:`COUNTER_CATALOG` / :data:`HISTOGRAM_CATALOG`
  and appears in every snapshot even when it never fired — a dashboard (or
  a CI assert) can rely on the full schema being present from the first
  scrape.
* **Labelled children.**  ``inc("lint_diagnostics_total", rule="KV103")``
  bumps both the bare catalog counter and a labelled child series
  (``lint_diagnostics_total{rule="KV103"}``); the bare name is always the
  sum over its children.
* **Always-on but cheap.**  Unlike tracing spans, counter increments are a
  dict update under one lock at per-request (not per-element) frequency;
  the instrumented-dispatch benchmark guards the cost.  Tests that need
  exact counts snapshot before/after and diff, or call
  :func:`reset_metrics`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "COUNTER_CATALOG",
    "HISTOGRAM_CATALOG",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "reset_metrics",
    "render_prometheus",
    "registry",
]

#: every counter the stack can emit, zero-filled in every snapshot
COUNTER_CATALOG: Tuple[str, ...] = (
    "result_cache_hits_total",
    "result_cache_misses_total",
    "result_cache_disk_hits_total",
    "tuning_db_hits_total",
    "tuning_db_misses_total",
    "tuning_db_disk_hits_total",
    "compile_cache_hits_total",
    "compile_cache_misses_total",
    "fault_injections_fired_total",
    "retry_attempts_total",
    "breaker_open_total",
    "breaker_half_open_total",
    "breaker_closed_total",
    "degradation_steps_total",
    "graphopt_ops_elided_total",
    "graphopt_ops_fused_total",
    "lint_diagnostics_total",
)

#: every histogram the stack can emit, zero-filled in every snapshot
HISTOGRAM_CATALOG: Tuple[str, ...] = (
    "workload_run_latency_ms",
)

#: histogram bucket upper bounds in milliseconds (plus implicit +Inf)
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_HELP = {
    "result_cache_hits_total": "ResultCache lookups answered from memory or disk",
    "result_cache_misses_total": "ResultCache lookups that fell through to a run",
    "result_cache_disk_hits_total": "ResultCache hits served from the disk store",
    "tuning_db_hits_total": "TuningDB lookups answered from memory or disk",
    "tuning_db_misses_total": "TuningDB lookups that fell through to a search",
    "tuning_db_disk_hits_total": "TuningDB hits served from the disk store",
    "compile_cache_hits_total": "compile_kernel calls answered from the memo",
    "compile_cache_misses_total": "compile_kernel calls that ran the pipeline",
    "fault_injections_fired_total": "FaultInjector rules that actually fired",
    "retry_attempts_total": "re-attempts after a retryable failure",
    "breaker_open_total": "CircuitBreaker closed/half-open -> open transitions",
    "breaker_half_open_total": "CircuitBreaker open -> half-open probe admissions",
    "breaker_closed_total": "CircuitBreaker half-open -> closed recoveries",
    "degradation_steps_total": "degradation-ladder steps taken past the first",
    "graphopt_ops_elided_total": "graph-compiler ops elided by transfer passes",
    "graphopt_ops_fused_total": "graph-compiler fusion rewrites emitted",
    "lint_diagnostics_total": "static-analysis diagnostics (label: rule)",
    "workload_run_latency_ms": "Workload.run wall latency (label: workload)",
}


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> Dict[str, Any]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, slot in zip(self.bounds, self.buckets):
            running += slot
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = running + self.buckets[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": cumulative,
        }


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with a stable catalog."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._counter_series: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._histogram_series: Dict[str, _Histogram] = {}
        self.reset()

    def reset(self) -> None:
        """Zero every counter/histogram and drop labelled children."""
        with self._lock:
            self._counters = {name: 0.0 for name in COUNTER_CATALOG}
            self._counter_series = {}
            self._gauges = {}
            self._histograms = {name: _Histogram() for name in HISTOGRAM_CATALOG}
            self._histogram_series = {}

    # ------------------------------------------------------------- mutation
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Bump a counter (and its labelled child when labels are given)."""
        if amount == 0:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount
            if labels:
                key = _series_key(name, labels)
                self._counter_series[key] = (
                    self._counter_series.get(key, 0.0) + amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _series_key(name, labels) if labels else name
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram sample (and a labelled child series)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(value)
            if labels:
                key = _series_key(name, labels)
                child = self._histogram_series.get(key)
                if child is None:
                    child = self._histogram_series[key] = _Histogram()
                child.observe(value)

    # -------------------------------------------------------------- reading
    def counter(self, name: str, **labels: Any) -> float:
        key = _series_key(name, labels) if labels else name
        with self._lock:
            if labels:
                return self._counter_series.get(key, 0.0)
            return self._counters.get(key, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dict: full catalog zero-filled plus children."""
        with self._lock:
            counters = dict(self._counters)
            counters.update(self._counter_series)
            histograms = {name: h.as_dict()
                          for name, h in self._histograms.items()}
            histograms.update({key: h.as_dict()
                               for key, h in self._histogram_series.items()})
            return {
                "schema": "repro.metrics-snapshot/v1",
                "counters": counters,
                "gauges": dict(self._gauges),
                "histograms": histograms,
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            lines: List[str] = []
            for name in sorted(set(self._counters) | {
                    key.split("{", 1)[0] for key in self._counter_series}):
                help_text = _HELP.get(name, name)
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {self._counters.get(name, 0.0):g}")
                for key in sorted(self._counter_series):
                    if key.split("{", 1)[0] == name:
                        lines.append(f"{key} {self._counter_series[key]:g}")
            for key in sorted(self._gauges):
                name = key.split("{", 1)[0]
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{key} {self._gauges[key]:g}")
            for name in sorted(self._histograms):
                help_text = _HELP.get(name, name)
                hist = self._histograms[name]
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} histogram")
                running = 0
                for bound, slot in zip(hist.bounds, hist.buckets):
                    running += slot
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {running}')
                lines.append(
                    f'{name}_bucket{{le="+Inf"}} {running + hist.buckets[-1]}')
                lines.append(f"{name}_sum {hist.total:g}")
                lines.append(f"{name}_count {hist.count}")
            return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The process-wide default registry (instrumented sites call the functions)
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _REGISTRY


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    _REGISTRY.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    _REGISTRY.observe(name, value, **labels)


def snapshot() -> Dict[str, Any]:
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    _REGISTRY.reset()


def render_prometheus() -> str:
    return _REGISTRY.render_prometheus()
