"""Unified observability layer: tracing spans, trace export, metrics.

Three pieces, all off-by-default or always-cheap, mirroring how the paper
argues performance portability through *observable* per-phase breakdowns:

* :mod:`~repro.obs.trace` — nested host-side spans with wall *and*
  modelled durations, collected by an installable :class:`TraceCollector`
  (the :data:`_ACTIVE`-switch pattern shared with fault injection keeps
  the disabled path zero-overhead);
* :mod:`~repro.obs.export` — Chrome/Perfetto ``trace.json`` export merging
  host spans with the per-stream modelled device timelines;
* :mod:`~repro.obs.metrics` — the process-wide counters/gauges/histograms
  registry with a stable zero-filled catalog, :func:`snapshot` and
  Prometheus text exposition.

Surfaces: ``repro trace <workload>``, ``repro bench --trace`` and the
``repro report`` observability section.
"""

from .export import (
    build_chrome_trace,
    modelled_vs_wall,
    observability_markdown,
    write_chrome_trace,
)
from .metrics import (
    COUNTER_CATALOG,
    HISTOGRAM_CATALOG,
    MetricsRegistry,
    registry,
    render_prometheus,
    reset_metrics,
    snapshot,
)
from .trace import (
    Span,
    TraceCollector,
    active_collector,
    install_trace_collector,
    span,
)

__all__ = [
    "COUNTER_CATALOG",
    "HISTOGRAM_CATALOG",
    "MetricsRegistry",
    "Span",
    "TraceCollector",
    "active_collector",
    "build_chrome_trace",
    "install_trace_collector",
    "modelled_vs_wall",
    "observability_markdown",
    "registry",
    "render_prometheus",
    "reset_metrics",
    "snapshot",
    "span",
    "write_chrome_trace",
]
