"""Structured host-side tracing spans for the reproduction substrate.

The paper explains *where time goes* per ``(gpu, backend)`` — its NCU and
rocprof tables are observability artifacts.  This module provides the host
half of that story: nested spans (``workload.run`` → ``tuning.resolve`` →
``resilience.attempt[n]`` → ``device.drain`` / ``graph.replay``) with ids,
parents, and *two* durations each — the wall-clock time the host actually
spent, and the modelled device time the analytic timing model predicted.
The gap between the two is the calibration signal ROADMAP item 4 needs.

Collection is **off by default** and follows the exact switch pattern of
:class:`~repro.resilience.faults.FaultInjector`: the hot paths read one
module attribute (``_ACTIVE``) and branch away without ever touching a
collector method when tracing is disabled.  The disabled-path contract is
benchmark-guarded (``test_bench_instrumented_workload_dispatch``) and
test-guarded (patching :meth:`TraceCollector.record` to raise proves the
disabled path never consults it).

Install a collector for a scope with::

    collector = TraceCollector()
    with install_trace_collector(collector):
        workload.run(request)
    collector.spans          # finished spans, in completion order
    collector.roots()        # top-level spans with .children trees

Spans nest per thread (a ``threading.local`` stack), so concurrent sweep
workers each build their own span tree under one collector.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceCollector",
    "active_collector",
    "install_trace_collector",
    "span",
]


@dataclass
class Span:
    """One timed, attributed region of host work.

    ``wall_ms`` is measured (``perf_counter`` delta); ``modelled_ms`` is
    whatever device-time the instrumented site attributed to the region via
    :meth:`set_modelled` (None when the site has no model prediction).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    thread: int
    args: Dict[str, Any] = field(default_factory=dict)
    end_s: Optional[float] = None
    modelled_ms: Optional[float] = None
    error: Optional[str] = None
    children: List["Span"] = field(default_factory=list)

    @property
    def wall_ms(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return (self.end_s - self.start_s) * 1e3

    def set_modelled(self, modelled_ms: Optional[float]) -> None:
        """Attribute a modelled (analytic) duration to this span."""
        if modelled_ms is not None:
            self.modelled_ms = float(modelled_ms)

    def annotate(self, **attrs: Any) -> None:
        """Attach extra key/value attributes after the span opened."""
        self.args.update(attrs)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "start_s": self.start_s,
            "wall_ms": self.wall_ms,
            "modelled_ms": self.modelled_ms,
            "error": self.error,
            "args": dict(self.args),
        }


class TraceCollector:
    """Collects finished :class:`Span`\\ s and the device contexts they used.

    The collector is only ever touched from instrumented sites *after* the
    ``_ACTIVE is not None`` check, so every method here may assume tracing
    is on.  Completed spans funnel through :meth:`record` — the single
    choke point the disabled-path tests patch to raise.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 0
        self._stacks = threading.local()
        self.epoch_s: float = clock()
        self.spans: List[Span] = []
        self.contexts: List[object] = []

    # ------------------------------------------------------------ span stack
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def begin(self, name: str, **args: Any) -> Span:
        """Open a span nested under this thread's innermost open span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        opened = Span(
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=self._clock(),
            thread=threading.get_ident(),
            args=dict(args),
        )
        if parent is not None:
            parent.children.append(opened)
        stack.append(opened)
        return opened

    def finish(self, opened: Span, error: Optional[BaseException] = None) -> None:
        """Close *opened*, pop the stack, and :meth:`record` it."""
        opened.end_s = self._clock()
        if error is not None:
            opened.error = f"{type(error).__name__}: {error}"
        stack = self._stack()
        if stack and stack[-1] is opened:
            stack.pop()
        elif opened in stack:  # pragma: no cover - unbalanced exits
            stack.remove(opened)
        self.record(opened)

    def record(self, finished: Span) -> None:
        """Append a finished span (the patch point for guard tests)."""
        with self._lock:
            self.spans.append(finished)

    @contextlib.contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Span]:
        """Context manager: open/close one span around a block."""
        opened = self.begin(name, **args)
        try:
            yield opened
        except BaseException as exc:
            self.finish(opened, error=exc)
            raise
        else:
            self.finish(opened)

    # ------------------------------------------------------- device contexts
    def register_context(self, ctx: object) -> None:
        """Remember a :class:`DeviceContext` created while tracing was on.

        The export layer later merges each registered context's modelled
        stream timeline with the host spans; registration keeps insertion
        order and deduplicates on identity.
        """
        with self._lock:
            if not any(existing is ctx for existing in self.contexts):
                self.contexts.append(ctx)

    # ------------------------------------------------------------- summaries
    def roots(self) -> List[Span]:
        """Finished top-level spans (no parent), in completion order."""
        with self._lock:
            return [s for s in self.spans if s.parent_id is None]

    def summary(self) -> Dict[str, Any]:
        """Aggregate per-name wall/modelled totals (report fodder)."""
        with self._lock:
            spans = list(self.spans)
        by_name: Dict[str, Dict[str, Any]] = {}
        for s in spans:
            entry = by_name.setdefault(
                s.name, {"count": 0, "wall_ms": 0.0, "modelled_ms": None})
            entry["count"] += 1
            if s.wall_ms is not None:
                entry["wall_ms"] += s.wall_ms
            if s.modelled_ms is not None:
                entry["modelled_ms"] = (entry["modelled_ms"] or 0.0) + s.modelled_ms
        return {"spans": len(spans), "by_name": by_name}


# ---------------------------------------------------------------------------
# The module-level active collector (the hot paths read this attribute)
# ---------------------------------------------------------------------------

#: the currently installed collector, or None (the default, zero-cost path)
_ACTIVE: Optional[TraceCollector] = None
_install_lock = threading.Lock()


def active_collector() -> Optional[TraceCollector]:
    """The installed :class:`TraceCollector`, or None when tracing is off."""
    return _ACTIVE


@contextlib.contextmanager
def install_trace_collector(
        collector: Optional[TraceCollector] = None) -> Iterator[TraceCollector]:
    """Activate a :class:`TraceCollector` for a ``with`` scope.

    Installation is process-global — the instrumented sites live in the
    device and workload layers, below any per-run state — and exclusive:
    nesting a second collector raises rather than silently splicing two
    traces together.
    """
    from ..core.errors import ConfigurationError  # local: core imports us

    installed = collector if collector is not None else TraceCollector()
    global _ACTIVE
    with _install_lock:
        if _ACTIVE is not None:
            raise ConfigurationError(
                "a trace collector is already installed; tracing does "
                "not nest"
            )
        _ACTIVE = installed
    try:
        yield installed
    finally:
        with _install_lock:
            _ACTIVE = None


class _NullScope:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def span(name: str, **args: Any):
    """Open a span on the active collector, or do nothing when tracing is off.

    The disabled path returns a shared no-op context manager without ever
    touching a collector — instrumented sites that cannot afford even the
    keyword-dict construction should use the explicit
    ``collector = _trace._ACTIVE`` / ``if collector is not None`` idiom
    instead (see ``core/device.py``).
    """
    collector = _ACTIVE
    if collector is None:
        return _NULL_SCOPE
    return collector.span(name, **args)
