"""Chrome/Perfetto trace export: host spans merged with device timelines.

:func:`build_chrome_trace` turns one traced run — the host-side span tree a
:class:`~repro.obs.trace.TraceCollector` gathered plus the modelled
per-stream timeline of every :class:`DeviceContext` created under it — into
the Chrome trace event format (the JSON ``chrome://tracing`` and
https://ui.perfetto.dev load directly).

Layout of the exported trace:

* **pid 1, "host"** — one thread track per host thread, carrying the nested
  spans (``workload.run`` → ``tuning.resolve`` → ``device.drain`` …) as
  complete ("X") events in *wall-clock* microseconds relative to the
  collector's epoch.  Span args, ids and the modelled-vs-wall durations
  ride in ``args``.
* **pid 2+, one per device context** — one thread track per stream lane,
  carrying the *modelled* timeline (µs from the context's t=0).  H2D,
  kernel, D2H and memset operations are color-coded via ``cname``;
  graph-replay summary events are expanded into their per-op schedule
  (recorded once at graph compile time) nested inside the summary slice.

The two timebases are intentionally distinct — host tracks show where the
process spent wall time, device tracks show where the *model* says the GPU
would have spent it; the per-span ``modelled_ms``/``wall_ms`` pair in
``args`` is the calibration signal.

The emitted object keeps the standard ``traceEvents`` key and adds a
``metrics`` key (a registry snapshot) — extra top-level keys are legal in
the Chrome trace object form and tooling ignores them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from . import metrics as _metrics
from .trace import Span, TraceCollector

__all__ = [
    "CNAME_BY_KIND",
    "build_chrome_trace",
    "write_chrome_trace",
    "modelled_vs_wall",
    "observability_markdown",
]

#: Chrome trace color names per device-operation kind
CNAME_BY_KIND = {
    "kernel": "thread_state_running",   # green
    "h2d": "rail_response",             # blue
    "d2h": "rail_animation",            # purple
    "memset": "grey",
    "graph": "rail_load",               # red-orange (summary slice)
    "event": "black",
}

_HOST_PID = 1
_FIRST_DEVICE_PID = 2


def _meta(name: str, pid: int, label: str, tid: int = 0) -> Dict[str, Any]:
    event: Dict[str, Any] = {"name": name, "ph": "M", "pid": pid,
                             "args": {"name": label}}
    if name == "thread_name":
        event["tid"] = tid
    return event


def _span_event(span: Span, epoch_s: float, tid: int) -> Dict[str, Any]:
    args = dict(span.args)
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.wall_ms is not None:
        args["wall_ms"] = span.wall_ms
    if span.modelled_ms is not None:
        args["modelled_ms"] = span.modelled_ms
    if span.error:
        args["error"] = span.error
    return {
        "name": span.name,
        "cat": "host",
        "ph": "X",
        "ts": (span.start_s - epoch_s) * 1e6,
        "dur": ((span.end_s or span.start_s) - span.start_s) * 1e6,
        "pid": _HOST_PID,
        "tid": tid,
        "args": args,
    }


def _device_events(ctx: Any, pid: int) -> List[Dict[str, Any]]:
    """Trace events for one device context: lanes, ops, expanded graphs."""
    events: List[Dict[str, Any]] = []
    label = getattr(getattr(ctx, "spec", None), "name", "device")
    events.append(_meta("process_name", pid, f"device:{label}"))
    tids: Dict[str, int] = {}

    def lane(stream: str) -> int:
        tid = tids.get(stream)
        if tid is None:
            tid = tids[stream] = len(tids)
            events.append(_meta("thread_name", pid, f"stream:{stream}",
                                tid=tid))
        return tid

    for ev in getattr(ctx, "timeline", ()):
        tid = lane(ev.stream)
        start_us = ev.start_ms * 1e3
        span_us = max((ev.end_ms - ev.start_ms) * 1e3, 0.0)
        if ev.kind == "event":
            events.append({"name": ev.name, "cat": "event", "ph": "i",
                           "s": "t", "ts": start_us, "pid": pid, "tid": tid})
            continue
        args: Dict[str, Any] = {"modelled_ms": ev.modelled_time_ms,
                                "stream": ev.stream}
        for key, value in (ev.details or {}).items():
            if key != "schedule" and isinstance(value, (str, int, float, bool)):
                args[key] = value
        events.append({
            "name": ev.name,
            "cat": ev.kind,
            "ph": "X",
            "ts": start_us,
            "dur": span_us,
            "pid": pid,
            "tid": tid,
            "cname": CNAME_BY_KIND.get(ev.kind, "grey"),
            "args": args,
        })
        # A graph summary slice carries the per-op schedule recorded at
        # compile time; expand it into nested slices on the same lane.
        for op in (ev.details or {}).get("schedule", ()):
            events.append({
                "name": op["name"],
                "cat": f"graph.{op['kind']}",
                "ph": "X",
                "ts": start_us + op["start_ms"] * 1e3,
                "dur": op["duration_ms"] * 1e3,
                "pid": pid,
                "tid": tid,
                "cname": CNAME_BY_KIND.get(op["kind"], "grey"),
                "args": {"graph": ev.name, "modelled_ms": op["duration_ms"]},
            })
    return events


def build_chrome_trace(
        collector: TraceCollector,
        *,
        metrics_snapshot: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Merge *collector*'s spans and registered contexts into a Chrome trace.

    When *metrics_snapshot* is omitted the process-wide registry is
    snapshotted, so the export always carries the full counter catalog.
    """
    events: List[Dict[str, Any]] = [_meta("process_name", _HOST_PID, "host")]
    thread_tids: Dict[int, int] = {}
    for span in collector.spans:
        if span.end_s is None:
            continue  # still open: nothing sensible to draw
        tid = thread_tids.get(span.thread)
        if tid is None:
            tid = thread_tids[span.thread] = len(thread_tids)
            events.append(_meta("thread_name", _HOST_PID, f"host.{tid}",
                                tid=tid))
        events.append(_span_event(span, collector.epoch_s, tid))
    for index, ctx in enumerate(collector.contexts):
        events.extend(_device_events(ctx, _FIRST_DEVICE_PID + index))
    if metrics_snapshot is None:
        metrics_snapshot = _metrics.snapshot()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metrics": metrics_snapshot,
        "otherData": {"exporter": "repro.obs.export/v1",
                      "spans": len(collector.spans),
                      "contexts": len(collector.contexts)},
    }


def write_chrome_trace(path: str, collector: TraceCollector, *,
                       metrics_snapshot: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Build and write the Chrome trace JSON; returns the trace object."""
    trace = build_chrome_trace(collector, metrics_snapshot=metrics_snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return trace


def modelled_vs_wall(collector: TraceCollector) -> List[Dict[str, Any]]:
    """Per-span calibration rows: wall vs modelled duration and % error.

    Only spans that attributed a modelled duration appear; ``error_pct`` is
    ``(wall - modelled) / modelled`` — positive when the host was slower
    than the model predicted (host overhead), the signal ROADMAP item 4's
    calibrated timing models will consume.
    """
    rows: List[Dict[str, Any]] = []
    for span in collector.spans:
        if span.modelled_ms is None or span.wall_ms is None:
            continue
        modelled = span.modelled_ms
        if modelled <= 0:
            # An empty drain (nothing pending) models zero time; there is
            # no calibration signal in dividing by it.
            continue
        error_pct = (span.wall_ms - modelled) / modelled * 100.0
        rows.append({
            "span_id": span.span_id,
            "name": span.name,
            "wall_ms": span.wall_ms,
            "modelled_ms": modelled,
            "error_pct": error_pct,
        })
    return rows


def observability_markdown(
        collector: Optional[TraceCollector] = None,
        snapshot: Optional[Dict[str, Any]] = None) -> List[str]:
    """Markdown lines for the ``repro report`` observability section."""
    if snapshot is None:
        snapshot = _metrics.snapshot()
    lines: List[str] = ["", "## Observability", ""]
    counters = snapshot.get("counters", {})
    fired = {name: value for name, value in sorted(counters.items())
             if value and "{" not in name}
    lines.append("### Metrics registry")
    lines.append("")
    if fired:
        lines.append("| counter | value |")
        lines.append("|---|---|")
        for name, value in fired.items():
            lines.append(f"| `{name}` | {value:g} |")
    else:
        lines.append("No counters fired in this process.")
    hist = snapshot.get("histograms", {}).get("workload_run_latency_ms")
    if hist and hist.get("count"):
        lines.append("")
        lines.append(
            f"`workload_run_latency_ms`: n={hist['count']}, "
            f"mean={hist['sum'] / hist['count']:.3f} ms, "
            f"min={hist['min']:.3f} ms, max={hist['max']:.3f} ms")
    if collector is not None:
        rows = modelled_vs_wall(collector)
        lines.append("")
        lines.append("### Modelled vs wall time per span")
        lines.append("")
        if rows:
            total = len(rows)
            if total > 20:
                # A full report traces hundreds of runs; show the spans
                # where the timing model is furthest off.
                rows = sorted(rows, key=lambda r: abs(r["error_pct"]),
                              reverse=True)[:20]
                lines.append(f"Top 20 of {total} spans by |error|.")
                lines.append("")
            lines.append("| span | wall (ms) | modelled (ms) | error |")
            lines.append("|---|---:|---:|---:|")
            for row in rows:
                lines.append(
                    f"| `{row['name']}` | {row['wall_ms']:.3f} | "
                    f"{row['modelled_ms']:.3f} | {row['error_pct']:+.1f}% |")
        else:
            lines.append("No spans carried a modelled duration.")
    return lines
