"""Run statistics: warm-up handling, repeats and summary measures.

The paper's methodology discards the first (JIT/warm-up) iteration and
collects at least 100 repeats per configuration; figures show the raw spread.
These helpers implement that protocol for the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["RunStatistics", "summarize", "discard_warmup",
           "coefficient_of_variation"]


@dataclass(frozen=True)
class RunStatistics:
    """Summary statistics of a set of repeated measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p05: float
    p95: float

    @property
    def coefficient_of_variation(self) -> float:
        """Relative standard deviation (std / mean)."""
        return self.std / self.mean if self.mean else float("nan")

    def as_dict(self) -> dict:
        return {
            "count": self.count, "mean": self.mean, "std": self.std,
            "min": self.minimum, "max": self.maximum, "median": self.median,
            "p05": self.p05, "p95": self.p95,
        }


def discard_warmup(samples: Sequence[float], warmup: int = 1) -> List[float]:
    """Drop the first *warmup* samples (JIT / cache warm-up protocol)."""
    if warmup < 0:
        raise ConfigurationError("warmup count cannot be negative")
    samples = list(samples)
    if warmup >= len(samples):
        raise ConfigurationError(
            f"cannot discard {warmup} warm-up samples from {len(samples)} runs"
        )
    return samples[warmup:]


def summarize(samples: Iterable[float], *, warmup: int = 0) -> RunStatistics:
    """Summarise measurements, optionally discarding warm-up iterations."""
    values = [float(v) for v in samples]
    if warmup:
        values = discard_warmup(values, warmup)
    if not values:
        raise ConfigurationError("cannot summarise an empty sample set")
    arr = np.asarray(values, dtype=np.float64)
    minimum = float(np.min(arr))
    maximum = float(np.max(arr))
    # Pairwise summation can land a hair outside [min, max] for constant
    # samples (e.g. mean([1.9]*3) -> 1.8999999999999997); clamp so the
    # invariant min <= mean <= max holds exactly.
    mean = min(max(float(np.mean(arr)), minimum), maximum)
    return RunStatistics(
        count=int(arr.size),
        mean=mean,
        std=float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0,
        minimum=minimum,
        maximum=maximum,
        median=float(np.median(arr)),
        p05=float(np.percentile(arr, 5)),
        p95=float(np.percentile(arr, 95)),
    )


def coefficient_of_variation(samples: Iterable[float]) -> float:
    """Relative standard deviation of a sample set."""
    return summarize(samples).coefficient_of_variation
