"""Figures of merit: bandwidth (Eqs. 1-2), GFLOP/s (Eq. 3), Φ (Eq. 4), statistics.

The bandwidth and FLOP metrics live with their workloads
(:mod:`repro.kernels.stencil.metrics`, :mod:`repro.kernels.babelstream.metrics`,
:mod:`repro.kernels.minibude.metrics`); this package re-exports them alongside
the cross-cutting portability metric and run statistics so harness code can
import everything from one place.
"""

from ..kernels.babelstream.metrics import (
    arrays_moved,
    operation_bandwidth_gbs,
    operation_bytes,
)
from ..kernels.minibude.metrics import gflops, ops_per_workitem, total_ops
from ..kernels.stencil.metrics import (
    effective_bandwidth_gbs,
    effective_fetch_bytes,
    effective_write_bytes,
)
from .portability import (
    EfficiencyEntry,
    PortabilityResult,
    arithmetic_mean_phi,
    efficiency,
    harmonic_mean_phi,
    portability_from_entries,
)
from .statistics import (
    RunStatistics,
    coefficient_of_variation,
    discard_warmup,
    summarize,
)

__all__ = [
    "arrays_moved", "operation_bandwidth_gbs", "operation_bytes",
    "gflops", "ops_per_workitem", "total_ops",
    "effective_bandwidth_gbs", "effective_fetch_bytes", "effective_write_bytes",
    "EfficiencyEntry", "PortabilityResult", "arithmetic_mean_phi", "efficiency",
    "harmonic_mean_phi", "portability_from_entries",
    "RunStatistics", "coefficient_of_variation", "discard_warmup", "summarize",
]
