"""Performance-portability metric Φ (paper Eq. 4 and Table 5).

The paper uses the "application efficiency" flavour of the Pennycook
performance-portability metric: for each run the efficiency is the ratio of
the portable implementation's figure of merit to the vendor baseline's, and
Φ is the arithmetic mean of those efficiencies over the platform set (the
harmonic-mean variant of the original metric is also provided, since the
cited literature debates the choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["EfficiencyEntry", "PortabilityResult", "efficiency",
           "arithmetic_mean_phi", "harmonic_mean_phi", "portability_from_entries"]


def efficiency(portable_value: float, baseline_value: float,
               *, higher_is_better: bool = True) -> float:
    """Efficiency of a portable result relative to the vendor baseline.

    For throughput-style metrics (bandwidth, GFLOP/s) higher is better and
    ``e = portable / baseline``; for time-style metrics lower is better and
    ``e = baseline / portable``.
    """
    if portable_value <= 0 or baseline_value <= 0:
        raise ConfigurationError("efficiency requires positive metric values")
    if higher_is_better:
        return portable_value / baseline_value
    return baseline_value / portable_value


@dataclass(frozen=True)
class EfficiencyEntry:
    """One (workload configuration, platform) efficiency sample."""

    workload: str
    configuration: str
    platform: str
    efficiency: float


@dataclass
class PortabilityResult:
    """Φ for one workload over a platform set."""

    workload: str
    entries: List[EfficiencyEntry] = field(default_factory=list)

    @property
    def platforms(self) -> List[str]:
        return sorted({e.platform for e in self.entries})

    @property
    def phi(self) -> float:
        """Arithmetic-mean Φ over all entries (the paper's definition)."""
        return arithmetic_mean_phi([e.efficiency for e in self.entries])

    @property
    def phi_harmonic(self) -> float:
        """Harmonic-mean Φ (Pennycook's original formulation)."""
        return harmonic_mean_phi([e.efficiency for e in self.entries])

    def by_platform(self) -> Dict[str, List[EfficiencyEntry]]:
        out: Dict[str, List[EfficiencyEntry]] = {}
        for e in self.entries:
            out.setdefault(e.platform, []).append(e)
        return out

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows in the layout of the paper's Table 5."""
        rows = [
            {"workload": self.workload, "configuration": e.configuration,
             "platform": e.platform, "efficiency": e.efficiency}
            for e in self.entries
        ]
        rows.append({"workload": self.workload, "configuration": "Φ",
                     "platform": "all", "efficiency": self.phi})
        return rows


def arithmetic_mean_phi(efficiencies: Sequence[float]) -> float:
    """Arithmetic mean of efficiencies (Eq. 4's "application efficiency")."""
    vals = [float(v) for v in efficiencies]
    if not vals:
        raise ConfigurationError("cannot average an empty efficiency set")
    return sum(vals) / len(vals)


def harmonic_mean_phi(efficiencies: Sequence[float]) -> float:
    """Harmonic mean of efficiencies; 0 if any platform is unsupported (e=0)."""
    vals = [float(v) for v in efficiencies]
    if not vals:
        raise ConfigurationError("cannot average an empty efficiency set")
    if any(v <= 0 for v in vals):
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def portability_from_entries(workload: str,
                             samples: Iterable[Mapping]) -> PortabilityResult:
    """Build a :class:`PortabilityResult` from dict-like samples.

    Each sample needs ``configuration``, ``platform`` and ``efficiency`` keys.
    """
    result = PortabilityResult(workload)
    for s in samples:
        result.entries.append(EfficiencyEntry(
            workload=workload,
            configuration=str(s["configuration"]),
            platform=str(s["platform"]),
            efficiency=float(s["efficiency"]),
        ))
    if not result.entries:
        raise ConfigurationError(f"no efficiency samples provided for {workload!r}")
    return result
