"""Helium test systems for the Hartree–Fock proxy kernel.

The paper uses the basic Hartree–Fock proxy app's helium decks (64 to 1024
atoms, 3 or 6 Gaussian primitives per atom).  The original deck files are not
redistributed here; an equivalent generator places helium atoms on a cubic
lattice and attaches standard STO-nG style s-type contractions, which
produces the same computational structure (one contracted s function per
atom, ``ngauss`` primitives each) and realistic Schwarz screening behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ...core.errors import ConfigurationError

__all__ = ["HeSystem", "make_helium_system", "STO3G_HE_EXPONENTS",
           "STO3G_HE_COEFFS", "STO6G_HE_EXPONENTS", "STO6G_HE_COEFFS"]

#: STO-3G helium 1s exponents / contraction coefficients
STO3G_HE_EXPONENTS = (6.36242139, 1.158922999, 0.31364979)
STO3G_HE_COEFFS = (0.15432897, 0.53532814, 0.44463454)

#: STO-6G style helium 1s contraction (hydrogen STO-6G scaled by zeta^2 = 2.0925^2)
_HE_ZETA2 = 2.0925 ** 2
STO6G_HE_EXPONENTS = tuple(a * _HE_ZETA2 for a in (
    35.52322122, 6.513143725, 1.822142904, 0.625955266, 0.243076747, 0.100112428))
STO6G_HE_COEFFS = (0.00916359628, 0.04936149294, 0.16853830490,
                   0.37056279970, 0.41649152980, 0.13033408410)


@dataclass
class HeSystem:
    """A helium cluster with one contracted s basis function per atom."""

    #: atom (and basis function) count
    natoms: int
    #: primitives per contracted function
    ngauss: int
    #: (natoms, 3) positions in bohr
    geometry: np.ndarray
    #: (ngauss,) primitive exponents
    xpnt: np.ndarray
    #: (ngauss,) normalised contraction coefficients
    coef: np.ndarray
    #: (natoms, natoms) initial (symmetric) density matrix
    dens: np.ndarray

    def __post_init__(self):
        if self.geometry.shape != (self.natoms, 3):
            raise ConfigurationError(
                f"geometry must have shape ({self.natoms}, 3), got {self.geometry.shape}"
            )
        if self.xpnt.shape != (self.ngauss,) or self.coef.shape != (self.ngauss,):
            raise ConfigurationError("xpnt/coef must have shape (ngauss,)")
        if not np.allclose(self.dens, self.dens.T):
            raise ConfigurationError("density matrix must be symmetric")

    # ------------------------------------------------------------ properties
    @property
    def npairs(self) -> int:
        """Number of unique (i >= j) basis-function pairs."""
        return self.natoms * (self.natoms + 1) // 2

    @property
    def nquads(self) -> int:
        """Number of unique (ij >= kl) pair-of-pair quadruples."""
        n = self.npairs
        return n * (n + 1) // 2

    def pair_distances_sq(self) -> np.ndarray:
        """Squared distances of the unique pairs, ordered by triangular index."""
        i_idx, j_idx = triangular_pairs(self.natoms)
        diff = self.geometry[i_idx] - self.geometry[j_idx]
        return np.einsum("ij,ij->i", diff, diff)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeSystem(natoms={self.natoms}, ngauss={self.ngauss})"


def triangular_pairs(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return arrays (i, j) of the unique pairs in triangular-index order.

    The ordering matches :func:`decode_pair`: index ``ij`` corresponds to
    ``i = row(ij)``, ``j = ij - i*(i+1)/2`` with ``i >= j``.
    """
    i_list = []
    j_list = []
    for i in range(n):
        for j in range(i + 1):
            i_list.append(i)
            j_list.append(j)
    return np.asarray(i_list, dtype=np.int64), np.asarray(j_list, dtype=np.int64)


def normalise_coefficients(xpnt, coef) -> np.ndarray:
    """Fold the s-primitive normalisation constants into the coefficients."""
    xpnt = np.asarray(xpnt, dtype=np.float64)
    coef = np.asarray(coef, dtype=np.float64)
    norm = (2.0 * xpnt / np.pi) ** 0.75
    return coef * norm


def make_helium_system(natoms: int, ngauss: int = 3, *, spacing: float = 3.0,
                       density_decay: float = 0.2,
                       seed: int = 2025) -> HeSystem:
    """Create a helium lattice system.

    Parameters
    ----------
    natoms:
        Number of helium atoms (64, 128, 256, 1024 in the paper's Table 4).
    ngauss:
        Primitives per contracted function: 3 or 6.
    spacing:
        Lattice spacing in bohr; controls how aggressively Schwarz screening
        prunes distant quadruples.
    density_decay:
        Exponential decay of the off-diagonal density guess with distance.
    """
    if natoms <= 0:
        raise ConfigurationError("natoms must be positive")
    if ngauss == 3:
        xpnt = np.asarray(STO3G_HE_EXPONENTS)
        coef = np.asarray(STO3G_HE_COEFFS)
    elif ngauss == 6:
        xpnt = np.asarray(STO6G_HE_EXPONENTS)
        coef = np.asarray(STO6G_HE_COEFFS)
    else:
        raise ConfigurationError("ngauss must be 3 or 6")

    # Cubic lattice, filled in order, with a small deterministic jitter so no
    # two pair distances are exactly equal (mirrors a relaxed cluster).
    edge = int(np.ceil(natoms ** (1.0 / 3.0)))
    coords = []
    for idx in range(natoms):
        x = idx % edge
        y = (idx // edge) % edge
        z = idx // (edge * edge)
        coords.append((x, y, z))
    geometry = np.asarray(coords, dtype=np.float64) * spacing
    rng = np.random.default_rng(seed)
    geometry += rng.uniform(-0.05, 0.05, size=geometry.shape) * spacing

    # Closed-shell helium guess: 2 electrons in the 1s orbital of each atom,
    # with an exponentially decaying off-diagonal bond order.
    diff = geometry[:, None, :] - geometry[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    dens = 2.0 * np.exp(-density_decay * dist)
    dens = 0.5 * (dens + dens.T)

    return HeSystem(
        natoms=natoms,
        ngauss=ngauss,
        geometry=geometry,
        xpnt=xpnt.astype(np.float64),
        coef=normalise_coefficients(xpnt, coef),
        dens=dens,
    )
