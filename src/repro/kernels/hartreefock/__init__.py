"""Hartree–Fock two-electron Fock build (compute-bound with atomics)."""

from .basis import (
    HeSystem,
    STO3G_HE_COEFFS,
    STO3G_HE_EXPONENTS,
    STO6G_HE_COEFFS,
    STO6G_HE_EXPONENTS,
    make_helium_system,
    triangular_pairs,
)
from .eri import (
    boys_f0,
    boys_f0_array,
    contracted_eri,
    contracted_eri_batch,
    pair_schwarz,
)
from .kernel import (
    SCHWARZ_TOLERANCE,
    decode_pair,
    decode_pair_array,
    hartree_fock_kernel,
    hartree_fock_kernel_model,
)
from .reference import (
    eri_tensor,
    fock_direct_reference,
    fock_quadruple_reference,
    symmetrize,
    verify_fock,
)
from .runner import (
    HartreeFockResult,
    compute_schwarz,
    run_hartreefock,
    run_hartreefock_functional,
    surviving_quadruple_fraction,
)

__all__ = [
    "HeSystem", "STO3G_HE_COEFFS", "STO3G_HE_EXPONENTS", "STO6G_HE_COEFFS",
    "STO6G_HE_EXPONENTS", "make_helium_system", "triangular_pairs",
    "boys_f0", "boys_f0_array", "contracted_eri", "contracted_eri_batch",
    "pair_schwarz",
    "SCHWARZ_TOLERANCE", "decode_pair", "decode_pair_array",
    "hartree_fock_kernel", "hartree_fock_kernel_model",
    "eri_tensor", "fock_direct_reference", "fock_quadruple_reference",
    "symmetrize", "verify_fock",
    "HartreeFockResult", "compute_schwarz", "run_hartreefock",
    "run_hartreefock_functional", "surviving_quadruple_fraction",
]
