"""Reference Fock-matrix builders for the Hartree–Fock kernel.

Two independent formulations are provided:

* :func:`fock_quadruple_reference` — the same unique-quadruple accumulation
  the device kernel performs, written as plain host code.  Matches the device
  kernel bit-for-bit up to floating point associativity.
* :func:`fock_direct_reference` — the textbook closed-shell expression
  ``G_ij = sum_kl D_kl [(ij|kl) - 1/2 (ik|jl)]`` (the two-electron part of the
  Fock matrix for a density matrix that already carries the factor-2 orbital
  occupancy) built from the full ERI tensor.  The symmetrised quadruple
  result must agree with it, which is the physics-level check in the tests.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import VerificationError
from .basis import HeSystem
from .eri import contracted_eri_batch
from .kernel import SCHWARZ_TOLERANCE, decode_pair_array

__all__ = ["eri_tensor", "fock_direct_reference", "fock_quadruple_reference",
           "symmetrize", "verify_fock"]


#: quadruples evaluated per vectorised batch by the reference builders;
#: bounds the peak memory of the ``ngauss^4`` primitive intermediates
ERI_BATCH_CHUNK = 65536


def eri_tensor(system: HeSystem, *, chunk: int = ERI_BATCH_CHUNK) -> np.ndarray:
    """Full (natoms^4) ERI tensor; intended for small validation systems.

    Evaluated through :func:`contracted_eri_batch` in chunks of *chunk*
    quadruples, so only the primitive loop runs in Python.
    """
    n = system.natoms
    geom = system.geometry
    eri = np.empty(n ** 4, dtype=np.float64)
    for start in range(0, n ** 4, chunk):
        stop = min(start + chunk, n ** 4)
        flat = np.arange(start, stop, dtype=np.int64)
        i = flat // (n ** 3)
        j = (flat // (n ** 2)) % n
        k = (flat // n) % n
        l = flat % n
        eri[start:stop] = contracted_eri_batch(
            geom[i], geom[j], geom[k], geom[l], system.xpnt, system.coef)
    return eri.reshape(n, n, n, n)


def fock_direct_reference(system: HeSystem,
                          eri: np.ndarray = None) -> np.ndarray:
    """Closed-shell two-electron Fock matrix: ``G = J - K/2``.

    With the occupancy-weighted density matrix used by the proxy, the
    Coulomb term is ``J_ij = sum_kl D_kl (ij|kl)`` and the exchange term is
    ``K_ij = sum_kl D_kl (ik|jl)``.
    """
    if eri is None:
        eri = eri_tensor(system)
    dens = system.dens
    coulomb = np.einsum("ijkl,kl->ij", eri, dens)
    exchange = np.einsum("ikjl,kl->ij", eri, dens)
    return coulomb - 0.5 * exchange


def fock_quadruple_reference(system: HeSystem, *,
                             schwarz_tol: float = SCHWARZ_TOLERANCE,
                             schwarz: np.ndarray = None,
                             chunk: int = ERI_BATCH_CHUNK) -> np.ndarray:
    """Unique-quadruple accumulation, identical to the device kernel's math.

    The quadruple loop is evaluated in vectorised chunks: each chunk decodes
    its triangular indices, screens with the Schwarz bounds, evaluates the
    surviving ERIs through :func:`contracted_eri_batch` and scatters the six
    Coulomb/exchange contributions with ``np.add.at`` (an unbuffered
    accumulation, so repeated target indices within a chunk behave exactly
    like the device kernel's atomics).
    """
    n = system.natoms
    geom = system.geometry
    dens = system.dens
    fock = np.zeros((n, n), dtype=np.float64)
    npairs = n * (n + 1) // 2
    nquads = npairs * (npairs + 1) // 2

    for start in range(0, nquads, chunk):
        stop = min(start + chunk, nquads)
        ij, kl = decode_pair_array(np.arange(start, stop, dtype=np.int64))
        if schwarz is not None:
            keep = schwarz[ij] * schwarz[kl] >= schwarz_tol
            ij, kl = ij[keep], kl[keep]
            if ij.size == 0:
                continue
        i, j = decode_pair_array(ij)
        k, l = decode_pair_array(kl)
        eri = contracted_eri_batch(geom[i], geom[j], geom[k], geom[l],
                                   system.xpnt, system.coef)
        # Symmetry weights for the unique-quadruple formulation.
        eri[i == j] *= 0.5
        eri[k == l] *= 0.5
        eri[(i == k) & (j == l)] *= 0.5
        np.add.at(fock, (i, j), dens[k, l] * eri * 4.0)
        np.add.at(fock, (k, l), dens[i, j] * eri * 4.0)
        np.add.at(fock, (i, k), dens[j, l] * eri * -1.0)
        np.add.at(fock, (i, l), dens[j, k] * eri * -1.0)
        np.add.at(fock, (j, k), dens[i, l] * eri * -1.0)
        np.add.at(fock, (j, l), dens[i, k] * eri * -1.0)
    return fock


def symmetrize(fock: np.ndarray) -> np.ndarray:
    """Average a Fock accumulation with its transpose."""
    return 0.5 * (fock + fock.T)


def verify_fock(computed: np.ndarray, expected: np.ndarray, *,
                rtol: float = 1e-9) -> float:
    """Maximum relative difference between two Fock matrices.

    Raises :class:`VerificationError` above *rtol*.
    """
    computed = np.asarray(computed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if computed.shape != expected.shape:
        raise VerificationError(
            f"Fock matrix shape {computed.shape} != expected {expected.shape}"
        )
    scale = max(float(np.max(np.abs(expected))), 1e-30)
    err = float(np.max(np.abs(computed - expected)) / scale)
    if err > rtol:
        raise VerificationError(
            f"Fock verification failed: max relative error {err:.3e} > {rtol:.1e}",
            max_rel_error=err,
        )
    return err
