"""Reference Fock-matrix builders for the Hartree–Fock kernel.

Two independent formulations are provided:

* :func:`fock_quadruple_reference` — the same unique-quadruple accumulation
  the device kernel performs, written as plain host code.  Matches the device
  kernel bit-for-bit up to floating point associativity.
* :func:`fock_direct_reference` — the textbook closed-shell expression
  ``G_ij = sum_kl D_kl [(ij|kl) - 1/2 (ik|jl)]`` (the two-electron part of the
  Fock matrix for a density matrix that already carries the factor-2 orbital
  occupancy) built from the full ERI tensor.  The symmetrised quadruple
  result must agree with it, which is the physics-level check in the tests.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import VerificationError
from .basis import HeSystem
from .eri import contracted_eri
from .kernel import SCHWARZ_TOLERANCE, decode_pair

__all__ = ["eri_tensor", "fock_direct_reference", "fock_quadruple_reference",
           "symmetrize", "verify_fock"]


def eri_tensor(system: HeSystem) -> np.ndarray:
    """Full (natoms^4) ERI tensor; intended for small validation systems."""
    n = system.natoms
    geom = system.geometry
    eri = np.zeros((n, n, n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                for l in range(n):
                    eri[i, j, k, l] = contracted_eri(
                        geom[i], geom[j], geom[k], geom[l],
                        system.xpnt, system.coef)
    return eri


def fock_direct_reference(system: HeSystem,
                          eri: np.ndarray = None) -> np.ndarray:
    """Closed-shell two-electron Fock matrix: ``G = J - K/2``.

    With the occupancy-weighted density matrix used by the proxy, the
    Coulomb term is ``J_ij = sum_kl D_kl (ij|kl)`` and the exchange term is
    ``K_ij = sum_kl D_kl (ik|jl)``.
    """
    if eri is None:
        eri = eri_tensor(system)
    dens = system.dens
    coulomb = np.einsum("ijkl,kl->ij", eri, dens)
    exchange = np.einsum("ikjl,kl->ij", eri, dens)
    return coulomb - 0.5 * exchange


def fock_quadruple_reference(system: HeSystem, *,
                             schwarz_tol: float = SCHWARZ_TOLERANCE,
                             schwarz: np.ndarray = None) -> np.ndarray:
    """Unique-quadruple accumulation, identical to the device kernel's math."""
    n = system.natoms
    geom = system.geometry
    dens = system.dens
    fock = np.zeros((n, n), dtype=np.float64)
    npairs = n * (n + 1) // 2
    nquads = npairs * (npairs + 1) // 2

    for ijkl in range(nquads):
        ij, kl = decode_pair(ijkl)
        if schwarz is not None and schwarz[ij] * schwarz[kl] < schwarz_tol:
            continue
        i, j = decode_pair(ij)
        k, l = decode_pair(kl)
        eri = contracted_eri(geom[i], geom[j], geom[k], geom[l],
                             system.xpnt, system.coef)
        if i == j:
            eri *= 0.5
        if k == l:
            eri *= 0.5
        if i == k and j == l:
            eri *= 0.5
        fock[i, j] += dens[k, l] * eri * 4.0
        fock[k, l] += dens[i, j] * eri * 4.0
        fock[i, k] -= dens[j, l] * eri
        fock[i, l] -= dens[j, k] * eri
        fock[j, k] -= dens[i, l] * eri
        fock[j, l] -= dens[i, k] * eri
    return fock


def symmetrize(fock: np.ndarray) -> np.ndarray:
    """Average a Fock accumulation with its transpose."""
    return 0.5 * (fock + fock.T)


def verify_fock(computed: np.ndarray, expected: np.ndarray, *,
                rtol: float = 1e-9) -> float:
    """Maximum relative difference between two Fock matrices.

    Raises :class:`VerificationError` above *rtol*.
    """
    computed = np.asarray(computed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if computed.shape != expected.shape:
        raise VerificationError(
            f"Fock matrix shape {computed.shape} != expected {expected.shape}"
        )
    scale = max(float(np.max(np.abs(expected))), 1e-30)
    err = float(np.max(np.abs(computed - expected)) / scale)
    if err > rtol:
        raise VerificationError(
            f"Fock verification failed: max relative error {err:.3e} > {rtol:.1e}"
        )
    return err
