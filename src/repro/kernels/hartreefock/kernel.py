"""Hartree–Fock ERI device kernel (paper Listing 5).

One thread handles one unique quadruple of basis-function pairs
``(ij, kl)`` with ``i >= j``, ``k >= l`` and ``ij >= kl``: it evaluates the
contracted two-electron integral over the ``ngauss^4`` primitive products
(with Schwarz screening) and scatters the six Coulomb/exchange contributions
into the Fock matrix with atomic additions.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.atomics import Atomic
from ...core.dtypes import DType
from ...core.intrinsics import (
    any_lane,
    block_dim,
    block_idx,
    compress_lanes,
    lane_where,
    thread_idx,
)
from ...core.kernel import KernelModel, MemoryPattern, kernel
from .eri import boys_f0, TWO_PI_POW_2_5

__all__ = ["hartree_fock_kernel", "hartree_fock_kernel_model",
           "decode_pair", "decode_pair_array", "SCHWARZ_TOLERANCE"]

#: default Schwarz screening tolerance (matches the proxy's dtol)
SCHWARZ_TOLERANCE = 1e-9


def decode_pair(idx: int) -> tuple:
    """Decode a triangular index into ``(row, col)`` with ``row >= col``.

    The inverse of ``idx = row*(row+1)/2 + col``.  Per-lane index arrays
    (the vectorized executor) dispatch to :func:`decode_pair_array`; both
    forms produce identical integer results.
    """
    if isinstance(idx, np.ndarray):
        return decode_pair_array(idx)
    row = int((math.sqrt(8.0 * idx + 1.0) - 1.0) / 2.0)
    # Guard against floating point rounding at triangle boundaries.
    while (row + 1) * (row + 2) // 2 <= idx:
        row += 1
    while row * (row + 1) // 2 > idx:
        row -= 1
    col = idx - row * (row + 1) // 2
    return row, col


def decode_pair_array(idx) -> tuple:
    """Vectorised :func:`decode_pair`: decode an array of triangular indices.

    Returns ``(row, col)`` int64 arrays with ``row >= col`` elementwise.
    """
    idx = np.asarray(idx, dtype=np.int64)
    row = ((np.sqrt(8.0 * idx + 1.0) - 1.0) / 2.0).astype(np.int64)
    # Same rounding guards as the scalar decode, applied until stable (at
    # most a couple of iterations for any representable index).
    while True:
        low = (row + 1) * (row + 2) // 2 <= idx
        if not low.any():
            break
        row[low] += 1
    while True:
        high = row * (row + 1) // 2 > idx
        if not high.any():
            break
        row[high] -= 1
    col = idx - row * (row + 1) // 2
    return row, col


@kernel(name="hartree_fock_kernel", vector_safe=True, strict=True)
def hartree_fock_kernel(ngauss, natoms, nquads, schwarz, schwarz_tol,
                        xpnt, coef, geom, dens, fock):
    """Accumulate the two-electron part of the Fock matrix for one quadruple.

    ``geom`` is a rank-2 tensor ``(natoms, 3)``; ``dens``/``fock`` are rank-2
    ``(natoms, natoms)`` tensors; ``schwarz`` holds the pair bounds in
    triangular order; ``xpnt``/``coef`` hold the primitive exponents and
    normalised contraction coefficients.

    Vector-safe form: the launch-tail and Schwarz-screening early exits are
    staged ``any_lane``/``compress_lanes`` guards (surviving lanes carry on),
    the symmetry weights are per-lane selects, and the six Fock updates use
    the lane-vector atomic form (``np.add.at`` semantics — identical
    ascending-lane accumulation order to the scalar executors).
    """
    ijkl = block_idx.x * block_dim.x + thread_idx.x
    m = ijkl < nquads
    if not any_lane(m):
        return
    ijkl = compress_lanes(m, ijkl)

    ij, kl = decode_pair(ijkl)
    keep = schwarz[ij] * schwarz[kl] >= schwarz_tol
    if not any_lane(keep):
        return
    ij, kl = compress_lanes(keep, ij, kl)

    i, j = decode_pair(ij)
    k, l = decode_pair(kl)

    ax, ay, az = geom[i, 0], geom[i, 1], geom[i, 2]
    bx, by, bz = geom[j, 0], geom[j, 1], geom[j, 2]
    cx, cy, cz = geom[k, 0], geom[k, 1], geom[k, 2]
    dx, dy, dz = geom[l, 0], geom[l, 1], geom[l, 2]

    rab2 = (ax - bx) ** 2 + (ay - by) ** 2 + (az - bz) ** 2
    rcd2 = (cx - dx) ** 2 + (cy - dy) ** 2 + (cz - dz) ** 2

    # Four nested loops over the Gaussian primitives.
    eri = 0.0
    for ib in range(ngauss):
        for jb in range(ngauss):
            aij = xpnt[ib] + xpnt[jb]
            dij = coef[ib] * coef[jb] * np.exp(-xpnt[ib] * xpnt[jb] / aij * rab2)
            pijx = (xpnt[ib] * ax + xpnt[jb] * bx) / aij
            pijy = (xpnt[ib] * ay + xpnt[jb] * by) / aij
            pijz = (xpnt[ib] * az + xpnt[jb] * bz) / aij
            for kb in range(ngauss):
                for lb in range(ngauss):
                    akl = xpnt[kb] + xpnt[lb]
                    dkl = coef[kb] * coef[lb] * np.exp(
                        -xpnt[kb] * xpnt[lb] / akl * rcd2)
                    pklx = (xpnt[kb] * cx + xpnt[lb] * dx) / akl
                    pkly = (xpnt[kb] * cy + xpnt[lb] * dy) / akl
                    pklz = (xpnt[kb] * cz + xpnt[lb] * dz) / akl
                    rpq2 = ((pijx - pklx) ** 2 + (pijy - pkly) ** 2
                            + (pijz - pklz) ** 2)
                    aijkl = aij * akl / (aij + akl)
                    f0t = boys_f0(aijkl * rpq2)
                    prefac = TWO_PI_POW_2_5 / (aij * akl * math.sqrt(aij + akl))
                    eri = eri + dij * dkl * prefac * f0t

    # Symmetry weights for the unique-quadruple formulation.
    eri = eri * lane_where(i == j, 0.5, 1.0)
    eri = eri * lane_where(k == l, 0.5, 1.0)
    eri = eri * lane_where((i == k) & (j == l), 0.5, 1.0)

    # Six atomic Fock matrix updates (2 Coulomb, 4 exchange).
    Atomic.fetch_add(fock, (i, j), dens[k, l] * eri * 4.0)
    Atomic.fetch_add(fock, (k, l), dens[i, j] * eri * 4.0)
    Atomic.fetch_add(fock, (i, k), dens[j, l] * eri * -1.0)
    Atomic.fetch_add(fock, (i, l), dens[j, k] * eri * -1.0)
    Atomic.fetch_add(fock, (j, k), dens[i, l] * eri * -1.0)
    Atomic.fetch_add(fock, (j, l), dens[i, k] * eri * -1.0)


def hartree_fock_kernel_model(*, natoms: int, ngauss: int,
                              surviving_fraction: float = 1.0) -> KernelModel:
    """Analytic resource model of the ERI kernel per launched thread.

    FLOP/special-function counts are averaged over launched threads using the
    Schwarz survival fraction (screened-out threads exit after two loads).
    """
    g4 = float(ngauss) ** 4
    g2 = float(ngauss) ** 2
    s = max(min(surviving_fraction, 1.0), 0.0)
    # The geometry, exponents, coefficients and density matrix all fit in the
    # last-level cache (a 256-atom system needs ~0.5 MB for the density), so
    # per-thread DRAM traffic is only the Schwarz lookups plus a handful of
    # cache misses; the Fock updates are accounted as atomics.
    return KernelModel(
        name="hartree_fock_eri",
        dtype=DType.float64,
        loads_global=2.0 + s * 6.0,
        stores_global=0.0,
        flops=s * (22.0 * g4 + 8.0 * g2 + 30.0),
        int_ops=20.0 + s * 10.0 * g4,
        transcendentals=s * (2.0 * g4 + g2),   # exp + erf per primitive quartet
        divides=s * (2.0 * g4 + 6.0),          # sqrt / reciprocal per quartet
        atomics=s * 6.0,
        scalar_args=4,
        working_values=28 + 2 * int(g2),
        memory_pattern=MemoryPattern.GATHER,
        active_fraction=1.0,
        notes=f"natoms={natoms}, ngauss={ngauss}, survivors={s:.3f}",
    )
