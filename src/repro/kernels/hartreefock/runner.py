"""High-level runner for the Hartree–Fock workload (Table 4).

Three execution paths with very different cost envelopes meet here:

* functional verification (:func:`run_hartreefock_functional`) drives the
  device kernel thread-by-thread through the simulator — use only for the
  small ``verify_natoms`` systems;
* the expected Fock matrix comes from the *batched* ERI reference
  (:func:`~repro.kernels.hartreefock.reference.fock_quadruple_reference`),
  which vectorises everything except the ``ngauss^4`` primitive loop and
  handles hundreds of atoms in seconds;
* the Table 4 timings come from the analytic backend model — no ERI is
  evaluated at all, so ``natoms=1024`` costs no more than ``natoms=64``
  beyond the Schwarz-bound computation.

The benchmark engine itself lives in :mod:`repro.workloads.hartreefock`;
:func:`run_hartreefock` remains as a thin deprecated shim over it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ...core.device import DeviceContext
from ...core.dtypes import DType
from ...core.kernel import LaunchConfig
from ...core.layout import Layout
from ...gpu.timing import TimingBreakdown
from .basis import HeSystem, make_helium_system, triangular_pairs
from .eri import pair_schwarz, schwarz_identical_basis
from .kernel import (
    SCHWARZ_TOLERANCE,
    hartree_fock_kernel,
    hartree_fock_kernel_model,
)
from .reference import fock_quadruple_reference, verify_fock

__all__ = ["HartreeFockResult", "run_hartreefock", "run_hartreefock_functional",
           "surviving_quadruple_fraction"]

#: block size used by the proxy's GPU ports
DEFAULT_BLOCK_SIZE = 256

#: systems at or above this size use the distance-interpolated Schwarz bounds
#: when counting surviving quadruples for the timing model
APPROX_SCHWARZ_NATOMS = 512


@dataclass
class HartreeFockResult:
    """Result of one Hartree–Fock configuration."""

    natoms: int
    ngauss: int
    backend: str
    gpu: str
    kernel_time_ms: float
    nquads: int
    surviving_fraction: float
    verified: bool
    max_rel_error: float
    timing: TimingBreakdown


def compute_schwarz(system: HeSystem, *, approximate: bool = False) -> np.ndarray:
    """Schwarz bounds for every unique basis-function pair of *system*.

    ``approximate=True`` switches to the distance-interpolation fast path
    (exact for identical basis functions up to interpolation error), which is
    what large systems (512+ atoms) use.
    """
    if approximate:
        return schwarz_identical_basis(system.pair_distances_sq(),
                                       system.xpnt, system.coef)
    pair_i, pair_j = triangular_pairs(system.natoms)
    return pair_schwarz(system.geometry, pair_i, pair_j, system.xpnt,
                        system.coef)


def surviving_quadruple_fraction(schwarz: np.ndarray,
                                 tol: float = SCHWARZ_TOLERANCE) -> float:
    """Fraction of unique (ij >= kl) quadruples that pass Schwarz screening.

    Computed exactly in O(npairs log npairs) by sorting the pair bounds: a
    quadruple survives when ``schwarz[ij] * schwarz[kl] >= tol``.
    """
    s = np.sort(np.asarray(schwarz, dtype=np.float64))
    n = len(s)
    if n == 0:
        return 0.0
    total = n * (n + 1) // 2
    # For each ij (value v), the partners kl <= ij that survive are those with
    # s[kl] >= tol / v.  Work on the sorted array and count pairs (p <= q).
    surviving = 0
    with np.errstate(divide="ignore"):
        thresholds = np.where(s > 0, tol / s, np.inf)
    # index of first element >= threshold for each q
    firsts = np.searchsorted(s, thresholds, side="left")
    for q in range(n):
        lo = firsts[q]
        if lo > q:
            continue
        surviving += q - lo + 1
    return surviving / total


def run_hartreefock_functional(natoms: int = 4, ngauss: int = 3, *,
                               gpu: str = "h100",
                               block_size: int = 16,
                               spacing: float = 2.5,
                               schwarz_tol: float = 0.0,
                               executor: str = "auto",
                               streams: int = 1,
                               pipeline_sink: Optional[dict] = None,
                               ) -> Tuple[np.ndarray, float]:
    """Run the device kernel functionally on a small system and verify it.

    Returns ``(fock, max_rel_error)`` against the host quadruple reference.
    ``schwarz_tol=0`` disables screening so every quadruple is exercised.
    ``executor`` selects the simulator mode (``"auto"`` is lockstep
    vectorized); ``streams > 1`` spreads the six input uploads round-robin
    over that many H2D streams with the kernel event-ordered behind them
    (identical numerics, overlapped modelled pipeline).  *pipeline_sink*
    receives the context's :class:`~repro.core.device.PipelineTiming` under
    ``"pipeline"`` when given.
    """
    system = make_helium_system(natoms, ngauss, spacing=spacing)
    schwarz = compute_schwarz(system)
    nquads = system.nquads

    ctx = DeviceContext(gpu)
    n = system.natoms
    pool, compute = ctx.upload_pipeline(streams)
    lanes = itertools.cycle(pool)

    def make_tensor(data, shape, label, dtype=DType.float64):
        flat = np.asarray(data, dtype=np.float64).reshape(-1)
        buf = ctx.enqueue_create_buffer(dtype, flat.size, label=label)
        buf.copy_from_host(flat, stream=next(lanes))
        return buf, buf.tensor(Layout.row_major(*shape), bounds_check=False)

    _, schwarz_t = make_tensor(schwarz, (len(schwarz),), "schwarz")
    _, xpnt_t = make_tensor(system.xpnt, (ngauss,), "xpnt")
    _, coef_t = make_tensor(system.coef, (ngauss,), "coef")
    _, geom_t = make_tensor(system.geometry, (n, 3), "geom")
    _, dens_t = make_tensor(system.dens, (n, n), "dens")
    fock_buf, fock_t = make_tensor(np.zeros((n, n)), (n, n), "fock")

    launch = LaunchConfig.for_elements(nquads, block_size)
    ctx.fan_in(pool, compute, prefix="uploads")
    survivors = (surviving_quadruple_fraction(schwarz, schwarz_tol)
                 if schwarz_tol > 0 else 1.0)
    ctx.enqueue_function(
        hartree_fock_kernel, ngauss, n, nquads, schwarz_t, schwarz_tol,
        xpnt_t, coef_t, geom_t, dens_t, fock_t,
        grid_dim=launch.grid_dim, block_dim=launch.block_dim, mode=executor,
        model=hartree_fock_kernel_model(natoms=n, ngauss=ngauss,
                                        surviving_fraction=survivors),
        stream=compute,
    )
    ctx.synchronize()

    fock = fock_buf.copy_to_host(stream=compute).reshape(n, n)
    if pipeline_sink is not None:
        pipeline_sink["pipeline"] = ctx.pipeline_breakdown()
    expected = fock_quadruple_reference(system, schwarz_tol=schwarz_tol,
                                        schwarz=schwarz if schwarz_tol > 0 else None)
    err = verify_fock(fock, expected)
    return fock, err


def run_hartreefock(**kwargs) -> HartreeFockResult:
    """Benchmark one Hartree–Fock configuration (Table 4).

    .. deprecated::
        Thin shim over the unified Workload API; prefer
        ``repro.workloads.get_workload("hartreefock")`` with a
        :class:`~repro.workloads.RunRequest`.  The benchmark engine lives in
        :func:`repro.workloads.hartreefock.bench_hartreefock` and keeps this
        function's exact signature and semantics.
    """
    from ...workloads.hartreefock import bench_hartreefock

    return bench_hartreefock(**kwargs)
