"""Electron-repulsion integrals over contracted s-type Gaussians.

Shared by the device kernel, the NumPy reference and the Schwarz-screening
machinery so that every code path evaluates exactly the same integral.

For normalised primitives with exponents ``a, b, c, d`` centred at
``A, B, C, D`` the (ss|ss) integral is::

    p   = a + b                q   = c + d
    P   = (aA + bB) / p        Q   = (cC + dD) / q
    rho = p q / (p + q)
    (ab|cd) = 2 pi^2.5 / (p q sqrt(p+q))
              * exp(-a b/p |A-B|^2 - c d/q |C-D|^2)
              * F0(rho |P-Q|^2)

where ``F0`` is the zeroth Boys function.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["boys_f0", "boys_f0_array", "contracted_eri", "contracted_eri_batch",
           "pair_schwarz", "schwarz_identical_basis", "TWO_PI_POW_2_5"]

TWO_PI_POW_2_5 = 2.0 * math.pi ** 2.5

#: below this argument the Boys function uses its Taylor expansion
_F0_SMALL = 1e-12


def boys_f0(t: float) -> float:
    """Zeroth-order Boys function ``F0(t)``.

    Scalar arguments use the ``math``-library evaluation; per-lane arrays
    (the vectorized executor) dispatch to :func:`boys_f0_array`, so one
    kernel body serves both execution regimes.
    """
    if isinstance(t, np.ndarray):
        return boys_f0_array(t)
    if t < _F0_SMALL:
        return 1.0 - t / 3.0
    st = math.sqrt(t)
    return 0.5 * math.sqrt(math.pi / t) * math.erf(st)


def boys_f0_array(t: np.ndarray) -> np.ndarray:
    """Vectorised zeroth-order Boys function (NumPy implementation)."""
    t = np.asarray(t, dtype=np.float64)
    t_safe = np.where(t < _F0_SMALL, 1.0, t)
    with np.errstate(invalid="ignore", divide="ignore"):
        large = 0.5 * np.sqrt(np.pi / t_safe) * _erf(np.sqrt(t_safe))
    small = 1.0 - t / 3.0
    return np.where(t < _F0_SMALL, small, large)


try:  # SciPy gives the exact vectorised erf; fall back to a rational fit.
    from scipy.special import erf as _scipy_erf
except ImportError:  # pragma: no cover - exercised only without SciPy
    _scipy_erf = None


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (SciPy when available).

    The fallback is the Abramowitz & Stegun 7.1.26 rational approximation
    (absolute error below 1.5e-7), sufficient for Schwarz screening.
    """
    if _scipy_erf is not None:
        return _scipy_erf(x)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (0.254829592 + t * (-0.284496736 + t * (1.421413741 +
               t * (-1.453152027 + t * 1.061405429))))
    return sign * (1.0 - poly * np.exp(-ax * ax))


def contracted_eri(
    pos_a: Sequence[float], pos_b: Sequence[float],
    pos_c: Sequence[float], pos_d: Sequence[float],
    xpnt: Sequence[float], coef: Sequence[float],
) -> float:
    """Contracted (ss|ss) ERI over four centres (scalar, loop implementation).

    This is the exact arithmetic executed per surviving quadruple by the
    device kernel; the coefficients are expected to already include the
    primitive normalisation (see :func:`normalise_coefficients`).
    """
    ax, ay, az = float(pos_a[0]), float(pos_a[1]), float(pos_a[2])
    bx, by, bz = float(pos_b[0]), float(pos_b[1]), float(pos_b[2])
    cx, cy, cz = float(pos_c[0]), float(pos_c[1]), float(pos_c[2])
    dx, dy, dz = float(pos_d[0]), float(pos_d[1]), float(pos_d[2])

    rab2 = (ax - bx) ** 2 + (ay - by) ** 2 + (az - bz) ** 2
    rcd2 = (cx - dx) ** 2 + (cy - dy) ** 2 + (cz - dz) ** 2

    ngauss = len(xpnt)
    eri = 0.0
    for ib in range(ngauss):
        for jb in range(ngauss):
            aij = xpnt[ib] + xpnt[jb]
            dij = coef[ib] * coef[jb] * math.exp(-xpnt[ib] * xpnt[jb] / aij * rab2)
            if dij == 0.0:
                continue
            pijx = (xpnt[ib] * ax + xpnt[jb] * bx) / aij
            pijy = (xpnt[ib] * ay + xpnt[jb] * by) / aij
            pijz = (xpnt[ib] * az + xpnt[jb] * bz) / aij
            for kb in range(ngauss):
                for lb in range(ngauss):
                    akl = xpnt[kb] + xpnt[lb]
                    dkl = coef[kb] * coef[lb] * math.exp(
                        -xpnt[kb] * xpnt[lb] / akl * rcd2)
                    if dkl == 0.0:
                        continue
                    pklx = (xpnt[kb] * cx + xpnt[lb] * dx) / akl
                    pkly = (xpnt[kb] * cy + xpnt[lb] * dy) / akl
                    pklz = (xpnt[kb] * cz + xpnt[lb] * dz) / akl
                    rpq2 = ((pijx - pklx) ** 2 + (pijy - pkly) ** 2
                            + (pijz - pklz) ** 2)
                    aijkl = aij * akl / (aij + akl)
                    f0t = boys_f0(aijkl * rpq2)
                    prefac = TWO_PI_POW_2_5 / (aij * akl * math.sqrt(aij + akl))
                    eri += dij * dkl * prefac * f0t
    return eri


def contracted_eri_batch(
    pos_a: np.ndarray, pos_b: np.ndarray,
    pos_c: np.ndarray, pos_d: np.ndarray,
    xpnt: Sequence[float], coef: Sequence[float],
) -> np.ndarray:
    """Contracted (ss|ss) ERIs for arrays of centre quadruples at once.

    ``pos_a .. pos_d`` are ``(N, 3)`` arrays (one row per quadruple); the
    return value is the ``(N,)`` array of integrals.  The arithmetic is the
    same term-by-term accumulation as the scalar :func:`contracted_eri` (the
    bit-level oracle), with the per-quadruple work vectorised so only the
    ``ngauss^4`` primitive-product loop remains in Python.
    """
    pos_a = np.atleast_2d(np.asarray(pos_a, dtype=np.float64))
    pos_b = np.atleast_2d(np.asarray(pos_b, dtype=np.float64))
    pos_c = np.atleast_2d(np.asarray(pos_c, dtype=np.float64))
    pos_d = np.atleast_2d(np.asarray(pos_d, dtype=np.float64))
    xpnt = np.asarray(xpnt, dtype=np.float64)
    coef = np.asarray(coef, dtype=np.float64)
    ngauss = len(xpnt)

    diff_ab = pos_a - pos_b
    diff_cd = pos_c - pos_d
    rab2 = np.einsum("ij,ij->i", diff_ab, diff_ab)
    rcd2 = np.einsum("ij,ij->i", diff_cd, diff_cd)

    # Precompute the primitive-pair quantities for the bra (a, b) and ket
    # (c, d) sides: ngauss^2 exponential prefactors and product centres each,
    # instead of ngauss^4 of them inside the combined loop.
    bra = []  # (aij, dij(N,), pij(N,3)) per (ib, jb)
    ket = []  # (akl, dkl(N,), pkl(N,3)) per (kb, lb)
    for ib in range(ngauss):
        for jb in range(ngauss):
            aij = xpnt[ib] + xpnt[jb]
            dij = coef[ib] * coef[jb] * np.exp(-xpnt[ib] * xpnt[jb] / aij * rab2)
            pij = (xpnt[ib] * pos_a + xpnt[jb] * pos_b) / aij
            bra.append((aij, dij, pij))
    for kb in range(ngauss):
        for lb in range(ngauss):
            akl = xpnt[kb] + xpnt[lb]
            dkl = coef[kb] * coef[lb] * np.exp(-xpnt[kb] * xpnt[lb] / akl * rcd2)
            pkl = (xpnt[kb] * pos_c + xpnt[lb] * pos_d) / akl
            ket.append((akl, dkl, pkl))

    eri = np.zeros(pos_a.shape[0], dtype=np.float64)
    for aij, dij, pij in bra:
        for akl, dkl, pkl in ket:
            dpq = pij - pkl
            rpq2 = np.einsum("ij,ij->i", dpq, dpq)
            aijkl = aij * akl / (aij + akl)
            f0t = boys_f0_array(aijkl * rpq2)
            prefac = TWO_PI_POW_2_5 / (aij * akl * math.sqrt(aij + akl))
            eri += dij * dkl * prefac * f0t
    return eri


def pair_schwarz(positions: np.ndarray, pair_i: np.ndarray, pair_j: np.ndarray,
                 xpnt: np.ndarray, coef: np.ndarray, *,
                 chunk: int = 65536, approximate: bool = False) -> np.ndarray:
    """Schwarz bounds ``sqrt((ij|ij))`` for a list of basis-function pairs.

    ``approximate=True`` keeps only the dominant (most diffuse) primitive,
    which is accurate enough for the *counting* use of screening in the
    timing model and keeps the 1024-atom case cheap.
    """
    positions = np.asarray(positions, dtype=np.float64)
    xpnt = np.asarray(xpnt, dtype=np.float64)
    coef = np.asarray(coef, dtype=np.float64)
    if approximate:
        keep = int(np.argmax(np.abs(coef)))
        xpnt = xpnt[keep:keep + 1]
        coef = coef[keep:keep + 1]
    ngauss = len(xpnt)

    out = np.empty(len(pair_i), dtype=np.float64)
    for start in range(0, len(pair_i), chunk):
        stop = min(start + chunk, len(pair_i))
        a_pos = positions[pair_i[start:stop]]
        b_pos = positions[pair_j[start:stop]]
        rab2 = np.einsum("ij,ij->i", a_pos - b_pos, a_pos - b_pos)

        eri = np.zeros(stop - start, dtype=np.float64)
        for ib in range(ngauss):
            for jb in range(ngauss):
                aij = xpnt[ib] + xpnt[jb]
                dij = coef[ib] * coef[jb] * np.exp(-xpnt[ib] * xpnt[jb] / aij * rab2)
                pij = (xpnt[ib] * a_pos + xpnt[jb] * b_pos) / aij
                for kb in range(ngauss):
                    for lb in range(ngauss):
                        akl = xpnt[kb] + xpnt[lb]
                        dkl = coef[kb] * coef[lb] * np.exp(
                            -xpnt[kb] * xpnt[lb] / akl * rab2)
                        pkl = (xpnt[kb] * a_pos + xpnt[lb] * b_pos) / akl
                        rpq2 = np.einsum("ij,ij->i", pij - pkl, pij - pkl)
                        aijkl = aij * akl / (aij + akl)
                        prefac = TWO_PI_POW_2_5 / (aij * akl * np.sqrt(aij + akl))
                        eri += dij * dkl * prefac * boys_f0_array(aijkl * rpq2)
        out[start:stop] = np.sqrt(np.maximum(eri, 0.0))
    return out


def schwarz_identical_basis(rab2: np.ndarray, xpnt: np.ndarray, coef: np.ndarray,
                            *, samples: int = 4096) -> np.ndarray:
    """Schwarz bounds for pairs of *identical* s-type contractions.

    When every basis function shares the same exponents and coefficients (the
    helium decks), the bound ``sqrt((ij|ij))`` depends only on the squared
    centre distance, so it can be tabulated exactly on a distance grid and
    interpolated.  This keeps the 1024-atom case (half a million pairs with
    1296 primitive products each) inexpensive without giving up accuracy.
    """
    rab2 = np.asarray(rab2, dtype=np.float64)
    if rab2.size == 0:
        return np.zeros(0, dtype=np.float64)
    r2max = float(np.max(rab2))
    grid = np.linspace(0.0, r2max, samples)
    xpnt = np.asarray(xpnt, dtype=np.float64)
    coef = np.asarray(coef, dtype=np.float64)
    ngauss = len(xpnt)

    eri = np.zeros_like(grid)
    for ib in range(ngauss):
        for jb in range(ngauss):
            aij = xpnt[ib] + xpnt[jb]
            dij = coef[ib] * coef[jb] * np.exp(-xpnt[ib] * xpnt[jb] / aij * grid)
            # Centre of the (i, j) product along the A-B axis, as a fraction.
            fij = xpnt[jb] / aij
            for kb in range(ngauss):
                for lb in range(ngauss):
                    akl = xpnt[kb] + xpnt[lb]
                    dkl = coef[kb] * coef[lb] * np.exp(
                        -xpnt[kb] * xpnt[lb] / akl * grid)
                    fkl = xpnt[lb] / akl
                    rpq2 = (fij - fkl) ** 2 * grid
                    aijkl = aij * akl / (aij + akl)
                    prefac = TWO_PI_POW_2_5 / (aij * akl * np.sqrt(aij + akl))
                    eri += dij * dkl * prefac * boys_f0_array(aijkl * rpq2)
    table = np.sqrt(np.maximum(eri, 0.0))
    return np.interp(rab2, grid, table)
