"""High-level runner for the seven-point stencil workload.

Combines the problem setup, the device kernel (functional verification), the
vectorized reference and the backend timing model into one call that returns
everything Figure 3 and Table 2 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...backends import get_backend
from ...core.device import DeviceContext
from ...core.dtypes import DType
from ...core.intrinsics import ceildiv
from ...core.kernel import LaunchConfig
from ...core.layout import Layout
from ...gpu.specs import get_gpu
from ...gpu.timing import TimingBreakdown
from .kernel import laplacian_kernel, stencil_kernel_model
from .metrics import effective_bandwidth_gbs
from .problem import StencilProblem
from .reference import laplacian_reference, verify_laplacian

__all__ = ["StencilResult", "run_stencil", "verify_stencil_kernel",
           "stencil_launch_config"]

#: problem sizes at or below this edge length are verified with the
#: thread-level functional simulator (larger sizes use the NumPy reference)
FUNCTIONAL_VERIFY_MAX_L = 34


@dataclass
class StencilResult:
    """Result of one stencil benchmark configuration."""

    L: int
    precision: str
    backend: str
    gpu: str
    block_shape: Tuple[int, int, int]
    kernel_time_ms: float
    bandwidth_gbs: float
    verified: bool
    max_rel_error: float
    timing: TimingBreakdown
    samples_gbs: List[float] = field(default_factory=list)

    @property
    def mean_bandwidth_gbs(self) -> float:
        if not self.samples_gbs:
            return self.bandwidth_gbs
        return float(np.mean(self.samples_gbs))


def stencil_launch_config(L: int, block_shape: Tuple[int, int, int]) -> LaunchConfig:
    """Grid covering an ``L^3`` domain with the given thread-block shape."""
    bx, by, bz = block_shape
    grid = (ceildiv(L, bx), ceildiv(L, by), ceildiv(L, bz))
    return LaunchConfig.make(grid, block_shape)


def verify_stencil_kernel(L: int = 18, precision: str = "float64",
                          gpu: str = "h100",
                          block_shape: Tuple[int, int, int] = (8, 4, 4)) -> float:
    """Run the device kernel functionally on a small grid and verify it.

    Returns the maximum relative error against the NumPy reference.
    """
    problem = StencilProblem(L, precision)
    invhx2, invhy2, invhz2, invhxyz2 = problem.inverse_spacing_squared
    u_host = problem.initial_field()

    ctx = DeviceContext(gpu)
    layout = Layout.row_major(L, L, L)
    u_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="u")
    f_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="f")
    u_buf.copy_from_host(u_host)
    u = u_buf.tensor(layout, mut=False, bounds_check=False)
    f = f_buf.tensor(layout, mut=True, bounds_check=False)

    launch = stencil_launch_config(L, block_shape)
    ctx.enqueue_function(
        laplacian_kernel, f, u, L, L, L, invhx2, invhy2, invhz2, invhxyz2,
        grid_dim=launch.grid_dim, block_dim=launch.block_dim,
    )
    ctx.synchronize()

    result = f_buf.copy_to_host().reshape(problem.shape)
    return verify_laplacian(result, u_host, invhx2, invhy2, invhz2, invhxyz2)


def run_stencil(
    *,
    L: int = 512,
    precision: str = "float64",
    backend: str = "mojo",
    gpu: str = "h100",
    block_shape: Tuple[int, int, int] = (512, 1, 1),
    iterations: int = 100,
    warmup: int = 1,
    jitter: float = 0.02,
    seed: int = 2025,
    verify: bool = True,
) -> StencilResult:
    """Benchmark one stencil configuration.

    Functional verification runs on a reduced grid (the numerics of the
    kernel do not depend on ``L``); the reported bandwidth for the requested
    ``L`` comes from the backend timing model, evaluated per Eq. 1.  The
    ``iterations``/``jitter`` parameters produce the per-run samples that give
    Figure 3 its measurement spread (seeded, hence reproducible).
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)

    max_rel_error = float("nan")
    verified = False
    if verify:
        verify_l = min(L, FUNCTIONAL_VERIFY_MAX_L)
        small_block = tuple(min(b, 8) for b in block_shape)
        if small_block == (0, 0, 0):
            small_block = (8, 4, 4)
        max_rel_error = verify_stencil_kernel(verify_l, precision, gpu,
                                              block_shape=(8, 4, 4))
        verified = True

    model = stencil_kernel_model(L=L, precision=precision)
    launch = stencil_launch_config(L, block_shape)
    run = be.time(model, spec, launch)
    time_s = run.timing.kernel_time_s
    bandwidth = effective_bandwidth_gbs(L, precision, time_s)

    rng = np.random.default_rng(seed)
    samples = []
    for i in range(max(iterations - warmup, 0)):
        noise = 1.0 + rng.normal(0.0, jitter)
        samples.append(bandwidth * max(noise, 0.5))

    return StencilResult(
        L=L,
        precision=precision,
        backend=be.name,
        gpu=spec.name,
        block_shape=tuple(block_shape),
        kernel_time_ms=run.timing.kernel_time_ms,
        bandwidth_gbs=bandwidth,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
        samples_gbs=samples,
    )
