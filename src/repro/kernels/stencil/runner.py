"""High-level runner for the seven-point stencil workload.

Combines the problem setup, the device kernel (functional verification), the
vectorized reference and the backend timing model into one call that returns
everything Figure 3 and Table 2 need.

The benchmark engine itself lives in :mod:`repro.workloads.stencil`;
:func:`run_stencil` remains as a thin deprecated shim over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.device import DeviceContext
from ...core.intrinsics import ceildiv
from ...core.kernel import LaunchConfig
from ...core.layout import Layout
from ...gpu.timing import TimingBreakdown
from .kernel import laplacian_kernel, stencil_kernel_model
from .problem import StencilProblem
from .reference import verify_laplacian

__all__ = ["StencilResult", "run_stencil", "verify_stencil_kernel",
           "stencil_launch_config"]

#: problem sizes at or below this edge length are verified with the
#: thread-level functional simulator (larger sizes use the NumPy reference)
FUNCTIONAL_VERIFY_MAX_L = 34


@dataclass
class StencilResult:
    """Result of one stencil benchmark configuration."""

    L: int
    precision: str
    backend: str
    gpu: str
    block_shape: Tuple[int, int, int]
    kernel_time_ms: float
    bandwidth_gbs: float
    verified: bool
    max_rel_error: float
    timing: TimingBreakdown
    samples_gbs: List[float] = field(default_factory=list)

    @property
    def mean_bandwidth_gbs(self) -> float:
        if not self.samples_gbs:
            return self.bandwidth_gbs
        return float(np.mean(self.samples_gbs))


def stencil_launch_config(L: int, block_shape: Tuple[int, int, int]) -> LaunchConfig:
    """Grid covering an ``L^3`` domain with the given thread-block shape."""
    bx, by, bz = block_shape
    grid = (ceildiv(L, bx), ceildiv(L, by), ceildiv(L, bz))
    return LaunchConfig.make(grid, block_shape)


def verify_stencil_kernel(L: int = 18, precision: str = "float64",
                          gpu: str = "h100",
                          block_shape: Tuple[int, int, int] = (8, 4, 4),
                          executor: str = "auto", streams: int = 1,
                          pipeline_sink: Optional[dict] = None) -> float:
    """Run the device kernel functionally on a small grid and verify it.

    Returns the maximum relative error against the NumPy reference.
    ``executor`` selects the simulator mode (``"auto"`` is lockstep
    vectorized for this vector-safe kernel).  ``streams > 1`` gives the
    upload, the kernel and the download their own timeline lanes with
    explicit event ordering; the three phases are strictly dependent here,
    so they still serialise — the lanes expose the pipeline structure rather
    than overlap (workloads with independent transfers, e.g. miniBUDE's deck
    uploads, do overlap).  Numerics are identical for any stream count.
    When *pipeline_sink* is given, its ``"pipeline"`` key receives the
    context's overlap-aware :class:`~repro.core.device.PipelineTiming`.
    """
    problem = StencilProblem(L, precision)
    invhx2, invhy2, invhz2, invhxyz2 = problem.inverse_spacing_squared
    u_host = problem.initial_field()

    ctx = DeviceContext(gpu)
    layout = Layout.row_major(L, L, L)
    u_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="u")
    f_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells, label="f")

    # one upload, one kernel, one download: streams > 1 gives each phase
    # its own lane (more than three streams would add nothing here)
    copy_stream = ctx.stream("h2d") if streams > 1 else ctx.default_stream
    compute = ctx.stream("compute") if streams > 1 else ctx.default_stream
    d2h = ctx.stream("d2h") if streams > 1 else ctx.default_stream

    u_buf.copy_from_host(u_host, stream=copy_stream)
    uploaded = ctx.event("uploads").record(copy_stream)
    u = u_buf.tensor(layout, mut=False, bounds_check=False)
    f = f_buf.tensor(layout, mut=True, bounds_check=False)

    launch = stencil_launch_config(L, block_shape)
    compute.wait(uploaded)
    ctx.enqueue_function(
        laplacian_kernel, f, u, L, L, L, invhx2, invhy2, invhz2, invhxyz2,
        grid_dim=launch.grid_dim, block_dim=launch.block_dim, mode=executor,
        model=stencil_kernel_model(L=L, precision=precision), stream=compute,
    )
    d2h.wait(ctx.event("kernel-done").record(compute))
    result = f_buf.copy_to_host(stream=d2h).reshape(problem.shape)
    ctx.synchronize()
    if pipeline_sink is not None:
        pipeline_sink["pipeline"] = ctx.pipeline_breakdown()

    return verify_laplacian(result, u_host, invhx2, invhy2, invhz2, invhxyz2)


def run_stencil(**kwargs) -> StencilResult:
    """Benchmark one stencil configuration.

    .. deprecated::
        Thin shim over the unified Workload API; prefer
        ``repro.workloads.get_workload("stencil")`` with a
        :class:`~repro.workloads.RunRequest`.  The benchmark engine lives in
        :func:`repro.workloads.stencil.bench_stencil` and keeps this
        function's exact signature and semantics.
    """
    from ...workloads.stencil import bench_stencil

    return bench_stencil(**kwargs)
