"""Device kernel for the seven-point Laplacian stencil (paper Listing 2).

The per-thread body is a direct transliteration of the Mojo kernel in the
paper: thread ``(x, y, z)`` maps to cell ``(k, j, i)`` and interior cells
combine the seven-point neighbourhood with precomputed inverse spacings.
The body is vector-safe: the interior guard is the canonical
``any_lane``/``compress_lanes`` pattern, so the lockstep executor evaluates
the whole grid as gathers and one scatter.
"""

from __future__ import annotations

from ...core.dtypes import DType, dtype_from_any
from ...core.intrinsics import any_lane, block_dim, block_idx, compress_lanes, thread_idx
from ...core.kernel import KernelModel, MemoryPattern, kernel

__all__ = ["laplacian_kernel", "stencil_kernel_model"]


@kernel(name="laplacian_kernel", vector_safe=True, strict=True)
def laplacian_kernel(f, u, nx, ny, nz, invhx2, invhy2, invhz2, invhxyz2):
    """Seven-point stencil: ``f = Laplacian(u)`` on interior cells.

    ``f`` and ``u`` are rank-3 :class:`~repro.core.layout.LayoutTensor` views
    of shape ``(nx, ny, nz)``; boundary cells of ``f`` are left untouched.
    """
    k = thread_idx.x + block_idx.x * block_dim.x
    j = thread_idx.y + block_idx.y * block_dim.y
    i = thread_idx.z + block_idx.z * block_dim.z

    interior = (i > 0) & (i < nx - 1) & (j > 0) & (j < ny - 1) \
        & (k > 0) & (k < nz - 1)
    if not any_lane(interior):
        return
    i, j, k = compress_lanes(interior, i, j, k)
    f[i, j, k] = (
        u[i, j, k] * invhxyz2
        + (u[i - 1, j, k] + u[i + 1, j, k]) * invhx2
        + (u[i, j - 1, k] + u[i, j + 1, k]) * invhy2
        + (u[i, j, k - 1] + u[i, j, k + 1]) * invhz2
    )


def stencil_kernel_model(*, L: int, precision: str = "float64",
                         active_fraction: float = None) -> KernelModel:
    """Analytic resource model of the stencil kernel for one problem size.

    Per interior cell the kernel performs 7 global loads, 1 global store,
    4 multiplies and 6 adds (13 FLOPs counting the accumulation), with the
    four inverse-spacing scalars as constant-memory candidates.
    """
    interior = (L - 2) ** 3
    total = L ** 3
    if active_fraction is None:
        active_fraction = interior / total
    return KernelModel(
        name="seven_point_stencil",
        dtype=dtype_from_any(precision),
        loads_global=7.0,
        stores_global=1.0,
        flops=13.0,
        int_ops=18.0,
        scalar_args=7,          # nx, ny, nz, invhx2, invhy2, invhz2, invhxyz2
        working_values=18,
        memory_pattern=MemoryPattern.STENCIL3D,
        active_fraction=max(min(active_fraction, 1.0), 1e-6),
        notes=f"L={L}, interior={interior}",
    )
