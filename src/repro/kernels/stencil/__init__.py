"""Seven-point Laplacian stencil workload (memory-bandwidth bound)."""

from .kernel import laplacian_kernel, stencil_kernel_model
from .metrics import (
    effective_bandwidth_gbs,
    effective_fetch_bytes,
    effective_write_bytes,
)
from .problem import StencilProblem
from .reference import laplacian_reference, verify_laplacian
from .runner import (
    StencilResult,
    run_stencil,
    stencil_launch_config,
    verify_stencil_kernel,
)

__all__ = [
    "laplacian_kernel", "stencil_kernel_model",
    "effective_bandwidth_gbs", "effective_fetch_bytes", "effective_write_bytes",
    "StencilProblem", "laplacian_reference", "verify_laplacian",
    "StencilResult", "run_stencil", "stencil_launch_config",
    "verify_stencil_kernel",
]
