"""Problem setup for the seven-point Laplacian stencil.

The stencil discretises the Laplacian operator on a structured 3-D grid of
``L x L x L`` cells with spacing ``h`` in each direction.  The paper follows
AMD's lab-notes HIP implementation: the field is initialised with a quadratic
profile whose analytic Laplacian is a known constant, which doubles as the
correctness check for the ported kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ...core.dtypes import DType, dtype_from_any
from ...core.errors import ConfigurationError

__all__ = ["StencilProblem"]


@dataclass
class StencilProblem:
    """A seven-point stencil problem instance.

    Parameters
    ----------
    L:
        Grid points per direction (the paper uses 512 and 1024).
    precision:
        ``"float32"`` or ``"float64"``.
    extent:
        Physical domain edge length; the spacing is ``extent / (L - 1)``.
    """

    L: int
    precision: str = "float64"
    extent: float = 1.0

    def __post_init__(self):
        if self.L < 3:
            raise ConfigurationError(
                f"stencil needs at least 3 points per direction, got L={self.L}"
            )
        self.dtype: DType = dtype_from_any(self.precision)
        if not self.dtype.is_float:
            raise ConfigurationError("stencil precision must be a float type")

    # ------------------------------------------------------------ geometry
    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.L, self.L, self.L)

    @property
    def num_cells(self) -> int:
        return self.L ** 3

    @property
    def num_interior(self) -> int:
        return (self.L - 2) ** 3

    @property
    def spacing(self) -> Tuple[float, float, float]:
        h = self.extent / (self.L - 1)
        return (h, h, h)

    @property
    def inverse_spacing_squared(self) -> Tuple[float, float, float, float]:
        """``(invhx2, invhy2, invhz2, invhxyz2)`` as passed to the kernel."""
        hx, hy, hz = self.spacing
        invhx2 = 1.0 / (hx * hx)
        invhy2 = 1.0 / (hy * hy)
        invhz2 = 1.0 / (hz * hz)
        invhxyz2 = -2.0 * (invhx2 + invhy2 + invhz2)
        return (invhx2, invhy2, invhz2, invhxyz2)

    # --------------------------------------------------------------- fields
    def initial_field(self) -> np.ndarray:
        """Quadratic input field ``u(x, y, z) = x^2 + y^2 + z^2``.

        Its analytic Laplacian is the constant 6, giving an exact expected
        value for every interior cell.
        """
        np_dtype = self.dtype.to_numpy()
        hx, hy, hz = self.spacing
        x = (np.arange(self.L) * hx).astype(np_dtype)
        y = (np.arange(self.L) * hy).astype(np_dtype)
        z = (np.arange(self.L) * hz).astype(np_dtype)
        xx, yy, zz = np.meshgrid(x, y, z, indexing="ij")
        return (xx * xx + yy * yy + zz * zz).astype(np_dtype)

    @property
    def expected_interior_value(self) -> float:
        """Analytic Laplacian of the initial field (constant 6.0)."""
        return 6.0

    # --------------------------------------------------------------- sizing
    def memory_footprint_bytes(self) -> int:
        """Device bytes required (input + output field)."""
        return 2 * self.num_cells * self.dtype.sizeof

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"StencilProblem(L={self.L}, {self.dtype.name})"
