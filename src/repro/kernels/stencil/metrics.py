"""Effective-bandwidth metric for the seven-point stencil (paper Eq. 1).

The paper measures the stencil with an *effective* bandwidth that counts only
the cell data that must move for one simulation step:

.. math::

    fetch  &= (L^3 - 8 - 12 (L - 2)) \\cdot sizeof(T) \\\\
    write  &= (L - 2)^3 \\cdot sizeof(T) \\\\
    BW_{eff} &= (fetch + write) / t_{kernel}
"""

from __future__ import annotations

from ...core.dtypes import dtype_from_any
from ...core.errors import ConfigurationError

__all__ = ["effective_fetch_bytes", "effective_write_bytes",
           "effective_bandwidth_gbs"]


def effective_fetch_bytes(L: int, precision: str) -> int:
    """Bytes fetched per step according to Eq. 1."""
    if L < 3:
        raise ConfigurationError("L must be at least 3")
    sizeof = dtype_from_any(precision).sizeof
    return (L ** 3 - 8 - 12 * (L - 2)) * sizeof


def effective_write_bytes(L: int, precision: str) -> int:
    """Bytes written per step according to Eq. 1."""
    if L < 3:
        raise ConfigurationError("L must be at least 3")
    sizeof = dtype_from_any(precision).sizeof
    return (L - 2) ** 3 * sizeof


def effective_bandwidth_gbs(L: int, precision: str, kernel_time_s: float) -> float:
    """Effective bandwidth in GB/s for one kernel execution (Eq. 1)."""
    if kernel_time_s <= 0:
        raise ConfigurationError("kernel time must be positive")
    total = effective_fetch_bytes(L, precision) + effective_write_bytes(L, precision)
    return total / kernel_time_s / 1e9
