"""Vectorized NumPy reference implementation of the seven-point stencil.

Acts as the gold standard for the device kernel and as the execution path for
problem sizes that are too large for the functional thread-level simulator.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import VerificationError

__all__ = ["laplacian_reference", "verify_laplacian"]


def laplacian_reference(u: np.ndarray, invhx2: float, invhy2: float,
                        invhz2: float, invhxyz2: float) -> np.ndarray:
    """Apply the seven-point stencil to the interior of ``u``.

    Returns an array of the same shape with boundary cells zeroed, matching
    what the device kernel writes into a zero-initialised output buffer.
    """
    if u.ndim != 3:
        raise VerificationError(f"expected a rank-3 field, got rank {u.ndim}")
    f = np.zeros_like(u)
    c = u[1:-1, 1:-1, 1:-1]
    f[1:-1, 1:-1, 1:-1] = (
        c * invhxyz2
        + (u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]) * invhx2
        + (u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]) * invhy2
        + (u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]) * invhz2
    )
    return f


def verify_laplacian(result: np.ndarray, u: np.ndarray, invhx2: float,
                     invhy2: float, invhz2: float, invhxyz2: float,
                     *, rtol: float = None) -> float:
    """Check *result* against the reference; returns the max relative error.

    Raises :class:`VerificationError` when the error exceeds *rtol*
    (defaults to 1e-5 for float32 inputs, 1e-10 for float64).
    """
    expected = laplacian_reference(u, invhx2, invhy2, invhz2, invhxyz2)
    interior = (slice(1, -1),) * 3
    exp_i = expected[interior]
    res_i = np.asarray(result)[interior]
    scale = np.maximum(np.abs(exp_i), 1.0)
    err = float(np.max(np.abs(res_i - exp_i) / scale))
    if rtol is None:
        rtol = 1e-5 if u.dtype == np.float32 else 1e-10
    if err > rtol:
        raise VerificationError(
            f"stencil verification failed: max relative error {err:.3e} > {rtol:.1e}",
            max_rel_error=err,
        )
    return err
