"""The four science workloads evaluated in the paper.

* :mod:`repro.kernels.stencil` — seven-point Laplacian stencil (memory-bound)
* :mod:`repro.kernels.babelstream` — BabelStream Copy/Mul/Add/Triad/Dot (memory-bound)
* :mod:`repro.kernels.minibude` — miniBUDE ``fasten`` docking kernel (compute-bound)
* :mod:`repro.kernels.hartreefock` — Hartree–Fock ERI kernel (compute-bound + atomics)
"""

from . import babelstream, hartreefock, minibude, stencil

__all__ = ["stencil", "babelstream", "minibude", "hartreefock"]
