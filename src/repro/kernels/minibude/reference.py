"""Vectorized NumPy reference for the miniBUDE docking energy.

Computes the same energy as :func:`~repro.kernels.minibude.kernel.fasten_kernel`
for every pose, vectorised over ligand and protein atoms and chunked over
poses to bound memory use.  Used both as the gold standard for the device
kernel and as the large-scale execution path.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import VerificationError
from .deck import Deck
from .kernel import CNSTNT, HALF, HARDNESS, HBTYPE_E, HBTYPE_F, NPNPDIST

__all__ = ["reference_energies", "verify_energies"]


def _pose_transforms(poses: np.ndarray) -> np.ndarray:
    """Build the (nposes, 3, 4) rigid-body transform array."""
    rx, ry, rz, tx, ty, tz = (poses[i] for i in range(6))
    sx, cx = np.sin(rx), np.cos(rx)
    sy, cy = np.sin(ry), np.cos(ry)
    sz, cz = np.sin(rz), np.cos(rz)
    nposes = poses.shape[1]
    m = np.zeros((nposes, 3, 4), dtype=np.float64)
    m[:, 0, 0] = cy * cz
    m[:, 0, 1] = sx * sy * cz - cx * sz
    m[:, 0, 2] = cx * sy * cz + sx * sz
    m[:, 0, 3] = tx
    m[:, 1, 0] = cy * sz
    m[:, 1, 1] = sx * sy * sz + cx * cz
    m[:, 1, 2] = cx * sy * sz - sx * cz
    m[:, 1, 3] = ty
    m[:, 2, 0] = -sy
    m[:, 2, 1] = sx * cy
    m[:, 2, 2] = cx * cy
    m[:, 2, 3] = tz
    return m


def reference_energies(deck: Deck, *, pose_chunk: int = 256) -> np.ndarray:
    """Energies of all poses in *deck* (float32 array of length nposes)."""
    protein = deck.protein.astype(np.float64)
    ligand = deck.ligand.astype(np.float64)
    ff = deck.forcefield.astype(np.float64)

    p_type = protein[:, 3].astype(int)
    l_type = ligand[:, 3].astype(int)
    p_hbtype, p_radius, p_hphb, p_elsc = (ff[p_type, i] for i in range(4))
    l_hbtype, l_radius, l_hphb, l_elsc = (ff[l_type, i] for i in range(4))

    # Pairwise (ligand, protein) forcefield combinations — pose independent.
    radij = p_radius[None, :] + l_radius[:, None]              # (L, P)
    r_radij = 1.0 / radij
    both_f = (p_hbtype[None, :] == HBTYPE_F) & (l_hbtype[:, None] == HBTYPE_F)
    elcdst = np.where(both_f, 4.0, 2.0)
    elcdst1 = np.where(both_f, 0.25, 0.5)
    type_e = (p_hbtype[None, :] == HBTYPE_E) | (l_hbtype[:, None] == HBTYPE_E)
    hphb_sum = p_hphb[None, :] + l_hphb[:, None]
    elsc_prod = p_elsc[None, :] * l_elsc[:, None]

    transforms = _pose_transforms(deck.poses.astype(np.float64))
    nposes = deck.nposes
    energies = np.zeros(nposes, dtype=np.float64)

    lig_xyz = ligand[:, :3]                                     # (L, 3)
    pro_xyz = protein[:, :3]                                    # (P, 3)

    for start in range(0, nposes, pose_chunk):
        stop = min(start + pose_chunk, nposes)
        m = transforms[start:stop]                              # (C, 3, 4)
        # Transform ligand atoms: (C, L, 3)
        lpos = np.einsum("cij,lj->cli", m[:, :, :3], lig_xyz) + m[:, None, :, 3]
        # Pairwise distances: (C, L, P)
        diff = lpos[:, :, None, :] - pro_xyz[None, None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))

        etot = np.zeros(stop - start, dtype=np.float64)

        # Steric clash
        zone1 = dist < radij[None, :, :]
        steric = np.where(zone1, (1.0 - dist * r_radij[None, :, :]) * 2.0 * HARDNESS, 0.0)
        etot += steric.sum(axis=(1, 2))

        # Hydrophobic / de-solvation
        dslv = np.where(dist < NPNPDIST,
                        hphb_sum[None, :, :] * (1.0 - dist / NPNPDIST), 0.0)
        etot += dslv.sum(axis=(1, 2))

        # Electrostatics
        chrg = np.where(dist < elcdst[None, :, :],
                        elsc_prod[None, :, :] * (1.0 - dist * elcdst1[None, :, :]) * CNSTNT,
                        0.0)
        chrg = np.where(type_e[None, :, :] & (chrg < 0.0), 0.0, chrg)
        etot += chrg.sum(axis=(1, 2))

        energies[start:stop] = etot * HALF

    return energies.astype(np.float32)


def verify_energies(computed: np.ndarray, deck: Deck, *, rtol: float = 2e-3,
                    pose_chunk: int = 256) -> float:
    """Compare computed pose energies against the reference.

    Returns the maximum relative error; raises :class:`VerificationError`
    beyond *rtol* (float32 accumulation order differs between the per-thread
    kernel and the vectorised reference, hence the loose default tolerance).
    """
    expected = reference_energies(deck, pose_chunk=pose_chunk)
    computed = np.asarray(computed, dtype=np.float32)
    if computed.shape != expected.shape:
        raise VerificationError(
            f"energy array has shape {computed.shape}, expected {expected.shape}"
        )
    scale = np.maximum(np.abs(expected), 1.0)
    err = float(np.max(np.abs(computed - expected) / scale))
    if err > rtol:
        raise VerificationError(
            f"miniBUDE verification failed: max relative error {err:.3e} > {rtol:.1e}",
            max_rel_error=err,
        )
    return err
