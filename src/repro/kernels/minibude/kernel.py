"""The miniBUDE ``fasten`` device kernel (paper Listing 4).

Each thread evaluates the docking energy of ``PPWI`` (poses-per-work-item)
poses: it builds the rigid-body transform of every pose from its six
parameters, transforms the ligand atoms, and accumulates the BUDE energy
terms (steric clash, hydrophobic/de-solvation and electrostatic) over all
ligand-protein atom pairs.

The energy expression is the miniBUDE structure with a simplified
de-solvation term (documented in DESIGN.md); what matters for the paper's
experiments is that the device kernel, the vectorized reference and the
FLOP-count model (Eq. 3) all describe the same arithmetic.
"""

from __future__ import annotations

import numpy as np

from ...core.dtypes import DType
from ...core.intrinsics import (
    any_lane,
    block_dim,
    block_idx,
    compress_lanes,
    lane_where,
    masked_store,
    thread_idx,
)
from ...core.kernel import KernelModel, MemoryPattern, kernel

__all__ = ["fasten_kernel", "fasten_kernel_model",
           "HARDNESS", "NPNPDIST", "CNSTNT", "HBTYPE_F", "HBTYPE_E", "HALF"]

# BUDE forcefield constants (as in the miniBUDE sources)
HARDNESS = 38.0
NPNPDIST = 5.5
CNSTNT = 45.0
HBTYPE_F = 70
HBTYPE_E = 69
HALF = 0.5


@kernel(name="fasten_kernel", vector_safe=True, strict=True)
def fasten_kernel(ppwi, natlig, natpro, protein, ligand,
                  t0, t1, t2, t3, t4, t5,
                  etotals, forcefield, num_transforms):
    """Evaluate ``ppwi`` poses per thread and write their energies.

    Array arguments are flat tensors following the deck layout: ``protein``
    and ``ligand`` hold 4 floats per atom ``(x, y, z, type)``, ``forcefield``
    holds 4 floats per type ``(hbtype, radius, hphb, elsc)``, ``t0..t5`` are
    the per-pose transform parameters, ``etotals`` receives one energy per
    pose.

    Vector-safe form: only the pose data varies per lane — the deck loops
    (ligand, protein atoms and their forcefield entries) are uniform across
    the lane set — so the per-pair energy conditionals become ``lane_where``
    predication and the tail-thread clamp / final store become per-lane
    selects / masked scatters.
    """
    lsz = block_dim.x
    ix = block_idx.x * lsz * ppwi + thread_idx.x
    ix = lane_where(ix >= num_transforms, num_transforms - ppwi, ix)

    # Build the 3x4 rigid-body transform of each pose handled by this thread.
    transforms = []
    for i in range(ppwi):
        index = ix + i * lsz
        rx = t0[index]
        ry = t1[index]
        rz = t2[index]
        sx, cx = np.sin(rx), np.cos(rx)
        sy, cy = np.sin(ry), np.cos(ry)
        sz, cz = np.sin(rz), np.cos(rz)
        transforms.append((
            (cy * cz, sx * sy * cz - cx * sz, cx * sy * cz + sx * sz, t3[index]),
            (cy * sz, sx * sy * sz + cx * cz, cx * sy * sz - sx * cz, t4[index]),
            (-sy, sx * cy, cx * cy, t5[index]),
        ))

    etot = [0.0] * ppwi

    # Loop over ligand atoms
    for il in range(natlig):
        lx = ligand[il * 4 + 0]
        ly = ligand[il * 4 + 1]
        lz = ligand[il * 4 + 2]
        ltype = int(ligand[il * 4 + 3])
        l_hbtype = forcefield[ltype * 4 + 0]
        l_radius = forcefield[ltype * 4 + 1]
        l_hphb = forcefield[ltype * 4 + 2]
        l_elsc = forcefield[ltype * 4 + 3]

        # Transform the ligand atom for each pose handled by this thread.
        lpos = []
        for i in range(ppwi):
            m = transforms[i]
            lpos.append((
                m[0][0] * lx + m[0][1] * ly + m[0][2] * lz + m[0][3],
                m[1][0] * lx + m[1][1] * ly + m[1][2] * lz + m[1][3],
                m[2][0] * lx + m[2][1] * ly + m[2][2] * lz + m[2][3],
            ))

        # Loop over protein atoms
        for ip in range(natpro):
            px = protein[ip * 4 + 0]
            py = protein[ip * 4 + 1]
            pz = protein[ip * 4 + 2]
            ptype = int(protein[ip * 4 + 3])
            p_hbtype = forcefield[ptype * 4 + 0]
            p_radius = forcefield[ptype * 4 + 1]
            p_hphb = forcefield[ptype * 4 + 2]
            p_elsc = forcefield[ptype * 4 + 3]

            radij = p_radius + l_radius
            r_radij = 1.0 / radij
            elcdst = 4.0 if (p_hbtype == HBTYPE_F and l_hbtype == HBTYPE_F) else 2.0
            elcdst1 = 0.25 if (p_hbtype == HBTYPE_F and l_hbtype == HBTYPE_F) else 0.5
            type_e = (p_hbtype == HBTYPE_E or l_hbtype == HBTYPE_E)

            for i in range(ppwi):
                x, y, z = lpos[i]
                dx = x - px
                dy = y - py
                dz = z - pz
                distij = np.sqrt(dx * dx + dy * dy + dz * dz)

                # Steric clash term
                zone1 = distij < radij
                etot[i] = etot[i] + lane_where(
                    zone1, (1.0 - distij * r_radij) * 2.0 * HARDNESS, 0.0)

                # Hydrophobic / de-solvation term (simplified miniBUDE form)
                dslv = (p_hphb + l_hphb) * (1.0 - distij / NPNPDIST)
                etot[i] = etot[i] + lane_where(distij < NPNPDIST, dslv, 0.0)

                # Electrostatic term
                chrg_e = p_elsc * l_elsc * (1.0 - distij * elcdst1) * CNSTNT
                if type_e:
                    chrg_e = lane_where(chrg_e < 0.0, 0.0, chrg_e)
                etot[i] = etot[i] + lane_where(distij < elcdst, chrg_e, 0.0)

    # Write energy results
    td_base = block_idx.x * lsz * ppwi + thread_idx.x
    in_range = td_base < num_transforms
    if not any_lane(in_range):
        return
    for i in range(ppwi):
        masked_store(etotals, td_base + i * lsz, etot[i] * HALF, in_range)


def fasten_kernel_model(*, ppwi: int, natlig: int, natpro: int,
                        wgsize: int = 64) -> KernelModel:
    """Analytic resource model of the fasten kernel per thread.

    FLOP counts follow the paper's Eq. 3 accounting; the square root per
    ligand-protein pair and the pose-transform trigonometry are tracked
    separately because they are the operations sensitive to fast-math.
    """
    pairs = natlig * natpro * ppwi
    flops = 28.0 * ppwi + natlig * (2.0 + 18.0 * ppwi) + natlig * natpro * (10.0 + 30.0 * ppwi)
    # The deck (ligand + protein + forcefield, ~60 KB for bm1) is read by
    # every thread but stays resident in L2, so DRAM traffic per thread is
    # only the pose transforms and the energy writes.
    return KernelModel(
        name="minibude_fasten",
        dtype=DType.float32,
        loads_global=6.0 * ppwi + 24.0,
        stores_global=float(ppwi),
        flops=max(flops - pairs, 1.0),
        int_ops=10.0 + 6.0 * natlig * natpro,
        divides=float(pairs),          # one sqrt per ligand-protein pair per pose
        transcendentals=12.0 * ppwi,   # sin/cos of the pose angles
        scalar_args=4,
        working_values=10 + 16 * ppwi,
        memory_pattern=MemoryPattern.STRIDE1,
        ilp=float(ppwi),
        notes=f"ppwi={ppwi}, wg={wgsize}, natlig={natlig}, natpro={natpro}",
    )
