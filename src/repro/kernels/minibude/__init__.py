"""miniBUDE in-silico molecular docking workload (compute-bound)."""

from .deck import (
    BM1_NATLIG,
    BM1_NATPRO,
    BM1_NPOSES,
    BM1_NTYPES,
    HBTYPE_E,
    HBTYPE_F,
    Deck,
    make_bm1,
    make_deck,
)
from .kernel import fasten_kernel, fasten_kernel_model
from .metrics import gflops, ops_per_workitem, total_ops
from .reference import reference_energies, verify_energies
from .runner import (
    DEFAULT_PPWI_SWEEP,
    DEFAULT_WGSIZES,
    MiniBudeResult,
    minibude_launch_config,
    run_fasten_functional,
    run_minibude,
)

__all__ = [
    "BM1_NATLIG", "BM1_NATPRO", "BM1_NPOSES", "BM1_NTYPES",
    "HBTYPE_E", "HBTYPE_F", "Deck", "make_bm1", "make_deck",
    "fasten_kernel", "fasten_kernel_model",
    "gflops", "ops_per_workitem", "total_ops",
    "reference_energies", "verify_energies",
    "DEFAULT_PPWI_SWEEP", "DEFAULT_WGSIZES", "MiniBudeResult",
    "minibude_launch_config", "run_fasten_functional", "run_minibude",
]
