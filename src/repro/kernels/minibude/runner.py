"""High-level runner for the miniBUDE workload (Figures 6 and 7).

The benchmark engine itself lives in :mod:`repro.workloads.minibude`;
:func:`run_minibude` remains as a thin deprecated shim over it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.device import DeviceContext
from ...core.dtypes import DType
from ...core.errors import ConfigurationError
from ...core.intrinsics import ceildiv
from ...core.kernel import LaunchConfig
from ...gpu.timing import TimingBreakdown
from .deck import Deck
from .kernel import fasten_kernel, fasten_kernel_model
from .reference import verify_energies

__all__ = ["MiniBudeResult", "run_minibude", "run_fasten_functional",
           "minibude_launch_config", "DEFAULT_PPWI_SWEEP", "DEFAULT_WGSIZES"]

#: PPWI sweep used in Figures 6-7
DEFAULT_PPWI_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)
#: work-group sizes used in Figures 6-7
DEFAULT_WGSIZES = (8, 64)


@dataclass
class MiniBudeResult:
    """Result of one miniBUDE configuration."""

    ppwi: int
    wgsize: int
    nposes: int
    natlig: int
    natpro: int
    backend: str
    gpu: str
    fast_math: bool
    kernel_time_ms: float
    gflops: float
    verified: bool
    max_rel_error: float
    timing: TimingBreakdown


def minibude_launch_config(nposes: int, ppwi: int, wgsize: int) -> LaunchConfig:
    """One thread per ``ppwi`` poses, ``wgsize`` threads per block."""
    if nposes % ppwi != 0:
        raise ConfigurationError(
            f"nposes ({nposes}) must be divisible by ppwi ({ppwi})"
        )
    threads = nposes // ppwi
    blocks = ceildiv(threads, wgsize)
    return LaunchConfig.make(blocks, wgsize)


def run_fasten_functional(deck: Deck, *, ppwi: int = 2, wgsize: int = 8,
                          gpu: str = "h100", executor: str = "auto",
                          streams: int = 1,
                          pipeline_sink: Optional[dict] = None,
                          ) -> Tuple[np.ndarray, float]:
    """Run the fasten device kernel through the functional simulator.

    Returns ``(energies, max_rel_error)`` after verifying against the
    vectorised reference.  Intended for reduced decks.  ``executor`` selects
    the simulator mode (``"auto"`` is lockstep vectorized); ``streams > 1``
    distributes the deck uploads round-robin over that many H2D streams,
    with the kernel event-ordered after every upload (identical numerics,
    overlapped modelled pipeline).  *pipeline_sink*, when given, receives
    the context's :class:`~repro.core.device.PipelineTiming` under
    ``"pipeline"``.
    """
    launch = minibude_launch_config(deck.nposes, ppwi, wgsize)
    ctx = DeviceContext(gpu)
    pool, compute = ctx.upload_pipeline(streams)
    lanes = itertools.cycle(pool)

    def make_buffer(data, label):
        buf = ctx.enqueue_create_buffer(DType.float32, data.size, label=label)
        buf.copy_from_host(data, stream=next(lanes))
        return buf.tensor(bounds_check=False)

    protein = make_buffer(deck.protein_flat(), "protein")
    ligand = make_buffer(deck.ligand_flat(), "ligand")
    forcefield = make_buffer(deck.forcefield_flat(), "forcefield")
    transforms = [make_buffer(t, f"t{i}") for i, t in enumerate(deck.transforms())]
    etot_buf = ctx.enqueue_create_buffer(DType.float32, deck.nposes, label="etotals")
    etotals = etot_buf.tensor(bounds_check=False)

    ctx.fan_in(pool, compute, prefix="uploads")
    ctx.enqueue_function(
        fasten_kernel, ppwi, deck.natlig, deck.natpro, protein, ligand,
        *transforms, etotals, forcefield, deck.nposes,
        grid_dim=launch.grid_dim, block_dim=launch.block_dim, mode=executor,
        model=fasten_kernel_model(ppwi=ppwi, natlig=deck.natlig,
                                  natpro=deck.natpro, wgsize=wgsize),
        stream=compute,
    )
    ctx.synchronize()
    energies = etot_buf.copy_to_host(stream=compute)
    if pipeline_sink is not None:
        pipeline_sink["pipeline"] = ctx.pipeline_breakdown()
    err = verify_energies(energies, deck)
    return energies, err


def run_minibude(**kwargs) -> MiniBudeResult:
    """Benchmark one miniBUDE configuration (bm1 by default).

    .. deprecated::
        Thin shim over the unified Workload API; prefer
        ``repro.workloads.get_workload("minibude")`` with a
        :class:`~repro.workloads.RunRequest`.  The benchmark engine lives in
        :func:`repro.workloads.minibude.bench_minibude` and keeps this
        function's exact signature and semantics.
    """
    from ...workloads.minibude import bench_minibude

    return bench_minibude(**kwargs)
