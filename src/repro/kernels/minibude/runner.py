"""High-level runner for the miniBUDE workload (Figures 6 and 7)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...backends import get_backend
from ...core.device import DeviceContext
from ...core.dtypes import DType
from ...core.errors import ConfigurationError
from ...core.intrinsics import ceildiv
from ...core.kernel import LaunchConfig
from ...gpu.specs import get_gpu
from ...gpu.timing import TimingBreakdown
from .deck import BM1_NPOSES, Deck, make_bm1, make_deck
from .kernel import fasten_kernel, fasten_kernel_model
from .metrics import gflops, total_ops
from .reference import reference_energies, verify_energies

__all__ = ["MiniBudeResult", "run_minibude", "run_fasten_functional",
           "minibude_launch_config", "DEFAULT_PPWI_SWEEP", "DEFAULT_WGSIZES"]

#: PPWI sweep used in Figures 6-7
DEFAULT_PPWI_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128)
#: work-group sizes used in Figures 6-7
DEFAULT_WGSIZES = (8, 64)


@dataclass
class MiniBudeResult:
    """Result of one miniBUDE configuration."""

    ppwi: int
    wgsize: int
    nposes: int
    natlig: int
    natpro: int
    backend: str
    gpu: str
    fast_math: bool
    kernel_time_ms: float
    gflops: float
    verified: bool
    max_rel_error: float
    timing: TimingBreakdown


def minibude_launch_config(nposes: int, ppwi: int, wgsize: int) -> LaunchConfig:
    """One thread per ``ppwi`` poses, ``wgsize`` threads per block."""
    if nposes % ppwi != 0:
        raise ConfigurationError(
            f"nposes ({nposes}) must be divisible by ppwi ({ppwi})"
        )
    threads = nposes // ppwi
    blocks = ceildiv(threads, wgsize)
    return LaunchConfig.make(blocks, wgsize)


def run_fasten_functional(deck: Deck, *, ppwi: int = 2, wgsize: int = 8,
                          gpu: str = "h100") -> Tuple[np.ndarray, float]:
    """Run the fasten device kernel through the functional simulator.

    Returns ``(energies, max_rel_error)`` after verifying against the
    vectorised reference.  Intended for reduced decks.
    """
    launch = minibude_launch_config(deck.nposes, ppwi, wgsize)
    ctx = DeviceContext(gpu)

    def make_buffer(data, label):
        buf = ctx.enqueue_create_buffer(DType.float32, data.size, label=label)
        buf.copy_from_host(data)
        return buf.tensor(bounds_check=False)

    protein = make_buffer(deck.protein_flat(), "protein")
    ligand = make_buffer(deck.ligand_flat(), "ligand")
    forcefield = make_buffer(deck.forcefield_flat(), "forcefield")
    transforms = [make_buffer(t, f"t{i}") for i, t in enumerate(deck.transforms())]
    etot_buf = ctx.enqueue_create_buffer(DType.float32, deck.nposes, label="etotals")
    etotals = etot_buf.tensor(bounds_check=False)

    ctx.enqueue_function(
        fasten_kernel, ppwi, deck.natlig, deck.natpro, protein, ligand,
        *transforms, etotals, forcefield, deck.nposes,
        grid_dim=launch.grid_dim, block_dim=launch.block_dim,
    )
    ctx.synchronize()
    energies = etot_buf.copy_to_host()
    err = verify_energies(energies, deck)
    return energies, err


def run_minibude(
    *,
    ppwi: int = 1,
    wgsize: int = 64,
    nposes: int = BM1_NPOSES,
    backend: str = "mojo",
    gpu: str = "h100",
    fast_math: bool = False,
    deck: Optional[Deck] = None,
    verify: bool = True,
    verify_poses: int = 64,
    seed: int = 2025,
) -> MiniBudeResult:
    """Benchmark one miniBUDE configuration (bm1 by default).

    Functional verification runs the device kernel on a reduced deck; the
    reported GFLOP/s for the requested configuration comes from Eq. 3 applied
    to the modelled kernel time.
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)
    full_deck = deck or make_bm1(nposes, seed=seed)

    verified = False
    max_rel_error = float("nan")
    if verify:
        small = make_deck(natlig=min(full_deck.natlig, 8),
                          natpro=min(full_deck.natpro, 32),
                          ntypes=full_deck.ntypes,
                          nposes=verify_poses, seed=seed, name="verify")
        _, max_rel_error = run_fasten_functional(
            small, ppwi=min(ppwi, 2), wgsize=min(wgsize, 8), gpu=gpu)
        verified = True

    model = fasten_kernel_model(ppwi=ppwi, natlig=full_deck.natlig,
                                natpro=full_deck.natpro, wgsize=wgsize)
    launch = minibude_launch_config(full_deck.nposes, ppwi, wgsize)
    run = be.time(model, spec, launch, fast_math=fast_math)
    time_s = run.timing.kernel_time_s
    achieved = gflops(ppwi, full_deck.natlig, full_deck.natpro,
                      full_deck.nposes, time_s)

    return MiniBudeResult(
        ppwi=ppwi,
        wgsize=wgsize,
        nposes=full_deck.nposes,
        natlig=full_deck.natlig,
        natpro=full_deck.natpro,
        backend=be.name,
        gpu=spec.name,
        fast_math=run.fast_math,
        kernel_time_ms=run.timing.kernel_time_ms,
        gflops=achieved,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
    )
