"""Synthetic miniBUDE input decks.

The paper uses miniBUDE's ``bm1`` benchmark deck: 26 ligand atoms, 938
protein atoms, 65,536 poses.  The original deck ships binary files with the
Bristol docking engine; here an equivalent synthetic deck with the same
shapes and physically plausible value ranges is generated from a seeded RNG
(documented substitution — the arithmetic exercised per atom pair is
identical, only the literal coordinates differ).

Atom records follow the paper's flattened layout workaround: each atom is four
``float32`` values ``(x, y, z, type)`` with the type cast back to an integer
inside the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ...core.errors import ConfigurationError

__all__ = ["Deck", "make_deck", "make_bm1", "BM1_NATLIG", "BM1_NATPRO",
           "BM1_NPOSES", "BM1_NTYPES", "HBTYPE_F", "HBTYPE_E"]

#: bm1 deck dimensions from the miniBUDE distribution
BM1_NATLIG = 26
BM1_NATPRO = 938
BM1_NPOSES = 65536
BM1_NTYPES = 64

#: hydrogen-bond type codes used by the BUDE forcefield
HBTYPE_F = 70
HBTYPE_E = 69
HBTYPE_N = 0


@dataclass
class Deck:
    """One miniBUDE input deck.

    Attributes
    ----------
    protein, ligand:
        ``(natoms, 4)`` float32 arrays of ``(x, y, z, type_index)``.
    forcefield:
        ``(ntypes, 4)`` float32 array of ``(hbtype, radius, hphb, elsc)``.
    poses:
        ``(6, nposes)`` float32 array of pose transforms: three rotation
        angles followed by three translations.
    """

    protein: np.ndarray
    ligand: np.ndarray
    forcefield: np.ndarray
    poses: np.ndarray
    name: str = "synthetic"

    def __post_init__(self):
        for label, arr, cols in (("protein", self.protein, 4),
                                 ("ligand", self.ligand, 4),
                                 ("forcefield", self.forcefield, 4)):
            if arr.ndim != 2 or arr.shape[1] != cols:
                raise ConfigurationError(
                    f"{label} array must have shape (n, {cols}), got {arr.shape}"
                )
        if self.poses.ndim != 2 or self.poses.shape[0] != 6:
            raise ConfigurationError(
                f"poses array must have shape (6, nposes), got {self.poses.shape}"
            )

    # ------------------------------------------------------------ properties
    @property
    def natlig(self) -> int:
        return self.ligand.shape[0]

    @property
    def natpro(self) -> int:
        return self.protein.shape[0]

    @property
    def ntypes(self) -> int:
        return self.forcefield.shape[0]

    @property
    def nposes(self) -> int:
        return self.poses.shape[1]

    # ------------------------------------------------------------- flattened
    def protein_flat(self) -> np.ndarray:
        """Protein atoms as a flat float32 array (4 values per atom)."""
        return np.ascontiguousarray(self.protein, dtype=np.float32).reshape(-1)

    def ligand_flat(self) -> np.ndarray:
        """Ligand atoms as a flat float32 array (4 values per atom)."""
        return np.ascontiguousarray(self.ligand, dtype=np.float32).reshape(-1)

    def forcefield_flat(self) -> np.ndarray:
        """Forcefield records as a flat float32 array (4 values per type)."""
        return np.ascontiguousarray(self.forcefield, dtype=np.float32).reshape(-1)

    def transforms(self) -> Tuple[np.ndarray, ...]:
        """The six per-pose transform arrays (``transforms_0`` ... ``transforms_5``)."""
        return tuple(np.ascontiguousarray(self.poses[i], dtype=np.float32)
                     for i in range(6))

    def subset(self, nposes: int) -> "Deck":
        """A deck with only the first *nposes* poses (for reduced runs)."""
        if nposes <= 0 or nposes > self.nposes:
            raise ConfigurationError(
                f"cannot take {nposes} poses from a deck with {self.nposes}"
            )
        return Deck(self.protein, self.ligand, self.forcefield,
                    self.poses[:, :nposes].copy(), name=f"{self.name}[{nposes}]")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Deck({self.name}: natlig={self.natlig}, natpro={self.natpro}, "
                f"ntypes={self.ntypes}, nposes={self.nposes})")


def make_deck(*, natlig: int, natpro: int, ntypes: int, nposes: int,
              seed: int = 2025, name: str = "synthetic") -> Deck:
    """Generate a synthetic deck with the given dimensions."""
    if min(natlig, natpro, ntypes, nposes) <= 0:
        raise ConfigurationError("all deck dimensions must be positive")
    rng = np.random.default_rng(seed)

    # Ligand atoms in a small ball around the origin (a drug-like molecule).
    lig_pos = rng.normal(0.0, 2.0, size=(natlig, 3))
    lig_type = rng.integers(0, ntypes, size=(natlig, 1))
    ligand = np.concatenate([lig_pos, lig_type], axis=1).astype(np.float32)

    # Protein atoms fill a binding-site-sized box.
    pro_pos = rng.uniform(-20.0, 20.0, size=(natpro, 3))
    pro_type = rng.integers(0, ntypes, size=(natpro, 1))
    protein = np.concatenate([pro_pos, pro_type], axis=1).astype(np.float32)

    # Forcefield records: (hbtype, radius, hphb, elsc).
    hbtype = rng.choice([HBTYPE_N, HBTYPE_E, HBTYPE_F], size=ntypes,
                        p=[0.6, 0.2, 0.2]).astype(np.float32)
    radius = rng.uniform(1.0, 2.5, size=ntypes).astype(np.float32)
    hphb = rng.uniform(-1.0, 1.0, size=ntypes).astype(np.float32)
    hphb[rng.random(ntypes) < 0.25] = 0.0
    elsc = rng.choice([0.0, 0.5, -0.5, 1.0], size=ntypes).astype(np.float32)
    forcefield = np.stack([hbtype, radius, hphb, elsc], axis=1)

    # Poses: three Euler angles and three translations per pose.
    angles = rng.uniform(0.0, 2.0 * np.pi, size=(3, nposes))
    trans = rng.uniform(-5.0, 5.0, size=(3, nposes))
    poses = np.concatenate([angles, trans], axis=0).astype(np.float32)

    return Deck(protein=protein, ligand=ligand, forcefield=forcefield,
                poses=poses, name=name)


def make_bm1(nposes: int = BM1_NPOSES, *, seed: int = 2025) -> Deck:
    """The bm1-shaped deck (26 ligand atoms, 938 protein atoms)."""
    return make_deck(natlig=BM1_NATLIG, natpro=BM1_NATPRO, ntypes=BM1_NTYPES,
                     nposes=nposes, seed=seed, name="bm1")
