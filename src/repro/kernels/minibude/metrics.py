"""FLOP-count metric for miniBUDE (paper Eq. 3).

The paper derives GFLOP/s from an analytic operation count per work-item::

    ops_workitem = 28*PPWI + nligands*[2 + 18*PPWI + nproteins*(10 + 30*PPWI)]
    total_ops    = ops_workitem * poses / PPWI
    GFLOP/s      = total_ops / kernel_time * 1e-9
"""

from __future__ import annotations

from ...core.errors import ConfigurationError

__all__ = ["ops_per_workitem", "total_ops", "gflops"]


def ops_per_workitem(ppwi: int, natlig: int, natpro: int) -> float:
    """Floating-point operations executed by one work-item (Eq. 3)."""
    if min(ppwi, natlig, natpro) <= 0:
        raise ConfigurationError("ppwi, natlig and natpro must be positive")
    return 28.0 * ppwi + natlig * (2.0 + 18.0 * ppwi + natpro * (10.0 + 30.0 * ppwi))


def total_ops(ppwi: int, natlig: int, natpro: int, nposes: int) -> float:
    """Total floating-point operations for a full deck evaluation (Eq. 3)."""
    if nposes <= 0:
        raise ConfigurationError("nposes must be positive")
    return ops_per_workitem(ppwi, natlig, natpro) * nposes / ppwi


def gflops(ppwi: int, natlig: int, natpro: int, nposes: int,
           kernel_time_s: float) -> float:
    """Achieved GFLOP/s for one kernel execution (Eq. 3)."""
    if kernel_time_s <= 0:
        raise ConfigurationError("kernel time must be positive")
    return total_ops(ppwi, natlig, natpro, nposes) / kernel_time_s * 1e-9
