"""Bandwidth metrics for BabelStream (paper Eq. 2).

Each operation's bandwidth is derived from the number of arrays it touches:
Copy and Mul move two arrays, Add and Triad move three, and Dot reads two.
"""

from __future__ import annotations

from ...core.dtypes import dtype_from_any
from ...core.errors import ConfigurationError

__all__ = ["arrays_moved", "operation_bytes", "operation_bandwidth_gbs"]

#: number of arrays moved per operation (Eq. 2)
_ARRAYS_MOVED = {
    "copy": 2,
    "mul": 2,
    "add": 3,
    "triad": 3,
    "dot": 2,
}


def arrays_moved(op: str) -> int:
    """Number of vector-sized arrays moved by an operation."""
    try:
        return _ARRAYS_MOVED[op.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown BabelStream operation {op!r}; expected one of "
            f"{sorted(_ARRAYS_MOVED)}"
        ) from None


def operation_bytes(op: str, n: int, precision: str) -> int:
    """Total bytes moved by one execution of *op* on vectors of length *n*."""
    if n <= 0:
        raise ConfigurationError("vector size must be positive")
    return arrays_moved(op) * n * dtype_from_any(precision).sizeof


def operation_bandwidth_gbs(op: str, n: int, precision: str,
                            kernel_time_s: float) -> float:
    """Effective bandwidth in GB/s for one operation execution (Eq. 2)."""
    if kernel_time_s <= 0:
        raise ConfigurationError("kernel time must be positive")
    return operation_bytes(op, n, precision) / kernel_time_s / 1e9
