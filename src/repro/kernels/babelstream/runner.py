"""High-level BabelStream benchmark runner.

Mirrors the BabelStream driver: allocate three vectors, run each kernel
``num_times`` and report the best/mean bandwidth per operation (Eq. 2).
Functional correctness is established by running the device kernels on a
reduced vector through the simulator and comparing against the scalar-replay
verification used by the original benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...backends import get_backend
from ...core.device import DeviceContext
from ...core.dtypes import DType, dtype_from_any
from ...core.intrinsics import ceildiv
from ...core.kernel import LaunchConfig
from ...gpu.specs import get_gpu
from ...gpu.timing import TimingBreakdown
from .kernels import (
    BABELSTREAM_OPS,
    SCALAR,
    START_A,
    START_B,
    START_C,
    add_kernel,
    babelstream_kernel_model,
    copy_kernel,
    dot_kernel,
    mul_kernel,
    triad_kernel,
)
from .metrics import operation_bandwidth_gbs
from .reference import BabelStreamArrays, verify_arrays, verify_dot

__all__ = ["BabelStreamResult", "BabelStreamBenchmark", "run_babelstream",
           "run_babelstream_functional"]

#: default vector size from the paper: 2^25 elements
DEFAULT_SIZE = 2 ** 25


@dataclass
class BabelStreamResult:
    """Per-operation results of one BabelStream configuration."""

    n: int
    precision: str
    backend: str
    gpu: str
    tb_size: int
    bandwidths_gbs: Dict[str, float]
    kernel_times_ms: Dict[str, float]
    timings: Dict[str, TimingBreakdown]
    verified: bool
    verification_errors: Dict[str, float] = field(default_factory=dict)
    samples_gbs: Dict[str, List[float]] = field(default_factory=dict)

    def bandwidth(self, op: str) -> float:
        return self.bandwidths_gbs[op.lower()]


def run_babelstream_functional(
    *,
    n: int = 4096,
    precision: str = "float64",
    gpu: str = "h100",
    tb_size: int = 64,
    num_iterations: int = 2,
    dot_blocks: int = 4,
    executor: str = "auto",
    streams: int = 1,
    pipeline_sink: Optional[dict] = None,
) -> Dict[str, float]:
    """Run the five device kernels through the functional simulator.

    Uses a reduced vector size (the numerics do not depend on ``n``) and
    returns the verification errors.  Raises on any mismatch.  ``executor``
    selects the simulator mode for all five launches (``"auto"`` is the
    lockstep vectorized engine for these vector-safe kernels).
    ``streams > 1`` puts the initial memsets on their own streams and
    event-orders the kernel stream behind them; the kernels themselves are
    data-dependent on each other and stay FIFO on one stream, so the
    numerics are identical for any stream count.  *pipeline_sink* receives
    the context's :class:`~repro.core.device.PipelineTiming` under
    ``"pipeline"`` when given.
    """
    dtype = dtype_from_any(precision)
    ctx = DeviceContext(gpu)
    pool, compute = ctx.upload_pipeline(streams, prefix="init")
    lanes = itertools.cycle(pool)
    a_buf = ctx.enqueue_create_buffer(dtype, n, label="a")
    b_buf = ctx.enqueue_create_buffer(dtype, n, label="b")
    c_buf = ctx.enqueue_create_buffer(dtype, n, label="c")
    a_buf.fill(START_A, stream=next(lanes))
    b_buf.fill(START_B, stream=next(lanes))
    c_buf.fill(START_C, stream=next(lanes))
    a, b, c = a_buf.tensor(), b_buf.tensor(), c_buf.tensor()
    ctx.fan_in(pool, compute, prefix="init")

    launch = LaunchConfig.for_elements(n, tb_size)
    dot_sums = ctx.enqueue_create_buffer(DType.float64, dot_blocks, label="dot_sums")
    dot_launch = LaunchConfig.make(dot_blocks, tb_size)

    def op_model(op, elements_per_thread=1.0):
        return babelstream_kernel_model(op, n=n, precision=precision,
                                        elements_per_thread=elements_per_thread,
                                        tb_size=tb_size)

    dot_value = 0.0
    for _ in range(num_iterations):
        ctx.enqueue_function(copy_kernel, a, c, n,
                             grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                             mode=executor, model=op_model("copy"),
                             stream=compute)
        ctx.enqueue_function(mul_kernel, b, c, SCALAR, n,
                             grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                             mode=executor, model=op_model("mul"),
                             stream=compute)
        ctx.enqueue_function(add_kernel, a, b, c, n,
                             grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                             mode=executor, model=op_model("add"),
                             stream=compute)
        ctx.enqueue_function(triad_kernel, a, b, c, SCALAR, n,
                             grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                             mode=executor, model=op_model("triad"),
                             stream=compute)
        dot_sums.fill(0.0, stream=compute)
        dot_tensor = dot_sums.tensor()
        # Dot needs its barriers honoured: a "sequential" opt-out means
        # "scalar", which for a barrier kernel is the cooperative pool.
        dot_mode = "cooperative" if executor == "sequential" else executor
        ctx.enqueue_function(dot_kernel, a, b, dot_tensor, n, tb_size,
                             grid_dim=dot_launch.grid_dim,
                             block_dim=dot_launch.block_dim, mode=dot_mode,
                             model=op_model("dot", n / dot_launch.total_threads),
                             stream=compute)
        ctx.synchronize()
        dot_value = float(dot_sums.copy_to_host(stream=compute).sum())

    # Mirror the device state into the host reference container for the
    # standard scalar-replay verification.
    host = BabelStreamArrays(n, precision)
    host.a = a_buf.copy_to_host(stream=compute)
    host.b = b_buf.copy_to_host(stream=compute)
    host.c = c_buf.copy_to_host(stream=compute)
    if pipeline_sink is not None:
        pipeline_sink["pipeline"] = ctx.pipeline_breakdown()
    host.scalar = host.a.dtype.type(SCALAR)
    errors = verify_arrays(host, num_iterations)
    errors["dot"] = verify_dot(dot_value, host)
    return errors


class BabelStreamBenchmark:
    """Benchmark object mirroring the BabelStream driver structure."""

    def __init__(self, *, n: int = DEFAULT_SIZE, precision: str = "float64",
                 backend: str = "mojo", gpu: str = "h100",
                 tb_size: int = 1024, num_times: int = 100,
                 jitter: float = 0.01, seed: int = 2025,
                 fast_math: bool = False, warmup: int = 1,
                 executor: str = "auto", streams: int = 1):
        self.n = int(n)
        self.precision = precision
        self.backend = get_backend(backend)
        self.spec = get_gpu(gpu)
        self.tb_size = int(tb_size)
        self.num_times = int(num_times)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.fast_math = bool(fast_math)
        #: iterations discarded before sample collection (the BabelStream
        #: driver's first timing is traditionally treated as warm-up)
        self.warmup = int(warmup)
        #: functional-simulator mode used for verification launches
        self.executor = executor
        #: device streams used by the verification pipeline
        self.streams = int(streams)

    # ------------------------------------------------------------------ model
    def launch_for(self, op: str) -> LaunchConfig:
        if op == "dot":
            blocks = self.backend.dot_num_blocks(self.spec, self.n, self.tb_size)
            return LaunchConfig.make(blocks, self.tb_size)
        return LaunchConfig.for_elements(self.n, self.tb_size)

    def model_for(self, op: str):
        launch = self.launch_for(op)
        if op == "dot":
            elements_per_thread = self.n / launch.total_threads
        else:
            elements_per_thread = 1.0
        return babelstream_kernel_model(
            op, n=self.n, precision=self.precision,
            elements_per_thread=elements_per_thread, tb_size=self.tb_size,
        )

    # -------------------------------------------------------------------- run
    def run(self, *, verify: bool = True,
            pipeline_sink: Optional[dict] = None) -> BabelStreamResult:
        verification_errors: Dict[str, float] = {}
        verified = False
        if verify:
            verification_errors = run_babelstream_functional(
                precision=self.precision, gpu=self.spec.name,
                executor=self.executor, streams=self.streams,
                pipeline_sink=pipeline_sink)
            verified = True

        bandwidths: Dict[str, float] = {}
        times: Dict[str, float] = {}
        timings: Dict[str, TimingBreakdown] = {}
        samples: Dict[str, List[float]] = {}
        rng = np.random.default_rng(self.seed)

        for op in BABELSTREAM_OPS:
            launch = self.launch_for(op)
            model = self.model_for(op)
            run = self.backend.time(model, self.spec, launch,
                                    fast_math=self.fast_math)
            t_s = run.timing.kernel_time_s
            bw = operation_bandwidth_gbs(op, self.n, self.precision, t_s)
            bandwidths[op] = bw
            times[op] = run.timing.kernel_time_ms
            timings[op] = run.timing
            samples[op] = [
                bw * max(1.0 + rng.normal(0.0, self.jitter), 0.5)
                for _ in range(max(self.num_times - self.warmup, 0))
            ]

        return BabelStreamResult(
            n=self.n,
            precision=self.precision,
            backend=self.backend.name,
            gpu=self.spec.name,
            tb_size=self.tb_size,
            bandwidths_gbs=bandwidths,
            kernel_times_ms=times,
            timings=timings,
            verified=verified,
            verification_errors=verification_errors,
            samples_gbs=samples,
        )


def run_babelstream(**kwargs) -> BabelStreamResult:
    """Convenience wrapper: build a :class:`BabelStreamBenchmark` and run it.

    .. deprecated::
        Thin shim kept for existing callers; prefer
        ``repro.workloads.get_workload("babelstream")`` with a
        :class:`~repro.workloads.RunRequest`.
    """
    verify = kwargs.pop("verify", True)
    return BabelStreamBenchmark(**kwargs).run(verify=verify)
