"""BabelStream memory-bandwidth workload (Copy, Mul, Add, Triad, Dot)."""

from .conjugate_gradient import (
    CGResult,
    conjugate_gradient,
    estimate_cg_iteration_time,
    poisson_operator,
)
from .kernels import (
    BABELSTREAM_OPS,
    SCALAR,
    START_A,
    START_B,
    START_C,
    add_kernel,
    babelstream_kernel_model,
    copy_kernel,
    dot_kernel,
    mul_kernel,
    triad_kernel,
)
from .metrics import arrays_moved, operation_bandwidth_gbs, operation_bytes
from .reference import BabelStreamArrays, expected_values, verify_arrays, verify_dot
from .runner import (
    DEFAULT_SIZE,
    BabelStreamBenchmark,
    BabelStreamResult,
    run_babelstream,
    run_babelstream_functional,
)

__all__ = [
    "CGResult", "conjugate_gradient", "estimate_cg_iteration_time", "poisson_operator",
    "BABELSTREAM_OPS", "SCALAR", "START_A", "START_B", "START_C",
    "add_kernel", "babelstream_kernel_model", "copy_kernel", "dot_kernel",
    "mul_kernel", "triad_kernel",
    "arrays_moved", "operation_bandwidth_gbs", "operation_bytes",
    "BabelStreamArrays", "expected_values", "verify_arrays", "verify_dot",
    "DEFAULT_SIZE", "BabelStreamBenchmark", "BabelStreamResult",
    "run_babelstream", "run_babelstream_functional",
]
