"""A conjugate-gradient solver composed from BabelStream building blocks.

The paper motivates BabelStream as "the building blocks of several
memory-bandwidth bound algorithms (e.g., conjugate gradients)".  This module
makes that concrete: a matrix-free CG solver for the 3-D Poisson problem whose
per-iteration vector work is expressed exactly in terms of the BabelStream
operations (axpy/triad, dot, copy), so its cost on a simulated GPU can be
predicted from the same Eq. 2 traffic model the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ...backends import get_backend
from ...core.dtypes import dtype_from_any
from ...core.errors import ConfigurationError, VerificationError
from ...core.kernel import LaunchConfig
from ...gpu.specs import get_gpu
from .kernels import babelstream_kernel_model
from ..stencil.kernel import stencil_kernel_model
from ..stencil.runner import stencil_launch_config

__all__ = ["CGResult", "conjugate_gradient", "poisson_operator",
           "estimate_cg_iteration_time"]


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    #: per-iteration counts of BabelStream-equivalent operations
    operation_counts: Dict[str, int] = field(default_factory=dict)


def poisson_operator(L: int) -> Callable[[np.ndarray], np.ndarray]:
    """Matrix-free 3-D Poisson operator (7-point stencil, Dirichlet walls).

    Acts on flattened ``L**3`` vectors; the boundary planes are held at zero,
    which keeps the operator symmetric positive definite on the interior.
    """
    if L < 3:
        raise ConfigurationError("the Poisson operator needs L >= 3")

    def apply(v: np.ndarray) -> np.ndarray:
        # Dirichlet walls: boundary entries neither contribute nor receive,
        # which keeps the operator symmetric on the full flattened space.
        u = np.array(v, dtype=np.float64).reshape(L, L, L)
        u[0, :, :] = u[-1, :, :] = 0.0
        u[:, 0, :] = u[:, -1, :] = 0.0
        u[:, :, 0] = u[:, :, -1] = 0.0
        out = np.zeros_like(u)
        c = u[1:-1, 1:-1, 1:-1]
        out[1:-1, 1:-1, 1:-1] = (
            6.0 * c
            - u[:-2, 1:-1, 1:-1] - u[2:, 1:-1, 1:-1]
            - u[1:-1, :-2, 1:-1] - u[1:-1, 2:, 1:-1]
            - u[1:-1, 1:-1, :-2] - u[1:-1, 1:-1, 2:]
        )
        return out.reshape(-1)

    return apply


def conjugate_gradient(
    operator: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
    x0: Optional[np.ndarray] = None,
) -> CGResult:
    """Solve ``A x = rhs`` with (unpreconditioned) conjugate gradients.

    The vector updates are written as the BabelStream primitives they are:
    every iteration performs one operator application, two dot products,
    two triads (axpy) and one triad-like search-direction update, and the
    returned :class:`CGResult` records those counts so the bandwidth cost of
    the solve can be modelled with Eq. 2.
    """
    rhs = np.asarray(rhs, dtype=np.float64).reshape(-1)
    x = np.zeros_like(rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != rhs.shape:
        raise ConfigurationError("x0 must have the same shape as rhs")

    counts = {"copy": 0, "dot": 0, "triad": 0, "operator": 0}

    r = rhs - operator(x)                    # residual
    counts["operator"] += 1
    counts["triad"] += 1
    p = r.copy()
    counts["copy"] += 1
    rho = float(np.dot(r, r))
    counts["dot"] += 1
    rhs_norm = float(np.linalg.norm(rhs)) or 1.0

    history = [np.sqrt(rho) / rhs_norm]
    converged = history[-1] <= tolerance
    iterations = 0

    while not converged and iterations < max_iterations:
        q = operator(p)
        counts["operator"] += 1
        pq = float(np.dot(p, q))
        counts["dot"] += 1
        if pq <= 0:
            raise VerificationError(
                "operator is not positive definite on this subspace (p.A.p <= 0)"
            )
        alpha = rho / pq
        x += alpha * p                       # triad: x = x + alpha*p
        r -= alpha * q                       # triad: r = r - alpha*q
        counts["triad"] += 2
        rho_new = float(np.dot(r, r))
        counts["dot"] += 1
        beta = rho_new / rho
        p = r + beta * p                     # triad: p = r + beta*p
        counts["triad"] += 1
        rho = rho_new
        iterations += 1
        history.append(np.sqrt(rho) / rhs_norm)
        converged = history[-1] <= tolerance

    return CGResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norm=history[-1],
        residual_history=history,
        operation_counts=counts,
    )


def estimate_cg_iteration_time(L: int, *, backend: str = "mojo", gpu: str = "h100",
                               precision: str = "float64",
                               block_size: int = 1024) -> Dict[str, float]:
    """Model the per-iteration kernel time of the CG solve on a GPU.

    One iteration = one stencil application + 2 dot products + 3 triads, all
    on ``L**3``-element vectors.  Returns per-component and total milliseconds.
    """
    be = get_backend(backend)
    spec = get_gpu(gpu)
    n = L ** 3

    stencil = be.time(stencil_kernel_model(L=L, precision=precision), spec,
                      stencil_launch_config(L, (min(L, 512), 1, 1)))
    triad = be.time(babelstream_kernel_model("triad", n=n, precision=precision),
                    spec, LaunchConfig.for_elements(n, block_size))
    dot_launch = LaunchConfig.make(be.dot_num_blocks(spec, n, block_size), block_size)
    dot = be.time(
        babelstream_kernel_model("dot", n=n, precision=precision,
                                 elements_per_thread=n / dot_launch.total_threads,
                                 tb_size=block_size),
        spec, dot_launch)

    breakdown = {
        "stencil_ms": stencil.kernel_time_ms,
        "triad_ms": 3 * triad.kernel_time_ms,
        "dot_ms": 2 * dot.kernel_time_ms,
    }
    breakdown["total_ms"] = sum(breakdown.values())
    return breakdown
