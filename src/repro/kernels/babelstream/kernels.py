"""Device kernels for BabelStream (paper Listing 3).

Five array kernels measure sustainable memory bandwidth: Copy, Mul, Add,
Triad and Dot.  The first four are element-wise streaming kernels; Dot is a
grid-stride reduction using block shared memory and barriers, exactly as in
the paper's portable Mojo port.

All five bodies are vector-safe: the streaming kernels use the
``any_lane``/``compress_lanes`` tail guard, and Dot expresses its grid-stride
loop and shared-memory tree reduction through ``masked_gather`` /
``masked_store``, so the lockstep executor runs it one block per lane set
(the barriers degenerate to event counts — see
:mod:`repro.gpu.vector_executor`).
"""

from __future__ import annotations

from ...core.dtypes import DType, dtype_from_any
from ...core.intrinsics import (
    any_lane,
    barrier,
    block_dim,
    block_idx,
    compress_lanes,
    grid_dim,
    masked_gather,
    masked_store,
    shared_array,
    thread_idx,
)
from ...core.kernel import KernelModel, MemoryPattern, kernel

__all__ = [
    "copy_kernel", "mul_kernel", "add_kernel", "triad_kernel", "dot_kernel",
    "babelstream_kernel_model", "BABELSTREAM_OPS", "START_A", "START_B",
    "START_C", "SCALAR",
]

#: canonical BabelStream initial values and triad scalar
START_A = 0.1
START_B = 0.2
START_C = 0.0
SCALAR = 0.4

#: the five operations in canonical order
BABELSTREAM_OPS = ("copy", "mul", "add", "triad", "dot")


@kernel(name="copy_kernel", vector_safe=True, strict=True)
def copy_kernel(a, c, n):
    """``c[i] = a[i]``"""
    i = block_dim.x * block_idx.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    c[i] = a[i]


@kernel(name="mul_kernel", vector_safe=True, strict=True)
def mul_kernel(b, c, scalar, n):
    """``b[i] = scalar * c[i]``"""
    i = block_dim.x * block_idx.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    b[i] = scalar * c[i]


@kernel(name="add_kernel", vector_safe=True, strict=True)
def add_kernel(a, b, c, n):
    """``c[i] = a[i] + b[i]``"""
    i = block_dim.x * block_idx.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    c[i] = a[i] + b[i]


@kernel(name="triad_kernel", vector_safe=True, strict=True)
def triad_kernel(a, b, c, scalar, n):
    """``a[i] = b[i] + scalar * c[i]``"""
    i = block_dim.x * block_idx.x + thread_idx.x
    m = i < n
    if not any_lane(m):
        return
    i = compress_lanes(m, i)
    a[i] = b[i] + scalar * c[i]


@kernel(name="dot_kernel", vector_safe=True, strict=True)
def dot_kernel(a, b, block_sums, n, tb_size):
    """Grid-stride dot product with a block shared-memory tree reduction.

    Each block writes its partial sum into ``block_sums[block_idx.x]``; the
    host (or a second kernel) finishes the reduction, as in BabelStream.
    The grid-stride loop and the tree reduction are predicated
    (``masked_gather`` / ``masked_store``) rather than branched, so every
    lane of a block walks the same statement sequence — which is also how
    the divergence-free GPU implementation behaves.
    """
    tb_sum = shared_array(tb_size, DType.float64, key="tb_sum")
    i = block_dim.x * block_idx.x + thread_idx.x
    local_tid = thread_idx.x
    threads_in_grid = block_dim.x * grid_dim.x

    acc = 0.0
    while any_lane(i < n):
        m = i < n
        acc = acc + masked_gather(a, i, m) * masked_gather(b, i, m)
        i = i + threads_in_grid
    tb_sum[local_tid] = acc

    offset = block_dim.x // 2
    while offset > 0:
        barrier()
        m = local_tid < offset
        masked_store(
            tb_sum, local_tid,
            masked_gather(tb_sum, local_tid, m)
            + masked_gather(tb_sum, local_tid + offset, m),
            m,
        )
        offset //= 2
    barrier()

    m0 = local_tid == 0
    masked_store(block_sums, block_idx.x, tb_sum[0], m0)


def babelstream_kernel_model(op: str, *, n: int, precision: str = "float64",
                             elements_per_thread: float = 1.0,
                             tb_size: int = 1024) -> KernelModel:
    """Analytic resource model for one BabelStream operation.

    ``elements_per_thread`` is 1 for the streaming kernels and ``n / threads``
    for the grid-stride Dot kernel.
    """
    dtype = dtype_from_any(precision)
    op = op.lower()
    e = float(elements_per_thread)
    if op == "copy":
        return KernelModel(
            name="babelstream_copy", dtype=dtype, loads_global=1.0,
            stores_global=1.0, flops=0.0, int_ops=6.0, scalar_args=1,
            working_values=10, memory_pattern=MemoryPattern.STRIDE1,
        )
    if op == "mul":
        return KernelModel(
            name="babelstream_mul", dtype=dtype, loads_global=1.0,
            stores_global=1.0, flops=1.0, int_ops=6.0, scalar_args=2,
            working_values=10, memory_pattern=MemoryPattern.STRIDE1,
        )
    if op == "add":
        return KernelModel(
            name="babelstream_add", dtype=dtype, loads_global=2.0,
            stores_global=1.0, flops=1.0, int_ops=6.0, scalar_args=1,
            working_values=12, memory_pattern=MemoryPattern.STRIDE1,
        )
    if op == "triad":
        return KernelModel(
            name="babelstream_triad", dtype=dtype, loads_global=2.0,
            stores_global=1.0, flops=2.0, int_ops=6.0, scalar_args=2,
            working_values=12, memory_pattern=MemoryPattern.STRIDE1,
        )
    if op == "dot":
        return KernelModel(
            name="babelstream_dot", dtype=dtype,
            loads_global=2.0 * e,
            stores_global=1.0 / max(tb_size, 1),
            flops=2.0 * e,
            int_ops=8.0 * e,
            shared_loads=2.0 * _log2(tb_size),
            shared_stores=1.0 + _log2(tb_size),
            barriers=float(_log2(tb_size)),
            scalar_args=2,
            working_values=14,
            uses_shared=True,
            shared_bytes_per_block=tb_size * dtype.sizeof,
            memory_pattern=MemoryPattern.STRIDE1,
        )
    raise ValueError(f"unknown BabelStream operation {op!r}; "
                     f"expected one of {BABELSTREAM_OPS}")


def _log2(value: int) -> int:
    out = 0
    v = int(value)
    while v > 1:
        v //= 2
        out += 1
    return out
