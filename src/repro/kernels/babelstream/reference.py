"""Vectorized reference implementation and verification for BabelStream.

Implements the same Copy/Mul/Add/Triad/Dot semantics with NumPy array
operations, plus the standard BabelStream verification that replays the
operation sequence on scalars.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ...core.errors import VerificationError
from .kernels import SCALAR, START_A, START_B, START_C

__all__ = ["BabelStreamArrays", "expected_values", "verify_arrays",
           "verify_dot"]


class BabelStreamArrays:
    """Host-side BabelStream state: three arrays a, b, c."""

    def __init__(self, n: int, precision: str = "float64"):
        dtype = np.dtype(precision)
        self.n = int(n)
        self.a = np.full(self.n, START_A, dtype=dtype)
        self.b = np.full(self.n, START_B, dtype=dtype)
        self.c = np.full(self.n, START_C, dtype=dtype)
        self.scalar = dtype.type(SCALAR)

    # ------------------------------------------------------------ operations
    def copy(self) -> None:
        """``c = a``"""
        np.copyto(self.c, self.a)

    def mul(self) -> None:
        """``b = scalar * c``"""
        np.multiply(self.c, self.scalar, out=self.b)

    def add(self) -> None:
        """``c = a + b``"""
        np.add(self.a, self.b, out=self.c)

    def triad(self) -> None:
        """``a = b + scalar * c``"""
        self.a[...] = self.b + self.scalar * self.c

    def dot(self) -> float:
        """``sum(a * b)``"""
        return float(np.dot(self.a, self.b))

    def run_iteration(self) -> float:
        """One BabelStream iteration (copy, mul, add, triad, dot)."""
        self.copy()
        self.mul()
        self.add()
        self.triad()
        return self.dot()


def expected_values(num_iterations: int) -> Tuple[float, float, float]:
    """Replay the operation sequence on scalars (BabelStream verification)."""
    a, b, c, scalar = START_A, START_B, START_C, SCALAR
    for _ in range(num_iterations):
        c = a
        b = scalar * c
        c = a + b
        a = b + scalar * c
    return a, b, c


def verify_arrays(arrays: BabelStreamArrays, num_iterations: int,
                  *, rtol: float = None) -> Dict[str, float]:
    """Verify the three arrays against the scalar replay.

    Returns the per-array maximum relative errors; raises
    :class:`VerificationError` if any exceeds *rtol*.
    """
    if rtol is None:
        rtol = 1e-6 if arrays.a.dtype == np.float32 else 1e-12
    exp_a, exp_b, exp_c = expected_values(num_iterations)
    errors = {}
    for name, arr, expected in (("a", arrays.a, exp_a), ("b", arrays.b, exp_b),
                                ("c", arrays.c, exp_c)):
        err = float(np.max(np.abs(arr - expected)) / max(abs(expected), 1e-30))
        errors[name] = err
        if err > rtol:
            raise VerificationError(
                f"BabelStream array {name!r} verification failed: "
                f"max relative error {err:.3e} > {rtol:.1e}",
                max_rel_error=err,
            )
    return errors


def verify_dot(dot_value: float, arrays: BabelStreamArrays,
               *, rtol: float = None) -> float:
    """Verify a dot-product result against ``sum(a*b)`` of the current state."""
    if rtol is None:
        rtol = 1e-6 if arrays.a.dtype == np.float32 else 1e-10
    expected = arrays.dot()
    err = abs(dot_value - expected) / max(abs(expected), 1e-30)
    if err > rtol:
        raise VerificationError(
            f"BabelStream dot verification failed: relative error {err:.3e} "
            f"> {rtol:.1e}", max_rel_error=err,
        )
    return err
