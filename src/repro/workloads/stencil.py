"""Unified-API adapter for the seven-point stencil workload.

The benchmark engine (:func:`bench_stencil`) lives here; the legacy
:func:`repro.kernels.stencil.runner.run_stencil` is a thin shim over it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..backends import get_backend
from ..gpu.specs import get_gpu
from ..kernels.stencil.kernel import stencil_kernel_model
from ..kernels.stencil.metrics import effective_bandwidth_gbs
from ..kernels.stencil.problem import StencilProblem
from ..kernels.stencil.reference import laplacian_reference
from ..kernels.stencil.runner import (
    FUNCTIONAL_VERIFY_MAX_L,
    StencilResult,
    stencil_launch_config,
    verify_stencil_kernel,
)
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["StencilWorkload", "bench_stencil"]


def bench_stencil(
    *,
    L: int = 512,
    precision: str = "float64",
    backend: str = "mojo",
    gpu: str = "h100",
    block_shape: Tuple[int, int, int] = (512, 1, 1),
    iterations: int = 100,
    warmup: int = 1,
    jitter: float = 0.02,
    seed: int = 2025,
    verify: bool = True,
    fast_math: bool = False,
    executor: str = "auto",
    streams: int = 1,
    pipeline_sink: Optional[dict] = None,
) -> StencilResult:
    """Benchmark one stencil configuration.

    Functional verification runs on a reduced grid (the numerics of the
    kernel do not depend on ``L``); the reported bandwidth for the requested
    ``L`` comes from the backend timing model, evaluated per Eq. 1.  The
    ``iterations``/``jitter`` parameters produce the per-run samples that give
    Figure 3 its measurement spread (seeded, hence reproducible).
    ``streams``/``pipeline_sink`` shape the verification pipeline (see
    :func:`~repro.kernels.stencil.runner.verify_stencil_kernel`).
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)

    max_rel_error = float("nan")
    verified = False
    if verify:
        verify_l = min(L, FUNCTIONAL_VERIFY_MAX_L)
        max_rel_error = verify_stencil_kernel(verify_l, precision, gpu,
                                              block_shape=(8, 4, 4),
                                              executor=executor,
                                              streams=streams,
                                              pipeline_sink=pipeline_sink)
        verified = True

    model = stencil_kernel_model(L=L, precision=precision)
    launch = stencil_launch_config(L, block_shape)
    run = be.time(model, spec, launch, fast_math=fast_math)
    time_s = run.timing.kernel_time_s
    bandwidth = effective_bandwidth_gbs(L, precision, time_s)

    rng = np.random.default_rng(seed)
    samples = []
    for i in range(max(iterations - warmup, 0)):
        noise = 1.0 + rng.normal(0.0, jitter)
        samples.append(bandwidth * max(noise, 0.5))

    return StencilResult(
        L=L,
        precision=precision,
        backend=be.name,
        gpu=spec.name,
        block_shape=tuple(block_shape),
        kernel_time_ms=run.timing.kernel_time_ms,
        bandwidth_gbs=bandwidth,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
        samples_gbs=samples,
    )


class StencilWorkload(Workload):
    """Seven-point Laplacian stencil (memory-bound, Figure 3 / Table 2)."""

    name = "stencil"
    description = "Seven-point Laplacian stencil on an L^3 grid (Eq. 1 bandwidth)"
    primary_metric = "bandwidth_gbs"
    primary_unit = "GB/s"
    params = (
        ParamSpec("L", int, 512, "cubic domain edge length", minimum=3),
        ParamSpec("block_shape", tuple, (512, 1, 1),
                  "thread-block shape bx,by,bz", minimum=1, length=3),
        ParamSpec("jitter", float, 0.02,
                  "relative per-sample measurement noise", minimum=0.0),
        ParamSpec("seed", int, 2025, "RNG seed for the sample noise"),
    )

    #: block-shape candidates the tuner may try; the two 2048-thread shapes
    #: at the end exist to be rejected by the occupancy pruner (the device
    #: caps blocks at 1024 threads) — they are never measured
    TUNING_BLOCKS = (
        (1024, 1, 1), (512, 1, 1), (256, 1, 1), (128, 1, 1), (64, 1, 1),
        (32, 1, 1), (256, 2, 1), (128, 4, 1), (64, 4, 2), (32, 4, 2),
        (16, 16, 1), (16, 8, 8), (8, 8, 8), (8, 8, 4), (8, 4, 4), (4, 4, 4),
        (32, 8, 8), (64, 8, 4),
    )

    #: edge length of the reduced grid the capture/replay probe executes
    TUNING_PROBE_L = 16

    def tuning_space(self, request: RunRequest):
        """Launch knobs: thread-block shape and the fast-math lowering."""
        from ..tuning.space import TuningKnob, TuningSpace

        return TuningSpace((
            TuningKnob("block_shape", self.TUNING_BLOCKS),
            TuningKnob("fast_math", (False, True), kind="field"),
        ))

    def tuning_model(self, request: RunRequest):
        """Kernel model + launch for the pruner (no compile, no run)."""
        p = self.validate_params(request.params)
        model = stencil_kernel_model(L=p["L"], precision=request.precision)
        return model, stencil_launch_config(p["L"], p["block_shape"])

    def region_probe(self, request: RunRequest):
        """Stencil argument skeleton for symbolic traffic estimation."""
        from ..analysis.regions import TensorSpec
        from ..kernels.stencil.kernel import laplacian_kernel

        p = self.validate_params(request.params)
        L = p["L"]
        problem = StencilProblem(L, request.precision)
        invhx2, invhy2, invhz2, invhxyz2 = problem.inverse_spacing_squared
        spec = TensorSpec((L, L, L), request.precision)
        return laplacian_kernel, (spec, spec, L, L, L,
                                  invhx2, invhy2, invhz2, invhxyz2)

    def tuning_probe(self, request: RunRequest):
        """Capture the H2D → kernel → D2H pipeline on a reduced grid."""
        from ..core.device import DeviceContext
        from ..core.layout import Layout
        from ..kernels.stencil.kernel import laplacian_kernel

        p = self.validate_params(request.params)
        L = min(p["L"], self.TUNING_PROBE_L)
        problem = StencilProblem(L, request.precision)
        invhx2, invhy2, invhz2, invhxyz2 = problem.inverse_spacing_squared
        u_host = problem.initial_field().reshape(-1)
        layout = Layout.row_major(L, L, L)
        launch = stencil_launch_config(L, p["block_shape"])

        ctx = DeviceContext(request.gpu)
        u_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells,
                                          label="u")
        f_buf = ctx.enqueue_create_buffer(problem.dtype, problem.num_cells,
                                          label="f")
        u = u_buf.tensor(layout, mut=False, bounds_check=False)
        f = f_buf.tensor(layout, mut=True, bounds_check=False)
        with ctx.capture(f"tune-{self.name}") as graph:
            u_buf.copy_from_host(u_host)
            ctx.enqueue_function(
                laplacian_kernel, f, u, L, L, L,
                invhx2, invhy2, invhz2, invhxyz2,
                grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                mode=request.executor,
                model=stencil_kernel_model(L=L, precision=request.precision),
            )
            f_buf.copy_to_host()
        return self._maybe_optimize(graph, request)

    def reference(self, *, L: int = 32, precision: str = "float64"):
        """NumPy Laplacian of the standard initial field on an ``L^3`` grid."""
        problem = StencilProblem(L, precision)
        u = problem.initial_field()
        return laplacian_reference(u, *problem.inverse_spacing_squared)

    def verify(self, *, L: int = 18, precision: str = "float64",
               gpu: str = "h100") -> float:
        """Device-kernel functional verification; returns max relative error."""
        return verify_stencil_kernel(min(L, FUNCTIONAL_VERIFY_MAX_L),
                                     precision, gpu)

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        proto = request.protocol
        sink: dict = {}
        result = bench_stencil(
            L=p["L"], precision=request.precision, backend=request.backend,
            gpu=request.gpu, block_shape=p["block_shape"],
            iterations=proto.repeats + proto.warmup, warmup=proto.warmup,
            jitter=p["jitter"], seed=p["seed"], verify=request.verify,
            fast_math=request.fast_math, executor=request.executor,
            streams=request.streams, pipeline_sink=sink,
        )
        timing = self._timing_with_pipeline({"kernel": result.timing}, sink)
        return WorkloadResult(
            request=request,
            metrics={
                "bandwidth_gbs": result.bandwidth_gbs,
                "mean_bandwidth_gbs": result.mean_bandwidth_gbs,
                "kernel_time_ms": result.kernel_time_ms,
                **self.counter_metrics(request),
            },
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=result.max_rel_error),
            timing=timing,
            samples={"bandwidth_gbs": list(result.samples_gbs)},
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
