"""Unified-API adapter for the seven-point stencil workload.

The benchmark engine (:func:`bench_stencil`) lives here; the legacy
:func:`repro.kernels.stencil.runner.run_stencil` is a thin shim over it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..backends import get_backend
from ..gpu.specs import get_gpu
from ..kernels.stencil.kernel import stencil_kernel_model
from ..kernels.stencil.metrics import effective_bandwidth_gbs
from ..kernels.stencil.problem import StencilProblem
from ..kernels.stencil.reference import laplacian_reference
from ..kernels.stencil.runner import (
    FUNCTIONAL_VERIFY_MAX_L,
    StencilResult,
    stencil_launch_config,
    verify_stencil_kernel,
)
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["StencilWorkload", "bench_stencil"]


def bench_stencil(
    *,
    L: int = 512,
    precision: str = "float64",
    backend: str = "mojo",
    gpu: str = "h100",
    block_shape: Tuple[int, int, int] = (512, 1, 1),
    iterations: int = 100,
    warmup: int = 1,
    jitter: float = 0.02,
    seed: int = 2025,
    verify: bool = True,
    fast_math: bool = False,
    executor: str = "auto",
    streams: int = 1,
    pipeline_sink: Optional[dict] = None,
) -> StencilResult:
    """Benchmark one stencil configuration.

    Functional verification runs on a reduced grid (the numerics of the
    kernel do not depend on ``L``); the reported bandwidth for the requested
    ``L`` comes from the backend timing model, evaluated per Eq. 1.  The
    ``iterations``/``jitter`` parameters produce the per-run samples that give
    Figure 3 its measurement spread (seeded, hence reproducible).
    ``streams``/``pipeline_sink`` shape the verification pipeline (see
    :func:`~repro.kernels.stencil.runner.verify_stencil_kernel`).
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)

    max_rel_error = float("nan")
    verified = False
    if verify:
        verify_l = min(L, FUNCTIONAL_VERIFY_MAX_L)
        max_rel_error = verify_stencil_kernel(verify_l, precision, gpu,
                                              block_shape=(8, 4, 4),
                                              executor=executor,
                                              streams=streams,
                                              pipeline_sink=pipeline_sink)
        verified = True

    model = stencil_kernel_model(L=L, precision=precision)
    launch = stencil_launch_config(L, block_shape)
    run = be.time(model, spec, launch, fast_math=fast_math)
    time_s = run.timing.kernel_time_s
    bandwidth = effective_bandwidth_gbs(L, precision, time_s)

    rng = np.random.default_rng(seed)
    samples = []
    for i in range(max(iterations - warmup, 0)):
        noise = 1.0 + rng.normal(0.0, jitter)
        samples.append(bandwidth * max(noise, 0.5))

    return StencilResult(
        L=L,
        precision=precision,
        backend=be.name,
        gpu=spec.name,
        block_shape=tuple(block_shape),
        kernel_time_ms=run.timing.kernel_time_ms,
        bandwidth_gbs=bandwidth,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
        samples_gbs=samples,
    )


class StencilWorkload(Workload):
    """Seven-point Laplacian stencil (memory-bound, Figure 3 / Table 2)."""

    name = "stencil"
    description = "Seven-point Laplacian stencil on an L^3 grid (Eq. 1 bandwidth)"
    primary_metric = "bandwidth_gbs"
    primary_unit = "GB/s"
    params = (
        ParamSpec("L", int, 512, "cubic domain edge length", minimum=3),
        ParamSpec("block_shape", tuple, (512, 1, 1),
                  "thread-block shape bx,by,bz", minimum=1, length=3),
        ParamSpec("jitter", float, 0.02,
                  "relative per-sample measurement noise", minimum=0.0),
        ParamSpec("seed", int, 2025, "RNG seed for the sample noise"),
    )

    def reference(self, *, L: int = 32, precision: str = "float64"):
        """NumPy Laplacian of the standard initial field on an ``L^3`` grid."""
        problem = StencilProblem(L, precision)
        u = problem.initial_field()
        return laplacian_reference(u, *problem.inverse_spacing_squared)

    def verify(self, *, L: int = 18, precision: str = "float64",
               gpu: str = "h100") -> float:
        """Device-kernel functional verification; returns max relative error."""
        return verify_stencil_kernel(min(L, FUNCTIONAL_VERIFY_MAX_L),
                                     precision, gpu)

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        proto = request.protocol
        sink: dict = {}
        result = bench_stencil(
            L=p["L"], precision=request.precision, backend=request.backend,
            gpu=request.gpu, block_shape=p["block_shape"],
            iterations=proto.repeats + proto.warmup, warmup=proto.warmup,
            jitter=p["jitter"], seed=p["seed"], verify=request.verify,
            fast_math=request.fast_math, executor=request.executor,
            streams=request.streams, pipeline_sink=sink,
        )
        timing = self._timing_with_pipeline({"kernel": result.timing}, sink)
        return WorkloadResult(
            request=request,
            metrics={
                "bandwidth_gbs": result.bandwidth_gbs,
                "mean_bandwidth_gbs": result.mean_bandwidth_gbs,
                "kernel_time_ms": result.kernel_time_ms,
            },
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=result.max_rel_error),
            timing=timing,
            samples={"bandwidth_gbs": list(result.samples_gbs)},
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
