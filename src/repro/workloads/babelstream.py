"""Unified-API adapter for the BabelStream workload.

Wraps :class:`repro.kernels.babelstream.runner.BabelStreamBenchmark` (the
engine shared with the legacy ``run_babelstream`` shim) behind the
:class:`~repro.workloads.base.Workload` protocol.
"""

from __future__ import annotations

from ..kernels.babelstream.kernels import BABELSTREAM_OPS
from ..kernels.babelstream.reference import expected_values
from ..kernels.babelstream.runner import (
    DEFAULT_SIZE,
    BabelStreamBenchmark,
    run_babelstream_functional,
)
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["BabelStreamWorkload"]


class BabelStreamWorkload(Workload):
    """BabelStream Copy/Mul/Add/Triad/Dot (memory-bound, Figure 4 / Table 3)."""

    name = "babelstream"
    description = ("BabelStream Copy/Mul/Add/Triad/Dot on three n-element "
                   "vectors (Eq. 2 bandwidth)")
    primary_metric = "triad_gbs"
    primary_unit = "GB/s"
    params = (
        ParamSpec("n", int, DEFAULT_SIZE, "vector length in elements",
                  minimum=1),
        ParamSpec("tb_size", int, 1024, "thread-block size", minimum=1),
        ParamSpec("jitter", float, 0.01,
                  "relative per-sample measurement noise", minimum=0.0),
        ParamSpec("seed", int, 2025, "RNG seed for the sample noise"),
    )

    def reference(self, *, num_iterations: int = 2):
        """Scalar-replay expected values of a/b/c after *num_iterations*."""
        a, b, c = expected_values(num_iterations)
        return {"a": a, "b": b, "c": c}

    def verify(self, *, precision: str = "float64", gpu: str = "h100") -> float:
        """Functional run of all five device kernels; max relative error."""
        errors = run_babelstream_functional(precision=precision, gpu=gpu)
        return max(errors.values())

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        bench = BabelStreamBenchmark(
            n=p["n"], precision=request.precision, backend=request.backend,
            gpu=request.gpu, tb_size=p["tb_size"],
            num_times=request.protocol.repeats + request.protocol.warmup,
            warmup=request.protocol.warmup,
            jitter=p["jitter"], seed=p["seed"],
            fast_math=request.fast_math, executor=request.executor,
            streams=request.streams,
        )
        sink: dict = {}
        result = bench.run(verify=request.verify, pipeline_sink=sink)

        metrics = {f"{op}_gbs": result.bandwidths_gbs[op]
                   for op in BABELSTREAM_OPS}
        metrics["kernel_time_ms"] = sum(result.kernel_times_ms.values())
        max_err = (max(result.verification_errors.values())
                   if result.verification_errors else float("nan"))
        timing = self._timing_with_pipeline(dict(result.timings), sink)
        return WorkloadResult(
            request=request,
            metrics=metrics,
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=max_err),
            timing=timing,
            samples={f"{op}_gbs": list(result.samples_gbs[op])
                     for op in BABELSTREAM_OPS},
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
