"""Unified-API adapter for the BabelStream workload.

Wraps :class:`repro.kernels.babelstream.runner.BabelStreamBenchmark` (the
engine shared with the legacy ``run_babelstream`` shim) behind the
:class:`~repro.workloads.base.Workload` protocol.
"""

from __future__ import annotations

from ..kernels.babelstream.kernels import BABELSTREAM_OPS
from ..kernels.babelstream.reference import expected_values
from ..kernels.babelstream.runner import (
    DEFAULT_SIZE,
    BabelStreamBenchmark,
    run_babelstream_functional,
)
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["BabelStreamWorkload"]


class BabelStreamWorkload(Workload):
    """BabelStream Copy/Mul/Add/Triad/Dot (memory-bound, Figure 4 / Table 3)."""

    name = "babelstream"
    description = ("BabelStream Copy/Mul/Add/Triad/Dot on three n-element "
                   "vectors (Eq. 2 bandwidth)")
    primary_metric = "triad_gbs"
    primary_unit = "GB/s"
    params = (
        ParamSpec("n", int, DEFAULT_SIZE, "vector length in elements",
                  minimum=1),
        ParamSpec("tb_size", int, 1024, "thread-block size", minimum=1),
        ParamSpec("jitter", float, 0.01,
                  "relative per-sample measurement noise", minimum=0.0),
        ParamSpec("seed", int, 2025, "RNG seed for the sample noise"),
    )

    #: thread-block sizes the tuner may try (the streaming kernels are 1-D)
    TUNING_TB_SIZES = (32, 64, 128, 256, 512, 1024)

    #: vector length of the reduced capture/replay probe
    TUNING_PROBE_N = 1 << 12

    def tuning_space(self, request: RunRequest):
        """Launch knobs: thread-block size and the fast-math lowering."""
        from ..tuning.space import TuningKnob, TuningSpace

        return TuningSpace((
            TuningKnob("tb_size", self.TUNING_TB_SIZES),
            TuningKnob("fast_math", (False, True), kind="field"),
        ))

    def tuning_model(self, request: RunRequest):
        """Triad (the primary metric's kernel) model + launch for the pruner."""
        from ..core.kernel import LaunchConfig
        from ..kernels.babelstream.kernels import babelstream_kernel_model

        p = self.validate_params(request.params)
        model = babelstream_kernel_model("triad", n=p["n"],
                                         precision=request.precision,
                                         tb_size=p["tb_size"])
        return model, LaunchConfig.for_elements(p["n"], p["tb_size"])

    def tuning_probe(self, request: RunRequest):
        """Capture the Copy→Mul→Add→Triad sweep on a reduced vector length.

        The four streaming kernels run back-to-back on the same stream over
        the shared a/b/c buffers — exactly the adjacency the graph
        compiler's fusion pass targets, so an ``optimize``-carrying request
        (or ``repro graph babelstream``) exercises real multi-kernel
        fusion rather than a single-launch degenerate.
        """
        from ..core.device import DeviceContext
        from ..core.dtypes import dtype_from_any
        from ..core.kernel import LaunchConfig
        from ..kernels.babelstream.kernels import (
            SCALAR,
            START_A,
            START_B,
            START_C,
            add_kernel,
            babelstream_kernel_model,
            copy_kernel,
            mul_kernel,
            triad_kernel,
        )

        p = self.validate_params(request.params)
        n = min(p["n"], self.TUNING_PROBE_N)
        dtype = dtype_from_any(request.precision)
        launch = LaunchConfig.for_elements(n, p["tb_size"])
        ctx = DeviceContext(request.gpu)
        a_buf = ctx.enqueue_create_buffer(dtype, n, label="a")
        b_buf = ctx.enqueue_create_buffer(dtype, n, label="b")
        c_buf = ctx.enqueue_create_buffer(dtype, n, label="c")
        a, b, c = a_buf.tensor(), b_buf.tensor(), c_buf.tensor()

        def model(op):
            return babelstream_kernel_model(op, n=n,
                                            precision=request.precision,
                                            tb_size=p["tb_size"])

        sweep = (("copy", copy_kernel, (a, c, n)),
                 ("mul", mul_kernel, (b, c, SCALAR, n)),
                 ("add", add_kernel, (a, b, c, n)),
                 ("triad", triad_kernel, (a, b, c, SCALAR, n)))
        with ctx.capture(f"tune-{self.name}") as graph:
            a_buf.fill(START_A)
            b_buf.fill(START_B)
            c_buf.fill(START_C)
            for op, kern, args in sweep:
                ctx.enqueue_function(
                    kern, *args,
                    grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                    mode=request.executor, model=model(op),
                )
            a_buf.copy_to_host()
        return self._maybe_optimize(graph, request)

    def reference(self, *, num_iterations: int = 2):
        """Scalar-replay expected values of a/b/c after *num_iterations*."""
        a, b, c = expected_values(num_iterations)
        return {"a": a, "b": b, "c": c}

    def verify(self, *, precision: str = "float64", gpu: str = "h100") -> float:
        """Functional run of all five device kernels; max relative error."""
        errors = run_babelstream_functional(precision=precision, gpu=gpu)
        return max(errors.values())

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        bench = BabelStreamBenchmark(
            n=p["n"], precision=request.precision, backend=request.backend,
            gpu=request.gpu, tb_size=p["tb_size"],
            num_times=request.protocol.repeats + request.protocol.warmup,
            warmup=request.protocol.warmup,
            jitter=p["jitter"], seed=p["seed"],
            fast_math=request.fast_math, executor=request.executor,
            streams=request.streams,
        )
        sink: dict = {}
        result = bench.run(verify=request.verify, pipeline_sink=sink)

        metrics = {f"{op}_gbs": result.bandwidths_gbs[op]
                   for op in BABELSTREAM_OPS}
        metrics["kernel_time_ms"] = sum(result.kernel_times_ms.values())
        # Profiling counters for the primary-metric kernel (triad).
        metrics.update(self.counter_metrics(request))
        max_err = (max(result.verification_errors.values())
                   if result.verification_errors else float("nan"))
        timing = self._timing_with_pipeline(dict(result.timings), sink)
        return WorkloadResult(
            request=request,
            metrics=metrics,
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=max_err),
            timing=timing,
            samples={f"{op}_gbs": list(result.samples_gbs[op])
                     for op in BABELSTREAM_OPS},
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
