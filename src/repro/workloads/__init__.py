"""Unified Workload API: one registry and request/result schema for the four
science kernels of the paper.

>>> from repro.workloads import get_workload, list_workloads
>>> list_workloads()
('babelstream', 'hartreefock', 'minibude', 'stencil')
>>> wl = get_workload("stencil")
>>> result = wl.run(wl.make_request(gpu="h100", backend="mojo",
...                                 params={"L": 128}, verify=False))
>>> result.primary_metric
'bandwidth_gbs'

Every workload accepts the same frozen :class:`RunRequest` and returns the
same :class:`WorkloadResult` shape, so sweeps, the CLI ``bench`` command and
the figure experiments drive all kernels uniformly.
"""

from .base import (
    DEFAULT_PROTOCOL,
    EXECUTOR_MODES,
    MAX_STREAMS,
    TUNE_MODES,
    ParamSpec,
    RunRequest,
    Verification,
    Workload,
    WorkloadResult,
)
from .cache import (
    ResultCache,
    clear_result_cache,
    result_cache_info,
    run_cached,
)
from .registry import (
    get_workload,
    list_workloads,
    register_workload,
    unregister_workload,
)
from .babelstream import BabelStreamWorkload
from .hartreefock import HartreeFockWorkload
from .minibude import MiniBudeWorkload
from .stencil import StencilWorkload

__all__ = [
    "ParamSpec", "RunRequest", "Verification", "Workload", "WorkloadResult",
    "DEFAULT_PROTOCOL", "EXECUTOR_MODES", "MAX_STREAMS", "TUNE_MODES",
    "register_workload", "unregister_workload", "get_workload",
    "list_workloads",
    "StencilWorkload", "BabelStreamWorkload", "MiniBudeWorkload",
    "HartreeFockWorkload",
    "run_workload",
    "ResultCache", "run_cached", "result_cache_info", "clear_result_cache",
]

register_workload(StencilWorkload(), "laplacian")
register_workload(BabelStreamWorkload(), "stream")
register_workload(MiniBudeWorkload(), "bude")
register_workload(HartreeFockWorkload(), "hf")


def run_workload(request: RunRequest) -> WorkloadResult:
    """Dispatch a :class:`RunRequest` to its registered workload and run it."""
    return get_workload(request.workload).run(request)
