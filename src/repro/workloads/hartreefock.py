"""Unified-API adapter for the Hartree–Fock workload.

The benchmark engine (:func:`bench_hartreefock`) lives here; the legacy
:func:`repro.kernels.hartreefock.runner.run_hartreefock` is a thin shim.
"""

from __future__ import annotations

from typing import Optional

from ..backends import get_backend
from ..gpu.specs import get_gpu
from ..kernels.hartreefock.basis import make_helium_system
from ..kernels.hartreefock.kernel import (
    SCHWARZ_TOLERANCE,
    hartree_fock_kernel_model,
)
from ..kernels.hartreefock.reference import fock_quadruple_reference
from ..kernels.hartreefock.runner import (
    APPROX_SCHWARZ_NATOMS,
    DEFAULT_BLOCK_SIZE,
    HartreeFockResult,
    compute_schwarz,
    run_hartreefock_functional,
    surviving_quadruple_fraction,
)
from ..core.kernel import LaunchConfig
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["HartreeFockWorkload", "bench_hartreefock"]


def bench_hartreefock(
    *,
    natoms: int = 256,
    ngauss: int = 3,
    backend: str = "mojo",
    gpu: str = "h100",
    block_size: int = DEFAULT_BLOCK_SIZE,
    spacing: float = 3.0,
    schwarz_tol: float = SCHWARZ_TOLERANCE,
    verify: bool = True,
    verify_natoms: int = 4,
    fast_math: bool = False,
    executor: str = "auto",
    streams: int = 1,
    pipeline_sink: Optional[dict] = None,
) -> HartreeFockResult:
    """Benchmark one Hartree–Fock configuration (Table 4).

    The surviving-quadruple fraction is computed from the system's actual
    Schwarz bounds and drives the per-thread resource model; timing comes
    from the backend model; functional verification runs a reduced system
    through the simulator.
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)

    verified = False
    max_rel_error = float("nan")
    if verify:
        _, max_rel_error = run_hartreefock_functional(
            verify_natoms, ngauss, gpu=gpu, executor=executor,
            streams=streams, pipeline_sink=pipeline_sink)
        verified = True

    system = make_helium_system(natoms, ngauss, spacing=spacing)
    approximate = natoms >= APPROX_SCHWARZ_NATOMS
    schwarz = compute_schwarz(system, approximate=approximate)
    survivors = surviving_quadruple_fraction(schwarz, schwarz_tol)

    model = hartree_fock_kernel_model(natoms=natoms, ngauss=ngauss,
                                      surviving_fraction=survivors)
    launch = LaunchConfig.for_elements(system.nquads, block_size)
    run = be.time(model, spec, launch, fast_math=fast_math)

    return HartreeFockResult(
        natoms=natoms,
        ngauss=ngauss,
        backend=be.name,
        gpu=spec.name,
        kernel_time_ms=run.timing.kernel_time_ms,
        nquads=system.nquads,
        surviving_fraction=survivors,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
    )


class HartreeFockWorkload(Workload):
    """Hartree–Fock ERI/Fock-build kernel (compute-bound + atomics, Table 4)."""

    name = "hartreefock"
    description = ("Hartree–Fock two-electron Fock build with Schwarz "
                   "screening on a helium chain (Table 4 kernel time)")
    primary_metric = "kernel_time_ms"
    primary_unit = "ms"
    precisions = ("float64",)
    default_precision = "float64"
    sampling = "single-evaluation"
    params = (
        ParamSpec("natoms", int, 256, "helium atoms in the chain", minimum=1),
        ParamSpec("ngauss", int, 3, "gaussian primitives per basis function",
                  minimum=1),
        ParamSpec("block_size", int, DEFAULT_BLOCK_SIZE, "thread-block size",
                  minimum=1),
        ParamSpec("spacing", float, 3.0, "inter-atom spacing in bohr",
                  minimum=0.1),
        ParamSpec("schwarz_tol", float, SCHWARZ_TOLERANCE,
                  "Schwarz screening tolerance", minimum=0.0),
        ParamSpec("verify_natoms", int, 4,
                  "system size for functional verification", minimum=1),
    )

    #: thread-block sizes the tuner may try for the 1-D quadruple launch
    TUNING_BLOCK_SIZES = (64, 128, 256, 512, 1024)

    def tuning_space(self, request: RunRequest):
        """Launch knobs: thread-block size and fast-math."""
        from ..tuning.space import TuningKnob, TuningSpace

        return TuningSpace((
            TuningKnob("block_size", self.TUNING_BLOCK_SIZES),
            TuningKnob("fast_math", (False, True), kind="field"),
        ))

    def tuning_model(self, request: RunRequest):
        """ERI kernel model + launch for the pruner.

        The system shape (quadruple count, Schwarz survival fraction) is
        launch-independent, so it is memoised per problem configuration —
        candidate scoring must not re-screen the system per block size.
        """
        p = self.validate_params(request.params)
        key = (p["natoms"], p["ngauss"], p["spacing"], p["schwarz_tol"])
        cache = self.__dict__.setdefault("_tuning_system_cache", {})
        shape = cache.get(key)
        if shape is None:
            system = make_helium_system(p["natoms"], p["ngauss"],
                                        spacing=p["spacing"])
            schwarz = compute_schwarz(
                system, approximate=p["natoms"] >= APPROX_SCHWARZ_NATOMS)
            shape = (system.nquads,
                     surviving_quadruple_fraction(schwarz, p["schwarz_tol"]))
            if len(cache) > 8:
                cache.clear()
            cache[key] = shape
        nquads, survivors = shape
        model = hartree_fock_kernel_model(natoms=p["natoms"],
                                          ngauss=p["ngauss"],
                                          surviving_fraction=survivors)
        return model, LaunchConfig.for_elements(nquads, p["block_size"])

    def lint_graph(self):
        """Two-stream upload → fan-in → ERI kernel → D2H capture (tiny system).

        Mirrors
        :func:`~repro.kernels.hartreefock.runner.run_hartreefock_functional`
        with ``streams=2``: the six input uploads round-robin over two H2D
        lanes with the kernel event-ordered behind all of them, so the race
        detector checks the workload's real fan-in structure.
        """
        import itertools

        import numpy as np

        from ..core.device import DeviceContext
        from ..core.dtypes import DType
        from ..core.kernel import LaunchConfig
        from ..core.layout import Layout
        from ..kernels.hartreefock.basis import make_helium_system
        from ..kernels.hartreefock.kernel import (
            hartree_fock_kernel,
            hartree_fock_kernel_model,
        )
        from ..kernels.hartreefock.runner import compute_schwarz

        natoms, ngauss = 2, 3
        system = make_helium_system(natoms, ngauss, spacing=2.5)
        schwarz = compute_schwarz(system)
        n = system.natoms
        ctx = DeviceContext("h100")
        pool, compute = ctx.upload_pipeline(2)
        lanes = itertools.cycle(pool)

        def upload(data, shape, label, mut=False):
            flat = np.asarray(data, dtype=np.float64).reshape(-1)
            buf = ctx.enqueue_create_buffer(DType.float64, flat.size,
                                            label=label)
            buf.copy_from_host(flat, stream=next(lanes))
            return buf, buf.tensor(Layout.row_major(*shape), mut=mut,
                                   bounds_check=False)

        launch = LaunchConfig.for_elements(system.nquads, 16)
        with ctx.capture(f"lint-{self.name}") as graph:
            _, schwarz_t = upload(schwarz, (len(schwarz),), "schwarz")
            _, xpnt_t = upload(system.xpnt, (ngauss,), "xpnt")
            _, coef_t = upload(system.coef, (ngauss,), "coef")
            _, geom_t = upload(system.geometry, (n, 3), "geom")
            _, dens_t = upload(system.dens, (n, n), "dens")
            fock_buf, fock_t = upload(np.zeros((n, n)), (n, n), "fock",
                                      mut=True)
            ctx.fan_in(pool, compute, prefix="uploads")
            ctx.enqueue_function(
                hartree_fock_kernel, ngauss, n, system.nquads, schwarz_t,
                0.0, xpnt_t, coef_t, geom_t, dens_t, fock_t,
                grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                model=hartree_fock_kernel_model(natoms=n, ngauss=ngauss,
                                                surviving_fraction=1.0),
                stream=compute,
            )
            fock_buf.copy_to_host(stream=compute)
        return graph

    def reference(self, *, natoms: int = 4, ngauss: int = 3,
                  spacing: float = 2.5):
        """Batched-ERI reference Fock matrix for a small helium system."""
        system = make_helium_system(natoms, ngauss, spacing=spacing)
        return fock_quadruple_reference(system)

    def verify(self, *, natoms: int = 4, ngauss: int = 3,
               gpu: str = "h100") -> float:
        """Device-kernel functional verification; max relative error."""
        _, err = run_hartreefock_functional(natoms, ngauss, gpu=gpu)
        return err

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        sink: dict = {}
        result = bench_hartreefock(
            natoms=p["natoms"], ngauss=p["ngauss"], backend=request.backend,
            gpu=request.gpu, block_size=p["block_size"], spacing=p["spacing"],
            schwarz_tol=p["schwarz_tol"], verify=request.verify,
            verify_natoms=p["verify_natoms"], fast_math=request.fast_math,
            executor=request.executor,
            streams=request.streams, pipeline_sink=sink,
        )
        timing = self._timing_with_pipeline({"kernel": result.timing}, sink)
        return WorkloadResult(
            request=request,
            metrics={
                "kernel_time_ms": result.kernel_time_ms,
                "nquads": float(result.nquads),
                "surviving_fraction": result.surviving_fraction,
                **self.counter_metrics(request),
            },
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=result.max_rel_error),
            timing=timing,
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
