"""Request-level result cache for the unified Workload API.

Every workload run is a pure function of its frozen, hashable
:class:`~repro.workloads.base.RunRequest` (the jitter samples are seeded, the
timing model is deterministic), so repeated sweep points and repeated
``bench`` invocations can be answered from a keyed memo instead of re-running
verification and the analytic pipeline.

Two layers, mirroring the memoised compile pipeline
(:func:`repro.core.compiler.compile_cache_info`):

* an **in-memory LRU** keyed directly by the ``RunRequest`` — exact object
  round-trip, used by :meth:`repro.harness.sweep.Sweep.run_workload` and any
  in-process repetition;
* an optional **on-disk JSON store** (default location ``.repro_cache/``)
  keyed by a digest of the request's canonical JSON — survives process
  boundaries, which makes repeated CLI ``bench`` invocations near-free.
  Disk hits are rehydrated into a :class:`WorkloadResult` whose ``timing``
  entries are the plain exported dicts and whose ``raw`` legacy payload is
  ``None`` (both are documented as export-shaped for cached results).

``result_cache_info()`` / ``clear_result_cache()`` expose the default
cache's statistics, mirroring ``compile_cache_info`` / ``clear_compile_cache``.
"""

from __future__ import annotations

import contextlib
import copy
import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..obs import metrics as _obs_metrics
from .base import RunRequest, Verification, WorkloadResult

__all__ = ["ResultCache", "run_cached", "result_cache_info",
           "clear_result_cache", "configure_result_cache",
           "DEFAULT_CACHE_DIR", "DEFAULT_CACHE_DISK_BUDGET"]

#: default on-disk store location (created lazily, only when disk caching
#: is enabled)
DEFAULT_CACHE_DIR = ".repro_cache"

#: byte budget for the on-disk store; oldest results beyond it are evicted
#: (see :func:`repro.core.diskstore.prune_dir_to_budget`)
DEFAULT_CACHE_DISK_BUDGET = 64 * 1024 * 1024

#: schema tag stored with every disk entry; bump to invalidate old stores
_DISK_SCHEMA = "repro.result-cache/v1"


class ResultCache:
    """Keyed memo of :class:`WorkloadResult` by :class:`RunRequest`.

    Thread-safe; the in-memory layer is an LRU bounded by *maxsize*.  Pass a
    *disk_dir* to add the JSON store layer (entries are written through on
    :meth:`put` and consulted on in-memory misses).
    """

    def __init__(self, maxsize: int = 256,
                 disk_dir: Optional[str] = None,
                 max_disk_bytes: int = DEFAULT_CACHE_DISK_BUDGET):
        self.maxsize = int(maxsize)
        self.disk_dir = disk_dir
        self.max_disk_bytes = max_disk_bytes
        self._entries: "OrderedDict[RunRequest, WorkloadResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        # per-request single-flight locks (see locked()); guarded by _lock
        self._inflight: Dict[RunRequest, threading.Lock] = {}
        self._inflight_refs: Dict[RunRequest, int] = {}

    @contextlib.contextmanager
    def locked(self, request: RunRequest):
        """Serialise computations of one request (single-flight).

        Concurrent callers of :func:`run_cached` — a threaded
        ``Sweep.run_workload(workers=N)`` or the async
        ``run_workload_async`` — may hold duplicate requests.  Without
        coalescing, every duplicate misses and runs the workload
        redundantly, and the sync sequential path (one miss, then hits) and
        the concurrent paths (N misses) would disagree in their cache
        accounting.  This lock keys on the request itself, so *distinct*
        requests still run fully in parallel.
        """
        with self._lock:
            lock = self._inflight.get(request)
            if lock is None:
                lock = threading.Lock()
                self._inflight[request] = lock
                self._inflight_refs[request] = 0
            self._inflight_refs[request] += 1
        lock.acquire()
        try:
            yield
        finally:
            lock.release()
            with self._lock:
                self._inflight_refs[request] -= 1
                if self._inflight_refs[request] == 0:
                    del self._inflight[request]
                    del self._inflight_refs[request]

    # ------------------------------------------------------------------ keys
    @staticmethod
    def disk_key(request: RunRequest) -> str:
        """Stable digest of the request's canonical JSON form.

        The package version is folded into the digest so a release boundary
        invalidates the store.  Within one version the entries assume the
        workload code is unchanged — when iterating on kernel or model code
        locally, run with ``--no-cache`` / ``cache=False`` or delete
        ``.repro_cache/``, otherwise a stale result (including its cached
        verification verdict) is served.
        """
        from .. import __version__

        payload = json.dumps(request.as_dict(), sort_keys=True, default=str)
        keyed = f"{__version__}|{payload}"
        return hashlib.sha256(keyed.encode("utf-8")).hexdigest()[:24]

    def _disk_path(self, request: RunRequest) -> str:
        return os.path.join(self.disk_dir, "results",
                            f"{request.workload}-{self.disk_key(request)}.json")

    # ------------------------------------------------------------- get / put
    def get(self, request: RunRequest) -> Optional[WorkloadResult]:
        """Cached result for *request*, or None.  Counts a hit or a miss."""
        with self._lock:
            result = self._entries.get(request)
            if result is not None:
                self._entries.move_to_end(request)
                self._hits += 1
                _obs_metrics.inc("result_cache_hits_total")
                return _clone(result)
        if self.disk_dir is not None:
            result = self._disk_get(request)
            if result is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._remember(request, result)
                _obs_metrics.inc("result_cache_hits_total")
                _obs_metrics.inc("result_cache_disk_hits_total")
                return _clone(result)
        with self._lock:
            self._misses += 1
        _obs_metrics.inc("result_cache_misses_total")
        return None

    def put(self, request: RunRequest, result: WorkloadResult) -> None:
        """Store *result* under *request* (write-through to disk if enabled).

        A caller-isolated clone is stored, so mutating the result object
        after ``put`` cannot poison the cache.
        """
        stored = _clone(result)
        with self._lock:
            self._remember(request, stored)
        if self.disk_dir is not None:
            self._disk_put(request, stored)

    def _remember(self, request: RunRequest, result: WorkloadResult) -> None:
        self._entries[request] = result
        self._entries.move_to_end(request)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    # ----------------------------------------------------------------- disk
    def _disk_get(self, request: RunRequest) -> Optional[WorkloadResult]:
        from ..core.diskstore import read_json_entry

        payload = read_json_entry(self._disk_path(request))
        if payload is None or payload.get("schema") != _DISK_SCHEMA:
            return None
        return _result_from_export(request, payload["result"])

    def _disk_put(self, request: RunRequest, result: WorkloadResult) -> None:
        from ..core.diskstore import write_json_entry

        write_json_entry(self._disk_path(request),
                         {"schema": _DISK_SCHEMA, "result": result.as_dict()},
                         self.max_disk_bytes)

    # ------------------------------------------------------------ statistics
    def info(self) -> Dict[str, int]:
        """Hit/miss/size statistics, shaped like ``compile_cache_info()``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "disk_hits": self._disk_hits,
                "disk_enabled": self.disk_dir is not None,
                "max_disk_bytes": self.max_disk_bytes,
            }

    def clear(self) -> None:
        """Drop the in-memory entries and reset the counters.

        Disk entries are left in place (delete ``.repro_cache/`` to drop
        them); a cleared cache simply re-reads them as disk hits.
        """
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0


def _clone(result: WorkloadResult) -> WorkloadResult:
    """Caller-isolated view of a cached result.

    Top-level containers (metrics, timing, samples, provenance) are fresh
    dicts/lists so caller-side mutation cannot poison the cache; the request,
    verification, timing breakdown objects and legacy ``raw`` payload are
    shared (frozen or treated as read-only).
    """
    out = copy.copy(result)
    out.metrics = dict(result.metrics)
    out.timing = dict(result.timing)
    out.samples = {k: list(v) for k, v in result.samples.items()}
    out.provenance = dict(result.provenance)
    return out


def _result_from_export(request: RunRequest, payload: Dict) -> WorkloadResult:
    """Rehydrate a :class:`WorkloadResult` from its ``as_dict()`` export.

    ``timing`` values stay as the exported dicts and ``raw`` is ``None`` —
    the export schema is the contract for cached results.
    """
    v = payload.get("verification", {})
    return WorkloadResult(
        request=request,
        metrics=dict(payload.get("metrics", {})),
        primary_metric=payload.get("primary_metric", ""),
        verification=Verification(
            ran=bool(v.get("ran", False)),
            passed=bool(v.get("passed", False)),
            max_rel_error=v.get("max_rel_error"),
            detail=v.get("detail", ""),
        ),
        timing=dict(payload.get("timing", {})),
        samples={k: list(s) for k, s in payload.get("samples", {}).items()},
        provenance=dict(payload.get("provenance", {})),
        raw=None,
    )


# ---------------------------------------------------------------------------
# Module-level default cache (mirrors the compile-cache module API)
# ---------------------------------------------------------------------------

_default_cache = ResultCache()
_default_lock = threading.Lock()


def configure_result_cache(*, maxsize: Optional[int] = None,
                           disk_dir: Optional[str] = None,
                           disk: Optional[bool] = None,
                           max_disk_bytes: Optional[int] = None) -> ResultCache:
    """Replace the default cache's configuration.

    ``disk=True`` enables the on-disk store at *disk_dir* (default
    ``.repro_cache/``); ``disk=False`` disables it; ``max_disk_bytes``
    bounds the store's size (oldest entries are evicted past it).  Returns
    the (new) default cache; existing entries and counters are dropped.
    """
    global _default_cache
    with _default_lock:
        current = _default_cache
        new_maxsize = maxsize if maxsize is not None else current.maxsize
        new_budget = max_disk_bytes if max_disk_bytes is not None \
            else current.max_disk_bytes
        if disk is None:
            new_dir = disk_dir if disk_dir is not None else current.disk_dir
        elif disk:
            new_dir = disk_dir or current.disk_dir or DEFAULT_CACHE_DIR
        else:
            new_dir = None
        _default_cache = ResultCache(maxsize=new_maxsize, disk_dir=new_dir,
                                     max_disk_bytes=new_budget)
        return _default_cache


def run_cached(request: RunRequest, *,
               cache: Optional[ResultCache] = None,
               workload=None,
               runner=None) -> WorkloadResult:
    """Run *request* through its workload, memoised by request.

    Uses the module default cache unless an explicit :class:`ResultCache`
    is given.  *workload* may supply an already-resolved
    :class:`~repro.workloads.base.Workload` instance (required when it is
    not in the registry — e.g. an ad-hoc subclass driven through a sweep);
    otherwise the request's workload name is resolved through the registry.
    *runner* replaces ``workload.run`` as the miss-path computation — the
    resilience layer passes its retry/deadline/degradation wrapper here so
    cached sweeps recover from faults without bypassing the memo.

    Concurrent callers holding the *same* request coalesce into one run
    (single-flight): exactly one computes and stores, the rest read the
    stored result — so the hit/miss accounting is identical whether
    duplicates arrive sequentially (``Sweep.run_workload``), on a thread
    pool (``workers=N``) or through ``Sweep.run_workload_async``.

    Requests with ``tune != "off"`` are **never memoised**: their outcome
    depends on the mutable tuning database, and serving a result cached
    before a better winner was found would silently pin the old launch.
    """
    from .registry import get_workload

    target = cache if cache is not None else _default_cache
    wl = workload if workload is not None else get_workload(request.workload)
    run = runner if runner is not None else wl.run
    if request.tune != "off":
        return run(request)
    with target.locked(request):
        result = target.get(request)
        if result is not None:
            return result
        result = run(request)
        target.put(request, result)
    return result


def result_cache_info() -> Dict[str, int]:
    """Statistics of the default request-result memo."""
    return _default_cache.info()


def clear_result_cache() -> None:
    """Drop all memoised results (and reset the hit/miss counters)."""
    _default_cache.clear()
