"""Workload registry, mirroring :mod:`repro.backends.registry`.

The registry is what makes the four science kernels a *system* rather than a
kernel collection: the CLI, the sweep harness and the experiments enumerate
and dispatch workloads through it, so adding a workload is one
``register_workload`` call away from every existing entry point.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.errors import ConfigurationError
from .base import Workload

__all__ = ["register_workload", "get_workload", "list_workloads",
           "unregister_workload"]

_REGISTRY: Dict[str, Workload] = {}


def register_workload(workload: Workload, *aliases: str,
                      replace: bool = False) -> Workload:
    """Register a workload under its name and optional aliases.

    Unlike the backend registry, accidental double-registration is an error
    (``replace=True`` opts out, for tests and hot-swapping).
    """
    if not workload.name:
        raise ConfigurationError("workload has no name; set the class's "
                                 "'name' attribute before registering")
    names = [workload.name.lower()] + [a.lower() for a in aliases]
    displaced = {n: _REGISTRY[n] for n in names
                 if n in _REGISTRY and _REGISTRY[n] is not workload}
    if displaced and not replace:
        raise ConfigurationError(
            f"workload name(s) {sorted(displaced)} already registered; pass "
            "replace=True to override"
        )
    # Displacing a workload's canonical name evicts it entirely (aliases
    # must not keep resolving to the displaced instance); displacing only
    # an alias of another workload retargets just that key.
    for name, old in displaced.items():
        if name == old.name.lower():
            for key in [k for k, v in _REGISTRY.items() if v is old]:
                del _REGISTRY[key]
        elif name in _REGISTRY:
            del _REGISTRY[name]
    for name in names:
        _REGISTRY[name] = workload
    return workload


def unregister_workload(name: str) -> None:
    """Remove a workload (and any aliases pointing at it)."""
    workload = get_workload(name)
    for key in [k for k, v in _REGISTRY.items() if v is workload]:
        del _REGISTRY[key]


def get_workload(name) -> Workload:
    """Look up a workload by name; passes Workload instances through."""
    if isinstance(name, Workload):
        return name
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: "
            f"{sorted({w.name for w in _REGISTRY.values()})}"
        ) from None


def list_workloads() -> Tuple[str, ...]:
    """Canonical names of registered workloads, sorted."""
    return tuple(sorted({w.name for w in _REGISTRY.values()}))
