"""The unified workload abstraction: one request/result schema for every kernel.

The paper's portability story is that the *same* four science kernels run
unchanged across GPUs and backends.  This module gives the reproduction the
API to match: a :class:`Workload` base class (name, description, declared
parameter schema, ``reference()``/``verify()``/``run()``), a frozen
:class:`RunRequest` naming one configuration (workload, gpu, backend,
precision, params, measurement protocol, fast-math), and a uniform
:class:`WorkloadResult` (metrics dict, verification outcome, timing
breakdowns, per-repeat samples, provenance) that every workload returns.

Anything that can build a :class:`RunRequest` — the CLI ``bench`` command,
:meth:`repro.harness.sweep.Sweep.run_workload`, the figure experiments — can
therefore drive any registered workload without knowing its kernel-specific
surface.  Adding workload #5 means implementing this protocol and calling
:func:`repro.workloads.registry.register_workload`; no CLI or harness change.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, VerificationError
from ..harness.runner import MeasurementProtocol
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "ParamSpec",
    "RunRequest",
    "Verification",
    "WorkloadResult",
    "Workload",
    "DEFAULT_PROTOCOL",
    "EXECUTOR_MODES",
    "MAX_STREAMS",
    "TUNE_MODES",
]

#: measurement protocol used when a request does not specify one
DEFAULT_PROTOCOL = MeasurementProtocol(warmup=1, repeats=5)

#: functional-simulator execution modes a request may select; ``"auto"``
#: (the default) picks the lockstep vectorized engine for vector-safe
#: kernels and preserves the scalar behaviour for everything else;
#: ``"lowered"`` additionally compiles vector-safe bodies to NumPy
#: whole-array expressions (:mod:`repro.graphopt.lower`), falling back to
#: ``"auto"`` per launch when a body cannot be lowered
EXECUTOR_MODES = ("auto", "vectorized", "sequential", "cooperative",
                  "lowered")

#: upper bound on the per-request device-stream count (a real queue would
#: accept more, but beyond this the simulated pipelines gain nothing)
MAX_STREAMS = 64

#: how a request interacts with the autotuning subsystem: ``"off"`` runs the
#: request exactly as given, ``"cached"`` applies a remembered winner from
#: the tuning database when one exists (a miss runs untuned), ``"search"``
#: additionally runs a budgeted search on a miss and persists the result
TUNE_MODES = ("off", "cached", "search")


@dataclass(frozen=True)
class ParamSpec:
    """One declared workload parameter: type, default, validation."""

    name: str
    type: type
    default: object
    description: str = ""
    #: allowed values (None: unconstrained)
    choices: Optional[Tuple[object, ...]] = None
    #: inclusive lower bound for numeric parameters (None: unconstrained);
    #: applies element-wise to tuple parameters
    minimum: Optional[float] = None
    #: required element count for tuple parameters (None: unconstrained)
    length: Optional[int] = None

    def coerce(self, value: object) -> object:
        """Coerce and validate *value*; raises :class:`ConfigurationError`."""
        try:
            if self.type is bool and isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    value = True
                elif lowered in ("0", "false", "no", "off"):
                    value = False
                else:
                    raise ValueError(f"not a boolean: {value!r}")
            elif self.type is tuple:
                if isinstance(value, str):
                    parts = value.replace("(", "").replace(")", "").split(",")
                    value = tuple(int(p) for p in parts if p.strip())
                else:
                    elements = []
                    for v in value:
                        if isinstance(v, float) and v != int(v):
                            raise ValueError(f"not an integer: {v!r}")
                        elements.append(int(v))
                    value = tuple(elements)
            elif not isinstance(value, self.type):
                if self.type is int and isinstance(value, float) \
                        and value != int(value):
                    raise ValueError(f"not an integer: {value!r}")
                value = self.type(value)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {value!r} ({exc})"
            ) from None
        if self.type is tuple and self.length is not None \
                and len(value) != self.length:
            raise ConfigurationError(
                f"parameter {self.name!r} expects {self.length} "
                f"comma-separated values, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, "
                f"got {value!r}"
            )
        if self.minimum is not None:
            # for tuple parameters the bound applies element-wise
            below = (any(v < self.minimum for v in value)
                     if self.type is tuple else value < self.minimum)
            if below:
                raise ConfigurationError(
                    f"parameter {self.name!r} must be >= {self.minimum}, "
                    f"got {value!r}"
                )
        return value

    def describe(self) -> Dict[str, object]:
        """JSON-friendly schema entry for the CLI and docs."""
        info: Dict[str, object] = {
            "name": self.name,
            "type": self.type.__name__,
            "default": self.default,
            "description": self.description,
        }
        if self.choices is not None:
            info["choices"] = list(self.choices)
        if self.minimum is not None:
            info["minimum"] = self.minimum
        if self.length is not None:
            info["length"] = self.length
        return info


@dataclass(frozen=True)
class RunRequest:
    """One fully-specified workload configuration.

    Frozen so a request can be stored, replayed, compared and put in result
    provenance without defensive copying.  ``params`` holds the
    workload-specific sizes/shapes (validated against the workload's
    :class:`ParamSpec` schema); everything portable across workloads — GPU,
    backend, precision, measurement protocol, fast-math — is a first-class
    field.
    """

    workload: str
    gpu: str = "h100"
    backend: str = "mojo"
    precision: str = "float64"
    params: Mapping[str, object] = field(default_factory=dict)
    protocol: MeasurementProtocol = DEFAULT_PROTOCOL
    fast_math: bool = False
    verify: bool = True
    #: functional-simulator mode for verification launches (see
    #: :data:`EXECUTOR_MODES`); ``"auto"`` keeps today's behaviour for
    #: kernels that are not vector-safe and lockstep for the ones that are
    executor: str = "auto"
    #: device streams the verification pipeline uses (``1``: everything on
    #: the default stream; more overlap the modelled H2D/compute/D2H lanes)
    streams: int = 1
    #: autotuning mode (see :data:`TUNE_MODES`); anything but ``"off"``
    #: lets the workload rewrite the launch knobs from the tuning database
    #: before running
    tune: str = "off"
    #: graph-compiler passes applied to captured device graphs before they
    #: replay: ``"none"`` (the default) replays the capture as recorded,
    #: ``"all"`` runs the full :mod:`repro.graphopt` pipeline, or a
    #: comma-separated subset of :data:`repro.graphopt.PASS_NAMES`
    #: (``"elide"``, ``"fuse"``, ``"hoist"``)
    optimize: str = "none"

    def __post_init__(self):
        # Freeze the parameter mapping (the dataclass itself is frozen, but a
        # caller-supplied dict would still be mutable through the alias).
        object.__setattr__(self, "params",
                           MappingProxyType(dict(self.params)))
        if self.executor not in EXECUTOR_MODES:
            raise ConfigurationError(
                f"unknown executor mode {self.executor!r}; expected one of "
                f"{EXECUTOR_MODES}"
            )
        if self.tune not in TUNE_MODES:
            raise ConfigurationError(
                f"unknown tune mode {self.tune!r}; expected one of "
                f"{TUNE_MODES}"
            )
        try:
            streams = int(self.streams)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"streams must be an integer >= 1, got {self.streams!r}"
            ) from None
        if isinstance(self.streams, float) and self.streams != streams:
            raise ConfigurationError(
                f"streams must be an integer >= 1, got {self.streams!r}"
            )
        if not 1 <= streams <= MAX_STREAMS:
            raise ConfigurationError(
                f"streams must be between 1 and {MAX_STREAMS}, "
                f"got {self.streams!r}"
            )
        object.__setattr__(self, "streams", streams)
        if self.optimize != "none":
            # Validates pass names and canonicalizes order ("fuse,elide"
            # and "elide,fuse" describe the same pipeline) so equal
            # pipelines hash/compare equal and share cache entries.
            from ..graphopt import parse_passes

            passes = parse_passes(self.optimize)
            object.__setattr__(
                self, "optimize", ",".join(passes) if passes else "none")

    def __hash__(self):
        # explicit hash: the generated one would choke on the params
        # mappingproxy.  Consistent with the generated __eq__ — equal params
        # mappings produce equal sorted item tuples.
        return hash((self.workload, self.gpu, self.backend, self.precision,
                     tuple(sorted(self.params.items())), self.protocol,
                     self.fast_math, self.verify, self.executor,
                     self.streams, self.tune, self.optimize))

    def replace(self, **changes) -> "RunRequest":
        """A copy of this request with the given fields replaced."""
        # __post_init__ re-wraps params on every construction, so the
        # carried-over mappingproxy round-trips through dataclasses.replace
        return replace(self, **changes)

    def with_params(self, **params) -> "RunRequest":
        """A copy of this request with ``params`` entries merged in."""
        merged = dict(self.params)
        merged.update(params)
        return self.replace(params=merged)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the request."""
        return {
            "workload": self.workload,
            "gpu": self.gpu,
            "backend": self.backend,
            "precision": self.precision,
            "params": dict(self.params),
            "protocol": {"warmup": self.protocol.warmup,
                         "repeats": self.protocol.repeats},
            "fast_math": self.fast_math,
            "verify": self.verify,
            "executor": self.executor,
            "streams": self.streams,
            "tune": self.tune,
            "optimize": self.optimize,
        }


@dataclass(frozen=True)
class Verification:
    """Outcome of a workload's functional verification."""

    ran: bool
    passed: bool
    #: maximum relative error against the reference (None when not run)
    max_rel_error: Optional[float] = None
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        err = self.max_rel_error
        if err is not None and not math.isfinite(err):
            err = None
        return {"ran": self.ran, "passed": self.passed,
                "max_rel_error": err, "detail": self.detail}


@dataclass
class WorkloadResult:
    """Uniform result of one workload run.

    ``metrics`` maps metric names to floats; ``primary_metric`` names the one
    the workload is judged by (bandwidth for the memory-bound kernels,
    GFLOP/s for miniBUDE, kernel time for Hartree–Fock).  ``timing`` maps a
    kernel label (``"kernel"`` for single-kernel workloads, the operation
    name for BabelStream) to its :class:`~repro.gpu.timing.TimingBreakdown`.
    ``raw`` keeps the legacy per-kernel result object for callers migrating
    off the old ``run_*`` surface.
    """

    request: RunRequest
    metrics: Dict[str, float]
    primary_metric: str
    verification: Verification
    timing: Dict[str, object] = field(default_factory=dict)
    samples: Dict[str, List[float]] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)
    raw: object = None

    @property
    def workload(self) -> str:
        return self.request.workload

    @property
    def primary_value(self) -> float:
        return self.metrics[self.primary_metric]

    def to_row(self) -> Dict[str, object]:
        """Flatten into a row for :class:`~repro.harness.results.ResultTable`."""
        params = " ".join(f"{k}={v}" for k, v in self.request.params.items())
        err = self.verification.max_rel_error
        return {
            "workload": self.workload,
            "gpu": self.request.gpu,
            "backend": self.request.backend,
            "precision": self.request.precision,
            "params": params,
            "metric": self.primary_metric,
            "value": self.primary_value,
            "verified": self.verification.ran and self.verification.passed,
            "max_rel_error": err if err is not None and math.isfinite(err)
                             else None,
        }

    #: the columns :meth:`to_row` produces, in render order
    ROW_COLUMNS = ("workload", "gpu", "backend", "precision", "params",
                   "metric", "value", "verified", "max_rel_error")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly payload; identical schema for every workload.

        Non-finite metric/sample values become ``None`` so the export is
        strict JSON (``json.dumps`` would otherwise emit a bare ``NaN``).
        """
        def finite(value):
            if isinstance(value, float) and not math.isfinite(value):
                return None
            return value

        timing = {}
        for label, breakdown in self.timing.items():
            timing[label] = (breakdown.as_dict()
                             if hasattr(breakdown, "as_dict") else breakdown)
        return {
            "schema": "repro.workload-result/v1",
            "workload": self.workload,
            "request": self.request.as_dict(),
            "primary_metric": self.primary_metric,
            "metrics": {k: finite(v) for k, v in self.metrics.items()},
            "verification": self.verification.as_dict(),
            "timing": timing,
            "samples": {k: [finite(s) for s in v]
                        for k, v in self.samples.items()},
            "provenance": dict(self.provenance),
        }


class Workload:
    """Base class every science workload adapter implements.

    Subclasses define ``name``, ``description``, ``params`` (a tuple of
    :class:`ParamSpec`), the primary metric, and the three protocol methods:

    * :meth:`reference` — the host (NumPy) reference computation;
    * :meth:`verify` — functional verification through the simulator,
      returning the maximum relative error;
    * :meth:`_run` — execute one validated :class:`RunRequest`.
    """

    name: str = ""
    description: str = ""
    params: Tuple[ParamSpec, ...] = ()
    primary_metric: str = ""
    #: unit of the primary metric, for display
    primary_unit: str = ""
    #: precisions the kernel supports (miniBUDE is fp32-only, HF fp64-only)
    precisions: Tuple[str, ...] = ("float32", "float64")
    default_precision: str = "float64"
    #: how per-repeat samples are produced: "synthetic-jitter" honours the
    #: request protocol's repeat count; "single-evaluation" evaluates the
    #: analytic model once and collects no samples
    sampling: str = "synthetic-jitter"

    # ------------------------------------------------------------- parameters
    def param_schema(self) -> Dict[str, ParamSpec]:
        return {spec.name: spec for spec in self.params}

    def default_params(self) -> Dict[str, object]:
        return {spec.name: spec.default for spec in self.params}

    def validate_params(self, params: Optional[Mapping[str, object]] = None,
                        ) -> Dict[str, object]:
        """Apply defaults and validate; raises :class:`ConfigurationError`."""
        schema = self.param_schema()
        given = dict(params or {})
        unknown = set(given) - set(schema)
        if unknown:
            raise ConfigurationError(
                f"workload {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; known: {sorted(schema)}"
            )
        validated = {}
        for name, spec in schema.items():
            value = given.get(name, spec.default)
            validated[name] = spec.coerce(value)
        return validated

    def make_request(self, **kwargs) -> RunRequest:
        """Build a validated :class:`RunRequest` for this workload.

        ``precision=None`` (or omitting it) selects the workload's default —
        the kernels do not all support both floating-point widths.
        """
        params = self.validate_params(kwargs.pop("params", None))
        requested = kwargs.pop("workload", None)
        if requested not in (None, self.name):
            raise ConfigurationError(
                f"cannot build a request for workload {requested!r} via "
                f"{self.name!r}; use get_workload({requested!r})"
            )
        if kwargs.get("precision") is None:
            kwargs["precision"] = self.default_precision
        request = RunRequest(workload=self.name, params=params, **kwargs)
        self._check_precision(request.precision)
        return request

    def _check_precision(self, precision: str) -> None:
        if precision not in self.precisions:
            raise ConfigurationError(
                f"workload {self.name!r} supports precisions "
                f"{list(self.precisions)}, got {precision!r}"
            )

    def describe(self) -> Dict[str, object]:
        """JSON-friendly schema of the whole workload, for the CLI."""
        return {
            "name": self.name,
            "description": self.description,
            "primary_metric": self.primary_metric,
            "primary_unit": self.primary_unit,
            "precisions": list(self.precisions),
            "default_precision": self.default_precision,
            "sampling": self.sampling,
            "params": [spec.describe() for spec in self.params],
        }

    # ------------------------------------------------------------------ timing
    @staticmethod
    def _timing_with_pipeline(timing: Dict[str, object],
                              sink: Mapping[str, object]) -> Dict[str, object]:
        """Attach the verification pipeline breakdown captured in *sink*.

        Adapters pass a ``pipeline_sink`` dict into their bench engine; when
        verification ran, it holds the device context's overlap-aware
        :class:`~repro.core.device.PipelineTiming` under ``"pipeline"``,
        exported uniformly as the ``"verify_pipeline"`` timing entry.
        """
        pipeline = sink.get("pipeline")
        if pipeline is not None:
            timing["verify_pipeline"] = pipeline
        return timing

    # ----------------------------------------------------------------- tuning
    def tuning_space(self, request: RunRequest):
        """The workload's :class:`~repro.tuning.space.TuningSpace`, or None.

        Adapters that expose launch knobs (block shapes, work-group sizes,
        fast-math) override this; returning None (the default) makes the
        workload opt out of autotuning — requests with ``tune != "off"``
        then run untuned, with the reason recorded in provenance.
        """
        return None

    def tuning_model(self, request: RunRequest):
        """``(KernelModel, LaunchConfig)`` for *request*'s configuration.

        The occupancy/roofline pruner scores candidates through this hook
        without compiling or running anything.  Required whenever
        :meth:`tuning_space` returns a space.
        """
        raise ConfigurationError(
            f"workload {self.name!r} declares no tuning model"
        )

    def tuning_probe(self, request: RunRequest):
        """A captured :class:`~repro.core.device.DeviceGraph` probe, or None.

        When provided, the tuner functionally executes each measured
        candidate at a reduced problem size — capture once, then
        ``DeviceGraph.replay`` per repeat — so a winner is guaranteed to
        actually launch on the simulator, not just score well analytically.
        """
        return None

    def region_probe(self, request: RunRequest):
        """``(kernel, args)`` for symbolic traffic estimation, or None.

        *args* mirror a real launch argument list, with buffer arguments
        replaced by :class:`~repro.analysis.regions.TensorSpec` (shape +
        dtype — no allocation).  The candidate pruner concretizes the
        kernel's access regions against each candidate launch and feeds
        the exact bytes moved into the roofline estimate; returning None
        (the default) keeps the coarse per-thread byte model.
        """
        return None

    # ------------------------------------------------------------ graphopt
    @staticmethod
    def _maybe_optimize(graph, request: "RunRequest"):
        """Run the graph-compiler pipeline on *graph* when the request asks.

        ``request.optimize == "none"`` returns *graph* unchanged.  Anything
        else runs :func:`repro.graphopt.optimize_graph` with the requested
        pass subset and returns the rewritten graph; the optimization
        report is attached to the result graph (``_graphopt_report``) so
        adapters can surface it in provenance.  The optimized graph is
        re-linted by the pipeline itself (``check=True``), so an illegal
        transform fails loudly here rather than replaying wrong.
        """
        if graph is None or request.optimize == "none":
            return graph
        from ..graphopt import optimize_graph

        optimized, _report = optimize_graph(graph, request.optimize)
        return optimized

    # ------------------------------------------------------------------- lint
    def lint_graph(self):
        """A captured :class:`~repro.core.device.DeviceGraph` for ``repro lint``.

        The graph should be representative of the workload's real device
        pipeline (uploads, kernel launches, downloads, the stream/event
        edges between them) at a reduced problem size; the lint CLI runs it
        through the happens-before race detector
        (:func:`repro.analysis.racecheck.analyze_graph`).  The default
        reuses :meth:`tuning_probe` on a default request; returning None
        opts the workload out of graph linting (recorded as a note, not a
        failure).  New device operations a workload enqueues must declare
        their buffer read/write sets so this analysis stays sound.
        """
        return self.tuning_probe(self.make_request())

    # --------------------------------------------------------------- protocol
    def reference(self, **params):
        """Host reference computation (NumPy), for small problem sizes."""
        raise NotImplementedError

    def verify(self, **params) -> float:
        """Functional verification; returns the max relative error."""
        raise NotImplementedError

    def _run(self, request: RunRequest) -> WorkloadResult:
        raise NotImplementedError

    def counter_metrics(self, request: RunRequest) -> Dict[str, float]:
        """``counter_*`` profiling-counter metrics for *request*'s kernel.

        The paper's NCU-table quantities
        (:class:`~repro.profiling.counters.CounterSet`), surfaced uniformly
        in every :class:`WorkloadResult` via the workload's
        :meth:`tuning_model`.  Counters derive from the compiled kernel and
        the analytic timing model alone, so they are identical across
        executor modes (guarded by a parity test) and memoisable on the
        model/launch/backend/gpu/fast-math key.
        """
        model, launch = self.tuning_model(request)
        key = (model, launch, request.backend, request.gpu,
               request.fast_math)
        try:
            cached = _COUNTER_MEMO.get(key)
        except TypeError:  # unhashable launch: compute uncached
            return self._compute_counter_metrics(request, model, launch)
        if cached is None:
            cached = self._compute_counter_metrics(request, model, launch)
            _COUNTER_MEMO[key] = cached
            while len(_COUNTER_MEMO) > _COUNTER_MEMO_MAXSIZE:
                _COUNTER_MEMO.pop(next(iter(_COUNTER_MEMO)))
        return dict(cached)

    @staticmethod
    def _compute_counter_metrics(request: RunRequest, model,
                                 launch) -> Dict[str, float]:
        from ..backends import get_backend
        from ..gpu.specs import get_gpu
        from ..profiling.counters import collect_counters

        run = get_backend(request.backend).time(
            model, get_gpu(request.gpu), launch,
            fast_math=request.fast_math)
        flat: Dict[str, float] = {}
        for key, value in collect_counters(run).as_dict().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            flat[f"counter_{key}"] = float(value)
        return flat

    def run(self, request: RunRequest) -> WorkloadResult:
        """Validate *request* and execute it.

        A :class:`VerificationError` raised by the workload's checker is
        folded into the result (``verification.passed=False``) rather than
        propagated, so sweeps over many configurations always complete; the
        benchmark is re-run without verification so the folded result still
        has the full metric payload.

        When ``request.tune`` is ``"cached"`` or ``"search"`` the launch
        knobs are first rewritten from the tuning database (searching on a
        miss in ``"search"`` mode); the result's request reflects what
        actually ran and its provenance carries a ``"tuning"`` entry.

        Every run feeds the ``workload_run_latency_ms`` histogram of the
        process metrics registry; when a
        :class:`~repro.obs.trace.TraceCollector` is installed the run is
        additionally wrapped in a ``workload.run`` span (with nested
        ``tuning.resolve`` / ``device.drain`` / ``graph.replay`` children)
        — the disabled path never touches the collector.
        """
        start_s = time.perf_counter()
        collector = _trace._ACTIVE
        if collector is None:
            result = self._run_validated(request)
        else:
            with collector.span("workload.run", workload=self.name,
                                backend=request.backend, gpu=request.gpu,
                                executor=request.executor) as sp:
                result = self._run_validated(request)
                sp.set_modelled(_modelled_result_ms(result))
        _metrics.observe("workload_run_latency_ms",
                         (time.perf_counter() - start_s) * 1e3,
                         workload=self.name)
        return result

    def _run_validated(self, request: RunRequest) -> WorkloadResult:
        if request.workload not in (self.name, ""):
            raise ConfigurationError(
                f"request for workload {request.workload!r} dispatched to "
                f"{self.name!r}"
            )
        self._check_precision(request.precision)
        request = request.replace(workload=self.name,
                                  params=self.validate_params(request.params))
        tuning_info = None
        if request.tune != "off":
            from ..tuning import resolve_tuning

            collector = _trace._ACTIVE
            if collector is None:
                request, tuning_info = resolve_tuning(self, request)
            else:
                with collector.span("tuning.resolve", workload=self.name,
                                    mode=request.tune) as sp:
                    request, tuning_info = resolve_tuning(self, request)
                    sp.annotate(source=tuning_info.get("source"),
                                applied=tuning_info.get("applied"))
            request = request.replace(
                params=self.validate_params(request.params))
        try:
            result = self._run(request)
        except VerificationError as exc:
            result = self._fold_verification_failure(request, exc)
        if tuning_info is not None:
            result.provenance["tuning"] = tuning_info
        return result

    async def run_async(self, request: RunRequest) -> WorkloadResult:
        """Asynchronous façade over :meth:`run`.

        The run executes on a worker thread (``asyncio.to_thread``) so an
        event loop can multiplex many requests concurrently; every run
        builds its own :class:`~repro.core.device.DeviceContext` and stream
        set, so concurrent requests share no mutable device state.
        """
        import asyncio

        return await asyncio.to_thread(self.run, request)

    def run_resilient(self, request: RunRequest, *, retry=None,
                      timeout_ms=None, degrade: bool = True) -> WorkloadResult:
        """Run with retries, a per-attempt deadline and degradation.

        Façade over :func:`repro.resilience.run_resilient`: *retry* is a
        :class:`~repro.resilience.RetryPolicy` or an attempt count,
        *timeout_ms* bounds each attempt, and ``degrade`` enables the
        tuned→untuned and executor fallback ladder.  The returned result
        carries a ``provenance["resilience"]`` record.
        """
        from ..resilience import run_resilient

        return run_resilient(self, request, retry=retry,
                             timeout_ms=timeout_ms, degrade=degrade)

    def _fold_verification_failure(self, request: RunRequest,
                                   exc: VerificationError) -> WorkloadResult:
        # Re-run without verification so the folded result still carries
        # the workload's full metric/sample/timing payload — consumers
        # reading non-primary metrics must not crash on a verification
        # failure.
        result = self._run(request.replace(verify=False))
        result.request = request
        result.verification = Verification(
            ran=True, passed=False,
            max_rel_error=getattr(exc, "max_rel_error", None),
            detail=str(exc))
        return result


#: memo for :meth:`Workload.counter_metrics` — counters are pure functions
#: of (model, launch, backend, gpu, fast_math), so repeat runs pay nothing
_COUNTER_MEMO: Dict[object, Dict[str, float]] = {}
_COUNTER_MEMO_MAXSIZE = 256


def _modelled_result_ms(result: WorkloadResult) -> Optional[float]:
    """The modelled device time a result attributes to its run, if any."""
    value = result.metrics.get("kernel_time_ms")
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None
