"""Unified-API adapter for the miniBUDE workload.

The benchmark engine (:func:`bench_minibude`) lives here; the legacy
:func:`repro.kernels.minibude.runner.run_minibude` is a thin shim over it.
"""

from __future__ import annotations

from typing import Optional

from ..backends import get_backend
from ..gpu.specs import get_gpu
from ..kernels.minibude.deck import (
    BM1_NATLIG,
    BM1_NATPRO,
    BM1_NPOSES,
    Deck,
    make_bm1,
    make_deck,
)
from ..kernels.minibude.kernel import fasten_kernel_model
from ..kernels.minibude.metrics import gflops
from ..kernels.minibude.reference import reference_energies
from ..kernels.minibude.runner import (
    MiniBudeResult,
    minibude_launch_config,
    run_fasten_functional,
)
from .base import ParamSpec, RunRequest, Verification, Workload, WorkloadResult
from .provenance import build_provenance

__all__ = ["MiniBudeWorkload", "bench_minibude"]


def bench_minibude(
    *,
    ppwi: int = 1,
    wgsize: int = 64,
    nposes: int = BM1_NPOSES,
    backend: str = "mojo",
    gpu: str = "h100",
    fast_math: bool = False,
    deck: Optional[Deck] = None,
    verify: bool = True,
    verify_poses: int = 64,
    seed: int = 2025,
    executor: str = "auto",
    streams: int = 1,
    pipeline_sink: Optional[dict] = None,
) -> MiniBudeResult:
    """Benchmark one miniBUDE configuration (bm1 by default).

    Functional verification runs the device kernel on a reduced deck; the
    reported GFLOP/s for the requested configuration comes from Eq. 3 applied
    to the modelled kernel time.  ``streams``/``pipeline_sink`` shape the
    verification pipeline (see
    :func:`~repro.kernels.minibude.runner.run_fasten_functional`).
    """
    spec = get_gpu(gpu)
    be = get_backend(backend)
    full_deck = deck or make_bm1(nposes, seed=seed)

    verified = False
    max_rel_error = float("nan")
    if verify:
        small = make_deck(natlig=min(full_deck.natlig, 8),
                          natpro=min(full_deck.natpro, 32),
                          ntypes=full_deck.ntypes,
                          nposes=verify_poses, seed=seed, name="verify")
        _, max_rel_error = run_fasten_functional(
            small, ppwi=min(ppwi, 2), wgsize=min(wgsize, 8), gpu=gpu,
            executor=executor, streams=streams, pipeline_sink=pipeline_sink)
        verified = True

    model = fasten_kernel_model(ppwi=ppwi, natlig=full_deck.natlig,
                                natpro=full_deck.natpro, wgsize=wgsize)
    launch = minibude_launch_config(full_deck.nposes, ppwi, wgsize)
    run = be.time(model, spec, launch, fast_math=fast_math)
    time_s = run.timing.kernel_time_s
    achieved = gflops(ppwi, full_deck.natlig, full_deck.natpro,
                      full_deck.nposes, time_s)

    return MiniBudeResult(
        ppwi=ppwi,
        wgsize=wgsize,
        nposes=full_deck.nposes,
        natlig=full_deck.natlig,
        natpro=full_deck.natpro,
        backend=be.name,
        gpu=spec.name,
        fast_math=run.fast_math,
        kernel_time_ms=run.timing.kernel_time_ms,
        gflops=achieved,
        verified=verified,
        max_rel_error=max_rel_error,
        timing=run.timing,
    )


class MiniBudeWorkload(Workload):
    """miniBUDE ``fasten`` docking kernel (compute-bound, Figures 6-7)."""

    name = "minibude"
    description = ("miniBUDE fasten molecular-docking kernel on the bm1 deck "
                   "(Eq. 3 GFLOP/s)")
    primary_metric = "gflops"
    primary_unit = "GFLOP/s"
    precisions = ("float32",)
    default_precision = "float32"
    sampling = "single-evaluation"
    params = (
        ParamSpec("ppwi", int, 1, "poses per work-item", minimum=1),
        ParamSpec("wgsize", int, 64, "work-group size", minimum=1),
        ParamSpec("nposes", int, BM1_NPOSES,
                  "number of poses (divisible by ppwi)", minimum=1),
        ParamSpec("verify_poses", int, 64,
                  "poses in the reduced verification deck", minimum=1),
        ParamSpec("seed", int, 2025, "deck-generation seed"),
    )

    #: poses-per-work-item candidates (the paper's Figures 6-7 sweep axis)
    TUNING_PPWI = (1, 2, 4, 8, 16)
    #: work-group size candidates (wg=8 vs wg=64 is the Figure 6 contrast)
    TUNING_WGSIZE = (8, 16, 32, 64, 128, 256)

    def tuning_space(self, request: RunRequest):
        """Launch knobs: PPWI, work-group size and fast-math.

        The constraint mirrors :func:`minibude_launch_config`: the pose
        count must split evenly into poses-per-work-item.
        """
        from ..tuning.space import TuningKnob, TuningSpace

        p = self.validate_params(request.params)
        nposes = p["nposes"]
        return TuningSpace(
            (
                TuningKnob("ppwi", self.TUNING_PPWI),
                TuningKnob("wgsize", self.TUNING_WGSIZE),
                TuningKnob("fast_math", (False, True), kind="field"),
            ),
            constraint=lambda cfg: nposes % int(cfg["ppwi"]) == 0,
        )

    def tuning_model(self, request: RunRequest):
        """Fasten kernel model + launch for the pruner (bm1 deck shape)."""
        p = self.validate_params(request.params)
        model = fasten_kernel_model(ppwi=p["ppwi"], natlig=BM1_NATLIG,
                                    natpro=BM1_NATPRO, wgsize=p["wgsize"])
        return model, minibude_launch_config(p["nposes"], p["ppwi"],
                                             p["wgsize"])

    def lint_graph(self):
        """Two-stream upload → fan-in → fasten → D2H capture on a tiny deck.

        Mirrors :func:`~repro.kernels.minibude.runner.run_fasten_functional`
        with ``streams=2``, so the race detector sees the workload's real
        event-edge structure (every upload lane fanned into the compute
        stream) rather than a single-stream degenerate.
        """
        import itertools

        from ..core.device import DeviceContext
        from ..core.dtypes import DType
        from ..kernels.minibude.deck import make_deck
        from ..kernels.minibude.kernel import fasten_kernel, fasten_kernel_model
        from ..kernels.minibude.runner import minibude_launch_config

        deck = make_deck(natlig=4, natpro=8, ntypes=2, nposes=32, seed=2025,
                         name="lint")
        ppwi, wgsize = 2, 8
        launch = minibude_launch_config(deck.nposes, ppwi, wgsize)
        ctx = DeviceContext("h100")
        pool, compute = ctx.upload_pipeline(2)
        lanes = itertools.cycle(pool)

        def upload(data, label):
            buf = ctx.enqueue_create_buffer(DType.float32, data.size,
                                            label=label)
            buf.copy_from_host(data, stream=next(lanes))
            return buf

        with ctx.capture(f"lint-{self.name}") as graph:
            protein = upload(deck.protein_flat(), "protein")
            ligand = upload(deck.ligand_flat(), "ligand")
            forcefield = upload(deck.forcefield_flat(), "forcefield")
            transforms = [upload(t, f"t{i}")
                          for i, t in enumerate(deck.transforms())]
            etot_buf = ctx.enqueue_create_buffer(DType.float32, deck.nposes,
                                                 label="etotals")
            ctx.fan_in(pool, compute, prefix="uploads")
            ctx.enqueue_function(
                fasten_kernel, ppwi, deck.natlig, deck.natpro,
                protein.tensor(mut=False, bounds_check=False),
                ligand.tensor(mut=False, bounds_check=False),
                *[t.tensor(mut=False, bounds_check=False)
                  for t in transforms],
                etot_buf.tensor(bounds_check=False),
                forcefield.tensor(mut=False, bounds_check=False),
                deck.nposes,
                grid_dim=launch.grid_dim, block_dim=launch.block_dim,
                model=fasten_kernel_model(ppwi=ppwi, natlig=deck.natlig,
                                          natpro=deck.natpro, wgsize=wgsize),
                stream=compute,
            )
            etot_buf.copy_to_host(stream=compute)
        return graph

    def reference(self, *, natlig: int = 8, natpro: int = 32,
                  nposes: int = 64, seed: int = 2025):
        """Vectorised reference energies for a reduced random deck."""
        deck = make_deck(natlig=natlig, natpro=natpro, ntypes=4,
                         nposes=nposes, seed=seed, name="reference")
        return reference_energies(deck)

    def verify(self, *, ppwi: int = 2, wgsize: int = 8,
               verify_poses: int = 64, seed: int = 2025,
               gpu: str = "h100") -> float:
        """Device-kernel functional verification on a reduced deck."""
        deck = make_deck(natlig=8, natpro=32, ntypes=4, nposes=verify_poses,
                         seed=seed, name="verify")
        _, err = run_fasten_functional(deck, ppwi=ppwi, wgsize=wgsize, gpu=gpu)
        return err

    def _run(self, request: RunRequest) -> WorkloadResult:
        p = request.params
        sink: dict = {}
        result = bench_minibude(
            ppwi=p["ppwi"], wgsize=p["wgsize"], nposes=p["nposes"],
            backend=request.backend, gpu=request.gpu,
            fast_math=request.fast_math, verify=request.verify,
            verify_poses=p["verify_poses"], seed=p["seed"],
            executor=request.executor,
            streams=request.streams, pipeline_sink=sink,
        )
        timing = self._timing_with_pipeline({"kernel": result.timing}, sink)
        return WorkloadResult(
            request=request,
            metrics={
                "gflops": result.gflops,
                "kernel_time_ms": result.kernel_time_ms,
                **self.counter_metrics(request),
            },
            primary_metric=self.primary_metric,
            verification=Verification(ran=result.verified,
                                      passed=result.verified,
                                      max_rel_error=result.max_rel_error),
            timing=timing,
            provenance=build_provenance(request, sampling=self.sampling),
            raw=result,
        )
