"""Provenance stamping for unified workload results."""

from __future__ import annotations

import platform
from typing import Dict

from ..backends import get_backend
from ..gpu.specs import get_gpu
from .base import RunRequest

__all__ = ["build_provenance"]


def build_provenance(request: RunRequest,
                     sampling: str = "synthetic-jitter") -> Dict[str, object]:
    """Describe how a result was produced: toolchain, hardware, versions.

    ``sampling`` states how the per-repeat samples were obtained —
    ``"synthetic-jitter"`` when the measurement protocol drives a seeded
    sample generator (stencil, BabelStream), ``"single-evaluation"`` when
    the analytic model is evaluated once and the protocol's repeat count
    does not apply (miniBUDE, Hartree–Fock).
    """
    from .. import __version__

    be = get_backend(request.backend)
    spec = get_gpu(request.gpu)
    return {
        "repro_version": __version__,
        "backend": be.name,
        "backend_display_name": be.display_name,
        "gpu": spec.name,
        "gpu_full_name": spec.full_name,
        "python": platform.python_version(),
        "substrate": "simulated",
        "sampling": sampling,
    }
