"""Experiment harness: results, paper data, comparisons, sweeps, plotting."""

from .benchcheck import (
    BenchComparison,
    compare_benchmarks,
    extract_stats,
    load_stats,
    write_baseline,
)
from .compare import (
    ordering_comparison,
    qualitative_comparison,
    ratio_comparison,
    within_band,
)
from .paper_data import (
    FIGURE_EXPECTATIONS,
    TABLE1_HARDWARE,
    TABLE2_STENCIL_NCU,
    TABLE3_BABELSTREAM_NCU,
    TABLE4_HARTREE_FOCK_MS,
    TABLE5_EFFICIENCIES,
    TABLE5_PHI,
    TEXT_RATIOS,
)
from .plotting import Series, bar_chart, line_chart, series_to_csv
from .results import Comparison, ExperimentResult, ResultTable
from .runner import BenchmarkRunner, Measurement, MeasurementProtocol
from .sweep import Sweep, sweep

__all__ = [
    "BenchComparison", "compare_benchmarks", "extract_stats", "load_stats",
    "write_baseline",
    "ordering_comparison", "qualitative_comparison", "ratio_comparison", "within_band",
    "FIGURE_EXPECTATIONS", "TABLE1_HARDWARE", "TABLE2_STENCIL_NCU",
    "TABLE3_BABELSTREAM_NCU", "TABLE4_HARTREE_FOCK_MS", "TABLE5_EFFICIENCIES",
    "TABLE5_PHI", "TEXT_RATIOS",
    "Series", "bar_chart", "line_chart", "series_to_csv",
    "Comparison", "ExperimentResult", "ResultTable",
    "BenchmarkRunner", "Measurement", "MeasurementProtocol",
    "Sweep", "sweep",
]
