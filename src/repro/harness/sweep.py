"""Parameter sweeps for the experiment harness.

A :class:`Sweep` is an ordered cartesian product of named parameter lists
with optional filtering, used by the figure experiments (PPWI x work-group
sweeps, L x precision x block-shape sweeps, natoms x ngauss tables).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["Sweep", "sweep"]


@dataclass
class Sweep:
    """Cartesian-product parameter sweep."""

    parameters: Dict[str, List[object]] = field(default_factory=dict)
    #: predicate applied to each candidate configuration
    constraint: Optional[Callable[[Mapping[str, object]], bool]] = None

    def add(self, name: str, values: Iterable[object]) -> "Sweep":
        values = list(values)
        if not values:
            raise ConfigurationError(f"sweep parameter {name!r} has no values")
        if name in self.parameters:
            raise ConfigurationError(f"sweep parameter {name!r} already defined")
        self.parameters[name] = values
        return self

    def where(self, predicate: Callable[[Mapping[str, object]], bool]) -> "Sweep":
        """Attach (or chain) a configuration filter."""
        previous = self.constraint

        def combined(cfg: Mapping[str, object]) -> bool:
            if previous is not None and not previous(cfg):
                return False
            return predicate(cfg)

        self.constraint = combined if previous is not None else predicate
        return self

    # ------------------------------------------------------------------ iterate
    def __iter__(self) -> Iterator[Dict[str, object]]:
        if not self.parameters:
            raise ConfigurationError("cannot iterate an empty sweep")
        names = list(self.parameters)
        for combo in itertools.product(*(self.parameters[n] for n in names)):
            cfg = dict(zip(names, combo))
            if self.constraint is None or self.constraint(cfg):
                yield cfg

    def configurations(self) -> List[Dict[str, object]]:
        """Materialise all (filtered) configurations."""
        return list(iter(self))

    def __len__(self) -> int:
        return len(self.configurations())

    def run(self, fn: Callable[..., object]) -> List[object]:
        """Call ``fn(**configuration)`` for every configuration, in order."""
        return [fn(**cfg) for cfg in self]


def sweep(**parameters: Iterable[object]) -> Sweep:
    """Build a :class:`Sweep` from keyword parameter lists."""
    s = Sweep()
    for name, values in parameters.items():
        s.add(name, values)
    return s
