"""Parameter sweeps for the experiment harness.

A :class:`Sweep` is an ordered cartesian product of named parameter lists
with optional filtering, used by the figure experiments (PPWI x work-group
sweeps, L x precision x block-shape sweeps, natoms x ngauss tables).

Sweeps speak the unified Workload API directly: :meth:`Sweep.requests` turns
each configuration into a validated ``RunRequest`` (``gpu``/``backend``/
``precision``/``fast_math``/``verify`` keys become request fields, the rest
workload params) and :meth:`Sweep.run_workload` executes them, so sweeping a
new workload needs no per-kernel glue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["Sweep", "sweep"]


@dataclass
class Sweep:
    """Cartesian-product parameter sweep."""

    parameters: Dict[str, List[object]] = field(default_factory=dict)
    #: predicate applied to each candidate configuration
    constraint: Optional[Callable[[Mapping[str, object]], bool]] = None
    #: cached configuration count (invalidated by :meth:`add` / :meth:`where`)
    _count: Optional[int] = field(default=None, init=False, repr=False,
                                  compare=False)

    def add(self, name: str, values: Iterable[object]) -> "Sweep":
        values = list(values)
        if not values:
            raise ConfigurationError(f"sweep parameter {name!r} has no values")
        if name in self.parameters:
            raise ConfigurationError(f"sweep parameter {name!r} already defined")
        self.parameters[name] = values
        self._count = None
        return self

    def where(self, predicate: Callable[[Mapping[str, object]], bool]) -> "Sweep":
        """Attach (or chain) a configuration filter."""
        previous = self.constraint

        def combined(cfg: Mapping[str, object]) -> bool:
            if previous is not None and not previous(cfg):
                return False
            return predicate(cfg)

        self.constraint = combined if previous is not None else predicate
        self._count = None
        return self

    # ------------------------------------------------------------------ iterate
    def __iter__(self) -> Iterator[Dict[str, object]]:
        if not self.parameters:
            raise ConfigurationError("cannot iterate an empty sweep")
        names = list(self.parameters)
        for combo in itertools.product(*(self.parameters[n] for n in names)):
            cfg = dict(zip(names, combo))
            if self.constraint is None or self.constraint(cfg):
                yield cfg

    def configurations(self) -> List[Dict[str, object]]:
        """Materialise all (filtered) configurations."""
        return list(iter(self))

    def __len__(self) -> int:
        """Number of (filtered) configurations, counted lazily and cached.

        Without a constraint the count is the product of the parameter list
        lengths — no configuration dicts are built at all.  With a constraint
        the candidates are streamed through the predicate without
        materialising the configuration list.
        """
        if self._count is None:
            if not self.parameters:
                raise ConfigurationError("cannot iterate an empty sweep")
            if self.constraint is None:
                count = 1
                for values in self.parameters.values():
                    count *= len(values)
            else:
                count = sum(1 for _ in self)
            self._count = count
        return self._count

    def run(self, fn: Callable[..., object], *,
            workers: Optional[int] = None) -> List[object]:
        """Call ``fn(**configuration)`` for every configuration.

        With ``workers=N`` (N > 1) the configurations are evaluated on a
        thread pool.  The returned list is **guaranteed** to follow
        configuration order regardless of worker completion order: one
        future is submitted per configuration, in sweep order, and results
        are collected from that same ordered list (never from an
        as-completed iterator).  The default remains strictly sequential.
        """
        if workers is None or workers <= 1:
            return [fn(**cfg) for cfg in self]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, **cfg) for cfg in self]
            return [f.result() for f in futures]

    # --------------------------------------------------------------- workloads
    #: configuration keys lifted into RunRequest fields rather than params
    REQUEST_FIELDS = ("gpu", "backend", "precision", "fast_math", "verify",
                      "executor", "streams", "tune", "optimize")

    def requests(self, workload, **base) -> Iterator["object"]:
        """Yield one validated ``RunRequest`` per configuration.

        Sweep parameters named in :data:`REQUEST_FIELDS` (``gpu``,
        ``backend``, ``precision``, ``fast_math``, ``verify``,
        ``executor``, ``streams``, ``tune``, ``optimize``) become request
        fields;
        everything else goes
        into the workload-specific ``params`` mapping and is validated
        against the workload's parameter schema.  ``base`` supplies fixed
        request fields (including ``protocol``) for keys not swept over.
        """
        # imported here to break the cycle: workloads.base imports
        # harness.runner, whose package __init__ imports this module
        from ..workloads import get_workload

        wl = get_workload(workload)
        for cfg in self:
            fields = dict(base)
            params = {}
            for name, value in cfg.items():
                if name in self.REQUEST_FIELDS:
                    fields[name] = value
                else:
                    params[name] = value
            yield wl.make_request(params=params, **fields)

    @staticmethod
    def _resilience_bundle(checkpoint, resume, on_error, retry, timeout_ms,
                           breaker):
        """Build the :class:`SweepResilience` bundle, or None when unused.

        All-default keyword arguments mean the sweep runs exactly as it
        always has — no wrapper layers, no journal, no behaviour change.
        """
        if checkpoint is None and on_error == "raise" and retry is None \
                and timeout_ms is None and breaker is None:
            return None
        from ..resilience import CheckpointJournal, SweepResilience

        journal = None
        if checkpoint is not None:
            journal = checkpoint if isinstance(checkpoint, CheckpointJournal) \
                else CheckpointJournal(checkpoint, resume=resume)
        return SweepResilience(on_error=on_error, journal=journal,
                               retry=retry, timeout_ms=timeout_ms,
                               breaker=breaker)

    def _workload_plan(self, workload, cache: bool, base: Dict[str, object],
                       resilience=None):
        """Shared setup for the sync/async workload runners.

        Resolves the workload, materialises the sweep's requests, and picks
        the per-request runner — memoised through the request-level result
        cache unless ``cache=False``.  The runner closes over the resolved
        instance: ``run_cached`` must not re-resolve by name, or sweeps over
        unregistered ``Workload`` instances break.  With a
        :class:`~repro.resilience.SweepResilience` bundle the runner is
        wrapped twice: retries/deadline/degradation *inside* the cache (a
        recovered result is memoised like any other) and checkpoint/circuit
        breaker/failure capture *outside* it.
        """
        from ..workloads import get_workload  # cycle-break, as in requests()
        from ..workloads.cache import run_cached

        wl = get_workload(workload)
        reqs = list(self.requests(wl, **base))
        core = wl.run if resilience is None else resilience.wrap_run(wl)
        runner = (lambda r: run_cached(r, workload=wl, runner=core)) \
            if cache else core
        if resilience is not None:
            runner = resilience.wrap_request(wl, runner)
        return runner, reqs

    def run_workload(self, workload, *, workers: Optional[int] = None,
                     cache: bool = True, checkpoint=None, resume: bool = True,
                     on_error: str = "raise", retry=None,
                     timeout_ms: Optional[float] = None, breaker=None,
                     **base) -> List[object]:
        """Run a registered workload over every configuration.

        Returns one ``WorkloadResult`` per configuration, in sweep order
        (same ordering guarantee as :meth:`run`); ``workers=N`` evaluates
        them on a thread pool.

        Results are memoised by their frozen ``RunRequest`` through the
        request-level result cache (:mod:`repro.workloads.cache`), so
        repeated sweep points — and repeated sweeps over overlapping
        configurations — are answered without re-running the workload.
        Pass ``cache=False`` to force fresh runs.

        Resilience (all off by default — the plain path is unchanged):

        * ``checkpoint=path`` journals every finished request to a
          JSON-lines file; with ``resume=True`` (default) an existing
          journal is replayed and completed requests are **not re-run**.
          ``checkpoint`` also accepts a ready
          :class:`~repro.resilience.CheckpointJournal`.
        * ``on_error`` — ``"raise"`` propagates the first failure (today's
          behaviour); ``"skip"`` and ``"retry"`` convert a failed request
          into a :class:`~repro.resilience.FailureRecord` in the result
          list (``"retry"`` first retries under *retry*, defaulting to
          three attempts, with the degradation ladder).
        * ``retry`` — a :class:`~repro.resilience.RetryPolicy` or attempt
          count applied to every request; ``timeout_ms`` bounds each
          attempt with a :class:`~repro.resilience.Deadline`.
        * ``breaker`` — a :class:`~repro.resilience.CircuitBreaker`;
          requests whose ``(workload, gpu, backend)`` circuit is open fail
          fast instead of running.
        """
        resilience = self._resilience_bundle(checkpoint, resume, on_error,
                                             retry, timeout_ms, breaker)
        runner, reqs = self._workload_plan(workload, cache, base, resilience)
        if workers is None or workers <= 1:
            return [runner(r) for r in reqs]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(runner, r) for r in reqs]
            return [f.result() for f in futures]

    async def run_workload_async(self, workload, *, workers: int = 4,
                                 cache: bool = True, checkpoint=None,
                                 resume: bool = True, on_error: str = "raise",
                                 retry=None,
                                 timeout_ms: Optional[float] = None,
                                 breaker=None, **base) -> List[object]:
        """Asynchronously run a registered workload over every configuration.

        The coroutine counterpart of :meth:`run_workload`, built on the
        workloads' ``run_async`` thread façade: at most *workers* requests
        execute concurrently (each on its own worker thread with its own
        device context — no mutable state is shared), and the result list
        follows sweep order regardless of completion order
        (``asyncio.gather`` preserves argument order).  The resilience
        keywords (``checkpoint``/``resume``/``on_error``/``retry``/
        ``timeout_ms``/``breaker``) behave exactly as in
        :meth:`run_workload`; the journal and breaker are thread-safe, so
        concurrent requests share them correctly.
        """
        import asyncio

        resilience = self._resilience_bundle(checkpoint, resume, on_error,
                                             retry, timeout_ms, breaker)
        runner, reqs = self._workload_plan(workload, cache, base, resilience)
        gate = asyncio.Semaphore(max(int(workers), 1))

        async def one(request):
            async with gate:
                return await asyncio.to_thread(runner, request)

        return list(await asyncio.gather(*(one(r) for r in reqs)))


def sweep(**parameters: Iterable[object]) -> Sweep:
    """Build a :class:`Sweep` from keyword parameter lists."""
    s = Sweep()
    for name, values in parameters.items():
        s.add(name, values)
    return s
