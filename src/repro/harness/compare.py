"""Shape checks comparing measured results against the paper's claims.

Because the substrate is a simulator, experiments assert *shape* agreement:
relative ordering of programming models, approximate ratios within a band,
and qualitative observations — not absolute numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.errors import ConfigurationError
from .results import Comparison

__all__ = ["ratio_comparison", "ordering_comparison", "qualitative_comparison",
           "within_band"]


def within_band(measured: float, expected: float, *, rel_tol: float = 0.25) -> bool:
    """True when *measured* is within ``(1 ± rel_tol)`` of *expected*."""
    if expected == 0:
        return measured == 0
    return abs(measured - expected) / abs(expected) <= rel_tol


def ratio_comparison(label: str, measured: float, paper: Optional[float], *,
                     rel_tol: float = 0.25, detail: str = "") -> Comparison:
    """Compare a measured value against a paper value within a relative band.

    When the paper value is unknown (None) the comparison records the measured
    value and passes trivially.
    """
    if paper is None:
        return Comparison(label=label, measured=measured, paper=None,
                          kind="ratio", passed=True,
                          detail=detail or "paper value not reported")
    passed = within_band(measured, paper, rel_tol=rel_tol)
    return Comparison(label=label, measured=measured, paper=paper, kind="ratio",
                      passed=passed,
                      detail=detail or f"tolerance ±{rel_tol:.0%}")


def ordering_comparison(label: str, values: Dict[str, float],
                        expected_order: Sequence[str], *,
                        higher_is_better: bool = True,
                        detail: str = "") -> Comparison:
    """Check that *values* sort in the *expected_order*.

    ``expected_order`` lists keys from best to worst.  The recorded
    ``measured`` value is 1.0 when the ordering holds, 0.0 otherwise.
    """
    missing = [k for k in expected_order if k not in values]
    if missing:
        raise ConfigurationError(f"ordering check is missing values for {missing}")
    ranked = sorted(expected_order, key=lambda k: values[k],
                    reverse=higher_is_better)
    passed = list(ranked) == list(expected_order)
    observed = " > ".join(ranked) if higher_is_better else " < ".join(ranked)
    expected = " > ".join(expected_order) if higher_is_better else " < ".join(expected_order)
    return Comparison(
        label=label, measured=1.0 if passed else 0.0, paper=1.0,
        kind="ordering", passed=passed,
        detail=detail or f"expected {expected}, observed {observed}",
    )


def qualitative_comparison(label: str, passed: bool, *, detail: str = "") -> Comparison:
    """Record a free-form qualitative check."""
    return Comparison(label=label, measured=1.0 if passed else 0.0, paper=1.0,
                      kind="qualitative", passed=passed, detail=detail)
