"""Values reported in the paper's evaluation, transcribed for comparison.

Only quantities the paper states numerically are recorded here (Tables 1-5
plus the ratios called out in the text); figures without printed numbers are
represented by the qualitative expectations the text derives from them (e.g.
"Mojo sits between CUDA with and without fast-math on H100 for miniBUDE").
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "TABLE1_HARDWARE", "TABLE2_STENCIL_NCU", "TABLE3_BABELSTREAM_NCU",
    "TABLE4_HARTREE_FOCK_MS", "TABLE5_EFFICIENCIES", "TABLE5_PHI",
    "TEXT_RATIOS", "FIGURE_EXPECTATIONS",
]

#: Table 1 / Table 6 — GPU hardware peaks
TABLE1_HARDWARE = {
    "h100": {"memory_gb": 94, "bandwidth_gbs": 3900, "fp32_tflops": 60.0,
             "fp64_tflops": 30.0},
    "mi300a": {"memory_gb": 128, "bandwidth_gbs": 5300, "fp32_tflops": 122.6,
               "fp64_tflops": 61.3},
}

#: Table 2 — seven-point stencil ncu metrics on H100
#: keys: (precision, backend) -> metric -> value
TABLE2_STENCIL_NCU = {
    ("float64", "mojo"): {
        "L": 512, "grid": (512, 1, 1), "duration_ms": 1.10,
        "compute_sm_pct": 81.41, "memory_pct": 67.98,
        "l1_ai": 0.14, "l2_ai": 0.26, "l3_ai": 0.62,
        "perf_flops": 1.20e12, "registers": 24, "ldg": 7, "stg": 1,
    },
    ("float64", "cuda"): {
        "L": 512, "grid": (512, 1, 1), "duration_ms": 0.96,
        "compute_sm_pct": 51.96, "memory_pct": 76.72,
        "l1_ai": 0.14, "l2_ai": 0.26, "l3_ai": 0.62,
        "perf_flops": 1.38e12, "registers": 21, "ldg": 7, "stg": 1,
    },
    ("float32", "mojo"): {
        "L": 1024, "grid": (1024, 1, 1), "duration_ms": 8.74,
        "compute_sm_pct": 79.8, "memory_pct": 37.7,
        "l1_ai": 0.24, "l2_ai": 0.51, "l3_ai": 1.24,
        "perf_flops": 1.22e12, "registers": 26, "ldg": 7, "stg": 1,
    },
    ("float32", "cuda"): {
        "L": 1024, "grid": (1024, 1, 1), "duration_ms": 7.21,
        "compute_sm_pct": 53.7, "memory_pct": 43.9,
        "l1_ai": 0.24, "l2_ai": 0.51, "l3_ai": 1.24,
        "perf_flops": 1.48e12, "registers": 20, "ldg": 7, "stg": 1,
    },
}

#: Table 3 — BabelStream ncu metrics on H100 (2^25 FP64 elements)
#: keys: (operation, backend) -> metric -> value
TABLE3_BABELSTREAM_NCU = {
    ("copy", "mojo"): {"duration_ms": 0.202, "compute_sm_pct": 16.3,
                       "memory_pct": 69.7, "registers": 16, "ldg": 1, "stg": 1},
    ("copy", "cuda"): {"duration_ms": 0.205, "compute_sm_pct": 28.6,
                       "memory_pct": 68.9, "registers": 16, "ldg": 1, "stg": 1},
    ("mul", "mojo"): {"duration_ms": 0.203, "compute_sm_pct": 18.2,
                      "memory_pct": 69.2, "registers": 16, "ldg": 1, "stg": 1},
    ("mul", "cuda"): {"duration_ms": 0.208, "compute_sm_pct": 28.2,
                      "memory_pct": 68.0, "registers": 16, "ldg": 1, "stg": 1},
    ("add", "mojo"): {"duration_ms": 0.264, "compute_sm_pct": 15.9,
                      "memory_pct": 81.7, "registers": 16, "ldg": 2, "stg": 1},
    ("add", "cuda"): {"duration_ms": 0.269, "compute_sm_pct": 27.3,
                      "memory_pct": 80.5, "registers": 16, "ldg": 2, "stg": 1},
    ("dot", "mojo"): {"duration_ms": 0.215, "compute_sm_pct": 51.1,
                      "memory_pct": 69.9, "registers": 26, "ldg": 2, "stg": 1},
    ("dot", "cuda"): {"duration_ms": 0.168, "compute_sm_pct": 11.4,
                      "memory_pct": 87.6, "registers": 20, "ldg": 2, "stg": 1},
}

#: Table 4 — Hartree-Fock kernel wall-clock times in milliseconds
#: keys: (natoms, ngauss) -> {(gpu, backend): ms or None when not run}
TABLE4_HARTREE_FOCK_MS = {
    (1024, 6): {("h100", "mojo"): 147250.0, ("h100", "cuda"): 2652.0,
                ("mi300a", "mojo"): None, ("mi300a", "hip"): 846.0},
    (256, 3): {("h100", "mojo"): 187.0, ("h100", "cuda"): 472.0,
               ("mi300a", "mojo"): 25266.0, ("mi300a", "hip"): 178.0},
    (128, 3): {("h100", "mojo"): 21.0, ("h100", "cuda"): 53.0,
               ("mi300a", "mojo"): 2765.0, ("mi300a", "hip"): 23.0},
    (64, 3): {("h100", "mojo"): 3.0, ("h100", "cuda"): 7.0,
              ("mi300a", "mojo"): 436.0, ("mi300a", "hip"): 4.0},
}

#: Table 5 — Mojo efficiencies versus the vendor baseline, and per-workload Φ
TABLE5_EFFICIENCIES = {
    "stencil": {
        ("fp32", "h100"): 0.82, ("fp32", "mi300a"): 1.00,
        ("fp64", "h100"): 0.87, ("fp64", "mi300a"): 1.00,
    },
    "babelstream": {
        ("copy", "h100"): 1.01, ("copy", "mi300a"): 1.00,
        ("mul", "h100"): 1.02, ("mul", "mi300a"): 1.00,
        ("add", "h100"): 1.01, ("add", "mi300a"): 1.00,
        ("triad", "h100"): 1.01, ("triad", "mi300a"): 1.00,
        ("dot", "h100"): 0.78, ("dot", "mi300a"): 1.00,
    },
    "minibude": {
        ("ppwi8_wg8", "h100"): 0.82, ("ppwi8_wg8", "mi300a"): 0.38,
        ("ppwi4_wg64", "h100"): 0.59, ("ppwi4_wg64", "mi300a"): 0.38,
    },
    "hartreefock": {
        ("a1024_g6", "h100"): 0.017, ("a1024_g6", "mi300a"): None,
        ("a256_g3", "h100"): 2.52, ("a256_g3", "mi300a"): 0.007,
        ("a128_g3", "h100"): 2.52, ("a128_g3", "mi300a"): 0.008,
        ("a64_g3", "h100"): 2.33, ("a64_g3", "mi300a"): 0.008,
    },
}

#: Table 5 — per-workload Φ values
TABLE5_PHI = {
    "stencil": 0.92,
    "babelstream": 0.96,
    "minibude": 0.54,
    "hartreefock": 0.92,
}

#: Ratios stated in the running text (conclusions / results sections)
TEXT_RATIOS = {
    #: stencil: Mojo averages 87% of CUDA bandwidth on H100
    "stencil_mojo_vs_cuda_h100": 0.87,
    #: conclusions restate the stencil gap as 89%
    "stencil_mojo_vs_cuda_h100_conclusions": 0.89,
    #: BabelStream Dot reaches 78% of CUDA
    "babelstream_dot_mojo_vs_cuda_h100": 0.78,
    #: Hartree-Fock: Mojo 2.5x faster than CUDA up to 256 atoms
    "hartreefock_mojo_speedup_vs_cuda_h100": 2.5,
}

#: Qualitative expectations for figures whose values are not printed
FIGURE_EXPECTATIONS = {
    "fig2": "stencil and BabelStream lie in the memory-bound region of the "
            "H100 roofline; miniBUDE and Hartree-Fock lie in the compute-bound region",
    "fig3": "Mojo is slightly below CUDA on H100 (87% average) and on par with "
            "HIP on MI300A for both problem sizes and precisions",
    "fig4": "Mojo slightly exceeds CUDA for Copy/Mul/Add/Triad, loses on Dot, "
            "and matches HIP on MI300A",
    "fig5": "Mojo emits fewer constant loads, more integer adds, and identical "
            "global load/store counts compared with CUDA for Triad",
    "fig6": "on H100 Mojo sits between CUDA with and without fast-math, and "
            "outperforms CUDA for small PPWI and work-group size",
    "fig7": "on MI300A Mojo underperforms both HIP variants",
}
