"""Benchmark-regression guard for the host-execution microbenchmarks.

``benchmarks/baseline.json`` stores a (trimmed) pytest-benchmark export of
``benchmarks/test_host_execution.py``.  ``python -m repro bench-compare``
re-runs those benchmarks (or takes an existing ``--benchmark-json`` export)
and fails when any benchmark's best time regresses more than the threshold
(default 2x) against the stored baseline — so a future change cannot silently
give back the substrate-performance wins the baseline encodes.

The comparison uses each benchmark's *minimum* sample, the most
noise-resistant statistic for microbenchmarks, and a deliberately loose
threshold so CI machines of different speeds do not flap.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import ConfigurationError

__all__ = ["BenchComparison", "compare_benchmarks", "extract_stats",
           "load_stats", "write_baseline", "DEFAULT_THRESHOLD",
           "DEFAULT_BASELINE_PATH", "DEFAULT_BENCH_FILE"]

#: regression factor above which bench-compare fails
DEFAULT_THRESHOLD = 2.0

# Anchor the defaults to the repository this source tree lives in (three
# levels up from src/repro/harness), so ``python -m repro bench-compare``
# works from any working directory.
_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                          "..", "..", ".."))
#: location of the stored baseline
DEFAULT_BASELINE_PATH = os.path.join(_REPO_ROOT, "benchmarks", "baseline.json")
#: the benchmark file guarded by the baseline
DEFAULT_BENCH_FILE = os.path.join(_REPO_ROOT, "benchmarks",
                                  "test_host_execution.py")


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing one benchmark against its baseline."""

    name: str
    baseline_min_s: Optional[float]
    current_min_s: Optional[float]
    threshold: float

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline best time (> 1 means slower than baseline)."""
        if not self.baseline_min_s or self.current_min_s is None:
            return None
        return self.current_min_s / self.baseline_min_s

    @property
    def status(self) -> str:
        if not self.baseline_min_s:
            # No baseline entry, or a degenerate (zero) baseline time that no
            # measurement can be compared against: informational only.
            return "new"
        if self.current_min_s is None:
            return "missing"      # baseline entry not exercised: warn
        return "fail" if self.ratio > self.threshold else "ok"

    @property
    def regressed(self) -> bool:
        return self.status == "fail"

    def to_text(self) -> str:
        base = f"{self.baseline_min_s * 1e3:9.3f} ms" if self.baseline_min_s else "        --"
        cur = f"{self.current_min_s * 1e3:9.3f} ms" if self.current_min_s else "        --"
        ratio = f"{self.ratio:6.2f}x" if self.ratio is not None else "     --"
        return f"  [{self.status:>7s}] {self.name:<45s} base={base} now={cur} {ratio}"


def extract_stats(export: Dict) -> Dict[str, Dict[str, float]]:
    """Trim a pytest-benchmark JSON export down to ``name -> {min, mean}``.

    Accepts both the full export (``{"benchmarks": [...]}``) and an
    already-trimmed mapping, so baselines stay readable and diff-friendly.
    """
    if "benchmarks" in export:
        out: Dict[str, Dict[str, float]] = {}
        for bench in export["benchmarks"]:
            stats = bench.get("stats", {})
            out[bench["name"]] = {
                "min": float(stats["min"]),
                "mean": float(stats["mean"]),
            }
        return out
    return {name: {"min": float(s["min"]), "mean": float(s["mean"])}
            for name, s in export.items()}


def load_stats(path: str) -> Dict[str, Dict[str, float]]:
    """Load and trim a benchmark export / baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(
            f"benchmark data file {path!r} not found; generate one with "
            "pytest --benchmark-json or 'python -m repro bench-compare --update'"
        )
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"cannot parse benchmark data {path!r}: {exc}")
    return extract_stats(data)


def write_baseline(path: str, stats: Dict[str, Dict[str, float]]) -> None:
    """Store trimmed benchmark stats as the new baseline."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare_benchmarks(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[BenchComparison]:
    """Compare two trimmed stat mappings, benchmark by benchmark.

    Returns one :class:`BenchComparison` per benchmark seen in either input,
    ordered baseline-first so reports stay stable.
    """
    if threshold <= 1.0:
        raise ConfigurationError(
            f"bench-compare threshold must exceed 1.0, got {threshold}")
    names = list(baseline) + [n for n in current if n not in baseline]
    return [
        BenchComparison(
            name=name,
            baseline_min_s=baseline.get(name, {}).get("min"),
            current_min_s=current.get(name, {}).get("min"),
            threshold=threshold,
        )
        for name in names
    ]
