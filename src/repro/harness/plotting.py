"""Text-mode rendering of figure data (bar charts and line series).

The paper's plotting scripts use pandas/matplotlib/seaborn; this repository
has no plotting dependencies, so figures are emitted as aligned text charts
plus CSV so they can be re-plotted externally with the original scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

__all__ = ["Series", "bar_chart", "line_chart", "series_to_csv"]


@dataclass
class Series:
    """One named data series of (x, y) points."""

    name: str
    points: List[Tuple[object, float]] = field(default_factory=list)

    def add(self, x, y: float) -> None:
        self.points.append((x, float(y)))

    @property
    def xs(self) -> List[object]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]


def bar_chart(values: Mapping[str, float], *, title: str = "", width: int = 50,
              unit: str = "") -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if not values:
        raise ConfigurationError("bar_chart requires at least one value")
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(str(k)) for k in values)
    lines = []
    if title:
        lines.extend([title, "-" * len(title)])
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / vmax))) if value > 0 else ""
        lines.append(f"{str(label).ljust(label_w)} | {bar} {value:,.1f}{unit}")
    return "\n".join(lines)


def line_chart(series: Sequence[Series], *, title: str = "", width: int = 60,
               unit: str = "") -> str:
    """Render one or more series as an aligned text table with spark bars.

    Every series must share the same x values (the harness sweeps guarantee
    this); each row shows the x value and one bar per series.
    """
    if not series:
        raise ConfigurationError("line_chart requires at least one series")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ConfigurationError("all series must share the same x values")
    vmax = max(max(s.ys) for s in series if s.ys) or 1.0
    per_series = max(10, width // len(series))
    lines = []
    if title:
        lines.extend([title, "-" * len(title)])
    header = "x".ljust(10) + "".join(s.name.ljust(per_series + 12) for s in series)
    lines.append(header)
    for i, x in enumerate(xs):
        row = str(x).ljust(10)
        for s in series:
            y = s.ys[i]
            bar = "#" * max(1, int(round(per_series * y / vmax))) if y > 0 else ""
            row += f"{bar}".ljust(per_series + 1) + f"{y:,.1f}{unit}".ljust(11)
        lines.append(row)
    return "\n".join(lines)


def series_to_csv(series: Sequence[Series], *, x_label: str = "x") -> str:
    """Serialise series sharing the same x axis as CSV text."""
    if not series:
        raise ConfigurationError("series_to_csv requires at least one series")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ConfigurationError("all series must share the same x values")
    header = [x_label] + [s.name for s in series]
    lines = [",".join(header)]
    for i, x in enumerate(xs):
        lines.append(",".join([str(x)] + [repr(s.ys[i]) for s in series]))
    return "\n".join(lines) + "\n"
