"""Benchmark execution protocol (warm-up, repeats, timing collection).

The workload runners already model kernel durations; this module provides the
measurement protocol around *host-side* execution used by the examples and
the pytest benchmarks: run a callable with warm-up iterations discarded and
repeated measurements summarised per the paper's methodology.

What to measure with what
-------------------------
Three execution substrates coexist in this repository, with very different
performance envelopes; this runner only ever times the first two:

* **Vectorized references** (``repro.kernels.*.reference``, e.g. the batched
  ERI engine behind ``fock_quadruple_reference``) — NumPy-speed whole-problem
  numerics.  The right choice for timing real host work at realistic sizes.
* **Functional simulation** (:mod:`repro.gpu.executor`) — one Python call per
  simulated GPU thread.  Only meaningful to *benchmark* as a guard on the
  simulator's own overhead (see ``benchmarks/test_host_execution.py``); keep
  grids small (≤ ~10^5 threads).
* **The timing model** (:mod:`repro.gpu.timing`) — produces *predicted*
  device durations analytically.  Never wall-clock it for paper numbers; its
  host cost is bounded by the memoised compile pipeline
  (:func:`repro.core.compiler.compile_kernel`).

Regressions in these measured paths are guarded by ``benchmarks/baseline.json``
via ``python -m repro bench-compare`` (see :mod:`repro.harness.benchcheck`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.errors import ConfigurationError
from ..metrics.statistics import RunStatistics, summarize

__all__ = ["MeasurementProtocol", "Measurement", "BenchmarkRunner"]


@dataclass(frozen=True)
class MeasurementProtocol:
    """How a quantity is measured: warm-up runs discarded, repeats kept."""

    warmup: int = 1
    repeats: int = 5

    def __post_init__(self):
        if self.warmup < 0 or self.repeats < 1:
            raise ConfigurationError(
                "warmup must be >= 0 and repeats >= 1 "
                f"(got warmup={self.warmup}, repeats={self.repeats})"
            )


@dataclass
class Measurement:
    """Result of measuring one callable.

    The derived statistics are computed once per measurement on first access
    (the samples are fixed once the protocol finishes); appending further
    samples by hand invalidates nothing, so do that before reading them.
    """

    name: str
    samples_s: List[float] = field(default_factory=list)
    result: object = None
    _stats: Optional[RunStatistics] = field(default=None, init=False,
                                            repr=False, compare=False)
    _best_s: Optional[float] = field(default=None, init=False,
                                     repr=False, compare=False)

    @property
    def statistics(self) -> RunStatistics:
        if self._stats is None:
            self._stats = summarize(self.samples_s)
        return self._stats

    @property
    def best_s(self) -> float:
        if self._best_s is None:
            self._best_s = min(self.samples_s)
        return self._best_s

    @property
    def mean_s(self) -> float:
        return self.statistics.mean


class BenchmarkRunner:
    """Runs callables under a fixed measurement protocol."""

    def __init__(self, protocol: Optional[MeasurementProtocol] = None):
        self.protocol = protocol or MeasurementProtocol()
        self.measurements: List[Measurement] = []

    def measure(self, name: str, fn: Callable[[], object]) -> Measurement:
        """Measure ``fn`` (its return value from the last repeat is kept)."""
        proto = self.protocol
        for _ in range(proto.warmup):
            fn()
        samples = []
        result = None
        for _ in range(proto.repeats):
            start = time.perf_counter()
            result = fn()
            samples.append(time.perf_counter() - start)
        measurement = Measurement(name=name, samples_s=samples, result=result)
        self.measurements.append(measurement)
        return measurement

    def report(self) -> str:
        """Plain-text summary of all measurements."""
        lines = ["host-side measurements (seconds):"]
        for m in self.measurements:
            s = m.statistics
            lines.append(f"  {m.name}: mean={s.mean:.4f} min={s.minimum:.4f} "
                         f"max={s.maximum:.4f} (n={s.count})")
        return "\n".join(lines)
