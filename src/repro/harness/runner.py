"""Benchmark execution protocol (warm-up, repeats, timing collection).

The workload runners already model kernel durations; this module provides the
measurement protocol around *host-side* execution used by the examples and
the pytest benchmarks: run a callable with warm-up iterations discarded and
repeated measurements summarised per the paper's methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.errors import ConfigurationError
from ..metrics.statistics import RunStatistics, summarize

__all__ = ["MeasurementProtocol", "Measurement", "BenchmarkRunner"]


@dataclass(frozen=True)
class MeasurementProtocol:
    """How a quantity is measured: warm-up runs discarded, repeats kept."""

    warmup: int = 1
    repeats: int = 5

    def __post_init__(self):
        if self.warmup < 0 or self.repeats < 1:
            raise ConfigurationError(
                "warmup must be >= 0 and repeats >= 1 "
                f"(got warmup={self.warmup}, repeats={self.repeats})"
            )


@dataclass
class Measurement:
    """Result of measuring one callable."""

    name: str
    samples_s: List[float] = field(default_factory=list)
    result: object = None

    @property
    def statistics(self) -> RunStatistics:
        return summarize(self.samples_s)

    @property
    def best_s(self) -> float:
        return min(self.samples_s)

    @property
    def mean_s(self) -> float:
        return self.statistics.mean


class BenchmarkRunner:
    """Runs callables under a fixed measurement protocol."""

    def __init__(self, protocol: Optional[MeasurementProtocol] = None):
        self.protocol = protocol or MeasurementProtocol()
        self.measurements: List[Measurement] = []

    def measure(self, name: str, fn: Callable[[], object]) -> Measurement:
        """Measure ``fn`` (its return value from the last repeat is kept)."""
        proto = self.protocol
        for _ in range(proto.warmup):
            fn()
        samples = []
        result = None
        for _ in range(proto.repeats):
            start = time.perf_counter()
            result = fn()
            samples.append(time.perf_counter() - start)
        measurement = Measurement(name=name, samples_s=samples, result=result)
        self.measurements.append(measurement)
        return measurement

    def report(self) -> str:
        """Plain-text summary of all measurements."""
        lines = ["host-side measurements (seconds):"]
        for m in self.measurements:
            s = m.statistics
            lines.append(f"  {m.name}: mean={s.mean:.4f} min={s.minimum:.4f} "
                         f"max={s.maximum:.4f} (n={s.count})")
        return "\n".join(lines)
