"""Result containers and serialisation for the experiment harness.

Every experiment produces an :class:`ExperimentResult`: a table of rows (one
per measured configuration), optional notes, and the comparisons against the
paper's reported values.  Results can be rendered as text, markdown or CSV so
the CLI, the benchmark suite and EXPERIMENTS.md all draw from the same data.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["ResultTable", "Comparison", "ExperimentResult"]


@dataclass
class ResultTable:
    """A column-ordered table of result rows."""

    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    title: str = ""

    def add_row(self, **values) -> Dict[str, object]:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(
                f"row has columns {sorted(unknown)} not declared in {self.columns}"
            )
        self.rows.append(dict(values))
        return self.rows[-1]

    def column(self, name: str) -> List[object]:
        if name not in self.columns:
            raise ConfigurationError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    # -------------------------------------------------------------- rendering
    def _formatted(self, value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        return str(value)

    def to_markdown(self) -> str:
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._formatted(row.get(c))
                                           for c in self.columns) + " |")
        return "\n".join(lines)

    def to_text(self) -> str:
        table = [self.columns] + [
            [self._formatted(row.get(c)) for c in self.columns] for row in self.rows
        ]
        widths = [max(len(str(r[i])) for r in table) for i in range(len(self.columns))]
        out = []
        if self.title:
            out.extend([self.title, "-" * len(self.title)])
        for r in table:
            out.append("  ".join(str(cell).ljust(w) for cell, w in zip(r, widths)))
        return "\n".join(out)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buf.getvalue()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (the shape embedded in experiment exports)."""
        return {"title": self.title, "columns": list(self.columns),
                "rows": [dict(row) for row in self.rows]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, default=str)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Comparison:
    """One measured-vs-paper comparison line."""

    label: str
    measured: float
    paper: Optional[float]
    #: what kind of agreement is claimed: "ratio", "ordering", "qualitative"
    kind: str = "ratio"
    passed: bool = True
    detail: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def to_text(self) -> str:
        status = "ok" if self.passed else "MISMATCH"
        paper = "-" if self.paper is None else f"{self.paper:,.4g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.2f}x"
        detail = f"  ({self.detail})" if self.detail else ""
        return (f"[{status}] {self.label}: measured={self.measured:,.4g} "
                f"paper={paper} ratio={ratio}{detail}")


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    description: str
    tables: List[ResultTable] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extra_text: List[str] = field(default_factory=list)

    def add_table(self, table: ResultTable) -> ResultTable:
        self.tables.append(table)
        return table

    def add_workload_results(self, results: Sequence, *, title: str = "",
                             columns: Optional[Sequence[str]] = None,
                             ) -> ResultTable:
        """Tabulate unified ``WorkloadResult`` objects into a new table.

        Consumes anything with the workload-result row protocol
        (``to_row()`` plus ``ROW_COLUMNS``), so every registered workload's
        results land in the same table shape.
        """
        results = list(results)
        if not results:
            raise ConfigurationError("no workload results to tabulate")
        if columns is None:
            columns = list(results[0].ROW_COLUMNS)
        table = ResultTable(columns=list(columns), title=title)
        for result in results:
            row = result.to_row()
            table.add_row(**{c: row.get(c) for c in columns})
        return self.add_table(table)

    def add_comparison(self, comparison: Comparison) -> Comparison:
        self.comparisons.append(comparison)
        return comparison

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.comparisons)

    # -------------------------------------------------------------- rendering
    def to_text(self) -> str:
        out = [f"=== {self.experiment_id}: {self.description} ==="]
        for table in self.tables:
            out.append("")
            out.append(table.to_text())
        for blob in self.extra_text:
            out.append("")
            out.append(blob)
        if self.comparisons:
            out.append("")
            out.append("Paper comparison:")
            for c in self.comparisons:
                out.append("  " + c.to_text())
        if self.notes:
            out.append("")
            for note in self.notes:
                out.append(f"note: {note}")
        return "\n".join(out)

    def to_markdown(self) -> str:
        out = [f"## {self.experiment_id}: {self.description}"]
        for table in self.tables:
            out.append("")
            out.append(table.to_markdown())
        for blob in self.extra_text:
            out.append("")
            out.append("```\n" + blob + "\n```")
        if self.comparisons:
            out.append("")
            out.append("**Paper comparison**")
            out.append("")
            for c in self.comparisons:
                out.append(f"- {c.to_text()}")
        for note in self.notes:
            out.append(f"\n> {note}")
        return "\n".join(out)

    def to_json(self) -> str:
        payload = {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "tables": [t.as_dict() for t in self.tables],
            "comparisons": [
                {"label": c.label, "measured": c.measured, "paper": c.paper,
                 "kind": c.kind, "passed": c.passed, "detail": c.detail}
                for c in self.comparisons
            ],
            "notes": self.notes,
            "all_passed": self.all_passed,
        }
        return json.dumps(payload, indent=2, default=str)
