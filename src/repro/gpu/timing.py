"""Analytic kernel timing model for the simulated GPUs.

Every figure in the paper reports a kernel-derived quantity (bandwidth,
GFLOP/s or wall-clock time).  Without silicon those durations are produced by
this model, which combines:

* the kernel's traffic and arithmetic (from the :class:`CompiledKernel`,
  itself derived from the workload's :class:`KernelModel`),
* the GPU's peak bandwidth / FLOP rates (Table 1 of the paper),
* occupancy derived from the compiled register count and shared memory,
* access-pattern efficiency (unit-stride streaming vs 3-D stencil vs gather),
* backend lowering effects already baked into the compiled kernel
  (fast-math, constant promotion, atomic mode, spills).

The model is deliberately simple — ``time = max(memory, compute) + atomics +
launch overhead`` with efficiency derating — because that is exactly the
mental model the paper uses when explaining its results (memory-bound kernels
track bandwidth, compute-bound kernels track fast-math, atomics serialise
Hartree–Fock).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.compiler import CompiledKernel, Opcode
from ..core.errors import ConfigurationError
from ..core.kernel import LaunchConfig, MemoryPattern
from .occupancy import OccupancyResult, compute_occupancy
from .specs import GPUSpec

__all__ = ["TimingBreakdown", "KernelTimingModel", "estimate_cache_traffic"]


#: Baseline fraction of peak DRAM bandwidth achievable per access pattern.
_PATTERN_EFFICIENCY = {
    MemoryPattern.STRIDE1: 0.92,
    MemoryPattern.STENCIL3D: 0.80,
    MemoryPattern.STRIDED: 0.55,
    MemoryPattern.GATHER: 0.30,
}

#: Occupancy needed to fully hide memory latency, per access pattern.
_PATTERN_OCC_NEEDED = {
    MemoryPattern.STRIDE1: 0.25,
    MemoryPattern.STENCIL3D: 0.40,
    MemoryPattern.STRIDED: 0.50,
    MemoryPattern.GATHER: 0.60,
}

#: Fraction of peak FLOP/s reachable by well-behaved compute kernels.
_COMPUTE_EFFICIENCY = 0.65

#: Cache hierarchy traffic amplification per access pattern:
#: bytes seen at (L1, L2) relative to the kernel's nominal element traffic,
#: and the fraction that ultimately reaches DRAM.
_CACHE_FACTORS = {
    MemoryPattern.STRIDE1: (1.0, 1.0, 1.0),
    MemoryPattern.STENCIL3D: (1.0, 0.55, 0.33),
    MemoryPattern.STRIDED: (1.1, 0.9, 0.8),
    MemoryPattern.GATHER: (1.3, 1.1, 1.0),
}


@dataclass
class TimingBreakdown:
    """Predicted timing and derived rates for one kernel launch."""

    kernel_name: str
    backend_name: str
    gpu_name: str
    #: total predicted kernel duration in milliseconds
    kernel_time_ms: float
    memory_time_ms: float
    compute_time_ms: float
    atomic_time_ms: float
    overhead_ms: float
    occupancy: OccupancyResult
    active_threads: float
    dram_bytes: float
    raw_flops: float
    effective_flops: float
    atomic_ops: float
    achieved_bandwidth_gbs: float
    achieved_gflops: float
    memory_throughput_pct: float
    compute_throughput_pct: float
    memory_efficiency: float
    compute_efficiency: float
    bound: str
    notes: list = field(default_factory=list)

    @property
    def kernel_time_s(self) -> float:
        return self.kernel_time_ms * 1e-3

    def as_dict(self) -> Dict[str, float]:
        return {
            "kernel_time_ms": self.kernel_time_ms,
            "memory_time_ms": self.memory_time_ms,
            "compute_time_ms": self.compute_time_ms,
            "atomic_time_ms": self.atomic_time_ms,
            "overhead_ms": self.overhead_ms,
            "achieved_bandwidth_gbs": self.achieved_bandwidth_gbs,
            "achieved_gflops": self.achieved_gflops,
            "memory_throughput_pct": self.memory_throughput_pct,
            "compute_throughput_pct": self.compute_throughput_pct,
            "occupancy": self.occupancy.occupancy,
            "bound": self.bound,
        }


def estimate_cache_traffic(compiled: CompiledKernel, active_threads: float) -> Dict[str, float]:
    """Estimate total bytes moved at L1, L2 and DRAM for a launch.

    The stencil kernel reads 7 neighbours per cell at L1 but most of them hit
    in cache, so DRAM sees roughly one read + one write per cell; streaming
    kernels see the same traffic at every level.  These factors reproduce the
    level-dependent arithmetic intensities of the paper's Tables 2-3.
    """
    model = compiled.model
    nominal = (model.loads_global + model.stores_global) * model.dtype.sizeof
    l1f, l2f, dramf = _CACHE_FACTORS[model.memory_pattern]
    return {
        "l1_bytes": nominal * l1f * active_threads,
        "l2_bytes": nominal * l2f * active_threads,
        "dram_bytes": nominal * dramf * active_threads,
    }


class KernelTimingModel:
    """Predict kernel durations for compiled kernels on a GPU spec."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    # ------------------------------------------------------------------ main
    def predict(self, compiled: CompiledKernel,
                launch: Optional[LaunchConfig] = None) -> TimingBreakdown:
        """Predict the duration of *compiled* for *launch*."""
        spec = self.spec
        launch = launch or compiled.launch
        if launch is None:
            raise ConfigurationError(
                "a LaunchConfig is required to predict kernel time"
            )
        model = compiled.model
        profile = compiled.profile

        total_threads = launch.total_threads
        active_threads = total_threads * model.active_fraction

        occ = compute_occupancy(
            spec,
            launch.threads_per_block,
            registers_per_thread=compiled.registers_per_thread,
            shared_bytes_per_block=compiled.shared_bytes_per_block,
            num_blocks=launch.num_blocks,
        )

        # SIMT lane utilisation: a block smaller than (or not a multiple of)
        # the warp/wavefront width wastes the inactive lanes of its last warp.
        # This is what separates the paper's wg=8 and wg=64 miniBUDE curves,
        # and it costs twice as much on AMD's 64-wide wavefronts.
        warps_per_block = -(-launch.threads_per_block // spec.warp_size)
        lane_utilisation = launch.threads_per_block / (warps_per_block * spec.warp_size)

        # ----------------------------------------------------------- memory
        cache = estimate_cache_traffic(compiled, active_threads)
        dram_bytes = cache["dram_bytes"]
        # CAS retries and spills add DRAM traffic beyond the nominal pattern.
        extra_bytes = max(
            0.0,
            compiled.dram_bytes_per_thread * active_threads
            - (model.loads_global + model.stores_global) * model.dtype.sizeof * active_threads,
        )
        dram_bytes += extra_bytes

        mem_eff = _PATTERN_EFFICIENCY[model.memory_pattern]
        if model.memory_pattern == MemoryPattern.STENCIL3D:
            mem_eff *= profile.l1_reuse_efficiency
        elif model.memory_pattern == MemoryPattern.STRIDE1:
            mem_eff *= profile.stride1_efficiency
        if model.uses_shared:
            mem_eff *= profile.shared_reduction_efficiency

        # Latency hiding: derate when occupancy is below the pattern's need.
        needed = _PATTERN_OCC_NEEDED[model.memory_pattern]
        latency_factor = min(1.0, occ.occupancy / needed) if needed > 0 else 1.0
        mem_eff *= max(latency_factor, 0.05)

        # Device fill: small grids cannot saturate all SMs.
        if occ.blocks_per_sm > 0:
            device_blocks = occ.blocks_per_sm * spec.sm_count
            fill = min(1.0, launch.num_blocks / device_blocks)
            # partial final wave
            if launch.num_blocks > device_blocks:
                waves = launch.num_blocks / device_blocks
                fill = waves / math.ceil(waves)
            mem_eff *= max(fill, 0.05)
        if compiled.spilled:
            mem_eff /= profile.spill_penalty
        mem_eff *= lane_utilisation

        mem_eff = min(max(mem_eff, 1e-3), 1.0)
        memory_time_s = dram_bytes / (spec.peak_bandwidth_bytes * mem_eff) if dram_bytes else 0.0

        # ---------------------------------------------------------- compute
        effective_flops = compiled.effective_flops_per_thread * active_threads
        raw_flops = compiled.raw_flops_per_thread * active_threads
        peak_flops = spec.peak_flops(model.dtype.name)
        compute_eff = _COMPUTE_EFFICIENCY * max(min(1.0, occ.occupancy / 0.25), 0.1)
        # Independent work items per thread (ILP) let the scheduler hide
        # instruction latency: e.g. miniBUDE throughput rises with PPWI until
        # register pressure takes over (Figures 6-7).
        ilp_factor = 1.0 + 0.5 * min(max(model.ilp - 1.0, 0.0), 7.0) / 7.0
        compute_eff *= ilp_factor * lane_utilisation
        compute_eff = min(max(compute_eff, 1e-3), 0.95)
        compute_time_s = effective_flops / (peak_flops * compute_eff) if effective_flops else 0.0

        # ----------------------------------------------------------- atomics
        atomic_ops = compiled.atomic_ops_per_thread * active_threads
        atomic_rate = spec.atomic_gups * 1e9 * max(compiled.atomic_throughput_scale, 1e-6)
        atomic_time_s = atomic_ops / atomic_rate if atomic_ops else 0.0

        overhead_s = spec.launch_overhead_us * 1e-6

        kernel_time_s = max(memory_time_s, compute_time_s) + atomic_time_s + overhead_s

        achieved_bw = dram_bytes / kernel_time_s / 1e9 if kernel_time_s > 0 else 0.0
        achieved_gflops = raw_flops / kernel_time_s / 1e9 if kernel_time_s > 0 else 0.0

        mem_pct = 100.0 * (dram_bytes / kernel_time_s) / spec.peak_bandwidth_bytes \
            if kernel_time_s > 0 else 0.0
        compute_pct = self._sm_utilisation(compiled, active_threads, kernel_time_s)

        if atomic_time_s > max(memory_time_s, compute_time_s):
            bound = "atomic"
        elif memory_time_s >= compute_time_s:
            bound = "memory"
        else:
            bound = "compute"

        return TimingBreakdown(
            kernel_name=compiled.kernel_name,
            backend_name=compiled.backend_name,
            gpu_name=spec.name,
            kernel_time_ms=kernel_time_s * 1e3,
            memory_time_ms=memory_time_s * 1e3,
            compute_time_ms=compute_time_s * 1e3,
            atomic_time_ms=atomic_time_s * 1e3,
            overhead_ms=overhead_s * 1e3,
            occupancy=occ,
            active_threads=active_threads,
            dram_bytes=dram_bytes,
            raw_flops=raw_flops,
            effective_flops=effective_flops,
            atomic_ops=atomic_ops,
            achieved_bandwidth_gbs=achieved_bw,
            achieved_gflops=achieved_gflops,
            memory_throughput_pct=min(mem_pct, 100.0),
            compute_throughput_pct=min(compute_pct, 100.0),
            memory_efficiency=mem_eff,
            compute_efficiency=compute_eff,
            bound=bound,
            notes=list(compiled.notes),
        )

    # ------------------------------------------------------------- internals
    def _sm_utilisation(self, compiled: CompiledKernel, active_threads: float,
                        kernel_time_s: float) -> float:
        """Approximate ncu's "Compute (SM) Throughput %".

        Modelled as issued instructions divided by the device's instruction
        issue capacity over the kernel duration.  Backends that emit more
        integer/move instructions (the paper's Figure 5 observation about
        Mojo's extra IADD3s) therefore report a higher SM utilisation even at
        identical memory throughput, matching Tables 2-3.
        """
        if kernel_time_s <= 0:
            return 0.0
        spec = self.spec
        mix = compiled.instruction_mix
        issue_ops = 0.0
        for opcode, count in mix.items():
            if opcode in (Opcode.LDG, Opcode.STG):
                issue_ops += count * 1.0
            elif opcode in (Opcode.BAR,):
                issue_ops += count * 2.0
            elif opcode in (Opcode.FDIV, Opcode.MUFU):
                issue_ops += count * 4.0
            elif opcode in (Opcode.ATOM, Opcode.ATOM_CAS):
                issue_ops += count * 4.0
            else:
                issue_ops += count
        total_issued = issue_ops * active_threads
        # Each SM can issue roughly 4 instructions/cycle for a full warp.
        issue_capacity = (
            spec.sm_count * spec.clock_ghz * 1e9 * 4.0 * spec.warp_size
        )
        return 100.0 * total_issued / (issue_capacity * kernel_time_s)
