"""Occupancy calculator for the simulated GPUs.

Occupancy (resident warps per SM relative to the maximum) is a standard
latency-hiding proxy; the timing model uses it to derate achievable memory
bandwidth when a kernel's register or shared-memory footprint limits the
number of co-resident blocks.  The calculation follows the usual CUDA
occupancy rules, parameterised by the :class:`~repro.gpu.specs.GPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import LaunchError
from .specs import GPUSpec

__all__ = ["OccupancyResult", "compute_occupancy"]

#: register file allocation granularity (registers are allocated per warp in
#: chunks; 256 per warp matches recent NVIDIA/AMD hardware closely enough)
_REGISTER_ALLOC_UNIT = 256
#: shared memory allocation granularity in bytes
_SHARED_ALLOC_UNIT = 1024


@dataclass(frozen=True)
class OccupancyResult:
    """Result of an occupancy computation for one launch configuration."""

    blocks_per_sm: int
    active_threads_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    occupancy: float
    #: which resource bound the result: "threads", "registers", "shared", "blocks"
    limited_by: str
    waves: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"occupancy={self.occupancy:.2f} "
                f"({self.active_warps_per_sm}/{self.max_warps_per_sm} warps, "
                f"limited by {self.limited_by})")


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


def compute_occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    registers_per_thread: int = 32,
    shared_bytes_per_block: int = 0,
    *,
    num_blocks: Optional[int] = None,
    max_blocks_per_sm: int = 32,
) -> OccupancyResult:
    """Compute achievable occupancy for a launch on *spec*.

    Parameters mirror the CUDA occupancy API.  ``num_blocks`` (total blocks in
    the grid) is optional; when given, the number of "waves" of blocks over
    the whole device is also reported, which the timing model uses for tail
    effects on small grids.
    """
    if threads_per_block <= 0:
        raise LaunchError("threads_per_block must be positive")
    if threads_per_block > spec.max_threads_per_block:
        raise LaunchError(
            f"threads_per_block={threads_per_block} exceeds device limit "
            f"{spec.max_threads_per_block}"
        )
    if registers_per_thread <= 0:
        registers_per_thread = 1

    warp = spec.warp_size
    warps_per_block = -(-threads_per_block // warp)
    max_warps_per_sm = spec.max_threads_per_sm // warp

    # Limit 1: resident threads
    limit_threads = spec.max_threads_per_sm // threads_per_block

    # Limit 2: register file
    regs_per_block = _round_up(
        registers_per_thread * warp, _REGISTER_ALLOC_UNIT
    ) * warps_per_block
    limit_registers = (
        spec.registers_per_sm // regs_per_block if regs_per_block > 0 else max_blocks_per_sm
    )

    # Limit 3: shared memory (unconstrained when the block uses none)
    if shared_bytes_per_block > 0:
        shared = _round_up(int(shared_bytes_per_block), _SHARED_ALLOC_UNIT)
        if shared > spec.shared_mem_per_block:
            raise LaunchError(
                f"block requests {shared} B of shared memory; device limit is "
                f"{spec.shared_mem_per_block} B"
            )
        limit_shared = spec.shared_mem_per_sm // shared
    else:
        limit_shared = 10 ** 9

    # Limit 4: hardware block slots
    limit_blocks = max_blocks_per_sm

    limits = {
        "threads": limit_threads,
        "registers": limit_registers,
        "shared": limit_shared,
        "blocks": limit_blocks,
    }
    blocks_per_sm = max(0, min(limits.values()))
    limited_by = min(limits, key=lambda k: limits[k])

    active_threads = blocks_per_sm * threads_per_block
    active_warps = blocks_per_sm * warps_per_block
    occupancy = active_warps / max_warps_per_sm if max_warps_per_sm else 0.0
    occupancy = min(1.0, occupancy)

    waves = 0.0
    if num_blocks is not None and blocks_per_sm > 0:
        device_blocks = blocks_per_sm * spec.sm_count
        waves = num_blocks / device_blocks

    return OccupancyResult(
        blocks_per_sm=blocks_per_sm,
        active_threads_per_sm=active_threads,
        active_warps_per_sm=active_warps,
        max_warps_per_sm=max_warps_per_sm,
        occupancy=occupancy,
        limited_by=limited_by,
        waves=waves,
    )
