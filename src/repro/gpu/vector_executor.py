"""Lockstep (SIMT-vectorized) execution of vector-safe device kernels.

The scalar executors in :mod:`repro.gpu.executor` pay one Python call per
simulated thread, which caps functional simulation at roughly 10^5 threads
per second.  This module evaluates a *vector-safe* kernel body (see
:class:`repro.core.kernel.Kernel` and the lane helpers in
:mod:`repro.core.intrinsics`) once per **lane set** instead: ``thread_idx`` /
``block_idx`` resolve to NumPy index arrays carrying one element per lane,
so every statement of the body executes for all lanes at once as array
operations — the data-centric lockstep execution of per-thread code that
Ziogas et al. and MIRGE use to reclaim array-level throughput without giving
up per-thread semantics.

Two lane-set granularities exist:

* **whole grid** — kernels without barriers or shared memory have no
  intra-block communication, so the entire launch is one lane set (chunked
  at block boundaries to bound the size of the index arrays);
* **per block** — kernels with ``barrier()`` / shared memory run one lane
  set per block.  Because lockstep granularity is per *statement* — finer
  than the per-barrier-phase split a diverging executor would need —
  every lane has completed the pre-barrier statements when ``barrier()`` is
  reached, so the barrier degenerates to an event-count bump of one barrier
  per lane (keeping :class:`~repro.gpu.executor.ExecutionCounters` identical
  to the scalar modes, where each simulated thread counts its own call).

Masked divergence (``if`` guards, predicated accumulation) is expressed in
the kernel body through the lane helpers (``any_lane`` + ``compress_lanes``
for top-level guards, ``lane_where`` / ``masked_store`` for predicated
branches); atomics take the ``np.add.at``-backed lane-vector form in
:mod:`repro.core.atomics`.  Kernels that are not vector-safe fall back to the
scalar executors automatically — see :meth:`KernelExecutor.launch`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from ..core.intrinsics import Dim3, bind_thread_state
from ..core.kernel import Kernel
from ..resilience import faults as _faults

__all__ = ["VectorThreadState", "LaneDim3", "kernel_vector_safe",
           "run_vectorized", "single_chunk", "VECTOR_CHUNK_LANES"]

#: whole-grid lane sets are split at block boundaries so one chunk carries at
#: most this many lanes (bounds the size of the per-lane index arrays)
VECTOR_CHUNK_LANES = 1 << 18


def single_chunk(launch) -> bool:
    """True when a whole-grid launch executes as exactly one lane chunk.

    The legality query kernel fusion (:mod:`repro.graphopt.passes`) keys on:
    sequencing fused part bodies is only equivalent to back-to-back launches
    when every lane of a part completes before the next part starts.  One
    chunk guarantees that; chunked execution would interleave the parts per
    chunk (part A chunk 1, part B chunk 1, part A chunk 2, ...), which
    breaks cross-lane producer/consumer patterns between parts.
    """
    return launch.total_threads <= VECTOR_CHUNK_LANES


def kernel_vector_safe(kern, *, infer: bool = False) -> bool:
    """True when *kern* is safe for lockstep execution.

    A hand-set declaration (``vector_safe=`` on the kernel, or the cached
    ``_repro_vector_safe`` marking on the function) decides directly — but a
    ``True`` declaration is cross-checked against the static verifier's
    verdict, and a refuted declaration warns once per kernel (``repro
    lint`` reports the same disagreement as a ``KV100`` error).  The
    runtime still honours the flag so a deliberate override keeps working.

    With ``infer=True`` an *undeclared* kernel is also accepted when the
    verifier can positively prove its body lockstep-safe — the
    inference-backed path the explicit ``mode="vectorized"`` request uses.
    Verification is memoised on the function object, so neither path costs
    more than one AST walk per kernel body, ever.
    """
    if isinstance(kern, Kernel):
        declared = kern.declared_vector_safe
        if declared is None and kern.vector_safe:
            declared = True             # constructor-derived marking
    else:
        declared = (bool(kern._repro_vector_safe)
                    if hasattr(kern, "_repro_vector_safe") else None)
    if declared is not None:
        if declared:
            _warn_if_refuted(kern)
        return declared
    if not infer:
        return False
    from ..analysis.verifier import infer_vector_safe

    return infer_vector_safe(kern) is True


def _warn_if_refuted(kern) -> None:
    """Warn (once per kernel body) when inference refutes a declared flag."""
    fn = getattr(kern, "fn", kern)
    if getattr(fn, "_repro_flag_warned", False):
        return
    from ..analysis.verifier import verify_kernel

    result = verify_kernel(kern)
    try:
        fn._repro_flag_warned = True
    except (AttributeError, TypeError):  # pragma: no cover - builtins
        return
    if result.inferred is False:
        import warnings

        reasons = "; ".join(result.reasons) or "body rules failed"
        warnings.warn(
            f"kernel {result.kernel!r} declares vector_safe=True but the "
            f"static verifier cannot confirm it ({reasons}); the flag is "
            f"honoured — run `repro lint` for the full diagnostics",
            RuntimeWarning, stacklevel=3)


class LaneDim3:
    """A ``dim3`` whose components may be per-lane index arrays.

    Mirrors the attribute surface the intrinsic proxies read
    (``thread_idx.x`` ...), but ``x``/``y``/``z`` are NumPy int arrays (one
    entry per lane) — or plain ints when the component is uniform across the
    lane set (e.g. ``block_idx`` in per-block mode).
    """

    __slots__ = ("x", "y", "z")

    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaneDim3({self.x!r}, {self.y!r}, {self.z!r})"


class VectorThreadState:
    """Lane-set execution state, bound in place of a scalar ``ThreadState``.

    Presents the same attribute surface the intrinsic proxies, shared-memory
    allocation and atomics read (``thread_idx``, ``block_idx``, ``block_dim``,
    ``grid_dim``, ``block_shared``, ``counters``, ``_shared_seq``), but the
    thread/block indices are :class:`LaneDim3` carrying one element per lane.
    ``barrier()`` counts one barrier event per lane and synchronises nothing:
    lockstep execution already guarantees every lane completed the preceding
    statements.
    """

    __slots__ = ("thread_idx", "block_idx", "block_dim", "grid_dim",
                 "block_shared", "block_barrier", "counters", "num_lanes",
                 "_shared_seq")

    def __init__(self, thread_idx: LaneDim3, block_idx, block_dim: Dim3,
                 grid_dim: Dim3, num_lanes: int,
                 block_shared: Optional[Dict] = None, counters=None):
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.num_lanes = int(num_lanes)
        self.block_shared = block_shared if block_shared is not None else {}
        self.block_barrier = None
        self.counters = counters
        self._shared_seq = 0

    # ------------------------------------------------------------------ ids
    @property
    def linear_thread_id(self):
        t, b = self.thread_idx, self.block_dim
        return t.x + t.y * b.x + t.z * b.x * b.y

    @property
    def linear_block_id(self):
        c, g = self.block_idx, self.grid_dim
        return c.x + c.y * g.x + c.z * g.x * g.y

    @property
    def global_linear_id(self):
        return self.linear_block_id * self.block_dim.total + self.linear_thread_id

    # --------------------------------------------------------------- shared
    def shared_alloc(self, key: str, size: int, dtype) -> np.ndarray:
        """Return (allocating on first use) a block-shared array.

        One logical allocation serves every lane of the block, exactly as one
        ``__shared__`` array serves every thread.  Uses the same atomic
        ``dict.setdefault`` form as ``ThreadState.shared_alloc``: the
        vectorized executor is single-threaded today, but the allocation
        paths must not diverge on the race the scalar one was fixed for.
        """
        arr = self.block_shared.get(key)
        if arr is None:
            from ..core.dtypes import dtype_from_any
            np_dtype = dtype_from_any(dtype).to_numpy()
            arr = self.block_shared.setdefault(
                key, np.zeros(int(size), dtype=np_dtype))
        return arr

    def barrier(self) -> None:
        """Lockstep barrier: counts one event per lane, synchronises nothing."""
        if self.counters is not None:
            self.counters.record_barrier(self.num_lanes)


def _lane_indices(extent: Dim3):
    """Per-lane (x, y, z) index arrays enumerating *extent*, x fastest.

    The lane order matches ``_iter_dim3`` in the scalar executors, so
    colliding scatters and unbuffered atomic accumulations visit elements in
    the same order in every execution mode.
    """
    lin = np.arange(extent.total, dtype=np.int64)
    x = lin % extent.x
    y = (lin // extent.x) % extent.y
    z = lin // (extent.x * extent.y)
    return x, y, z


#: memoised launch geometries (the per-lane index arrays depend only on the
#: grid/block extents).  Cached entries are frozen read-only, so a kernel
#: that mutated its index arrays in place fails loudly instead of corrupting
#: later launches.  Caching removes the arange/tile/repeat cost from every
#: repeated launch (which is what makes captured-graph replay cheap), and is
#: limited to small launches so the cache stays byte-bounded and big grids
#: keep their one-transient-chunk memory profile.
_GEOMETRY_CACHE: Dict[tuple, list] = {}
#: launches with at most this many total threads are cached (one chunk)
_GEOMETRY_CACHE_MAX_LANES = 1 << 16
#: total cached lane-index bytes before the cache is dropped and rebuilt
_GEOMETRY_CACHE_MAX_BYTES = 32 << 20
_geometry_cache_bytes = 0
#: guards the cache dict and byte counter: sweeps run launches on worker
#: threads (Sweep.run_workload(workers=N) / run_workload_async)
_geometry_lock = threading.Lock()


def _iter_chunks(bd: Dim3, gd: Dim3):
    """Yield ``(thread_idx, block_idx, lanes)`` whole-grid lane chunks.

    Consecutive blocks are fused into chunks of at most
    :data:`VECTOR_CHUNK_LANES` lanes; each chunk's index arrays are built
    transiently, so peak memory for big grids is one chunk.
    """
    tpb = bd.total
    tx, ty, tz = _lane_indices(bd)
    bx, by, bz = _lane_indices(gd)
    blocks_per_chunk = max(VECTOR_CHUNK_LANES // tpb, 1)
    for start in range(0, gd.total, blocks_per_chunk):
        stop = min(start + blocks_per_chunk, gd.total)
        nblocks = stop - start
        if nblocks == 1:
            yield (LaneDim3(tx, ty, tz),
                   LaneDim3(int(bx[start]), int(by[start]), int(bz[start])),
                   tpb)
        else:
            yield (
                LaneDim3(np.tile(tx, nblocks), np.tile(ty, nblocks),
                         np.tile(tz, nblocks)),
                LaneDim3(np.repeat(bx[start:stop], tpb),
                         np.repeat(by[start:stop], tpb),
                         np.repeat(bz[start:stop], tpb)),
                nblocks * tpb,
            )


def _grid_geometry(bd: Dim3, gd: Dim3):
    """Whole-grid lane geometry: an iterable of chunk tuples.

    Small launches (≤ :data:`_GEOMETRY_CACHE_MAX_LANES` threads) return a
    memoised list of frozen chunks; larger grids return the transient
    chunk generator.
    """
    global _geometry_cache_bytes
    key = (bd.x, bd.y, bd.z, gd.x, gd.y, gd.z)
    with _geometry_lock:
        cached = _GEOMETRY_CACHE.get(key)
    if cached is not None:
        return cached
    if gd.total * bd.total > _GEOMETRY_CACHE_MAX_LANES:
        return _iter_chunks(bd, gd)
    chunks = list(_iter_chunks(bd, gd))
    nbytes = 0
    seen: set = set()
    for thread_idx, block_idx, _ in chunks:
        for dim3 in (thread_idx, block_idx):
            for comp in (dim3.x, dim3.y, dim3.z):
                if isinstance(comp, np.ndarray):
                    comp.setflags(write=False)
                    if id(comp) not in seen:  # tx/ty/tz shared across chunks
                        seen.add(id(comp))
                        nbytes += comp.nbytes
    with _geometry_lock:
        raced = _GEOMETRY_CACHE.get(key)
        if raced is not None:
            return raced
        if _geometry_cache_bytes + nbytes > _GEOMETRY_CACHE_MAX_BYTES:
            _GEOMETRY_CACHE.clear()
            _geometry_cache_bytes = 0
        _GEOMETRY_CACHE[key] = chunks
        _geometry_cache_bytes += nbytes
    return chunks


def run_vectorized(kern, args, launch, counters, *, per_block: bool) -> int:
    """Execute one launch in lockstep; returns the peak shared bytes/block.

    ``per_block=True`` (kernels with barriers / shared memory) evaluates one
    lane set per block; otherwise consecutive blocks are fused into whole-grid
    chunks of at most :data:`VECTOR_CHUNK_LANES` lanes.
    """
    fn = kern.fn if isinstance(kern, Kernel) else kern
    injector = _faults._ACTIVE
    if injector is not None:
        # Graph-replay thunks call run_vectorized directly, bypassing
        # KernelExecutor.launch — these sites cover that path too.
        name = kern.name if isinstance(kern, Kernel) else \
            getattr(fn, "__name__", "kernel")
        injector.fail_launch("launch.vectorized", name)
        injector.inject_latency("latency.vectorized", name)
    bd, gd = launch.block_dim, launch.grid_dim
    tpb = bd.total
    max_shared = 0

    if per_block:
        tx, ty, tz = _lane_indices(bd)
        bx, by, bz = _lane_indices(gd)
        state = VectorThreadState(
            thread_idx=LaneDim3(tx, ty, tz),
            block_idx=LaneDim3(0, 0, 0),
            block_dim=bd, grid_dim=gd, num_lanes=tpb, counters=counters,
        )
        with bind_thread_state(state):
            for bi in range(gd.total):
                state.block_idx = LaneDim3(int(bx[bi]), int(by[bi]), int(bz[bi]))
                state.block_shared = {}
                state._shared_seq = 0
                fn(*args)
                shared = _shared_bytes(state.block_shared)
                if shared > max_shared:
                    max_shared = shared
        counters.merge(threads_run=gd.total * tpb, blocks_run=gd.total)
        return max_shared

    # Whole-grid mode: blocks are independent, fused into chunks (memoised
    # for small launches, a transient generator for big grids).
    state = VectorThreadState(
        thread_idx=LaneDim3(0, 0, 0),
        block_idx=LaneDim3(0, 0, 0),
        block_dim=bd, grid_dim=gd, num_lanes=tpb, counters=counters,
    )
    with bind_thread_state(state):
        for thread_idx, block_idx, num_lanes in _grid_geometry(bd, gd):
            state.thread_idx = thread_idx
            state.block_idx = block_idx
            state.num_lanes = num_lanes
            state.block_shared = {}
            state._shared_seq = 0
            fn(*args)
    counters.merge(threads_run=gd.total * tpb, blocks_run=gd.total)
    return max_shared


def _shared_bytes(block_shared: Dict) -> int:
    total = 0
    for arr in block_shared.values():
        total += getattr(arr, "nbytes", 0)
    return int(total)
