"""Hardware specifications of the GPUs used in the paper (Table 1 / Table 6).

The paper evaluates on an NVIDIA H100 NVL (94 GB, 3.9 TB/s, 60 FP32 / 30 FP64
TFLOP/s) and an AMD MI300A (128 GB HBM3, 5.3 TB/s, 122.6 FP32 / 61.3 FP64
TFLOP/s).  This module holds those specifications plus a couple of additional
devices useful for exploration (A100, MI250X), and a registry so the rest of
the framework can look GPUs up by name.

These are *models* of the devices: the microarchitectural numbers
(SMs, registers, shared memory, warp size) feed the occupancy calculator and
the analytic timing model; nothing here talks to real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.errors import ConfigurationError

__all__ = ["GPUSpec", "get_gpu", "list_gpus", "register_gpu",
           "H100_NVL", "MI300A", "A100_SXM", "MI250X"]


@dataclass(frozen=True)
class GPUSpec:
    """Specification of one simulated GPU."""

    #: short registry name, e.g. ``"h100"``
    name: str
    #: marketing name used in reports
    full_name: str
    #: ``"nvidia"`` or ``"amd"``
    vendor: str
    #: device memory in GiB
    memory_gib: float
    #: peak DRAM bandwidth in GB/s (Table 1)
    mem_bw_gbs: float
    #: peak FP32 throughput in TFLOP/s (Table 1)
    fp32_tflops: float
    #: peak FP64 throughput in TFLOP/s (Table 1)
    fp64_tflops: float
    #: number of SMs (NVIDIA) or CUs (AMD)
    sm_count: int
    #: SIMT width: warp (32) or wavefront (64)
    warp_size: int
    #: maximum resident threads per SM/CU
    max_threads_per_sm: int = 2048
    #: maximum threads per block
    max_threads_per_block: int = 1024
    #: 32-bit registers per SM/CU
    registers_per_sm: int = 65536
    #: maximum registers addressable per thread
    max_registers_per_thread: int = 255
    #: shared memory / LDS per SM in bytes
    shared_mem_per_sm: int = 164 * 1024
    #: maximum shared memory per block in bytes
    shared_mem_per_block: int = 48 * 1024
    #: last-level cache in MiB
    l2_cache_mib: float = 50.0
    #: core clock in GHz (used for per-instruction latencies)
    clock_ghz: float = 1.7
    #: host<->device transfer bandwidth in GB/s (PCIe / unified memory)
    transfer_bw_gbs: float = 55.0
    #: kernel launch overhead in microseconds
    launch_overhead_us: float = 5.0
    #: sustained *contended* atomic FP64 update rate, in billions of updates
    #: per second, for hardware-native atomics scattered over a matrix-sized
    #: address range.  Calibrated so the vendor baselines land on the paper's
    #: Table 4 Hartree-Fock wall-clock times (472 ms on H100 / 178 ms on
    #: MI300A at 256 atoms).
    atomic_gups: float = 0.5

    # ------------------------------------------------------------ derived
    @property
    def is_nvidia(self) -> bool:
        return self.vendor == "nvidia"

    @property
    def is_amd(self) -> bool:
        return self.vendor == "amd"

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gib * (1024 ** 3))

    def peak_flops(self, dtype_name: str) -> float:
        """Peak FLOP/s for a precision (``"float32"`` or ``"float64"``)."""
        if dtype_name in ("float64", "fp64", "double"):
            return self.fp64_tflops * 1e12
        if dtype_name in ("float32", "fp32", "float", "single", "float16"):
            return self.fp32_tflops * 1e12
        raise ConfigurationError(f"no peak throughput defined for {dtype_name!r}")

    @property
    def peak_bandwidth_bytes(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.mem_bw_gbs * 1e9

    def ridge_point(self, dtype_name: str = "float64") -> float:
        """Roofline ridge point in FLOP/byte for a precision."""
        return self.peak_flops(dtype_name) / self.peak_bandwidth_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.full_name} ({self.mem_bw_gbs:.0f} GB/s)"


# --------------------------------------------------------------------------
# Devices from the paper (Table 1) plus two extra devices for exploration.
# --------------------------------------------------------------------------

H100_NVL = GPUSpec(
    name="h100",
    full_name="NVIDIA H100 NVL - 94 GB",
    vendor="nvidia",
    memory_gib=94.0,
    mem_bw_gbs=3900.0,
    fp32_tflops=60.0,
    fp64_tflops=30.0,
    sm_count=132,
    warp_size=32,
    max_threads_per_sm=2048,
    registers_per_sm=65536,
    shared_mem_per_sm=228 * 1024,
    shared_mem_per_block=227 * 1024,
    l2_cache_mib=50.0,
    clock_ghz=1.785,
    transfer_bw_gbs=55.0,
    launch_overhead_us=5.0,
    atomic_gups=0.4,
)

MI300A = GPUSpec(
    name="mi300a",
    full_name="AMD MI300A - 128 GB HBM3",
    vendor="amd",
    memory_gib=128.0,
    mem_bw_gbs=5300.0,
    fp32_tflops=122.6,
    fp64_tflops=61.3,
    sm_count=228,
    warp_size=64,
    max_threads_per_sm=2048,
    registers_per_sm=65536 * 2,          # VGPR + AGPR file
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=64 * 1024,
    l2_cache_mib=256.0,                   # Infinity Cache
    clock_ghz=2.1,
    transfer_bw_gbs=128.0,                # APU unified memory
    launch_overhead_us=6.0,
    atomic_gups=1.0,
)

A100_SXM = GPUSpec(
    name="a100",
    full_name="NVIDIA A100 SXM4 - 80 GB",
    vendor="nvidia",
    memory_gib=80.0,
    mem_bw_gbs=2039.0,
    fp32_tflops=19.5,
    fp64_tflops=9.7,
    sm_count=108,
    warp_size=32,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block=163 * 1024,
    l2_cache_mib=40.0,
    clock_ghz=1.41,
    atomic_gups=0.3,
)

MI250X = GPUSpec(
    name="mi250x",
    full_name="AMD MI250X (single GCD) - 64 GB",
    vendor="amd",
    memory_gib=64.0,
    mem_bw_gbs=1638.0,
    fp32_tflops=23.9,
    fp64_tflops=23.9,
    sm_count=110,
    warp_size=64,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=64 * 1024,
    l2_cache_mib=8.0,
    clock_ghz=1.7,
    atomic_gups=0.6,
)


_REGISTRY: Dict[str, GPUSpec] = {}


def register_gpu(spec: GPUSpec, *aliases: str) -> GPUSpec:
    """Add a GPU spec (and optional aliases) to the registry."""
    _REGISTRY[spec.name.lower()] = spec
    for alias in aliases:
        _REGISTRY[alias.lower()] = spec
    return spec


register_gpu(H100_NVL, "h100-nvl", "hopper")
register_gpu(MI300A, "mi300", "mi300a-apu")
register_gpu(A100_SXM, "ampere")
register_gpu(MI250X, "mi250")


def get_gpu(name) -> GPUSpec:
    """Look up a GPU by registry name; passes through GPUSpec instances."""
    if isinstance(name, GPUSpec):
        return name
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown GPU {name!r}; known GPUs: {sorted(set(_REGISTRY))}"
        ) from None


def list_gpus() -> Tuple[str, ...]:
    """Canonical (de-aliased) names of all registered GPUs."""
    seen = {}
    for spec in _REGISTRY.values():
        seen[spec.name] = spec
    return tuple(sorted(seen))
