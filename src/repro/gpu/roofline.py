"""Roofline model and workload placement (Figure 2 of the paper).

The paper's Figure 2 places the four workloads on an H100 roofline obtained
with Nsight Compute.  Here the roofline is constructed analytically from the
GPU spec (peak bandwidth and peak FLOP rates) and the workload points come
from the profiling counters of the simulated runs, at the three cache levels
reported by ncu (L1, L2, DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from .specs import GPUSpec, get_gpu

__all__ = ["RooflinePoint", "Roofline", "classify_workload"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on the roofline."""

    name: str
    #: arithmetic intensity in FLOP/byte (at some cache level)
    arithmetic_intensity: float
    #: achieved performance in FLOP/s
    performance: float
    #: precision of the workload ("float32"/"float64")
    precision: str = "float64"
    #: cache level the intensity refers to ("l1", "l2", "dram")
    level: str = "dram"

    @property
    def gflops(self) -> float:
        return self.performance / 1e9


class Roofline:
    """Analytic roofline for one GPU."""

    def __init__(self, gpu):
        self.spec: GPUSpec = get_gpu(gpu)

    # ------------------------------------------------------------------ model
    def peak_flops(self, precision: str = "float64") -> float:
        return self.spec.peak_flops(precision)

    @property
    def peak_bandwidth(self) -> float:
        return self.spec.peak_bandwidth_bytes

    def ridge_point(self, precision: str = "float64") -> float:
        """Arithmetic intensity where the memory roof meets the compute roof."""
        return self.peak_flops(precision) / self.peak_bandwidth

    def attainable(self, arithmetic_intensity: float,
                   precision: str = "float64") -> float:
        """Attainable FLOP/s at a given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise ConfigurationError("arithmetic intensity cannot be negative")
        return min(self.peak_flops(precision),
                   arithmetic_intensity * self.peak_bandwidth)

    def efficiency(self, point: RooflinePoint) -> float:
        """Fraction of the attainable roof achieved by a workload point."""
        roof = self.attainable(point.arithmetic_intensity, point.precision)
        if roof <= 0:
            return 0.0
        return min(1.0, point.performance / roof)

    # ----------------------------------------------------------------- curves
    def roof_series(self, precision: str = "float64",
                    ai_range: Tuple[float, float] = (0.01, 100.0),
                    points: int = 64) -> List[Tuple[float, float]]:
        """Sample the roofline curve (log-spaced) for plotting."""
        import math

        lo, hi = ai_range
        if lo <= 0 or hi <= lo:
            raise ConfigurationError("ai_range must be positive and increasing")
        series = []
        for i in range(points):
            ai = lo * (hi / lo) ** (i / (points - 1))
            series.append((ai, self.attainable(ai, precision)))
        return series

    def place(self, name: str, *, flops: float, bytes_moved: float,
              time_s: float, precision: str = "float64",
              level: str = "dram") -> RooflinePoint:
        """Create a workload point from raw counters."""
        if time_s <= 0:
            raise ConfigurationError("time must be positive to place a point")
        if bytes_moved <= 0:
            raise ConfigurationError("bytes_moved must be positive")
        return RooflinePoint(
            name=name,
            arithmetic_intensity=flops / bytes_moved,
            performance=flops / time_s,
            precision=precision,
            level=level,
        )


def classify_workload(point: RooflinePoint, roofline: Roofline) -> str:
    """Classify a workload as memory- or compute-bound on this roofline."""
    ridge = roofline.ridge_point(point.precision)
    return "memory-bound" if point.arithmetic_intensity < ridge else "compute-bound"
