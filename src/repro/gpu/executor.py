"""Functional execution of device kernels on the simulated GPU.

The executor runs a :class:`~repro.core.kernel.Kernel` over a grid of blocks
and threads, exactly as a GPU would schedule it logically (every thread sees
its own ``thread_idx`` / ``block_idx``).  Three execution modes exist:

``vectorized``
    Lockstep array-level execution (:mod:`repro.gpu.vector_executor`) for
    kernels declared ``vector_safe``: ``thread_idx`` / ``block_idx`` resolve
    to NumPy index arrays and each statement of the body executes for an
    entire lane set at once — the whole grid (chunked) for barrier-free
    kernels, one block per lane set for kernels with barriers / shared
    memory.  Divergence is expressed through the lane helpers
    (``any_lane`` / ``compress_lanes`` / ``lane_where`` / ``masked_store``)
    and atomics take their ``np.add.at``-backed lane-vector form.  This is
    the default mode for vector-safe kernels.

``sequential``
    Threads of a block run one after another in a plain Python loop.  Correct
    for any kernel that does not rely on intra-block synchronisation
    (``barrier``) for data exchange through shared memory.  One mutable
    :class:`~repro.core.intrinsics.ThreadState` is reused for every simulated
    thread (only ``thread_idx`` / ``block_idx`` are rebound), so the per-thread
    overhead is a single kernel-body call.

``cooperative``
    A pool of ``threads_per_block`` OS worker threads is spawned once per
    launch and processes *all* blocks of the grid, synchronised by one
    reusable :class:`threading.Barrier` (an extra barrier wait at the end of
    each block keeps the pool in lockstep across block boundaries).  Required
    for kernels that communicate through shared memory across barriers but
    are *not* vector-safe.

Mode selection (``mode="auto"``) picks ``vectorized`` for vector-safe
kernels, otherwise ``cooperative`` when :func:`kernel_uses_barrier` detects
barriers / shared memory and ``sequential`` for everything else.  Requesting
``mode="vectorized"`` for a kernel that is not vector-safe falls back to the
appropriate scalar mode automatically (vector safety is a property of the
kernel body, not of the request); the :class:`ExecutionResult` reports the
mode that actually ran.

Execution-mode / performance envelope
-------------------------------------
The functional simulator exists to check *correctness* of per-thread kernel
code.  The scalar modes execute one Python call per simulated thread —
roughly a few hundred thousand threads per second in sequential mode and far
less in cooperative mode.  The vectorized mode amortises the interpreter
over a whole lane set per statement, which moves launches of structured
kernels by one to two orders of magnitude (the executor-stencil benchmark in
``benchmarks/test_host_execution.py`` records both modes against
``benchmarks/baseline.json``).  Choose the cheapest tool that answers the
question:

* **Vectorized functional simulation** (default for the four science
  kernels) — per-thread semantics with array-level throughput; fine up to
  ~10^6-thread grids in tests.
* **Scalar functional simulation** (``sequential`` / ``cooperative``) —
  bit-accurate one-thread-at-a-time oracle; use for small grids and for
  kernels whose control flow cannot be expressed lane-generically.
* **Vectorized references** (``repro.kernels.*.reference``) — NumPy-evaluated
  whole-problem numerics (e.g. the batched ERI engine); use to validate
  results at realistic problem sizes.
* **Timing model** (:mod:`repro.gpu.timing` via the backends) — predicted
  device durations for the paper's figures and tables; no functional
  execution at all, so problem size is irrelevant.

Event counting uses per-worker local tallies that are merged into the shared
:class:`ExecutionCounters` once per block (the vectorized mode records whole
lane sets per event), so no lock is taken per event — and the counters are
identical across all three modes for the same launch.  Kernel *durations*
come from the analytic model in :mod:`repro.gpu.timing`, not from Python
wall-clock.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import LaunchError
from ..core.intrinsics import Dim3, ThreadState, bind_thread_state
from ..core.kernel import Kernel, LaunchConfig
from ..resilience import faults as _faults
from .vector_executor import kernel_vector_safe, run_vectorized

__all__ = ["ExecutionCounters", "ExecutionResult", "KernelExecutor",
           "kernel_uses_barrier", "kernel_vector_safe"]


class ExecutionCounters:
    """Event counters shared by all threads of one launch.

    The executor itself accumulates events on per-worker :class:`_LocalTally`
    objects and calls :meth:`merge` once per block; the per-event ``record_*``
    methods remain for direct use (and for code that instruments a single
    simulated thread by hand).
    """

    __slots__ = ("threads_run", "blocks_run", "barriers", "atomics", "_lock")

    def __init__(self):
        self.threads_run = 0
        self.blocks_run = 0
        self.barriers = 0
        self.atomics = 0
        self._lock = threading.Lock()

    def record_barrier(self, n: int = 1) -> None:
        with self._lock:
            self.barriers += n

    def record_atomic(self, n: int = 1) -> None:
        with self._lock:
            self.atomics += n

    def record_thread(self) -> None:
        with self._lock:
            self.threads_run += 1

    def record_block(self) -> None:
        with self._lock:
            self.blocks_run += 1

    def merge(self, threads_run: int = 0, blocks_run: int = 0,
              barriers: int = 0, atomics: int = 0) -> None:
        """Fold a batch of event counts in under a single lock acquisition."""
        with self._lock:
            self.threads_run += threads_run
            self.blocks_run += blocks_run
            self.barriers += barriers
            self.atomics += atomics

    def as_dict(self) -> Dict[str, int]:
        return {
            "threads_run": self.threads_run,
            "blocks_run": self.blocks_run,
            "barriers": self.barriers,
            "atomics": self.atomics,
        }


class _LocalTally:
    """Lock-free per-worker event counts, merged into ExecutionCounters.

    Exposes the same ``record_barrier`` / ``record_atomic`` interface the
    intrinsics and atomics call on ``state.counters``, but owned by exactly
    one OS thread so plain integer increments suffice.
    """

    __slots__ = ("threads_run", "blocks_run", "barriers", "atomics")

    def __init__(self):
        self.threads_run = 0
        self.blocks_run = 0
        self.barriers = 0
        self.atomics = 0

    def record_barrier(self, n: int = 1) -> None:
        self.barriers += n

    def record_atomic(self, n: int = 1) -> None:
        self.atomics += n

    def flush(self, counters: ExecutionCounters) -> None:
        """Merge this tally into *counters* and reset it."""
        if self.threads_run or self.blocks_run or self.barriers or self.atomics:
            counters.merge(self.threads_run, self.blocks_run,
                           self.barriers, self.atomics)
            self.threads_run = 0
            self.blocks_run = 0
            self.barriers = 0
            self.atomics = 0


@dataclass
class ExecutionResult:
    """Outcome of one functional launch."""

    kernel_name: str
    launch: LaunchConfig
    mode: str
    counters: ExecutionCounters
    wall_time_s: float
    shared_bytes_per_block: int = 0

    @property
    def threads_run(self) -> int:
        return self.counters.threads_run

    @property
    def blocks_run(self) -> int:
        return self.counters.blocks_run


def _iter_dim3(extent: Dim3):
    """Iterate all (x, y, z) indices of an extent, x fastest."""
    for z in range(extent.z):
        for y in range(extent.y):
            for x in range(extent.x):
                yield Dim3(x, y, z)


def kernel_uses_barrier(kern: Kernel) -> bool:
    """Heuristic: does the kernel body call ``barrier`` or allocate shared memory?

    The result is cached on the underlying function object (covering both the
    :class:`Kernel` wrapper and re-wraps of the same plain callable), so the
    ``inspect.getsource`` walk runs once per kernel instead of once per
    launch.
    """
    fn = kern.fn if isinstance(kern, Kernel) else kern
    cached = getattr(fn, "_repro_uses_barrier", None)
    if cached is not None:
        return cached
    try:
        src = inspect.getsource(fn)
    except (OSError, TypeError):
        uses = True  # be safe: unknown source -> cooperative
    else:
        uses = ("barrier(" in src) or ("stack_allocation" in src) \
            or ("shared_array" in src)
    try:
        fn._repro_uses_barrier = uses
    except (AttributeError, TypeError):  # pragma: no cover - exotic callables
        pass
    return uses


class KernelExecutor:
    """Runs kernels functionally over a simulated grid."""

    #: refuse cooperative launches with more OS threads per block than this
    MAX_COOPERATIVE_BLOCK = 1024
    #: refuse functional launches larger than this many total threads
    #: (the functional simulator is for correctness, not for 2^25-element runs)
    MAX_TOTAL_THREADS = 8_000_000

    def __init__(self, *, max_total_threads: Optional[int] = None):
        self.max_total_threads = max_total_threads or self.MAX_TOTAL_THREADS

    # ------------------------------------------------------------------ API
    def launch(
        self,
        kern: Kernel,
        args: Sequence,
        launch: LaunchConfig,
        *,
        mode: str = "auto",
    ) -> ExecutionResult:
        """Execute *kern* over the grid described by *launch*.

        Parameters
        ----------
        kern:
            The kernel (or plain callable) to run per thread.
        args:
            Positional arguments forwarded to every thread invocation.
        launch:
            Grid/block extents.
        mode:
            ``"auto"`` (default), ``"vectorized"``, ``"sequential"`` or
            ``"cooperative"``.  ``"auto"`` honours the kernel's declared
            flag; an explicit ``"vectorized"`` additionally asks the static
            verifier to *infer* safety for undeclared kernels
            (:func:`~repro.gpu.vector_executor.kernel_vector_safe` with
            ``infer=True``).  Both fall back to the scalar modes when the
            kernel is not (provably) vector-safe; the returned result
            reports the mode that ran.
        """
        if not isinstance(kern, Kernel):
            kern = Kernel(kern)
        injector = _faults._ACTIVE
        if injector is not None:
            injector.fail_launch("launch", kern.name)
            injector.inject_latency("latency", kern.name)
        launch.validate()
        total = launch.total_threads
        if total > self.max_total_threads:
            raise LaunchError(
                f"functional launch of {total} threads exceeds the simulator "
                f"limit of {self.max_total_threads}; use the vectorized "
                "reference implementation / timing model for large problems"
            )
        if mode in ("auto", "vectorized"):
            # an explicit "vectorized" request is worth an inference pass
            # (memoised, one AST walk per kernel body ever); "auto" stays
            # declaration-only so the default path never analyses anything
            if kernel_vector_safe(kern, infer=(mode == "vectorized")):
                mode = "vectorized"
            else:
                mode = "cooperative" if kernel_uses_barrier(kern) else "sequential"
        if mode not in ("sequential", "cooperative", "vectorized"):
            raise LaunchError(f"unknown execution mode {mode!r}")
        if mode == "cooperative" and launch.threads_per_block > self.MAX_COOPERATIVE_BLOCK:
            raise LaunchError(
                f"cooperative mode supports at most {self.MAX_COOPERATIVE_BLOCK} "
                f"threads per block, got {launch.threads_per_block}"
            )

        counters = ExecutionCounters()
        start = time.perf_counter()
        if mode == "vectorized":
            max_shared = run_vectorized(kern, args, launch, counters,
                                        per_block=kernel_uses_barrier(kern))
        elif mode == "sequential":
            max_shared = self._run_sequential(kern, args, launch, counters)
        else:
            max_shared = self._run_cooperative(kern, args, launch, counters)
        wall = time.perf_counter() - start

        return ExecutionResult(
            kernel_name=kern.name,
            launch=launch,
            mode=mode,
            counters=counters,
            wall_time_s=wall,
            shared_bytes_per_block=max_shared,
        )

    def instantiate(self, kern: Kernel, args: Sequence, launch: LaunchConfig,
                    *, mode: str = "auto") -> Callable[[], None]:
        """Pre-validate a launch and return a zero-argument re-execution thunk.

        The functional-simulator analogue of graph instantiation: kernel
        wrapping, launch validation, thread-limit checks and execution-mode
        resolution are paid once here, and the returned thunk only performs
        the kernel's functional work.  Used by
        :meth:`repro.core.device.DeviceGraph.replay` to amortise launch
        overhead across repeats; the thunk reports no counters or timings.
        """
        if not isinstance(kern, Kernel):
            kern = Kernel(kern)
        launch.validate()
        if launch.total_threads > self.max_total_threads:
            raise LaunchError(
                f"functional launch of {launch.total_threads} threads exceeds "
                f"the simulator limit of {self.max_total_threads}"
            )
        if mode in ("auto", "vectorized") and \
                kernel_vector_safe(kern, infer=(mode == "vectorized")):
            per_block = kernel_uses_barrier(kern)

            def thunk() -> None:
                run_vectorized(kern, args, launch, ExecutionCounters(),
                               per_block=per_block)

            return thunk

        def thunk() -> None:
            self.launch(kern, args, launch, mode=mode)

        return thunk

    # ----------------------------------------------------------- sequential
    def _run_sequential(self, kern, args, launch, counters) -> int:
        fn = kern.fn
        blocks = tuple(_iter_dim3(launch.grid_dim))
        threads = tuple(_iter_dim3(launch.block_dim))
        tally = _LocalTally()
        max_shared = 0
        # One mutable ThreadState reused for every simulated thread: only the
        # indices and the per-thread shared-allocation cursor are rebound.
        state = ThreadState(
            thread_idx=threads[0],
            block_idx=blocks[0],
            block_dim=launch.block_dim,
            grid_dim=launch.grid_dim,
            block_shared={},
            block_barrier=None,
            counters=tally,
        )
        with bind_thread_state(state):
            for block in blocks:
                block_shared: Dict[str, "np.ndarray"] = {}
                state.block_idx = block
                state.block_shared = block_shared
                tally.blocks_run += 1
                for thread in threads:
                    state.thread_idx = thread
                    state._shared_seq = 0
                    fn(*args)
                tally.threads_run += len(threads)
                shared = _shared_bytes(block_shared)
                if shared > max_shared:
                    max_shared = shared
                tally.flush(counters)
        return max_shared

    # ---------------------------------------------------------- cooperative
    def _run_cooperative(self, kern, args, launch, counters) -> int:
        fn = kern.fn
        nthreads = launch.threads_per_block
        blocks = tuple(_iter_dim3(launch.grid_dim))
        threads = tuple(_iter_dim3(launch.block_dim))
        barrier = threading.Barrier(nthreads)
        block_shared_dicts = [dict() for _ in blocks]
        errors: List[Tuple[BaseException, Dim3]] = []
        err_lock = threading.Lock()
        max_shared = [0]

        def worker(wid: int, thread: Dim3):
            tally = _LocalTally()
            state = ThreadState(
                thread_idx=thread,
                block_idx=blocks[0],
                block_dim=launch.block_dim,
                grid_dim=launch.grid_dim,
                block_shared=block_shared_dicts[0],
                block_barrier=barrier,
                counters=tally,
            )
            try:
                with bind_thread_state(state):
                    for bi, block in enumerate(blocks):
                        state.block_idx = block
                        state.block_shared = block_shared_dicts[bi]
                        state._shared_seq = 0
                        fn(*args)
                        tally.threads_run += 1
                        # Lockstep across the block boundary: without this
                        # wait a fast worker could enter block bi+1 and its
                        # kernel-internal barriers would pair with slow
                        # workers still inside block bi.
                        barrier.wait()
                        if wid == 0:
                            tally.blocks_run += 1
                            shared = _shared_bytes(block_shared_dicts[bi])
                            if shared > max_shared[0]:
                                max_shared[0] = shared
                            block_shared_dicts[bi].clear()
                        tally.flush(counters)
            except threading.BrokenBarrierError:
                pass  # another worker failed; shut down quietly
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                with err_lock:
                    errors.append((exc, state.block_idx))
                barrier.abort()
            finally:
                tally.flush(counters)

        workers = [threading.Thread(target=worker, args=(w, t), daemon=True)
                   for w, t in enumerate(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if errors:
            exc, block = errors[0]
            raise LaunchError(
                f"kernel {kern.name!r} raised in block {block}: {exc!r}"
            ) from exc
        return max_shared[0]


def _shared_bytes(block_shared: Dict) -> int:
    total = 0
    for arr in block_shared.values():
        total += getattr(arr, "nbytes", 0)
    return int(total)
